#!/usr/bin/env python
"""Cold vs warm search benchmark — emits ``BENCH_search.json``.

Measures the warm-start machinery (PR: cross-point incumbent seeding and
the structure-keyed hint index) on the two traffic shapes it targets:

* **Scaling sweep** (fig. 4a style): the gpt3-1t preset on a B200 NVS-64
  system, global batch 4096, ``tp1d``, vectorized (``batch``) pricing,
  across the GPU grid 4k..128k.  The cold run searches every point from
  scratch; the warm run chains each point's winner into the next point's
  branch-and-bound incumbent.  Results must be identical — the script
  fails if any optimum differs — while the warm run evaluates fewer
  candidates and finishes faster.

* **API replay**: 20 near-identical planning requests (training searches
  varying ``gpus``/``global_batch`` plus serving searches varying
  ``arrival_rate``) through :class:`repro.serve_api.PlannerApp`, once
  with the hint index enabled and once without.  This is the
  planning-as-a-service shape: distinct requests never hit the exact
  result cache, but structurally similar ones seed each other.

Wall-clock numbers are best-of-``--repeats`` with the process-wide
evaluation caches cleared before every repeat, so both modes price every
candidate from cold interpreter state.  Candidate counts are exact and
deterministic.

Usage::

    PYTHONPATH=src python scripts/bench_search.py               # full run
    PYTHONPATH=src python scripts/bench_search.py --repeats 2   # faster
    PYTHONPATH=src python scripts/bench_search.py --out BENCH_search.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.sweeps import scaling_sweep  # noqa: E402
from repro.core.execution import clear_caches  # noqa: E402
from repro.core.model import get_model  # noqa: E402
from repro.core.system import make_system  # noqa: E402

#: Fig. 4a-style grid where the chunked batch pricer pays a visible
#: cold-start cost per point: the first 256-candidate chunk is priced with
#: an infinite threshold, which a seeded incumbent cuts down immediately.
SWEEP_GPUS = (4096, 8192, 16384, 32768, 65536, 131072)
SWEEP_MODEL = "gpt3-1t"
SWEEP_SYSTEM = ("B200", 64)
SWEEP_BATCH = 4096
SWEEP_STRATEGY = "tp1d"
SWEEP_EVAL_MODE = "batch"


def _sweep_once(warm_start: bool):
    model = get_model(SWEEP_MODEL)
    system = make_system(*SWEEP_SYSTEM)
    clear_caches()
    start = time.perf_counter()
    sweep = scaling_sweep(
        model,
        system,
        strategy=SWEEP_STRATEGY,
        n_gpus_list=SWEEP_GPUS,
        global_batch_size=SWEEP_BATCH,
        eval_mode=SWEEP_EVAL_MODE,
        warm_start=warm_start,
    )
    wall = time.perf_counter() - start
    return sweep, wall


def bench_sweep(repeats: int) -> dict:
    """Cold vs warm scaling sweep: wall-clock, candidates, identity check."""
    results = {}
    optima = {}
    for label, warm in (("cold", False), ("warm", True)):
        best_wall = float("inf")
        sweep = None
        for _ in range(repeats):
            sweep, wall = _sweep_once(warm)
            best_wall = min(best_wall, wall)
        points = sweep.points
        candidates = sum(p.result.statistics.candidates_evaluated for p in points)
        warm_hits = sum(p.result.statistics.warm_start_hits for p in points)
        optima[label] = [
            (p.n_gpus, p.result.best.config.describe(), p.result.best.total_time)
            for p in points
            if p.found
        ]
        results[label] = {
            "wall_seconds": round(best_wall, 4),
            "candidates_evaluated": candidates,
            "warm_start_hits": warm_hits,
        }
    if optima["cold"] != optima["warm"]:
        raise SystemExit(
            "FATAL: warm-started sweep found different optima than the cold "
            f"sweep:\ncold: {optima['cold']}\nwarm: {optima['warm']}"
        )
    cold, warm = results["cold"], results["warm"]
    return {
        "model": SWEEP_MODEL,
        "system": "-NVS".join(str(x) for x in SWEEP_SYSTEM),
        "strategy": SWEEP_STRATEGY,
        "global_batch": SWEEP_BATCH,
        "eval_mode": SWEEP_EVAL_MODE,
        "gpus": list(SWEEP_GPUS),
        "repeats": repeats,
        "cold": cold,
        "warm": warm,
        "optima_identical": True,
        "candidate_ratio": round(
            cold["candidates_evaluated"] / warm["candidates_evaluated"], 3
        ),
        "wall_ratio": round(cold["wall_seconds"] / warm["wall_seconds"], 3),
    }


#: 20-request replay: structurally similar planning traffic.  No request
#: repeats exactly (so the exact-fingerprint result cache never
#: short-circuits a solve); the reduced-fingerprint hint index is the only
#: thing the warm app can lean on.
def _replay_requests():
    requests = []
    for gpus in (4096, 8192, 16384, 32768):
        for batch in (4096, 2048):
            requests.append(
                (
                    "search",
                    {
                        "workload": SWEEP_MODEL,
                        "gpu": "B200",
                        "nvs": 64,
                        "gpus": gpus,
                        "global_batch": batch,
                        "eval_mode": SWEEP_EVAL_MODE,
                    },
                )
            )
    for gpus in (64, 128):
        for rate in (10.0, 20.0, 40.0):
            requests.append(
                (
                    "serve",
                    {
                        "workload": "llama70b-serve",
                        "gpu": "B200",
                        "nvs": 8,
                        "gpus": gpus,
                        "arrival_rate": rate,
                    },
                )
            )
    for gpus in (65536, 131072):
        for batch in (4096, 8192, 2048):
            requests.append(
                (
                    "search",
                    {
                        "workload": SWEEP_MODEL,
                        "gpu": "B200",
                        "nvs": 64,
                        "gpus": gpus,
                        "global_batch": batch,
                        "eval_mode": SWEEP_EVAL_MODE,
                    },
                )
            )
    assert len(requests) == 20, len(requests)
    return requests


def bench_api_replay(repeats: int) -> dict:
    """Replay 20 planning requests through a cold and a warm PlannerApp."""
    from repro.serve_api import PlannerApp

    requests = _replay_requests()
    results = {}
    answers = {}
    for label, warm in (("cold", False), ("warm", True)):
        best_wall = float("inf")
        for _ in range(repeats):
            clear_caches()
            app = PlannerApp(warm_start=warm)
            candidates = 0
            summaries = []
            start = time.perf_counter()
            for endpoint, payload in requests:
                body = getattr(app, endpoint)(payload)
                candidates += body["statistics"]["candidates_evaluated"]
                # Threshold-dependent work counters legitimately differ
                # between cold and warm solves; everything else must match.
                summaries.append(
                    {
                        k: v
                        for k, v in body["summary"].items()
                        if k not in ("candidates_evaluated", "pruned_configs")
                    }
                )
            wall = time.perf_counter() - start
            status = app.status()
            app.close()
            best_wall = min(best_wall, wall)
        answers[label] = summaries
        results[label] = {
            "wall_seconds": round(best_wall, 4),
            "candidates_evaluated": candidates,
            "warm_start_hits": status["warm_start_hits"],
            "hint_index_keys": status["cache"]["hint_keys"],
            "hint_index_entries": status["cache"]["hint_entries"],
        }
    if answers["cold"] != answers["warm"]:
        raise SystemExit(
            "FATAL: warm API replay returned different answers than cold"
        )
    cold, warm = results["cold"], results["warm"]
    return {
        "requests": len(requests),
        "repeats": repeats,
        "cold": cold,
        "warm": warm,
        "answers_identical": True,
        "candidate_ratio": round(
            cold["candidates_evaluated"] / warm["candidates_evaluated"], 3
        ),
        "wall_ratio": round(cold["wall_seconds"] / warm["wall_seconds"], 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_search.json",
        help="output path for the machine-readable report",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="wall-clock repeats per mode (best-of-N; candidates are exact)",
    )
    parser.add_argument(
        "--skip-api",
        action="store_true",
        help="only run the scaling-sweep half (faster)",
    )
    args = parser.parse_args(argv)

    print(f"sweep: {SWEEP_MODEL} {SWEEP_STRATEGY} x{len(SWEEP_GPUS)} GPU counts, "
          f"cold vs warm, best of {args.repeats} ...")
    sweep = bench_sweep(args.repeats)
    print(
        f"  cold: {sweep['cold']['wall_seconds']:.3f}s, "
        f"{sweep['cold']['candidates_evaluated']} candidates\n"
        f"  warm: {sweep['warm']['wall_seconds']:.3f}s, "
        f"{sweep['warm']['candidates_evaluated']} candidates "
        f"({sweep['warm']['warm_start_hits']} hint hits)\n"
        f"  ratios: {sweep['candidate_ratio']:.2f}x candidates, "
        f"{sweep['wall_ratio']:.2f}x wall-clock"
    )

    report = {
        "benchmark": "warm-started search",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "sweep": sweep,
    }
    if not args.skip_api:
        print("api replay: 20 requests, cold vs warm app ...")
        replay = bench_api_replay(max(1, args.repeats - 1))
        print(
            f"  cold: {replay['cold']['wall_seconds']:.3f}s, "
            f"{replay['cold']['candidates_evaluated']} candidates\n"
            f"  warm: {replay['warm']['wall_seconds']:.3f}s, "
            f"{replay['warm']['candidates_evaluated']} candidates "
            f"({replay['warm']['warm_start_hits']} hint hits, "
            f"{replay['warm']['hint_index_entries']} hints indexed)\n"
            f"  ratios: {replay['candidate_ratio']:.2f}x candidates, "
            f"{replay['wall_ratio']:.2f}x wall-clock"
        )
        report["api_replay"] = replay

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
