#!/usr/bin/env python3
"""Docstring-coverage gate (an ``interrogate --fail-under N PATH`` stand-in).

Counts every documentable object — modules, classes, functions and methods
(nested ones included) — under the given paths with a pure-AST walk, and
fails when the documented fraction falls below ``--fail-under``.  No
third-party dependency, so the gate runs identically in CI and in a bare
checkout; the flags mirror interrogate's so the two are interchangeable
where interrogate is available.

Usage:
    python scripts/docstring_coverage.py --fail-under 85 src/repro/core
    python scripts/docstring_coverage.py -v --fail-under 85 src/repro
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple


def _documentables(tree: ast.Module) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified name, has_docstring)`` for every documentable node."""
    yield "<module>", ast.get_docstring(tree) is not None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            yield node.name, ast.get_docstring(node) is not None


def scan_file(path: Path) -> List[Tuple[str, bool]]:
    """Documentable objects of one Python file (empty on syntax errors)."""
    try:
        tree = ast.parse(path.read_text())
    except SyntaxError as exc:  # a broken file should fail loudly, not pass
        raise SystemExit(f"{path}: cannot parse: {exc}") from exc
    return list(_documentables(tree))


def iter_python_files(paths: List[str]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            raise SystemExit(f"no such file or directory: {raw}")


def main(argv=None) -> int:
    """Entry point: report per-file coverage and enforce the floor."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+", help="files or directories to scan")
    parser.add_argument(
        "--fail-under",
        type=float,
        default=85.0,
        help="minimum documented percentage (default: 85)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="list every undocumented object"
    )
    args = parser.parse_args(argv)

    total = 0
    documented = 0
    worst: List[Tuple[float, Path]] = []
    for path in iter_python_files(args.paths):
        objects = scan_file(path)
        if not objects:
            continue
        n_doc = sum(1 for _, has in objects if has)
        total += len(objects)
        documented += n_doc
        coverage = 100.0 * n_doc / len(objects)
        worst.append((coverage, path))
        if args.verbose:
            for name, has in objects:
                if not has:
                    print(f"  MISSING {path}:{name}")

    if total == 0:
        raise SystemExit("no Python objects found under the given paths")

    overall = 100.0 * documented / total
    worst.sort()
    for coverage, path in worst:
        if coverage < 100.0:
            print(f"{coverage:6.1f}%  {path}")
    print(f"docstring coverage: {documented}/{total} = {overall:.1f}% "
          f"(floor {args.fail_under:.1f}%)")
    if overall < args.fail_under:
        print("FAILED: coverage below the floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
