#!/usr/bin/env python3
"""Check that local markdown links in README.md and docs/ resolve.

Scans every ``[text](target)`` link in the given markdown files (defaults:
``README.md`` and ``docs/*.md``), ignores external URLs and pure in-page
anchors, and verifies that each relative target — with any ``#fragment``
stripped — exists on disk relative to the file containing the link.
Exits non-zero listing every broken link, so CI fails when documentation
drifts out of sync with the tree.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
REPO_ROOT = Path(__file__).resolve().parent.parent


def iter_local_links(md_file: Path):
    """Yield (line number, target) for every local link in ``md_file``."""
    for lineno, line in enumerate(md_file.read_text().splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            yield lineno, target


def check_file(md_file: Path) -> list[str]:
    """Return human-readable error strings for broken links in ``md_file``."""
    errors = []
    for lineno, target in iter_local_links(md_file):
        path = (md_file.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            errors.append(f"{md_file.relative_to(REPO_ROOT)}:{lineno}: broken link -> {target}")
    return errors


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] if argv else [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]
    errors: list[str] = []
    checked = 0
    for md_file in files:
        if not md_file.exists():
            errors.append(f"{md_file}: file not found")
            continue
        errors.extend(check_file(md_file))
        checked += 1
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} file(s): {'FAIL' if errors else 'OK'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
