#!/usr/bin/env python3
"""Smoke-run every script under ``examples/`` so examples cannot rot silently.

Discovers ``examples/*.py`` dynamically (a new example is covered the day
it lands, a renamed one cannot be skipped by a stale list) and runs each
in a subprocess with:

* ``REPRO_SMOKE=1`` — examples that sweep grids shrink them to CI size;
* ``--jobs``-free serial execution — examples must not assume a pool;
* the repo's ``src/`` on ``PYTHONPATH`` so no install step is needed.

Exits non-zero on the first failure, printing the failing example's
output.  Run locally with:  python scripts/run_examples_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"
#: Per-example wall-clock budget (seconds) — generous: the whole suite
#: currently runs in well under a minute.
TIMEOUT = 300


def main() -> int:
    """Run every example; return non-zero if any fails or none exist."""
    examples = sorted(EXAMPLES_DIR.glob("*.py"))
    if not examples:
        print("no examples found under examples/ — refusing to pass vacuously",
              file=sys.stderr)
        return 1

    env = dict(os.environ)
    env["REPRO_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures = 0
    for example in examples:
        start = time.monotonic()
        try:
            proc = subprocess.run(
                [sys.executable, str(example)],
                capture_output=True,
                text=True,
                env=env,
                timeout=TIMEOUT,
                cwd=REPO_ROOT,
            )
            returncode, out, err = proc.returncode, proc.stdout, proc.stderr
        except subprocess.TimeoutExpired as exc:
            returncode = -1
            out = (exc.stdout or b"").decode() if isinstance(exc.stdout, bytes) else (exc.stdout or "")
            err = (exc.stderr or b"").decode() if isinstance(exc.stderr, bytes) else (exc.stderr or "")
            err += f"\ntimed out after {TIMEOUT}s\n"
        elapsed = time.monotonic() - start
        status = "ok" if returncode == 0 else f"FAILED (rc={returncode})"
        print(f"{example.relative_to(REPO_ROOT)}: {status} [{elapsed:.1f}s]")
        if returncode != 0:
            failures += 1
            sys.stderr.write(out)
            sys.stderr.write(err)
    if failures:
        print(f"{failures}/{len(examples)} examples failed", file=sys.stderr)
        return 1
    print(f"all {len(examples)} examples passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
