#!/usr/bin/env python3
"""Smoke-test the planning service end to end (the CI ``api-smoke`` job).

Boots a real server on an ephemeral port and drives it over HTTP,
asserting the service's two headline guarantees:

1. **Warm shared cache** — a cold search is ``source: "solved"``; the
   identical repeat is ``source: "cache"`` with the same summary and no
   second engine solve.
2. **Request-level dedup** — two concurrent identical requests cost
   exactly one engine solve: sources come back ``{"solved", "dedup"}``
   and ``/v1/status`` reports ``dedup_hits == 1``.  The concurrent phase
   uses a gate-wrapped solver so the overlap is deterministic, not a
   sleep race.

Exits non-zero on the first violated assertion.  Run locally with:

    PYTHONPATH=src python scripts/api_smoke.py
"""

from __future__ import annotations

import json
import sys
import threading
import time
import urllib.request

from repro.runtime.executor import solve_search_task
from repro.serve_api import PlannerApp, create_server

SEARCH = {"workload": "gpt3-1t", "gpus": 128, "global_batch": 512}


def post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read())


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"api-smoke: FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"api-smoke: ok: {message}")


def serve(app: PlannerApp) -> tuple:
    server = create_server(port=0, app=app, quiet=True)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    return server, "http://{}:{}".format(*server.server_address[:2])


def main() -> int:
    # ------------------------------------------------------------------
    # Phase 1: cold/warm pair against the real engine.
    # ------------------------------------------------------------------
    app = PlannerApp()
    server, base = serve(app)
    try:
        check(get(base, "/v1/health") == {"ok": True}, "health endpoint answers")

        start = time.monotonic()
        cold = post(base, "/v1/search", SEARCH)
        cold_s = time.monotonic() - start
        check(cold["found"], "cold search finds a configuration")
        check(cold["source"] == "solved", "cold search is a fresh engine solve")

        warm = post(base, "/v1/search", SEARCH)
        check(warm["source"] == "cache", "identical repeat hits the warm cache")
        check(warm["summary"] == cold["summary"], "cached result is identical")
        status = get(base, "/v1/status")
        check(status["engine_solves"] == 1,
              f"one engine solve for two requests (cold took {cold_s:.2f}s)")

        streamed = urllib.request.urlopen(
            urllib.request.Request(
                base + "/v1/search",
                data=json.dumps({**SEARCH, "gpus": 256, "stream": True}).encode(),
            ),
            timeout=120,
        ).read()
        kinds = [json.loads(line)["event"] for line in streamed.splitlines()]
        check(kinds[0] == "accepted" and kinds[-1] == "result" and "progress" in kinds,
              f"stream is accepted -> progress -> result (got {kinds})")
    finally:
        server.shutdown()
        server.server_close()
        app.close()

    # ------------------------------------------------------------------
    # Phase 2: deterministic concurrent dedup (gate-wrapped real solver).
    # ------------------------------------------------------------------
    release = threading.Event()

    def gated_solver(task):
        release.wait(timeout=60)
        return solve_search_task(task)

    app = PlannerApp(solver=gated_solver)
    server, base = serve(app)
    try:
        outcomes = [None, None]

        def request(i):
            outcomes[i] = post(base, "/v1/search", SEARCH)

        threads = [threading.Thread(target=request, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 30
        while get(base, "/v1/status")["dedup_hits"] != 1:
            check(time.monotonic() < deadline, "second request attaches in flight")
            time.sleep(0.02)
        release.set()  # both requests overlap for certain; let the one solve run
        for t in threads:
            t.join(timeout=120)
        sources = sorted(o["source"] for o in outcomes)
        check(sources == ["dedup", "solved"],
              f"concurrent identical requests dedup (sources={sources})")
        status = get(base, "/v1/status")
        check(status["engine_solves"] == 1, "exactly one engine solve for the pair")
        check(status["dedup_hits"] == 1, "dedup_hits counter pinned at 1")
        check(status["in_flight"] == 0, "in-flight table drained")
    finally:
        server.shutdown()
        server.server_close()
        app.close()

    print("api-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
