#!/usr/bin/env python
"""Tier-2 wall-clock guard for the optimal-configuration search hot path.

Times ``repro-perf search`` on the gpt3-1t preset (the paper's headline
workload) in both evaluation modes and fails when either best-of-N
wall-clock regresses more than the tolerance over its committed baseline:

* ``benchmarks/baselines/search_gpt3_1t.json`` — the scalar oracle path;
* ``benchmarks/baselines/search_gpt3_1t_batch.json`` — the vectorized
  (``--eval-mode batch``) path;
* ``benchmarks/baselines/sweep_gpt3_1t_warm.json`` — the warm-started
  fig. 4a-style scaling sweep (cross-point incumbent seeding on);
* ``benchmarks/baselines/pareto_gpt3_1t.json`` — the multi-objective
  Pareto search (``find_pareto_configs``, all strategies, batch pricer).
  Besides the wall-clock budget this baseline pins the *exact* frontier
  size — the frontier is deterministic, so any drift means the dominance
  logic (not the machine) changed.

On top of the per-mode baselines the guard asserts the *relative* speedups
that justify each optimization's existence: the vectorized search must be
at least :data:`MIN_BATCH_SPEEDUP`x faster than the scalar search, and the
warm-started sweep must evaluate at least
:data:`MIN_WARM_CANDIDATE_RATIO`x fewer candidates (a deterministic count)
and finish at least :data:`MIN_WARM_SPEEDUP`x faster than the same sweep
run cold, all measured in the same run.  Those checks compare two
measurements from the same machine and process, so they need no
calibration and cannot be fooled by runner speed.

The guard is deliberately end-to-end — it exercises candidate enumeration,
the cost-plan build/reduce, branch-and-bound pruning, the NumPy batch
pricer and the CLI — so a slowdown anywhere on the search path trips it.

Usage::

    PYTHONPATH=src python scripts/perf_guard.py            # check
    PYTHONPATH=src python scripts/perf_guard.py --update   # refresh baselines

The baselines are portable across machines: alongside the wall-clock each
records a *calibration* time — a fixed pure-Python workload measured on the
same machine — and the budget scales by the ratio of the checking machine's
calibration to the baseline's, so a slower CI runner gets a proportionally
larger budget (and a faster one a tighter budget) instead of failing or
passing on hardware speed alone.  Residual variance is absorbed by the
tolerance (default 25%, overridable with ``--tolerance`` or the
``PERF_GUARD_TOLERANCE`` environment variable) and by taking the *best* of
several repeats, which is far less noisy than the mean under CI load.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from contextlib import redirect_stdout
from io import StringIO
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "search_gpt3_1t.json"
DEFAULT_BATCH_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "search_gpt3_1t_batch.json"
)
DEFAULT_WARM_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "sweep_gpt3_1t_warm.json"
)
DEFAULT_PARETO_BASELINE = (
    REPO_ROOT / "benchmarks" / "baselines" / "pareto_gpt3_1t.json"
)

#: The guarded command: the gpt3-1t preset across all three strategies at a
#: figure-scale GPU count — a few seconds of work, so the measurement
#: dominates interpreter start-up noise.
SEARCH_ARGV = [
    "search", "--model", "gpt3-1t", "--gpus", "4096", "--strategy", "all", "--top-k", "5",
]

#: The same search through the vectorized pricer.
BATCH_SEARCH_ARGV = SEARCH_ARGV + ["--eval-mode", "batch"]

#: Minimum end-to-end speedup of the batch path over the scalar path,
#: measured back-to-back in the same process.  The array programs price the
#: pinned search roughly 4x faster than the scalar loop; 3x leaves headroom
#: for CI noise while still failing if vectorization silently degrades to
#: per-candidate work.
MIN_BATCH_SPEEDUP = 3.0

#: The warm-started scaling sweep: the gpt3-1t preset across the fig. 4a
#: GPU grid on a B200 NVS-64 system with the batch pricer, where each
#: point's winner seeds the next point's branch-and-bound incumbent.
SWEEP_GPUS = "4096,8192,16384,32768,65536,131072"
SWEEP_ARGV = [
    "scaling", "--model", "gpt3-1t", "--gpu", "B200", "--nvs", "64",
    "--gpus", SWEEP_GPUS, "--global-batch", "4096", "--strategy", "tp1d",
    "--eval-mode", "batch",
]

#: Minimum end-to-end wall-clock speedup of the warm-started sweep over
#: the same sweep with ``--no-warm-start``, measured back-to-back.  The
#: seeded incumbent cuts the first 256-candidate batch chunk per point,
#: which measures ~1.6-2x here; 1.5x is the contract.
MIN_WARM_SPEEDUP = 1.5

#: Minimum ratio of candidates evaluated cold vs warm across the sweep.
#: Candidate counts are exact and deterministic, so this check carries no
#: measurement noise at all (~2.3x in practice; 2x is the contract).
MIN_WARM_CANDIDATE_RATIO = 2.0

#: The guarded multi-objective search: the gpt3-1t preset, every strategy,
#: the default four-objective set, vectorized pricing.
PARETO_ARGV = [
    "pareto", "--model", "gpt3-1t", "--gpus", "4096", "--strategy", "all",
    "--eval-mode", "batch",
]


def calibrate(repeats: int = 3) -> float:
    """Machine-speed proxy: best-of-N of a fixed pure-Python workload.

    The guarded search is dominated by pure-Python enumeration and float
    arithmetic, so a plain interpreter-bound loop tracks its speed across
    machines far better than any hardware spec would.
    """
    def once() -> float:
        acc = 0.0
        for i in range(1, 400_001):
            acc += (i % 7) * 0.5 + i / 3.0
        return acc

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        once()
        best = min(best, time.perf_counter() - start)
    return best


def time_search(argv, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock of the guarded search (seconds)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import main
    from repro.core.execution import clear_caches

    best = float("inf")
    for _ in range(repeats):
        clear_caches()  # every repeat measures the cold-cache hot path
        sink = StringIO()
        start = time.perf_counter()
        with redirect_stdout(sink):
            rc = main(argv)
        elapsed = time.perf_counter() - start
        if rc != 0:
            raise SystemExit(f"guarded search failed with exit code {rc}")
        best = min(best, elapsed)
    return best


def time_sweep(warm_start: bool, repeats: int):
    """Best-of-``repeats`` wall-clock and exact candidate count of the sweep.

    Runs :func:`repro.analysis.sweeps.scaling_sweep` in-process (the CLI
    command ``repro-perf scaling`` over the same grid) so the guard can
    read the deterministic per-point statistics alongside the wall-clock.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.analysis.sweeps import scaling_sweep
    from repro.core.execution import clear_caches
    from repro.core.model import get_model
    from repro.core.system import make_system

    model = get_model("gpt3-1t")
    system = make_system("B200", 64)
    best = float("inf")
    candidates = 0
    for _ in range(repeats):
        clear_caches()
        start = time.perf_counter()
        sweep = scaling_sweep(
            model,
            system,
            strategy="tp1d",
            n_gpus_list=[int(x) for x in SWEEP_GPUS.split(",")],
            global_batch_size=4096,
            eval_mode="batch",
            warm_start=warm_start,
        )
        best = min(best, time.perf_counter() - start)
        candidates = sum(
            p.result.statistics.candidates_evaluated for p in sweep.points
        )
    return best, candidates


def time_pareto(repeats: int):
    """Best-of-``repeats`` wall-clock and exact frontier size of the Pareto search.

    Runs :func:`repro.core.search.find_pareto_configs` in-process (the CLI
    command is ``repro-perf pareto`` over the same point) so the guard can
    read the deterministic frontier size alongside the wall-clock.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.execution import clear_caches
    from repro.core.model import get_model
    from repro.core.search import find_pareto_configs
    from repro.core.system import make_system

    model = get_model("gpt3-1t")
    system = make_system("B200", 8)
    best = float("inf")
    frontier_size = 0
    for _ in range(repeats):
        clear_caches()
        start = time.perf_counter()
        result = find_pareto_configs(
            model, system, n_gpus=4096, global_batch_size=4096,
            strategy="all", eval_mode="batch",
        )
        best = min(best, time.perf_counter() - start)
        frontier_size = len(result.points)
    return best, frontier_size


def _write_baseline(
    path: Path, argv, measured: float, calibration: float, repeats: int, **extra
) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            {
                "command": "repro-perf " + " ".join(argv),
                "wall_seconds": round(measured, 4),
                "calibration_seconds": round(calibration, 5),
                "repeats": repeats,
                "platform": platform.platform(),
                "python": platform.python_version(),
                **extra,
            },
            indent=2,
        )
        + "\n"
    )


def _check_baseline(
    label: str, path: Path, measured: float, calibration: float, tolerance: float
) -> bool:
    """Print a verdict line for one baseline; True when within budget."""
    baseline = json.loads(path.read_text())
    # Normalize for machine speed: a runner whose calibration loop is k×
    # slower than the baseline machine's gets a k× larger budget.
    speed_ratio = (
        calibration / baseline["calibration_seconds"]
        if baseline.get("calibration_seconds")
        else 1.0
    )
    budget = baseline["wall_seconds"] * speed_ratio * (1.0 + tolerance)
    ok = measured <= budget
    print(
        f"{'OK' if ok else 'REGRESSION'}: {label} search took {measured:.3f}s "
        f"(baseline {baseline['wall_seconds']:.3f}s, machine-speed ratio "
        f"{speed_ratio:.2f}x, budget {budget:.3f}s, "
        f"tolerance {100 * tolerance:.0f}%)"
    )
    return ok


def main_guard(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--batch-baseline", type=Path, default=DEFAULT_BATCH_BASELINE)
    parser.add_argument("--warm-baseline", type=Path, default=DEFAULT_WARM_BASELINE)
    parser.add_argument("--pareto-baseline", type=Path, default=DEFAULT_PARETO_BASELINE)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_GUARD_TOLERANCE", "0.25")),
        help="allowed fractional regression over the baseline (default 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baselines from this run"
    )
    args = parser.parse_args(argv)

    measured = time_search(SEARCH_ARGV, args.repeats)
    measured_batch = time_search(BATCH_SEARCH_ARGV, args.repeats)
    cold_wall, cold_candidates = time_sweep(False, args.repeats)
    warm_wall, warm_candidates = time_sweep(True, args.repeats)
    pareto_wall, frontier_size = time_pareto(args.repeats)
    calibration = calibrate()

    if (
        args.update
        or not args.baseline.exists()
        or not args.batch_baseline.exists()
        or not args.warm_baseline.exists()
        or not args.pareto_baseline.exists()
    ):
        _write_baseline(args.baseline, SEARCH_ARGV, measured, calibration, args.repeats)
        _write_baseline(
            args.batch_baseline, BATCH_SEARCH_ARGV, measured_batch, calibration, args.repeats
        )
        _write_baseline(args.warm_baseline, SWEEP_ARGV, warm_wall, calibration, args.repeats)
        _write_baseline(
            args.pareto_baseline, PARETO_ARGV, pareto_wall, calibration, args.repeats,
            frontier_size=frontier_size,
        )
        print(
            f"baselines written: scalar {measured:.3f}s, batch {measured_batch:.3f}s, "
            f"warm sweep {warm_wall:.3f}s, pareto {pareto_wall:.3f}s "
            f"({frontier_size} frontier points, calibration {calibration:.4f}s) "
            f"-> {args.baseline.parent}"
        )
        return 0

    ok = _check_baseline("scalar", args.baseline, measured, calibration, args.tolerance)
    ok &= _check_baseline(
        "batch", args.batch_baseline, measured_batch, calibration, args.tolerance
    )
    ok &= _check_baseline(
        "warm sweep", args.warm_baseline, warm_wall, calibration, args.tolerance
    )
    ok &= _check_baseline(
        "pareto", args.pareto_baseline, pareto_wall, calibration, args.tolerance
    )

    expected_frontier = json.loads(args.pareto_baseline.read_text()).get("frontier_size")
    if expected_frontier is None or frontier_size == expected_frontier:
        print(
            f"OK: pareto frontier has exactly {frontier_size} points "
            f"(deterministic, baseline {expected_frontier})"
        )
    else:
        ok = False
        print(
            f"REGRESSION: pareto frontier has {frontier_size} points, baseline "
            f"pinned {expected_frontier} — the dominance logic changed, not the machine"
        )

    speedup = measured / measured_batch if measured_batch > 0 else float("inf")
    if speedup >= MIN_BATCH_SPEEDUP:
        print(
            f"OK: vectorized search is {speedup:.1f}x faster than scalar "
            f"(floor {MIN_BATCH_SPEEDUP:.0f}x)"
        )
    else:
        ok = False
        print(
            f"REGRESSION: vectorized search is only {speedup:.1f}x faster than "
            f"scalar (floor {MIN_BATCH_SPEEDUP:.0f}x)"
        )

    candidate_ratio = (
        cold_candidates / warm_candidates if warm_candidates else float("inf")
    )
    if candidate_ratio >= MIN_WARM_CANDIDATE_RATIO:
        print(
            f"OK: warm-started sweep evaluates {candidate_ratio:.2f}x fewer "
            f"candidates than cold ({cold_candidates} -> {warm_candidates}, "
            f"floor {MIN_WARM_CANDIDATE_RATIO:.1f}x)"
        )
    else:
        ok = False
        print(
            f"REGRESSION: warm-started sweep evaluates only "
            f"{candidate_ratio:.2f}x fewer candidates than cold "
            f"({cold_candidates} -> {warm_candidates}, "
            f"floor {MIN_WARM_CANDIDATE_RATIO:.1f}x)"
        )

    warm_speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")
    if warm_speedup >= MIN_WARM_SPEEDUP:
        print(
            f"OK: warm-started sweep is {warm_speedup:.2f}x faster than cold "
            f"({cold_wall:.3f}s -> {warm_wall:.3f}s, floor {MIN_WARM_SPEEDUP:.1f}x)"
        )
    else:
        ok = False
        print(
            f"REGRESSION: warm-started sweep is only {warm_speedup:.2f}x faster "
            f"than cold ({cold_wall:.3f}s -> {warm_wall:.3f}s, "
            f"floor {MIN_WARM_SPEEDUP:.1f}x)"
        )

    if not ok:
        print(
            "the search hot path regressed; investigate before merging, or "
            "refresh the baselines with --update if the slowdown is intentional",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main_guard())
