#!/usr/bin/env python
"""Tier-2 wall-clock guard for the optimal-configuration search hot path.

Times ``repro-perf search`` on the gpt3-1t preset (the paper's headline
workload) and fails when the best-of-N wall-clock regresses more than the
tolerance over the committed baseline in
``benchmarks/baselines/search_gpt3_1t.json``.  The guard is deliberately
end-to-end — it exercises candidate enumeration, the cost-plan build/reduce,
branch-and-bound pruning and the CLI — so a slowdown anywhere on the search
path trips it.

Usage::

    PYTHONPATH=src python scripts/perf_guard.py            # check
    PYTHONPATH=src python scripts/perf_guard.py --update   # refresh baseline

The baseline is portable across machines: alongside the wall-clock it
records a *calibration* time — a fixed pure-Python workload measured on the
same machine — and the budget scales by the ratio of the checking machine's
calibration to the baseline's, so a slower CI runner gets a proportionally
larger budget (and a faster one a tighter budget) instead of failing or
passing on hardware speed alone.  Residual variance is absorbed by the
tolerance (default 25%, overridable with ``--tolerance`` or the
``PERF_GUARD_TOLERANCE`` environment variable) and by taking the *best* of
several repeats, which is far less noisy than the mean under CI load.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from contextlib import redirect_stdout
from io import StringIO
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "search_gpt3_1t.json"

#: The guarded command: the gpt3-1t preset across all three strategies at a
#: figure-scale GPU count — a few seconds of work, so the measurement
#: dominates interpreter start-up noise.
SEARCH_ARGV = [
    "search", "--model", "gpt3-1t", "--gpus", "4096", "--strategy", "all", "--top-k", "5",
]


def calibrate(repeats: int = 3) -> float:
    """Machine-speed proxy: best-of-N of a fixed pure-Python workload.

    The guarded search is dominated by pure-Python enumeration and float
    arithmetic, so a plain interpreter-bound loop tracks its speed across
    machines far better than any hardware spec would.
    """
    def once() -> float:
        acc = 0.0
        for i in range(1, 400_001):
            acc += (i % 7) * 0.5 + i / 3.0
        return acc

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        once()
        best = min(best, time.perf_counter() - start)
    return best


def time_search(repeats: int) -> float:
    """Best-of-``repeats`` wall-clock of the guarded search (seconds)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.cli import main
    from repro.core.execution import clear_caches

    best = float("inf")
    for _ in range(repeats):
        clear_caches()  # every repeat measures the cold-cache hot path
        sink = StringIO()
        start = time.perf_counter()
        with redirect_stdout(sink):
            rc = main(SEARCH_ARGV)
        elapsed = time.perf_counter() - start
        if rc != 0:
            raise SystemExit(f"guarded search failed with exit code {rc}")
        best = min(best, elapsed)
    return best


def main_guard(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_GUARD_TOLERANCE", "0.25")),
        help="allowed fractional regression over the baseline (default 0.25)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline from this run"
    )
    args = parser.parse_args(argv)

    measured = time_search(args.repeats)
    calibration = calibrate()

    if args.update or not args.baseline.exists():
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(
                {
                    "command": "repro-perf " + " ".join(SEARCH_ARGV),
                    "wall_seconds": round(measured, 4),
                    "calibration_seconds": round(calibration, 5),
                    "repeats": args.repeats,
                    "platform": platform.platform(),
                    "python": platform.python_version(),
                },
                indent=2,
            )
            + "\n"
        )
        print(
            f"baseline written: {measured:.3f}s "
            f"(calibration {calibration:.4f}s) -> {args.baseline}"
        )
        return 0

    baseline = json.loads(args.baseline.read_text())
    # Normalize for machine speed: a runner whose calibration loop is k×
    # slower than the baseline machine's gets a k× larger budget.
    speed_ratio = (
        calibration / baseline["calibration_seconds"]
        if baseline.get("calibration_seconds")
        else 1.0
    )
    budget = baseline["wall_seconds"] * speed_ratio * (1.0 + args.tolerance)
    verdict = "OK" if measured <= budget else "REGRESSION"
    print(
        f"{verdict}: search took {measured:.3f}s "
        f"(baseline {baseline['wall_seconds']:.3f}s, machine-speed ratio "
        f"{speed_ratio:.2f}x, budget {budget:.3f}s, "
        f"tolerance {100 * args.tolerance:.0f}%)"
    )
    if measured > budget:
        print(
            "the search hot path regressed; investigate before merging, or "
            "refresh the baseline with --update if the slowdown is intentional",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main_guard())
