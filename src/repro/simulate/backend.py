"""The message-level simulation backend (``backend="sim"``).

This module turns the discrete simulators of :mod:`repro.simulate` into a
complete second evaluation backend for
:func:`repro.core.execution.evaluate_config`: a :class:`SimPricer` that
prices every cost family by *executing* the underlying mechanism instead of
evaluating the paper's closed form —

* **collectives** are replayed hop by hop over an explicit
  :class:`~repro.simulate.cluster.ClusterTopology` built from the system's
  NVSwitch-domain size and NIC count (:mod:`repro.simulate.ring`), so
  intra-/inter-node hops and NIC multiplexing are simulated, not priced;
* **pipeline bubbles** come from an event-driven replay of the
  configuration's schedule (:mod:`repro.simulate.pipeline_sim`) — warm-up,
  steady state and cool-down are executed microbatch by microbatch and the
  bubble is the measured makespan overhead, not ``(np - 1)(tf + tb)``;
* **point-to-point transfers** cross a single simulated link.

Compute and HBM times are roofline quantities with no message-level
structure; they are shared with the analytic backend (which is what makes
the per-term differential comparison meaningful).

The pricer's collective and pipeline replays are memoized in
``lru_cache``-backed functions registered in the execution module's cache
registry, so ``clear_caches()`` and ``cache_stats()`` cover the simulation
backend exactly like the analytic one, and switching backends mid-process
can never serve a stale entry: the analytic model's caches hold only
backend-independent quantities (workloads, roofline stage times), while
every simulated time lives in the separately keyed caches below.

Importing this module registers the backend under the name ``"sim"``
(:func:`repro.core.backends.get_backend` imports it lazily on first use).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.backends import CostPricer, register_backend
from repro.core.collectives import GroupPlacement
from repro.core.execution import register_cache
from repro.core.schedules.base import PipelineSchedule
from repro.core.system import NetworkSpec, SystemSpec
from repro.simulate.cluster import ClusterTopology
from repro.simulate.pipeline_sim import simulate_schedule
from repro.simulate.ring import simulate_collective

#: Cache bounds: one entry per distinct (collective, volume, placement) /
#: (schedule, np, m, tf, tb, v) tuple seen by a search — a few hundred in a
#: full sweep; the bound caps growth in long-lived worker processes.
SIM_COLLECTIVE_CACHE_SIZE = 16384
SIM_PIPELINE_CACHE_SIZE = 4096


def _largest_divisor_at_most(n: int, limit: int) -> int:
    """Largest divisor of ``n`` that is <= ``limit`` (>= 1)."""
    best = 1
    for d in range(1, n + 1):
        if d > limit:
            break
        if n % d == 0:
            best = d
    return best


@register_cache("sim_collective")
@lru_cache(maxsize=SIM_COLLECTIVE_CACHE_SIZE)
def _simulated_collective_time(
    collective: str,
    volume_bytes: float,
    group_size: int,
    gpus_per_nvs_domain: int,
    network: NetworkSpec,
) -> float:
    """Replay one collective over the placement's implied topology.

    The topology holds exactly the nodes the group occupies (groups are
    placed from rank 0, ``g`` consecutive GPUs per NVSwitch domain — the
    same placement the analytic :class:`GroupPlacement` abstracts), so the
    replay sees the same intra-/inter-node structure the closed form prices.
    """
    if group_size == 1 or volume_bytes <= 0:
        return 0.0
    g = _largest_divisor_at_most(
        group_size, max(1, min(gpus_per_nvs_domain, network.nvs_domain_size))
    )
    topology = ClusterTopology(
        num_gpus=(group_size // g) * network.nvs_domain_size,
        nvs_domain_size=network.nvs_domain_size,
        nics_per_node=network.nics_per_node,
    )
    return simulate_collective(
        collective,
        volume_bytes,
        topology,
        network,
        group_size=group_size,
        gpus_per_nvs_domain=g,
    ).simulated_time


@register_cache("sim_pipeline")
@lru_cache(maxsize=SIM_PIPELINE_CACHE_SIZE)
def _simulated_bubble_time(
    schedule_name: str,
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
    virtual_stages: int,
) -> float:
    """Event-driven bubble: replayed makespan minus the busy time.

    Falls back to the schedule's closed-form bubble only on the documented
    no-executable-order signals — :class:`~repro.core.schedules.NoExecutableOrder`
    (e.g. interleaving requires ``m % np == 0``, exactly as Megatron-LM
    does) or ``NotImplementedError``.  Any other exception is a real bug in
    an order builder and propagates, so the oracle can never silently
    degrade into comparing the closed form against itself.
    """
    from repro.core.schedules import NoExecutableOrder, get_schedule

    try:
        result = simulate_schedule(
            schedule_name,
            num_stages,
            num_microbatches,
            forward_time,
            backward_time,
            virtual_stages=virtual_stages,
        )
    except (NotImplementedError, NoExecutableOrder):
        return get_schedule(schedule_name).bubble_time(
            num_stages, num_microbatches, forward_time, backward_time, virtual_stages
        )
    return result.overhead_time


class SimPricer(CostPricer):
    """Cost pricer backed by the message-level simulators."""

    name = "sim"

    def __init__(self, system: SystemSpec):
        super().__init__(system)
        self._network = system.network

    def collective(
        self, collective: str, volume_bytes: float, placement: GroupPlacement
    ) -> float:
        return _simulated_collective_time(
            collective,
            volume_bytes,
            placement.size,
            placement.gpus_per_nvs_domain,
            self._network,
        )

    def p2p(self, volume_bytes: float, placement: GroupPlacement) -> float:
        if volume_bytes <= 0:
            return 0.0
        # Adjacent pipeline stages share a domain when the PP group keeps
        # more than one GPU per domain; otherwise the hop crosses a NIC.
        g = 2 if placement.gpus_per_nvs_domain > 1 else 1
        return _simulated_collective_time("p2p", volume_bytes, 2, g, self._network)

    def bubble(
        self,
        schedule: PipelineSchedule,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int,
    ) -> float:
        return _simulated_bubble_time(
            schedule.name,
            num_stages,
            num_microbatches,
            forward_time,
            backward_time,
            virtual_stages,
        )


register_backend(SimPricer.name, SimPricer)
