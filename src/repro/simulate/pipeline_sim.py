"""Event-driven replay of the registered pipeline schedules.

The analytic model charges a closed-form bubble per schedule — e.g.
``(np - 1) * (tf + tb)`` for 1F1B and GPipe, divided by the virtual-stage
degree ``v`` for interleaved 1F1B.  This simulator instead *executes* the
schedule: every GPU runs its schedule-supplied static work order
(:meth:`repro.core.schedules.PipelineSchedule.execution_order`) — warm-up
forwards, steady state, cool-down backwards — stage by stage, chunk by
chunk and microbatch by microbatch, delaying each work item until its
cross-stage dependencies have completed.  It reports the makespan, the
per-stage idle time and the peak number of in-flight microbatches.

The simulator is the *oracle* side of the differential-testing harness
(:mod:`repro.analysis.differential`): the analytic bubble formulas are
pinned against it for every registered schedule, and the simulation
backend (:mod:`repro.simulate.backend`) uses it to replace the closed-form
bubble with an executed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class PipelineEvent:
    """One executed work item in the simulated schedule."""

    stage: int
    microbatch: int
    kind: str  # "forward" or "backward"
    start: float
    end: float
    #: Virtual-stage chunk the item ran in (0 without interleaving).
    chunk: int = 0


@dataclass
class PipelineSimulationResult:
    """Outcome of simulating one iteration of a pipeline schedule."""

    num_stages: int
    num_microbatches: int
    forward_time: float
    backward_time: float
    p2p_time: float
    makespan: float
    events: List[PipelineEvent] = field(default_factory=list)
    #: Idle time per stage (makespan minus busy time).
    idle_per_stage: Dict[int, float] = field(default_factory=dict)
    #: Peak number of microbatches whose forward has run but whose backward
    #: has not yet completed, per stage (activation-retention bound).
    peak_in_flight: Dict[int, int] = field(default_factory=dict)
    #: Schedule that was replayed and its virtual-stage degree.
    schedule: str = "1f1b"
    virtual_stages: int = 1

    @property
    def bubble_time(self) -> float:
        """Idle time of the first stage (the paper's bubble definition)."""
        return self.idle_per_stage.get(0, 0.0)

    @property
    def max_in_flight(self) -> int:
        """Maximum in-flight microbatches over all stages."""
        return max(self.peak_in_flight.values(), default=0)

    @property
    def total_idle_time(self) -> float:
        """Idle time summed over all stages (schedule-efficiency metric)."""
        return sum(self.idle_per_stage.values())

    @property
    def overhead_time(self) -> float:
        """Makespan in excess of one stage's busy time ``m * (tf + tb)``.

        For a perfectly pipelined schedule with zero fill/drain ramp this is
        0; for 1F1B/GPipe on uniform stage times it equals the analytic
        ``(np - 1) * (tf + tb)`` bubble.  The simulation backend reports it
        as the schedule's simulated bubble.
        """
        busy = self.num_microbatches * (self.forward_time + self.backward_time)
        return max(0.0, self.makespan - busy)


def simulate_schedule(
    schedule: str,
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
    *,
    p2p_time: float = 0.0,
    virtual_stages: int = 1,
) -> PipelineSimulationResult:
    """Replay one iteration of a registered schedule event by event.

    ``forward_time``/``backward_time`` are the *per-GPU* per-microbatch
    stage times (summed over the GPU's virtual stages); with interleaving
    each of the ``v`` chunks therefore costs ``tf / v`` (``tb / v``).
    ``p2p_time`` is charged on every chunk-boundary crossing between two
    different GPUs, in both directions.

    Dependencies are enforced through completion times: chunk ``c`` of
    microbatch ``mb`` cannot start its forward before chunk ``c - 1``
    finished it (plus the transfer), nor its backward before chunk
    ``c + 1`` finished the backward.  Each GPU executes its
    schedule-supplied order head-first; a deadlock (the order demanding an
    item whose dependency can never complete) raises ``RuntimeError``.
    """
    from repro.core.schedules import get_schedule

    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    if forward_time < 0 or backward_time < 0 or p2p_time < 0:
        raise ValueError("times must be non-negative")
    if virtual_stages < 1:
        raise ValueError("virtual_stages must be >= 1")

    sched = get_schedule(schedule)
    v = virtual_stages
    if v > 1 and not sched.supports_virtual_stages:
        raise ValueError(
            f"schedule {sched.name!r} does not support virtual stages (got v={v})"
        )

    orders = {
        stage: sched.execution_order(stage, num_stages, num_microbatches, v)
        for stage in range(num_stages)
    }
    tf_chunk = forward_time / v
    tb_chunk = backward_time / v
    last_global = num_stages * v - 1

    # Completion times of each (global stage, microbatch) forward/backward,
    # where the global stage of (gpu, chunk) is ``chunk * np + gpu`` — the
    # position of the chunk along the model depth.
    fwd_done: Dict[Tuple[int, int], float] = {}
    bwd_done: Dict[Tuple[int, int], float] = {}
    events: List[PipelineEvent] = []

    cursors = {stage: 0 for stage in range(num_stages)}
    stage_free_at = {stage: 0.0 for stage in range(num_stages)}

    remaining = sum(len(order) for order in orders.values())
    progressed = True
    while remaining > 0:
        if not progressed:
            raise RuntimeError(
                f"schedule {sched.name!r} deadlocked "
                f"(np={num_stages}, m={num_microbatches}, v={v})"
            )
        progressed = False
        for stage in range(num_stages):
            while cursors[stage] < len(orders[stage]):
                kind, chunk, mb = orders[stage][cursors[stage]]
                s = chunk * num_stages + stage
                # A transfer is only paid when the adjacent chunk lives on a
                # different GPU (always, unless the pipeline is trivial).
                hop = p2p_time if num_stages > 1 else 0.0
                if kind == "forward":
                    if s > 0 and (s - 1, mb) not in fwd_done:
                        break
                    ready = 0.0 if s == 0 else fwd_done[(s - 1, mb)] + hop
                    start = max(stage_free_at[stage], ready)
                    end = start + tf_chunk
                    fwd_done[(s, mb)] = end
                else:
                    if (s, mb) not in fwd_done:
                        break
                    if s < last_global and (s + 1, mb) not in bwd_done:
                        break
                    ready = (
                        fwd_done[(s, mb)]
                        if s == last_global
                        else max(fwd_done[(s, mb)], bwd_done[(s + 1, mb)] + hop)
                    )
                    start = max(stage_free_at[stage], ready)
                    end = start + tb_chunk
                    bwd_done[(s, mb)] = end
                events.append(PipelineEvent(stage, mb, kind, start, end, chunk))
                stage_free_at[stage] = end
                cursors[stage] += 1
                remaining -= 1
                progressed = True

    makespan = max(stage_free_at.values())

    idle_per_stage: Dict[int, float] = {}
    peak_in_flight: Dict[int, int] = {}
    for stage in range(num_stages):
        busy = sum(ev.end - ev.start for ev in events if ev.stage == stage)
        idle_per_stage[stage] = makespan - busy
        # In-flight accounting: +1 at each forward end, -1 at each backward
        # end.  A microbatch counts once per chunk whose backward has not
        # completed — matching the schedule-aware retention bound.
        marks: List[Tuple[float, int]] = []
        for ev in events:
            if ev.stage != stage:
                continue
            marks.append((ev.end, 1 if ev.kind == "forward" else -1))
        marks.sort()
        level = peak = 0
        for _, delta in marks:
            level += delta
            peak = max(peak, level)
        peak_in_flight[stage] = peak

    return PipelineSimulationResult(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        forward_time=forward_time,
        backward_time=backward_time,
        p2p_time=p2p_time,
        makespan=makespan,
        events=events,
        idle_per_stage=idle_per_stage,
        peak_in_flight=peak_in_flight,
        schedule=sched.name,
        virtual_stages=v,
    )


def simulate_1f1b(
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
    *,
    p2p_time: float = 0.0,
) -> PipelineSimulationResult:
    """Simulate one iteration of the non-interleaved 1F1B schedule.

    Kept as a named entry point (the schedule the paper models); equivalent
    to ``simulate_schedule("1f1b", ...)``.
    """
    return simulate_schedule(
        "1f1b",
        num_stages,
        num_microbatches,
        forward_time,
        backward_time,
        p2p_time=p2p_time,
    )


def analytic_1f1b_makespan(
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
) -> float:
    """Closed-form 1F1B makespan: ``(m + np - 1) * (tf + tb)``."""
    return (num_microbatches + num_stages - 1) * (forward_time + backward_time)
