"""Event-driven replay of the 1F1B (one-forward-one-backward) pipeline schedule.

The analytic model charges ``(np - 1) * (tf + tb)`` of bubble time per
iteration.  This simulator executes the actual 1F1B schedule — warm-up
forwards, steady-state 1F1B interleaving, cool-down backwards — stage by
stage and microbatch by microbatch, and reports the makespan, the per-stage
idle time and the peak number of in-flight microbatches.  It is used by the
tests to verify the analytic bubble formula and the ``min(m, np)``
activation-retention bound, and by the ablation benchmarks to quantify what
an interleaved schedule could recover (a paper "limitations" item).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class PipelineEvent:
    """One executed work item in the simulated schedule."""

    stage: int
    microbatch: int
    kind: str  # "forward" or "backward"
    start: float
    end: float


@dataclass
class PipelineSimulationResult:
    """Outcome of simulating one iteration of the 1F1B schedule."""

    num_stages: int
    num_microbatches: int
    forward_time: float
    backward_time: float
    p2p_time: float
    makespan: float
    events: List[PipelineEvent] = field(default_factory=list)
    #: Idle time per stage (makespan minus busy time).
    idle_per_stage: Dict[int, float] = field(default_factory=dict)
    #: Peak number of microbatches whose forward has run but whose backward
    #: has not yet completed, per stage (activation-retention bound).
    peak_in_flight: Dict[int, int] = field(default_factory=dict)

    @property
    def bubble_time(self) -> float:
        """Idle time of the first stage (the paper's bubble definition)."""
        return self.idle_per_stage.get(0, 0.0)

    @property
    def max_in_flight(self) -> int:
        """Maximum in-flight microbatches over all stages."""
        return max(self.peak_in_flight.values(), default=0)


def simulate_1f1b(
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
    *,
    p2p_time: float = 0.0,
) -> PipelineSimulationResult:
    """Simulate one iteration of the non-interleaved 1F1B schedule.

    Every stage processes microbatches in the canonical 1F1B order: stage
    ``s`` first runs ``min(num_stages - s, num_microbatches)`` warm-up
    forwards, then alternates backward/forward until all microbatches are
    done, then drains the remaining backwards.  Dependencies are enforced
    through the completion times of the upstream (forward) and downstream
    (backward) stages, with an optional point-to-point transfer time between
    stages.
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    if forward_time < 0 or backward_time < 0 or p2p_time < 0:
        raise ValueError("times must be non-negative")

    # Completion times of each (stage, microbatch) forward / backward.
    fwd_done: Dict[Tuple[int, int], float] = {}
    bwd_done: Dict[Tuple[int, int], float] = {}
    events: List[PipelineEvent] = []

    def build_order(stage: int) -> List[Tuple[str, int]]:
        """1F1B execution order of one stage: warm-up, steady state, cool-down."""
        warmup = min(num_stages - stage - 1, num_microbatches)
        order: List[Tuple[str, int]] = [("forward", mb) for mb in range(warmup)]
        next_fwd = warmup
        next_bwd = 0
        # Steady state: alternate one-forward-one-backward.
        while next_fwd < num_microbatches or next_bwd < num_microbatches:
            if next_fwd < num_microbatches:
                order.append(("forward", next_fwd))
                next_fwd += 1
            if next_bwd < num_microbatches:
                order.append(("backward", next_bwd))
                next_bwd += 1
        return order

    orders = {stage: build_order(stage) for stage in range(num_stages)}
    cursors = {stage: 0 for stage in range(num_stages)}
    stage_free_at = {stage: 0.0 for stage in range(num_stages)}

    remaining = sum(len(order) for order in orders.values())
    progressed = True
    while remaining > 0:
        if not progressed:
            raise RuntimeError("1F1B schedule deadlocked (internal error)")
        progressed = False
        for stage in range(num_stages):
            while cursors[stage] < len(orders[stage]):
                kind, mb = orders[stage][cursors[stage]]
                if kind == "forward":
                    if stage > 0 and (stage - 1, mb) not in fwd_done:
                        break
                    ready = 0.0 if stage == 0 else fwd_done[(stage - 1, mb)] + p2p_time
                    start = max(stage_free_at[stage], ready)
                    end = start + forward_time
                    fwd_done[(stage, mb)] = end
                else:
                    if (stage, mb) not in fwd_done:
                        break
                    if stage < num_stages - 1 and (stage + 1, mb) not in bwd_done:
                        break
                    ready = (
                        fwd_done[(stage, mb)]
                        if stage == num_stages - 1
                        else max(fwd_done[(stage, mb)], bwd_done[(stage + 1, mb)] + p2p_time)
                    )
                    start = max(stage_free_at[stage], ready)
                    end = start + backward_time
                    bwd_done[(stage, mb)] = end
                events.append(PipelineEvent(stage, mb, kind, start, end))
                stage_free_at[stage] = end
                cursors[stage] += 1
                remaining -= 1
                progressed = True

    makespan = max(stage_free_at.values())

    idle_per_stage: Dict[int, float] = {}
    peak_in_flight: Dict[int, int] = {}
    for stage in range(num_stages):
        busy = sum(ev.end - ev.start for ev in events if ev.stage == stage)
        idle_per_stage[stage] = makespan - busy
        # In-flight accounting: +1 at each forward end, -1 at each backward end.
        marks: List[Tuple[float, int]] = []
        for ev in events:
            if ev.stage != stage:
                continue
            marks.append((ev.end, 1 if ev.kind == "forward" else -1))
        marks.sort()
        level = peak = 0
        for _, delta in marks:
            level += delta
            peak = max(peak, level)
        peak_in_flight[stage] = peak

    return PipelineSimulationResult(
        num_stages=num_stages,
        num_microbatches=num_microbatches,
        forward_time=forward_time,
        backward_time=backward_time,
        p2p_time=p2p_time,
        makespan=makespan,
        events=events,
        idle_per_stage=idle_per_stage,
        peak_in_flight=peak_in_flight,
    )


def analytic_1f1b_makespan(
    num_stages: int,
    num_microbatches: int,
    forward_time: float,
    backward_time: float,
) -> float:
    """Closed-form 1F1B makespan: ``(m + np - 1) * (tf + tb)``."""
    return (num_microbatches + num_stages - 1) * (forward_time + backward_time)
