"""Explicit cluster topology used by the message-level simulators.

A cluster is a collection of nodes; each node hosts ``nvs_domain_size`` GPUs
connected all-to-all through the fast domain (NVSwitch or NVLink) and
``nics_per_node`` NICs attached to the slow domain (InfiniBand/Slingshot).
GPUs are identified by a global rank; the topology answers two questions the
simulators need:

* do two ranks share a fast domain (node)?
* how many NICs serve the ranks of a given node that participate in a
  collective (this bounds the multi-ring inter-node bandwidth)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.system import NetworkSpec, SystemSpec


@dataclass(frozen=True)
class GpuPlacementInfo:
    """Placement of one GPU rank within the cluster."""

    rank: int
    node: int
    local_index: int

    def same_node(self, other: "GpuPlacementInfo") -> bool:
        """True when both GPUs share an NVSwitch domain."""
        return self.node == other.node


@dataclass(frozen=True)
class ClusterTopology:
    """A cluster of ``num_gpus`` GPUs grouped into NVSwitch domains."""

    num_gpus: int
    nvs_domain_size: int
    nics_per_node: int

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("num_gpus must be >= 1")
        if self.nvs_domain_size < 1:
            raise ValueError("nvs_domain_size must be >= 1")
        if self.nics_per_node < 1:
            raise ValueError("nics_per_node must be >= 1")

    # ------------------------------------------------------------------
    @classmethod
    def from_system(cls, system: SystemSpec, num_gpus: int) -> "ClusterTopology":
        """Build the topology implied by a :class:`SystemSpec`."""
        return cls(
            num_gpus=num_gpus,
            nvs_domain_size=system.network.nvs_domain_size,
            nics_per_node=system.network.nics_per_node,
        )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of (possibly partially filled) nodes in the cluster."""
        return -(-self.num_gpus // self.nvs_domain_size)

    def placement(self, rank: int) -> GpuPlacementInfo:
        """Node and local index of a global rank."""
        if not (0 <= rank < self.num_gpus):
            raise ValueError(f"rank {rank} out of range [0, {self.num_gpus})")
        return GpuPlacementInfo(
            rank=rank,
            node=rank // self.nvs_domain_size,
            local_index=rank % self.nvs_domain_size,
        )

    def same_fast_domain(self, rank_a: int, rank_b: int) -> bool:
        """True when the two ranks can communicate over the fast network."""
        return self.placement(rank_a).node == self.placement(rank_b).node

    def nodes_of(self, ranks: Sequence[int]) -> Dict[int, List[int]]:
        """Group the given ranks by node."""
        groups: Dict[int, List[int]] = {}
        for rank in ranks:
            groups.setdefault(self.placement(rank).node, []).append(rank)
        return groups

    def ring_order(self, ranks: Sequence[int]) -> List[int]:
        """Order ranks so that the ring crosses node boundaries as rarely as possible.

        NCCL builds rings that traverse all GPUs of a node before hopping to
        the next node; ordering by (node, local index) reproduces that.
        """
        return sorted(ranks, key=lambda r: (self.placement(r).node, self.placement(r).local_index))

    def link_parameters(
        self, rank_a: int, rank_b: int, network: NetworkSpec
    ) -> Tuple[float, float]:
        """(latency, bandwidth) of the link used between two ranks."""
        if self.same_fast_domain(rank_a, rank_b):
            return network.nvs_latency, network.effective_nvs_bandwidth
        return network.ib_latency, network.effective_ib_bandwidth

    def group_ranks(
        self, group_size: int, gpus_per_nvs_domain: int, *, start_rank: int = 0
    ) -> List[int]:
        """Ranks of a parallel group with the given NVS-domain packing.

        The group occupies ``gpus_per_nvs_domain`` consecutive GPUs in each
        node, spread across ``group_size / gpus_per_nvs_domain`` nodes — the
        same placement the analytic model assumes for a
        :class:`repro.core.collectives.GroupPlacement`.
        """
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        g = min(gpus_per_nvs_domain, group_size, self.nvs_domain_size)
        if group_size % g != 0:
            raise ValueError("gpus_per_nvs_domain must divide group_size")
        start = self.placement(start_rank)
        if start.local_index + g > self.nvs_domain_size:
            raise ValueError("group does not fit in the starting NVS domain")
        nodes_needed = group_size // g
        if start.node + nodes_needed > self.num_nodes:
            raise ValueError("cluster too small for the requested group placement")
        ranks: List[int] = []
        for node_offset in range(nodes_needed):
            base = (start.node + node_offset) * self.nvs_domain_size + start.local_index
            ranks.extend(base + j for j in range(g))
        return ranks
