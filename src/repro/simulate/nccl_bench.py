"""Synthetic "nccl-tests" harness (substitute for the Perlmutter measurements).

Fig. A1 of the paper compares the analytic AllGather time against empirical
NCCL measurements on 32 A100 GPUs for two fast-domain sizes (2 and 4 GPUs
per node).  Real hardware is not available to this reproduction, so this
module produces *empirical-like* measurements by running the message-level
ring simulator and layering the effects a real measurement exhibits on top:

* a per-call protocol/launch overhead (tens of microseconds);
* a small-message latency floor that the analytic model deliberately does
  not capture (the paper notes "some non-linear latency effects at small
  volumes and [we] do not model these");
* multiplicative measurement noise with a configurable, seeded RNG.

The resulting series plays the role of the red/blue "Empirical" curves in
Fig. A1; the analytic curves come straight from
:mod:`repro.core.collectives`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.collectives import GroupPlacement, collective_time
from repro.core.system import SystemSpec
from repro.simulate.cluster import ClusterTopology
from repro.simulate.ring import simulate_collective

#: Default per-call launch/protocol overhead of a real collective (seconds).
DEFAULT_CALL_OVERHEAD = 2.0e-5
#: Default latency floor observed for very small messages (seconds).
DEFAULT_LATENCY_FLOOR = 5.0e-5
#: Default relative measurement noise (standard deviation).
DEFAULT_NOISE = 0.05


@dataclass(frozen=True)
class NcclBenchResult:
    """One row of the synthetic nccl-tests sweep."""

    collective: str
    volume_bytes: float
    group_size: int
    gpus_per_nvs_domain: int
    #: Synthetic "measured" time (ring simulation + overheads + noise).
    measured_time: float
    #: Analytic prediction of the closed-form model.
    predicted_time: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / measured."""
        if self.measured_time <= 0:
            return 0.0
        return abs(self.measured_time - self.predicted_time) / self.measured_time

    @property
    def measured_bandwidth(self) -> float:
        """Achieved bytes/s of the synthetic measurement."""
        if self.measured_time <= 0:
            return float("inf")
        return self.volume_bytes / self.measured_time


def run_nccl_style_benchmark(
    system: SystemSpec,
    *,
    collective: str = "all_gather",
    num_gpus: int = 32,
    gpus_per_nvs_domain: int | None = None,
    volumes_bytes: Sequence[float] | None = None,
    call_overhead: float = DEFAULT_CALL_OVERHEAD,
    latency_floor: float = DEFAULT_LATENCY_FLOOR,
    noise: float = DEFAULT_NOISE,
    seed: int = 0,
) -> List[NcclBenchResult]:
    """Run the synthetic nccl-tests sweep on ``system``.

    ``volumes_bytes`` defaults to the log-spaced range of Fig. A1 (roughly
    1 MB to 10 GB of AllGather volume).
    """
    if volumes_bytes is None:
        volumes_bytes = list(np.logspace(6, 10, 13))
    g = gpus_per_nvs_domain or system.network.nvs_domain_size
    topology = ClusterTopology.from_system(system, max(num_gpus, g))
    rng = np.random.default_rng(seed)

    results: List[NcclBenchResult] = []
    for volume in volumes_bytes:
        sim = simulate_collective(
            collective,
            float(volume),
            topology,
            system.network,
            group_size=num_gpus,
            gpus_per_nvs_domain=g,
        )
        measured = sim.simulated_time + call_overhead
        measured = max(measured, latency_floor)
        if noise > 0:
            measured *= float(1.0 + noise * rng.standard_normal())
            measured = max(measured, latency_floor)
        predicted = collective_time(
            collective,
            float(volume),
            GroupPlacement(size=num_gpus, gpus_per_nvs_domain=g),
            system.network,
        )
        results.append(
            NcclBenchResult(
                collective=collective,
                volume_bytes=float(volume),
                group_size=num_gpus,
                gpus_per_nvs_domain=g,
                measured_time=measured,
                predicted_time=predicted,
            )
        )
    return results


def median_relative_error(results: Sequence[NcclBenchResult]) -> float:
    """Median |measured - predicted| / measured over a sweep."""
    if not results:
        return 0.0
    return float(np.median([r.relative_error for r in results]))
