"""Discrete simulation substrates used to cross-check the analytic model.

The paper validates its analytic collective-time formulae against NCCL
measurements on Perlmutter (Fig. A1) and its iteration-time estimates
against Megatron-LM runs.  Neither real GPUs nor a real NCCL installation is
available to this reproduction, so this subpackage provides message-level
simulators of the same mechanisms:

* :mod:`repro.simulate.cluster` — an explicit cluster topology (nodes,
  NVSwitch domains, NICs, GPU placement);
* :mod:`repro.simulate.ring` — a step-by-step simulation of ring
  AllGather / ReduceScatter / AllReduce / Broadcast over that topology;
* :mod:`repro.simulate.pipeline_sim` — an event-driven replay of every
  registered pipeline schedule (1F1B, GPipe, interleaved);
* :mod:`repro.simulate.backend` — the ``"sim"`` evaluation backend: a
  :class:`~repro.core.backends.CostPricer` that prices collectives and
  bubbles by running these simulators (imported lazily by
  :func:`repro.core.backends.get_backend`, so simply importing this
  package stays cheap);
* :mod:`repro.simulate.nccl_bench` — a synthetic "nccl-tests" harness that
  adds realistic measurement noise and protocol overheads on top of the ring
  simulator, playing the role of the empirical data in Fig. A1.
"""

from repro.simulate.cluster import ClusterTopology, GpuPlacementInfo
from repro.simulate.ring import RingSimulationResult, simulate_collective
from repro.simulate.pipeline_sim import (
    PipelineSimulationResult,
    simulate_1f1b,
    simulate_schedule,
)
from repro.simulate.nccl_bench import NcclBenchResult, run_nccl_style_benchmark

__all__ = [
    "ClusterTopology",
    "GpuPlacementInfo",
    "NcclBenchResult",
    "PipelineSimulationResult",
    "RingSimulationResult",
    "run_nccl_style_benchmark",
    "simulate_1f1b",
    "simulate_collective",
    "simulate_schedule",
]
