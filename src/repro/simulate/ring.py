"""Message-level simulation of ring collectives over the dual network.

The analytic collective model (:mod:`repro.core.collectives`) reduces a ring
collective to one latency term plus one bandwidth term.  This module instead
*simulates* the ring step by step:

* the participating ranks are ordered node-by-node (as NCCL does);
* the buffer is split into ``n`` chunks; in every one of the ``n - 1`` steps
  each rank forwards one chunk to its ring neighbour;
* the duration of a step is set by the slowest link active in that step
  (ring steps are bulk-synchronous), where intra-node hops use the fast
  domain and the node-boundary hops share the node's NICs across the
  ``r`` rings NCCL opens (one per NIC);
* AllGather/ReduceScatter perform one pass over the ring, AllReduce two,
  Broadcast/Reduce pipeline the full buffer around the ring, and AllToAll
  (MoE expert dispatch/combine) runs the pairwise-exchange algorithm —
  ``n - 1`` rounds in which rank ``i`` sends ``V / n`` to rank
  ``(i + t) mod n``.

The result exposes both the simulated time and the analytic prediction for
the identical placement, which is what the Fig. A1 style validation plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.collectives import (
    ALL_GATHER,
    ALL_REDUCE,
    ALL_TO_ALL,
    BROADCAST,
    POINT_TO_POINT,
    REDUCE,
    REDUCE_SCATTER,
    GroupPlacement,
    collective_time,
)
from repro.core.system import NetworkSpec
from repro.simulate.cluster import ClusterTopology


@dataclass(frozen=True)
class RingSimulationResult:
    """Outcome of one simulated collective."""

    collective: str
    volume_bytes: float
    group_size: int
    gpus_per_nvs_domain: int
    #: Time obtained by stepping through the ring (seconds).
    simulated_time: float
    #: Time predicted by the closed-form model of :mod:`repro.core.collectives`.
    analytic_time: float
    #: Number of ring steps executed.
    steps: int
    #: Hop census of the ring path (open chain, excluding the wrap-around
    #: link): ``slow_hops`` crossings of a node boundary — the §III-A
    #: formula's ``n/g - 1`` term — and ``fast_hops`` intra-node links.
    slow_hops: int = 0
    fast_hops: int = 0

    @property
    def relative_error(self) -> float:
        """|simulated - analytic| / simulated (0 when both are 0)."""
        if self.simulated_time <= 0:
            return 0.0
        return abs(self.simulated_time - self.analytic_time) / self.simulated_time

    @property
    def algorithm_bandwidth(self) -> float:
        """Achieved bytes/s (the metric reported by nccl-tests)."""
        if self.simulated_time <= 0:
            return float("inf")
        return self.volume_bytes / self.simulated_time


def _step_time(
    ranks: Sequence[int],
    chunk_bytes: float,
    topology: ClusterTopology,
    network: NetworkSpec,
    *,
    rings: int,
    offset: int = 1,
) -> float:
    """Duration of one bulk-synchronous communication step.

    Every rank sends ``chunk_bytes`` to the rank ``offset`` positions ahead
    of it — its ring successor for ring collectives (``offset=1``, the
    default), or its round-``offset`` partner for the pairwise AllToAll
    exchange — and the step finishes when the slowest transfer finishes.
    Transfers that cross a node boundary share the node's NICs across the
    ``rings`` parallel rings, i.e. each ring sees ``1/rings`` of a NIC's
    bandwidth only if more rings than NICs are active; with one ring per
    NIC (the NCCL default we model) each crossing uses a full NIC.
    """
    n = len(ranks)
    worst = 0.0
    for i in range(n):
        src = ranks[i]
        dst = ranks[(i + offset) % n]
        latency, bandwidth = topology.link_parameters(src, dst, network)
        transfer = latency + chunk_bytes / bandwidth
        if transfer > worst:
            worst = transfer
    return worst


def _hop_census(
    ranks: Sequence[int], topology: ClusterTopology
) -> Tuple[int, int]:
    """(slow, fast) hop counts along the open ring chain.

    Walks the ``n - 1`` links between consecutive ranks of the node-ordered
    ring (the wrap-around link is excluded, matching the open-chain latency
    term of the analytic model): a link between two nodes is a *slow* hop,
    a link inside an NVSwitch domain a *fast* hop.  For the analytic
    placement of ``n`` ranks with ``g`` per domain this reproduces exactly
    the §III-A counts ``n/g - 1`` (slow) and ``n - n/g`` (fast).
    """
    slow = fast = 0
    for a, b in zip(ranks, ranks[1:]):
        if topology.same_fast_domain(a, b):
            fast += 1
        else:
            slow += 1
    return slow, fast


def simulate_collective(
    collective: str,
    volume_bytes: float,
    topology: ClusterTopology,
    network: NetworkSpec,
    *,
    group_size: int,
    gpus_per_nvs_domain: int = 1,
    start_rank: int = 0,
) -> RingSimulationResult:
    """Simulate one ring collective and compare against the analytic model.

    ``volume_bytes`` follows the same convention as the analytic model (and
    the paper's tables): the total bytes transferred per GPU — i.e. the size
    of the full gathered buffer for AllGather/ReduceScatter/AllReduce and of
    the broadcast buffer for Broadcast/Reduce.
    """
    placement = GroupPlacement(size=group_size, gpus_per_nvs_domain=gpus_per_nvs_domain)
    analytic = collective_time(collective, volume_bytes, placement, network)

    if group_size == 1 or volume_bytes <= 0:
        return RingSimulationResult(
            collective=collective,
            volume_bytes=volume_bytes,
            group_size=group_size,
            gpus_per_nvs_domain=gpus_per_nvs_domain,
            simulated_time=0.0,
            analytic_time=analytic,
            steps=0,
        )

    ranks = topology.ring_order(
        topology.group_ranks(group_size, gpus_per_nvs_domain, start_rank=start_rank)
    )
    slow_hops, fast_hops = _hop_census(ranks, topology)
    # One ring per NIC serving this group's GPUs on each node; the chunks of
    # the buffer are split across the rings, so each ring moves 1/rings of
    # every chunk.  With a single NIC this degenerates to the classic ring.
    rings = max(
        1,
        int(
            round(
                network.nics_per_node
                * min(1.0, gpus_per_nvs_domain / network.nvs_domain_size)
            )
        ),
    )
    n = group_size

    if collective == POINT_TO_POINT:
        latency, bandwidth = topology.link_parameters(ranks[0], ranks[1], network)
        simulated = latency + volume_bytes / bandwidth
        return RingSimulationResult(
            collective,
            volume_bytes,
            group_size,
            gpus_per_nvs_domain,
            simulated,
            analytic,
            1,
            slow_hops=slow_hops,
            fast_hops=fast_hops,
        )

    spans_nodes = gpus_per_nvs_domain < group_size
    per_ring_volume = volume_bytes / rings if spans_nodes else volume_bytes

    if collective in (ALL_GATHER, REDUCE_SCATTER, ALL_REDUCE):
        chunk = per_ring_volume / n
        passes = 2 if collective == ALL_REDUCE else 1
        steps = passes * (n - 1)
        simulated = sum(
            _step_time(ranks, chunk, topology, network, rings=rings) for _ in range(steps)
        )
    elif collective == ALL_TO_ALL:
        # Pairwise exchange: every rank owns V worth of tokens of which the
        # (n-1)/n destined for other ranks leave in n - 1 rounds of V/n each;
        # round t pairs rank i with rank (i + t) mod n, so most rounds cross
        # node boundaries as soon as the group spans several domains.
        chunk = per_ring_volume / n
        steps = n - 1
        simulated = sum(
            _step_time(ranks, chunk, topology, network, rings=rings, offset=offset)
            for offset in range(1, n)
        )
    elif collective in (BROADCAST, REDUCE):
        # Broadcast/Reduce are replayed as the dominant ring phase of their
        # scatter-allgather decomposition (NCCL's large-message algorithm):
        # the buffer is cut into n chunks that rotate around the ring for
        # n - 1 steps — the same single-ring-pass convention the closed
        # form prices, so what the replay independently validates is the
        # topology traversal (hop structure, NIC multiplexing, per-step
        # latency), not an alternative chunking constant.
        chunk = per_ring_volume / n
        steps = n - 1
        simulated = sum(
            _step_time(ranks, chunk, topology, network, rings=rings) for _ in range(steps)
        )
    else:  # pragma: no cover - guarded by collective_time above
        raise ValueError(f"unsupported collective {collective!r}")

    return RingSimulationResult(
        collective=collective,
        volume_bytes=volume_bytes,
        group_size=group_size,
        gpus_per_nvs_domain=gpus_per_nvs_domain,
        simulated_time=simulated,
        analytic_time=analytic,
        steps=steps,
        slow_hops=slow_hops,
        fast_hops=fast_hops,
    )


def sweep_volumes(
    collective: str,
    volumes_bytes: Sequence[float],
    topology: ClusterTopology,
    network: NetworkSpec,
    *,
    group_size: int,
    gpus_per_nvs_domain: int = 1,
) -> List[RingSimulationResult]:
    """Simulate the collective across a range of volumes (Fig. A1 sweep)."""
    return [
        simulate_collective(
            collective,
            volume,
            topology,
            network,
            group_size=group_size,
            gpus_per_nvs_domain=gpus_per_nvs_domain,
        )
        for volume in volumes_bytes
    ]
