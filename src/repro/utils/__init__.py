"""Utility helpers shared across the :mod:`repro` package.

The utilities are intentionally dependency-light (pure Python + NumPy) so
that the analytical performance model remains fast enough for brute-force
configuration searches over hundreds of thousands of candidate
configurations.
"""

from repro.utils.factorization import (
    divisors,
    factorizations,
    is_power_of_two,
    pow2_divisors,
    split_into_factors,
)
from repro.utils.units import (
    GB,
    GIB,
    KB,
    MB,
    TB,
    from_bytes,
    from_seconds,
    to_bytes,
    to_flops,
    to_seconds,
)

__all__ = [
    "GB",
    "GIB",
    "KB",
    "MB",
    "TB",
    "divisors",
    "factorizations",
    "from_bytes",
    "from_seconds",
    "is_power_of_two",
    "pow2_divisors",
    "split_into_factors",
    "to_bytes",
    "to_flops",
    "to_seconds",
]
