"""JSON serialization of experiment results.

Results produced by the search and the analysis sweeps are plain dataclasses
containing floats, ints, strings and nested dataclasses.  This module
converts them into JSON-friendly dictionaries (and back for the subset of
types we need) so that benchmark runs can archive their raw series alongside
the textual report, and so the :mod:`repro.runtime` search cache can persist
solved sweep points across processes and sessions:

* :func:`to_jsonable` / :func:`dump_json` / :func:`load_json` — one-way
  archiving of any result dataclass;
* :func:`dataclass_from_jsonable` — type-hint-driven reconstruction of a
  dataclass tree from its :func:`to_jsonable` form (the cache's read path);
* :func:`canonical_fingerprint` — stable content hash of a jsonable object,
  used as the cache key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import types
import typing
from pathlib import Path
from typing import Any

#: ``X | None`` unions (PEP 604) have their own runtime origin on 3.10+.
_UNION_ORIGINS = (typing.Union, getattr(types, "UnionType", typing.Union))


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / tuples / numpy scalars to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "item") and callable(obj.item) and not isinstance(obj, (str, bytes)):
        try:
            return obj.item()
        except Exception:  # pragma: no cover - non-scalar array-likes fall through
            pass
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def dump_json(obj: Any, path: str | Path, *, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON file produced by :func:`dump_json`."""
    return json.loads(Path(path).read_text())


def _shape_matches(annotation: Any, value: Any) -> bool:
    """True when a JSON ``value`` structurally fits ``annotation``.

    Used to disambiguate union members: JSON only distinguishes objects,
    arrays, strings, numbers and booleans, so that is the granularity the
    check works at.
    """
    origin = typing.get_origin(annotation)
    if origin in (list, tuple) or annotation in (list, tuple):
        return isinstance(value, (list, tuple))
    if origin is dict or annotation is dict:
        return isinstance(value, dict)
    if dataclasses.is_dataclass(annotation) and isinstance(annotation, type):
        return isinstance(value, dict)
    if annotation is bool:
        return isinstance(value, bool)
    if annotation is int:
        return isinstance(value, int) and not isinstance(value, bool)
    if annotation is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if annotation is str:
        return isinstance(value, str)
    return False


def _convert(annotation: Any, value: Any) -> Any:
    """Coerce ``value`` (a JSON type) into the shape ``annotation`` describes."""
    if value is None:
        return None
    origin = typing.get_origin(annotation)
    if origin in _UNION_ORIGINS:
        candidates = [a for a in typing.get_args(annotation) if a is not type(None)]
        if not candidates:
            return value
        # Both typing.Union[...] and PEP 604 ``X | Y`` unions land here; pick
        # the member whose JSON shape matches the value (e.g. a list for the
        # ``str | Tuple[str, ...]`` strategy field), falling back to the
        # first member for scalars that fit several.
        for candidate in candidates:
            if _shape_matches(candidate, value):
                return _convert(candidate, value)
        return _convert(candidates[0], value)
    if origin in (list, tuple) or annotation in (list, tuple):
        args = typing.get_args(annotation)
        if origin is list or annotation is list:
            item_type = args[0] if args else Any
            return [_convert(item_type, v) for v in value]
        if len(args) == 2 and args[1] is Ellipsis:  # Tuple[X, ...]
            return tuple(_convert(args[0], v) for v in value)
        if args:  # fixed-arity tuple
            return tuple(_convert(a, v) for a, v in zip(args, value))
        return tuple(value)
    if origin is dict:
        args = typing.get_args(annotation)
        value_type = args[1] if len(args) == 2 else Any
        return {k: _convert(value_type, v) for k, v in value.items()}
    if dataclasses.is_dataclass(annotation) and isinstance(annotation, type):
        return dataclass_from_jsonable(annotation, value)
    return value


def dataclass_from_jsonable(cls: type, data: Any) -> Any:
    """Rebuild a dataclass instance from its :func:`to_jsonable` dictionary.

    Nested dataclasses, ``Optional``/``List``/``Tuple``/``Dict`` fields and
    plain JSON scalars are handled recursively, driven by the class's type
    hints.  Fields absent from ``data`` fall back to the dataclass defaults.
    Non-init fields are ignored (they are recomputed by ``__post_init__``).
    """
    if data is None:
        return None
    if not (dataclasses.is_dataclass(cls) and isinstance(cls, type)):
        raise TypeError(f"{cls!r} is not a dataclass type")
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if not f.init or f.name not in data:
            continue
        kwargs[f.name] = _convert(hints.get(f.name, Any), data[f.name])
    return cls(**kwargs)


def canonical_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical (sorted-key) JSON form.

    Any change to any field of the object — model hyper-parameters, system
    rates, search-space knobs, modeling options — yields a different digest,
    which is exactly the invalidation rule the search cache needs.
    """
    payload = json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
