"""JSON serialization of experiment results.

Results produced by the search and the analysis sweeps are plain dataclasses
containing floats, ints, strings and nested dataclasses.  This module
converts them into JSON-friendly dictionaries (and back for the subset of
types we need) so that benchmark runs can archive their raw series alongside
the textual report.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any


def to_jsonable(obj: Any) -> Any:
    """Recursively convert dataclasses / tuples / numpy scalars to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "item") and callable(obj.item) and not isinstance(obj, (str, bytes)):
        try:
            return obj.item()
        except Exception:  # pragma: no cover - non-scalar array-likes fall through
            pass
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def dump_json(obj: Any, path: str | Path, *, indent: int = 2) -> Path:
    """Serialize ``obj`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True))
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON file produced by :func:`dump_json`."""
    return json.loads(Path(path).read_text())
