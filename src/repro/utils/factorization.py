"""Integer factorization helpers used by the configuration-space search.

The configuration search (stage S3 of the performance model) enumerates all
decompositions of the GPU count ``n`` into ``n1 * n2 * np * nd`` and all
decompositions of the NVSwitch-domain size into per-group assignments.  The
helpers here enumerate these decompositions efficiently and deterministically
(so the search is reproducible).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence, Tuple


def is_power_of_two(value: int) -> bool:
    """Return ``True`` if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


@lru_cache(maxsize=4096)
def divisors(value: int) -> Tuple[int, ...]:
    """Return all positive divisors of ``value`` in ascending order.

    >>> divisors(12)
    (1, 2, 3, 4, 6, 12)
    """
    if value <= 0:
        raise ValueError(f"divisors() requires a positive integer, got {value}")
    small = []
    large = []
    i = 1
    while i * i <= value:
        if value % i == 0:
            small.append(i)
            if i != value // i:
                large.append(value // i)
        i += 1
    return tuple(small + large[::-1])


def pow2_divisors(value: int) -> Tuple[int, ...]:
    """Return the power-of-two divisors of ``value`` in ascending order.

    Parallel group sizes in practice (and in the paper's experiments) are
    powers of two; restricting the sweep to power-of-two factors keeps the
    search tractable without losing any of the configurations the paper
    explores.
    """
    return tuple(d for d in divisors(value) if is_power_of_two(d))


@lru_cache(maxsize=1024)
def factorizations(value: int, parts: int) -> Tuple[Tuple[int, ...], ...]:
    """Enumerate ordered factorizations of ``value`` into ``parts`` factors.

    Every returned tuple ``f`` satisfies ``prod(f) == value`` with each factor
    a positive divisor of ``value``.  Order matters: ``(2, 4)`` and ``(4, 2)``
    are distinct (they assign GPUs to different parallel groups).

    >>> factorizations(4, 2)
    ((1, 4), (2, 2), (4, 1))
    """
    if parts <= 0:
        raise ValueError("parts must be >= 1")
    if value <= 0:
        raise ValueError("value must be >= 1")
    if parts == 1:
        return ((value,),)
    results = []
    for first in divisors(value):
        for rest in factorizations(value // first, parts - 1):
            results.append((first, *rest))
    return tuple(results)


def split_into_factors(
    value: int,
    limits: Sequence[int],
    *,
    require_divides: Sequence[int] | None = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield factorizations of ``value`` constrained per position.

    ``limits[i]`` caps factor ``i`` from above.  If ``require_divides`` is
    given, factor ``i`` must additionally divide ``require_divides[i]``.
    This is the generic filter used to build NVSwitch-domain assignments
    ``(nNVS1, nNVS2, nNVSp, nNVSd)`` where each assignment must divide its
    parallel-group size.
    """
    parts = len(limits)
    if require_divides is not None and len(require_divides) != parts:
        raise ValueError("require_divides must match limits length")
    for factors in factorizations(value, parts):
        ok = True
        for i, f in enumerate(factors):
            if f > limits[i]:
                ok = False
                break
            if require_divides is not None and require_divides[i] % f != 0:
                ok = False
                break
        if ok:
            yield factors
