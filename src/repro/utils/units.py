"""Unit conversion helpers.

Internally the performance model works in SI base units:

* sizes in **bytes**
* bandwidths in **bytes / second**
* compute rates in **FLOP / second**
* times in **seconds**

The hardware tables in the paper (Table A3) quote GB/s, TFLOP/s and GB, so
these helpers centralise the conversions and avoid magic constants being
scattered across modules.
"""

from __future__ import annotations

#: Decimal kilobyte (used by the paper for network/HBM bandwidth figures).
KB = 1e3
#: Decimal megabyte.
MB = 1e6
#: Decimal gigabyte.
GB = 1e9
#: Decimal terabyte.
TB = 1e12
#: Binary gibibyte (used when reporting HBM usage "in GB" like the paper's
#: figures, which are close enough to decimal GB that either convention
#: reproduces the plotted numbers; we expose both).
GIB = 2**30

_BYTE_SUFFIXES = {
    "B": 1.0,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
    "KIB": 2**10,
    "MIB": 2**20,
    "GIB": 2**30,
    "TIB": 2**40,
}

_TIME_SUFFIXES = {
    "s": 1.0,
    "ms": 1e-3,
    "us": 1e-6,
    "ns": 1e-9,
    "min": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
}

_FLOP_SUFFIXES = {
    "FLOPS": 1.0,
    "KFLOPS": 1e3,
    "MFLOPS": 1e6,
    "GFLOPS": 1e9,
    "TFLOPS": 1e12,
    "PFLOPS": 1e15,
}


def to_bytes(value: float, unit: str = "GB") -> float:
    """Convert ``value`` expressed in ``unit`` into bytes.

    >>> to_bytes(80, "GB")
    80000000000.0
    """
    try:
        scale = _BYTE_SUFFIXES[unit.upper()]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown byte unit {unit!r}") from exc
    return float(value) * scale


def from_bytes(value_bytes: float, unit: str = "GB") -> float:
    """Convert bytes into ``unit`` (inverse of :func:`to_bytes`)."""
    try:
        scale = _BYTE_SUFFIXES[unit.upper()]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown byte unit {unit!r}") from exc
    return float(value_bytes) / scale


def to_seconds(value: float, unit: str = "s") -> float:
    """Convert ``value`` expressed in ``unit`` into seconds."""
    try:
        scale = _TIME_SUFFIXES[unit.lower()]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown time unit {unit!r}") from exc
    return float(value) * scale


def from_seconds(value_seconds: float, unit: str = "s") -> float:
    """Convert seconds into ``unit`` (inverse of :func:`to_seconds`)."""
    try:
        scale = _TIME_SUFFIXES[unit.lower()]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown time unit {unit!r}") from exc
    return float(value_seconds) / scale


def to_flops(value: float, unit: str = "TFLOPS") -> float:
    """Convert a compute rate expressed in ``unit`` into FLOP/s."""
    try:
        scale = _FLOP_SUFFIXES[unit.upper()]
    except KeyError as exc:  # pragma: no cover - defensive
        raise ValueError(f"unknown FLOP unit {unit!r}") from exc
    return float(value) * scale
