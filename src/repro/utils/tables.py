"""Plain-text table rendering for experiment reports.

The paper communicates its results through figures; this reproduction
prints the same series as text tables (one row per configuration or GPU
count).  This module provides a tiny, dependency-free table formatter used
by :mod:`repro.analysis.reporting`, the ``repro-perf`` CLI and the
benchmark suite.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    floatfmt: str = ".4g",
    min_width: int = 6,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(format(cell, floatfmt))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [max(min_width, len(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), sep]
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_percentage_breakdown(breakdown: dict, total: float) -> str:
    """Format a time breakdown dict as ``key: xx.x%`` parts, sorted by share."""
    if total <= 0:
        return "(empty)"
    parts = []
    for key, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        pct = 100.0 * value / total
        if pct >= 0.05:
            parts.append(f"{key}: {pct:.1f}%")
    return ", ".join(parts)
