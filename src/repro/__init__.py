"""repro — analytical performance modeling of foundation-model training.

Reproduction of *"Comprehensive Performance Modeling and System Design
Insights for Foundation Models"* (SC 2024): a parameterized analytical
performance model for training large transformer models (LLMs and
long-sequence scientific vision transformers) on GPU clusters with a dual
bandwidth network (NVSwitch + InfiniBand), plus a brute-force configuration
search over 4D parallelism, microbatching and GPU-to-NVSwitch placement.

Quickstart
----------

>>> from repro import GPT3_1T, make_system, find_optimal_config
>>> system = make_system("B200", nvs_domain_size=8)
>>> result = find_optimal_config(GPT3_1T, system, n_gpus=1024,
...                              global_batch_size=4096, strategy="tp1d")
>>> result.best.config.as_tuple()  # (bm, n1, n2, np, nd)   # doctest: +SKIP
"""

from repro.core import (
    DEFAULT_OPTIONS,
    GPT3_175B,
    GPT3_1T,
    GPU_GENERATIONS,
    GpuAssignment,
    GpuSpec,
    IterationEstimate,
    MODEL_CATALOG,
    MOE_1T,
    MOE_MIXTRAL,
    MemoryEstimate,
    ModelingOptions,
    NVS_DOMAIN_SIZES,
    NetworkSpec,
    ParallelConfig,
    SearchResult,
    SearchSpace,
    SystemSpec,
    TimeBreakdown,
    TrainingRegime,
    TransformerConfig,
    VIT_32K,
    VIT_LONG_SEQ,
    WorkloadSpec,
    available_workloads,
    best_assignment_for,
    default_regime,
    estimate_memory,
    evaluate_config,
    find_optimal_config,
    get_model,
    get_workload,
    gpt_pretraining_regime,
    gpu_assignments,
    make_gpu,
    make_network,
    make_perlmutter,
    make_system,
    parallel_configs,
    system_catalog,
    training_days,
    vit_era5_regime,
)
from repro.core import (
    CostPhase,
    ExecutionPlan,
    available_schedules,
    build_execution_plan,
    get_schedule,
    register_schedule,
    register_workload,
)
from repro.runtime import SearchCache, SearchTask, SweepExecutor

__version__ = "1.2.0"

__all__ = [
    "DEFAULT_OPTIONS",
    "GPT3_175B",
    "MOE_1T",
    "MOE_MIXTRAL",
    "WorkloadSpec",
    "available_workloads",
    "get_workload",
    "register_workload",
    "GPT3_1T",
    "GPU_GENERATIONS",
    "GpuAssignment",
    "GpuSpec",
    "IterationEstimate",
    "MODEL_CATALOG",
    "CostPhase",
    "ExecutionPlan",
    "MemoryEstimate",
    "ModelingOptions",
    "NVS_DOMAIN_SIZES",
    "NetworkSpec",
    "ParallelConfig",
    "SearchCache",
    "available_schedules",
    "build_execution_plan",
    "get_schedule",
    "register_schedule",
    "SearchResult",
    "SearchSpace",
    "SearchTask",
    "SweepExecutor",
    "SystemSpec",
    "TimeBreakdown",
    "TrainingRegime",
    "TransformerConfig",
    "VIT_32K",
    "VIT_LONG_SEQ",
    "__version__",
    "best_assignment_for",
    "default_regime",
    "estimate_memory",
    "evaluate_config",
    "find_optimal_config",
    "get_model",
    "gpt_pretraining_regime",
    "gpu_assignments",
    "make_gpu",
    "make_network",
    "make_perlmutter",
    "make_system",
    "parallel_configs",
    "system_catalog",
    "training_days",
    "vit_era5_regime",
]
