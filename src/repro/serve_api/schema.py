"""Request/response schemas of the planning service.

This module is the *pure* boundary between JSON payloads and the engine's
dataclasses: every handler body parses into existing engine objects
(:class:`~repro.runtime.executor.SearchTask`,
:class:`~repro.core.parallelism.base.ParallelConfig`,
:class:`~repro.core.inference.ServingSpec`, ...) here, and every response
is rendered back through :func:`~repro.utils.serialization.to_jsonable`.
Nothing in this module touches sockets, threads or global state — it can
be unit-tested with plain dictionaries — which keeps the app/engine
separation intact: the engine modules never learn about HTTP, and the
HTTP layer never builds engine objects by hand.

Validation failures raise :class:`ApiError`, which carries the HTTP status
the handler should answer with (400 for malformed requests); the engine's
own ``ValueError``/``KeyError`` messages are surfaced verbatim so the API
reports exactly what the CLI would.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.backends import available_backends
from repro.core.execution import DEFAULT_OPTIONS, ModelingOptions, evaluate_config
from repro.core.inference import SERVING_OBJECTIVES, ServingSpec
from repro.core.objectives import DEFAULT_PARETO_OBJECTIVES, resolve_objectives
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.search import ALL_STRATEGIES, DEFAULT_EVAL_MODE, EVAL_MODES
from repro.core.system import SystemSpec, make_system
from repro.core.workloads import available_workloads, get_workload, scenario_space
from repro.runtime.executor import SearchTask
from repro.utils.serialization import dataclass_from_jsonable, to_jsonable


class ApiError(Exception):
    """A request the service must reject, with the HTTP status to use."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status

    @property
    def message(self) -> str:
        """The human-readable error text (the exception's first argument)."""
        return self.args[0]

    def body(self) -> Dict[str, Any]:
        """JSON body the handler answers with."""
        return {"error": self.message, "status": self.status}


# ----------------------------------------------------------------------
# Field extraction helpers
# ----------------------------------------------------------------------

def _expect_mapping(payload: Any) -> Mapping[str, Any]:
    """The request body as a JSON object, or a 400."""
    if not isinstance(payload, Mapping):
        raise ApiError("request body must be a JSON object")
    return payload


def _get(
    payload: Mapping[str, Any],
    field: str,
    kind: type,
    default: Any = None,
    *,
    required: bool = False,
) -> Any:
    """Typed field lookup: JSON ``kind`` or a 400 naming the field.

    ``int`` fields reject booleans (JSON ``true`` is not a GPU count) and
    ``float`` fields accept integers, mirroring JSON's single number type.
    """
    if field not in payload or payload[field] is None:
        if required:
            raise ApiError(f"missing required field {field!r}")
        return default
    value = payload[field]
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if kind is int and isinstance(value, bool):
        raise ApiError(f"field {field!r} must be an integer, got a boolean")
    if not isinstance(value, kind):
        raise ApiError(
            f"field {field!r} must be of type {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def _get_positive_int(
    payload: Mapping[str, Any], field: str, default: Optional[int] = None, *, required: bool = False
) -> Optional[int]:
    value = _get(payload, field, int, default, required=required)
    if value is not None and value < 1:
        raise ApiError(f"field {field!r} must be >= 1, got {value}")
    return value


def _get_choice(
    payload: Mapping[str, Any], field: str, choices: Sequence[str], default: Optional[str]
) -> Optional[str]:
    value = _get(payload, field, str, default)
    if value is not None and value not in choices:
        raise ApiError(
            f"field {field!r} must be one of {', '.join(choices)}; got {value!r}"
        )
    return value


def get_stream_flag(payload: Any) -> bool:
    """The request's ``stream`` flag (NDJSON progress events when true)."""
    return bool(_get(_expect_mapping(payload), "stream", bool, False))


# ----------------------------------------------------------------------
# Shared scenario resolution
# ----------------------------------------------------------------------

def _resolve_workload(payload: Mapping[str, Any], default: str):
    """The workload spec named by ``workload`` (or legacy ``model``)."""
    name = _get(payload, "workload", str) or _get(payload, "model", str) or default
    try:
        return get_workload(name)
    except KeyError:
        raise ApiError(
            f"unknown workload {name!r}; available: {', '.join(available_workloads())}"
        ) from None


def _resolve_system(payload: Mapping[str, Any]) -> SystemSpec:
    """System of the request's ``gpu`` generation and ``nvs`` domain size."""
    gpu = _get(payload, "gpu", str, "B200")
    nvs = _get_positive_int(payload, "nvs", 8)
    try:
        return make_system(gpu, nvs)
    except (KeyError, ValueError) as exc:
        raise ApiError(str(exc.args[0] if exc.args else exc)) from None


def _resolve_space(payload: Mapping[str, Any], workload_name: str):
    """Search space honouring ``schedule``/``virtual_stages``/``expert_parallel``."""
    try:
        return scenario_space(
            workload_name,
            schedule=_get(payload, "schedule", str),
            virtual_stages=_get_positive_int(payload, "virtual_stages"),
            expert_parallel=_get_positive_int(payload, "expert_parallel"),
        )
    except ValueError as exc:
        raise ApiError(str(exc)) from None


def _resolve_options(payload: Mapping[str, Any]) -> ModelingOptions:
    """Modeling options honouring ``zero_stage``."""
    zero_stage = _get(payload, "zero_stage", int)
    if zero_stage is None:
        return DEFAULT_OPTIONS
    if zero_stage not in (0, 1, 2, 3):
        raise ApiError(f"field 'zero_stage' must be 0..3, got {zero_stage}")
    return ModelingOptions(zero_stage=zero_stage)


def _resolve_strategy(payload: Mapping[str, Any]):
    """The request's strategy: one name, ``"all"`` or a list of names."""
    value = payload.get("strategy", "tp1d")
    known = (*ALL_STRATEGIES, "all")
    if isinstance(value, str):
        if value not in known:
            raise ApiError(f"field 'strategy' must be one of {', '.join(known)}; got {value!r}")
        return value
    if isinstance(value, list) and value and all(isinstance(s, str) for s in value):
        for s in value:
            if s not in ALL_STRATEGIES:
                raise ApiError(
                    f"field 'strategy' entries must be one of {', '.join(ALL_STRATEGIES)}; got {s!r}"
                )
        return tuple(value)
    raise ApiError("field 'strategy' must be a strategy name or a non-empty list of names")


def _common_task_fields(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Backend / eval-mode fields shared by every solve request."""
    return {
        "backend": _get_choice(payload, "backend", available_backends(), "analytic"),
        "eval_mode": _get_choice(payload, "eval_mode", EVAL_MODES, DEFAULT_EVAL_MODE),
        "top_k": _get(payload, "top_k", int, 0),
    }


# ----------------------------------------------------------------------
# Request parsers (JSON payload -> engine objects)
# ----------------------------------------------------------------------

def parse_search_request(payload: Any) -> SearchTask:
    """``POST /v1/search`` body -> a training :class:`SearchTask`."""
    payload = _expect_mapping(payload)
    spec = _resolve_workload(payload, "gpt3-1t")
    system = _resolve_system(payload)
    n_gpus = _get_positive_int(payload, "gpus", required=True)
    global_batch = _get_positive_int(payload, "global_batch", spec.default_global_batch)
    try:
        return SearchTask(
            model=spec.model,
            system=system,
            n_gpus=n_gpus,
            global_batch_size=global_batch,
            strategy=_resolve_strategy(payload),
            space=_resolve_space(payload, spec.name),
            options=_resolve_options(payload),
            **_common_task_fields(payload),
        )
    except ValueError as exc:
        raise ApiError(str(exc)) from None


def parse_pareto_request(payload: Any) -> SearchTask:
    """``POST /v1/pareto`` body -> a multi-objective :class:`SearchTask`.

    Identical to a search request plus an ``objectives`` list (defaulting
    to :data:`~repro.core.objectives.DEFAULT_PARETO_OBJECTIVES`), validated
    against the objective registry up front so unknown names answer 400
    with the registered vocabulary.  ``top_k`` does not apply to a frontier
    and is pinned to 0 (one cache entry per Pareto point).
    """
    payload = _expect_mapping(payload)
    spec = _resolve_workload(payload, "gpt3-1t")
    system = _resolve_system(payload)
    n_gpus = _get_positive_int(payload, "gpus", required=True)
    global_batch = _get_positive_int(payload, "global_batch", spec.default_global_batch)
    objectives = payload.get("objectives", list(DEFAULT_PARETO_OBJECTIVES))
    if (
        not isinstance(objectives, list)
        or not objectives
        or not all(isinstance(name, str) for name in objectives)
    ):
        raise ApiError("field 'objectives' must be a non-empty list of objective names")
    try:
        resolve_objectives(objectives)
    except (KeyError, ValueError) as exc:
        raise ApiError(str(exc.args[0] if exc.args else exc)) from None
    common = _common_task_fields(payload)
    common["top_k"] = 0
    try:
        return SearchTask(
            model=spec.model,
            system=system,
            n_gpus=n_gpus,
            global_batch_size=global_batch,
            strategy=_resolve_strategy(payload),
            space=_resolve_space(payload, spec.name),
            options=_resolve_options(payload),
            objectives=tuple(objectives),
            **common,
        )
    except ValueError as exc:
        raise ApiError(str(exc)) from None


def parse_sweep_request(payload: Any) -> List[SearchTask]:
    """``POST /v1/sweep`` body -> one :class:`SearchTask` per GPU count.

    Identical to a search request except ``gpus`` is a list; the executor
    fans the points out over its worker pool and the in-memory cache /
    in-flight dedup apply per point.
    """
    payload = _expect_mapping(payload)
    gpus = payload.get("gpus")
    if not isinstance(gpus, list) or not gpus:
        raise ApiError("field 'gpus' must be a non-empty list of GPU counts")
    tasks = []
    seen = set()
    for count in gpus:
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise ApiError(f"field 'gpus' entries must be integers >= 1, got {count!r}")
        if count in seen:
            continue
        seen.add(count)
        tasks.append(parse_search_request({**payload, "gpus": count}))
    return tasks


def parse_serve_request(payload: Any) -> SearchTask:
    """``POST /v1/serve`` body -> a serving-objective :class:`SearchTask`.

    Starts from the workload's serving preset and replaces exactly the
    fields the request sets (same override semantics as the CLI flags).
    """
    payload = _expect_mapping(payload)
    spec = _resolve_workload(payload, "llama70b-serve")
    system = _resolve_system(payload)
    objective = _get_choice(payload, "objective", SERVING_OBJECTIVES, "throughput")
    serving = spec.serving or ServingSpec()
    overrides: Dict[str, Any] = {}
    for field, kind in (
        ("arrival_rate", float),
        ("prompt_tokens", int),
        ("output_tokens", int),
        ("kv_block_tokens", int),
        ("max_batch_per_replica", int),
        ("target_ttft", float),
        ("target_tpot", float),
    ):
        value = _get(payload, field, kind)
        if value is not None:
            overrides[field] = value
    try:
        serving = replace(serving, **overrides) if overrides else serving
        return SearchTask(
            model=spec.model,
            system=system,
            n_gpus=_get_positive_int(payload, "gpus", 8),
            global_batch_size=_get_positive_int(payload, "global_batch", 1),
            strategy="tp1d",
            options=_resolve_options(payload),
            objective=objective,
            serving=serving,
            **_common_task_fields(payload),
        )
    except ValueError as exc:
        raise ApiError(str(exc)) from None


def parse_evaluate_request(payload: Any) -> Dict[str, Any]:
    """``POST /v1/evaluate`` body -> :func:`evaluate_config` keyword set.

    ``config`` (required) and ``assignment`` (optional) are rebuilt into
    the engine dataclasses through the same type-hint-driven machinery the
    cache read path uses, so the accepted JSON shape is exactly the
    :func:`to_jsonable` form of the dataclasses.
    """
    payload = _expect_mapping(payload)
    spec = _resolve_workload(payload, "gpt3-1t")
    system = _resolve_system(payload)
    config_data = payload.get("config")
    if not isinstance(config_data, Mapping):
        raise ApiError("field 'config' must be a JSON object describing a ParallelConfig")
    assignment_data = payload.get("assignment")
    if assignment_data is not None and not isinstance(assignment_data, Mapping):
        raise ApiError("field 'assignment' must be a JSON object describing a GpuAssignment")
    try:
        config = dataclass_from_jsonable(ParallelConfig, dict(config_data))
        assignment = (
            dataclass_from_jsonable(GpuAssignment, dict(assignment_data))
            if assignment_data is not None
            else GpuAssignment()
        )
    except (TypeError, ValueError, KeyError) as exc:
        raise ApiError(f"invalid config/assignment: {exc}") from None
    return {
        "model": spec.model,
        "system": system,
        "config": config,
        "assignment": assignment,
        "global_batch_size": _get_positive_int(
            payload, "global_batch", spec.default_global_batch
        ),
        "options": _resolve_options(payload),
        "backend": _get_choice(payload, "backend", available_backends(), "analytic"),
    }


def run_evaluate(kwargs: Dict[str, Any]):
    """Price one explicit configuration (the ``evaluate`` endpoint's engine call).

    Translates the engine's structural ``ValueError``s (bad divisibility,
    GPU-count mismatches) into 400s — a malformed *configuration* is a
    client error, not a server fault.
    """
    try:
        return evaluate_config(
            kwargs["model"],
            kwargs["system"],
            kwargs["config"],
            kwargs["assignment"],
            global_batch_size=kwargs["global_batch_size"],
            options=kwargs["options"],
            backend=kwargs["backend"],
        )
    except ValueError as exc:
        raise ApiError(str(exc)) from None


# ----------------------------------------------------------------------
# Response envelopes (engine objects -> JSON)
# ----------------------------------------------------------------------

def result_body(result, *, source: str) -> Dict[str, Any]:
    """Response body of a solved search/serve task.

    ``source`` records how the request was satisfied: ``"solved"`` (a
    fresh engine solve), ``"cache"`` (the warm in-memory cache) or
    ``"dedup"`` (attached to an identical in-flight solve).
    """
    body: Dict[str, Any] = {
        "found": result.found,
        "source": source,
        "summary": to_jsonable(result.summary()),
        "statistics": to_jsonable(result.statistics),
    }
    if getattr(result, "top_k", None):
        body["top_k"] = [to_jsonable(est.summary()) for est in result.top_k]
    return body


def pareto_point_body(point) -> Dict[str, Any]:
    """JSON form of one frontier member (shared by body and stream events)."""
    return {
        "config": point.estimate.config.describe(),
        "assignment": list(point.estimate.assignment.as_tuple()),
        "metrics": to_jsonable(point.metrics),
    }


def pareto_body(result, *, source: str) -> Dict[str, Any]:
    """Response body of a solved Pareto task: summary plus the frontier."""
    return {
        "found": result.found,
        "source": source,
        "summary": to_jsonable(result.summary()),
        "statistics": to_jsonable(result.statistics),
        "objectives": list(result.objectives),
        "frontier": [pareto_point_body(point) for point in result.points],
    }


def evaluate_body(estimate) -> Dict[str, Any]:
    """Response body of one ``evaluate`` call."""
    return {
        "feasible": estimate.feasible,
        "summary": to_jsonable(estimate.summary()),
        "breakdown": to_jsonable(estimate.breakdown),
    }


def sweep_body(results: Sequence, sources: Sequence[str]) -> Dict[str, Any]:
    """Response body of a sweep: one entry per requested GPU count."""
    return {
        "points": [
            {"source": source, "found": result.found, "summary": to_jsonable(result.summary())}
            for result, source in zip(results, sources)
        ]
    }
