"""HTTP layer of the planning service (stdlib only, no new dependencies).

A thin :mod:`http.server` front-end over :class:`~repro.serve_api.app.PlannerApp`:
``ThreadingHTTPServer`` gives every request its own thread, and the app
multiplexes those threads onto one warm cache, one in-flight dedup table
and one shared worker pool.  The handler knows nothing about the engine —
it reads a JSON body, picks an app method by route, and writes the body
(or the app's NDJSON event stream) back.

Routes
------
========  =================  ==================================================
method    path               app method
========  =================  ==================================================
GET       ``/v1/health``     liveness probe (no engine state touched)
GET       ``/v1/status``     counters: requests, engine solves, dedup, cache
GET       ``/v1/workloads``  the workload registry (request vocabulary)
POST      ``/v1/search``     training search (``"stream": true`` -> NDJSON)
POST      ``/v1/pareto``     multi-objective search; streams ``frontier`` events
POST      ``/v1/serve``      inference-serving search (streamable)
POST      ``/v1/sweep``      batch of searches over a GPU-count list (streamable)
POST      ``/v1/evaluate``   price one explicit configuration
==========================================================================

Streaming responses are ``application/x-ndjson``: one JSON object per
line — ``accepted``, then ``progress`` events from the executor's report
hook, then exactly one ``result`` or ``error`` — on a ``Connection:
close`` response (no Content-Length, so clients read until EOF).
"""

from __future__ import annotations

import json
import socket
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core.workloads import available_workloads, get_workload
from repro.serve_api.app import PlannerApp
from repro.serve_api.schema import ApiError, get_stream_flag

#: Default bind address of ``repro-perf api``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8421

#: Request bodies above this size are rejected outright (the largest valid
#: request — a sweep over hundreds of GPU counts — is a few KB).
MAX_BODY_BYTES = 1 << 20


class PlannerHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` carrying the process-wide :class:`PlannerApp`."""

    #: Request threads die with the process, so Ctrl-C never hangs on a
    #: long solve.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], app: PlannerApp, *, quiet: bool = False):
        self.app = app
        self.quiet = quiet
        super().__init__(address, PlannerRequestHandler)


class PlannerRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`PlannerApp`."""

    server_version = "repro-planner/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def app(self) -> PlannerApp:
        """The process-wide application object (one per server)."""
        return self.server.app

    def log_message(self, format: str, *args) -> None:  # noqa: A002 (stdlib name)
        """Default access log, silenced when the server was built quiet."""
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    def _read_json_body(self) -> Any:
        """The request body parsed as JSON, or an :class:`ApiError`."""
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ApiError("invalid Content-Length header") from None
        if length <= 0:
            raise ApiError("request body required (a JSON object)")
        if length > MAX_BODY_BYTES:
            raise ApiError("request body too large", status=413)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ApiError(f"request body is not valid JSON: {exc}") from None

    def _send_json(self, body: Dict[str, Any], status: int = 200) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_ndjson(self, events: Iterator[Dict[str, Any]]) -> None:
        """Stream one JSON object per line; the connection closes at the end."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        for event in events:
            self.wfile.write(json.dumps(event, sort_keys=True).encode("utf-8") + b"\n")
            self.wfile.flush()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        try:
            if self.path == "/v1/health":
                self._send_json({"ok": True})
            elif self.path == "/v1/status":
                self._send_json(self.app.status())
            elif self.path == "/v1/workloads":
                self._send_json(
                    {
                        "workloads": [
                            get_workload(name).summary() for name in available_workloads()
                        ]
                    }
                )
            else:
                self._send_json({"error": f"unknown path {self.path!r}", "status": 404}, 404)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        routes = {
            "/v1/search": (self.app.search, self.app.search_events),
            "/v1/pareto": (self.app.pareto, self.app.pareto_events),
            "/v1/serve": (self.app.serve, self.app.serve_events),
            "/v1/sweep": (self.app.sweep, self.app.sweep_events),
            "/v1/evaluate": (self.app.evaluate, None),
        }
        try:
            route = routes.get(self.path)
            if route is None:
                self._send_json({"error": f"unknown path {self.path!r}", "status": 404}, 404)
                return
            handler, stream_handler = route
            payload = self._read_json_body()
            if stream_handler is not None and get_stream_flag(payload):
                self._send_ndjson(stream_handler(payload))
            else:
                self._send_json(handler(payload))
        except ApiError as exc:
            self._send_json(exc.body(), exc.status)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to answer
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            try:
                self._send_json({"error": f"internal error: {exc}", "status": 500}, 500)
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass


def create_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    app: Optional[PlannerApp] = None,
    cache_path=None,
    jobs: Optional[int] = None,
    quiet: bool = False,
) -> PlannerHTTPServer:
    """Build a ready-to-run planning server (call ``serve_forever`` on it).

    ``port=0`` binds an ephemeral port (the tests and the smoke script use
    this); the bound address is available as ``server.server_address``.
    Pass an existing ``app`` to share engine state, or let the server build
    one from ``cache_path``/``jobs``.
    """
    if app is None:
        app = PlannerApp(cache_path=cache_path, jobs=jobs)
    try:
        return PlannerHTTPServer((host, port), app, quiet=quiet)
    except socket.gaierror as exc:
        raise ApiError(f"cannot bind {host}:{port}: {exc}", status=500) from None
