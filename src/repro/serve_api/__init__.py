"""Planning-as-a-service: a long-running JSON API over the pure engine.

Everything else in this repo is a one-shot invocation: each CLI call
re-imports, re-warms the memoization caches and re-loads the persistent
:class:`~repro.runtime.cache.SearchCache` from disk.  This package keeps a
single process hot instead, so repeated and concurrent planning queries —
capacity studies, serving what-ifs, dashboards — pay the engine cost once:

* :mod:`repro.serve_api.schema` — pure JSON <-> engine-object boundary;
* :mod:`repro.serve_api.app` — :class:`PlannerApp`: warm shared cache,
  request-level dedup of identical in-flight searches, one worker pool;
* :mod:`repro.serve_api.handlers` — the stdlib ``http.server`` front-end
  (``repro-perf api`` boots it).

The engine modules stay pure: this package only *composes* the existing
``SearchTask`` / ``ServingSpec`` / ``to_jsonable`` machinery.
"""

from repro.serve_api.app import PlannerApp
from repro.serve_api.handlers import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    PlannerHTTPServer,
    create_server,
)
from repro.serve_api.schema import ApiError

__all__ = [
    "ApiError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "PlannerApp",
    "PlannerHTTPServer",
    "create_server",
]
