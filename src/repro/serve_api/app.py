"""The planning application: a warm engine shared by concurrent requests.

:class:`PlannerApp` is the long-running heart of the service and is
deliberately transport-free — the HTTP layer in
:mod:`repro.serve_api.handlers` only ever calls its public methods, and the
tests can drive it directly with in-process threads.  It owns exactly three
pieces of process-wide state:

* a hot :class:`~repro.runtime.cache.SearchCache` — fingerprints are
  content hashes of *all* task inputs, so serving a cached result to any
  requester is always correct, and repeated requests never touch the
  engine (or, for reads, the disk) again;
* a shared :class:`~repro.runtime.executor.SweepExecutor` with a
  persistent worker pool — concurrent requests multiplex their engine
  solves onto the same warm workers;
* an **in-flight table** deduplicating identical concurrent searches: the
  first request of a fingerprint becomes the *owner* and runs the solve,
  every later identical request attaches to the owner's future and waits —
  N simultaneous identical requests cost exactly one engine solve, pinned
  by the :attr:`dedup_hits` counter.

Long solves can stream progress: :meth:`solve_events` yields
newline-delimited-JSON-ready event dictionaries fed by the executor's
existing ``progress(done, total)`` report hook.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.runtime.cache import SearchCache
from repro.runtime.executor import ProgressCallback, SearchTask, SweepExecutor, solve_search_task
from repro.serve_api import schema
from repro.serve_api.schema import ApiError

#: Sentinel closing a streaming event queue.
_STREAM_END = None


def _solve_capturing(task: SearchTask) -> Tuple[str, Any]:
    """Solve ``task``, capturing engine errors as data.

    Module-level so the worker pool can pickle it.  Batches are solved
    through one ``map`` call; capturing per-task keeps one structurally
    invalid task from poisoning the whole batch (and lets the owner relay
    the error to every deduplicated waiter).
    """
    try:
        return ("ok", solve_search_task(task))
    except (ValueError, KeyError) as exc:
        return ("error", str(exc.args[0] if exc.args else exc))


class PlannerApp:
    """Process-wide planning engine behind the JSON API.

    Parameters
    ----------
    cache_path:
        Optional JSON file the warm cache persists to.  The cache itself
        always lives in memory; when a path is given it is loaded once at
        start-up and saved (atomically, merge-on-save) after every solved
        batch, so a restarted server warms up from disk.
    jobs:
        Worker processes of the shared pool.  ``1`` (the default) solves
        in the request thread — with ``ThreadingHTTPServer`` each request
        already has its own thread, so single-task requests lose nothing;
        sweeps benefit from ``jobs > 1``.
    solver:
        The engine entry point per unique task.  Injectable for tests
        (e.g. a solver blocked on an event makes dedup deterministic);
        defaults to the same :func:`solve_search_task` the CLI sweeps use.
    warm_start:
        Seed every engine solve from the cache's structure-keyed hint
        index (the nearest prior winner of the same model/system/structure,
        see :meth:`~repro.runtime.cache.SearchCache.warm_hints`).  On by
        default: results are provably identical, only faster, and
        ``warm_start_hits`` in :meth:`status` shows the effect under real
        traffic.
    """

    def __init__(
        self,
        *,
        cache_path=None,
        jobs: Optional[int] = None,
        solver: Callable[[SearchTask], Any] = None,
        warm_start: bool = True,
    ):
        self.cache = SearchCache(cache_path)
        self.executor = SweepExecutor(jobs, persistent=True)
        self._solver = solver
        self.warm_start = bool(warm_start)
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._counters: Dict[str, int] = {
            "requests": 0,
            "engine_solves": 0,
            "dedup_hits": 0,
            "errors": 0,
            "warm_start_hits": 0,
        }
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Core solve path: cache -> in-flight dedup -> engine
    # ------------------------------------------------------------------
    def _solve_fn(self) -> Callable[[SearchTask], Tuple[str, Any]]:
        if self._solver is None:
            return _solve_capturing
        injected = self._solver

        def call(task: SearchTask) -> Tuple[str, Any]:
            try:
                return ("ok", injected(task))
            except (ValueError, KeyError) as exc:
                return ("error", str(exc.args[0] if exc.args else exc))

        return call

    def solve_batch(
        self,
        tasks: Sequence[SearchTask],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> Tuple[List[Any], List[str]]:
        """Solve every task, returning ``(results, sources)`` in input order.

        Each task is satisfied from, in order of preference: the warm
        in-memory cache (``"cache"``), an identical solve another request
        currently has in flight (``"dedup"`` — this thread waits on the
        owner's future instead of re-solving), or a fresh engine solve
        (``"solved"``) fanned onto the shared worker pool.  Duplicate
        fingerprints *within* the batch are solved once.

        ``progress`` fires as ``progress(done, total)`` over the batch —
        cache hits immediately, solved/attached tasks as they complete.
        """
        tasks = list(tasks)
        total = len(tasks)
        results: List[Any] = [None] * total
        sources: List[str] = ["cache"] * total
        owned: Dict[str, Future] = {}
        owned_order: List[str] = []
        owned_tasks: List[SearchTask] = []
        attached: List[Tuple[int, Future]] = []
        positions: Dict[str, List[int]] = {}
        done = 0

        with self._lock:
            self._counters["requests"] += 1
            for idx, task in enumerate(tasks):
                fp = SearchCache.fingerprint(task)
                if fp in positions:  # duplicate within this batch
                    positions[fp].append(idx)
                    continue
                hit = self.cache.get(task)
                if hit is not None:
                    results[idx] = hit
                    done += 1
                    continue
                positions[fp] = [idx]
                fut = self._inflight.get(fp)
                if fut is not None:
                    self._counters["dedup_hits"] += 1
                    attached.append((idx, fut))
                else:
                    fut = Future()
                    self._inflight[fp] = fut
                    owned[fp] = fut
                    owned_order.append(fp)
                    owned_tasks.append(task)
        if progress is not None and done:
            progress(done, total)

        try:
            if owned_tasks:
                dispatch = owned_tasks
                if self.warm_start:
                    # Seed each miss from the nearest prior winner of its
                    # structure.  Hints are compare-excluded on SearchTask,
                    # so the in-flight fingerprints (computed on the bare
                    # tasks above) still match the hinted copies.
                    dispatch = [
                        replace(task, warm_hints=self.cache.warm_hints(task))
                        for task in owned_tasks
                    ]
                solved = self.executor.map(
                    self._solve_fn(),
                    dispatch,
                    progress=progress,
                    _done_offset=done,
                    _total=total,
                )
                done += len(owned_tasks)
                dirty = False
                for fp, task, outcome in zip(owned_order, owned_tasks, solved):
                    status, value = outcome
                    with self._lock:
                        self._counters["engine_solves"] += 1
                        if status == "ok":
                            self.cache.put(task, value)
                            dirty = True
                            stats = getattr(value, "statistics", None)
                            self._counters["warm_start_hits"] += getattr(
                                stats, "warm_start_hits", 0
                            )
                        else:
                            self._counters["errors"] += 1
                    if status == "ok":
                        owned[fp].set_result(value)
                    else:
                        owned[fp].set_exception(ApiError(value))
                if dirty:
                    self.cache.save()
        finally:
            # Unregister owned fingerprints even on unexpected failure, and
            # never leave an attached waiter hanging on an unresolved future.
            with self._lock:
                for fp in owned_order:
                    self._inflight.pop(fp, None)
            for fp in owned_order:
                if not owned[fp].done():
                    owned[fp].set_exception(
                        ApiError("solver aborted before producing a result", status=500)
                    )

        for fp in owned_order:
            fut = owned[fp]
            exc = fut.exception()
            if exc is not None:
                raise exc
            for idx in positions[fp]:
                results[idx] = fut.result()
                sources[idx] = "solved"
            # In-batch duplicates complete "for free" with their unique
            # solve; report them so progress still reaches the total.
            for _ in positions[fp][1:]:
                done += 1
                if progress is not None:
                    progress(done, total)
        for idx, fut in attached:
            exc = fut.exception()  # waits for the owner
            if exc is not None:
                raise exc if isinstance(exc, ApiError) else ApiError(str(exc), status=500)
            for pos in positions[SearchCache.fingerprint(tasks[idx])]:
                results[pos] = fut.result()
                sources[pos] = "dedup"
            for _ in positions[SearchCache.fingerprint(tasks[idx])]:
                done += 1
                if progress is not None:
                    progress(done, total)
        return results, sources

    def solve_task(
        self,
        task: SearchTask,
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> Tuple[Any, str]:
        """Solve one task; returns ``(result, source)`` (a batch of one)."""
        results, sources = self.solve_batch([task], progress=progress)
        return results[0], sources[0]

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------
    def solve_events(
        self,
        tasks: Sequence[SearchTask],
        *,
        body: Callable[[List[Any], List[str]], Dict[str, Any]],
    ) -> Iterator[Dict[str, Any]]:
        """Yield NDJSON-ready events for a (batch) solve.

        Event order: one ``accepted`` event (with the batch size), then
        ``progress`` events as points complete — fed by the executor's
        ``progress(done, total)`` hook — and finally exactly one ``result``
        (rendered by ``body``) or ``error`` event.  The solve runs on a
        helper thread so events stream while the engine works.
        """
        tasks = list(tasks)
        events: "queue.Queue" = queue.Queue()

        def report(done: int, total: int) -> None:
            events.put({"event": "progress", "done": done, "total": total})

        def work() -> None:
            try:
                results, sources = self.solve_batch(tasks, progress=report)
                events.put({"event": "result", **body(results, sources)})
            except ApiError as exc:
                events.put({"event": "error", **exc.body()})
            except Exception as exc:  # noqa: BLE001 — stream must terminate
                events.put({"event": "error", "error": str(exc), "status": 500})
            events.put(_STREAM_END)

        yield {"event": "accepted", "tasks": len(tasks)}
        worker = threading.Thread(target=work, daemon=True)
        worker.start()
        while True:
            item = events.get()
            if item is _STREAM_END:
                break
            yield item

    # ------------------------------------------------------------------
    # Endpoint-facing methods (payload dict in, body dict out)
    # ------------------------------------------------------------------
    def search(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/search`` — one training search."""
        task = schema.parse_search_request(payload)
        result, source = self.solve_task(task)
        return schema.result_body(result, source=source)

    def search_events(self, payload: Any) -> Iterator[Dict[str, Any]]:
        """Streaming variant of :meth:`search` (``"stream": true``)."""
        task = schema.parse_search_request(payload)
        return self.solve_events(
            [task],
            body=lambda results, sources: schema.result_body(results[0], source=sources[0]),
        )

    def serve(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/serve`` — one inference-serving search."""
        task = schema.parse_serve_request(payload)
        result, source = self.solve_task(task)
        return schema.result_body(result, source=source)

    def serve_events(self, payload: Any) -> Iterator[Dict[str, Any]]:
        """Streaming variant of :meth:`serve`."""
        task = schema.parse_serve_request(payload)
        return self.solve_events(
            [task],
            body=lambda results, sources: schema.result_body(results[0], source=sources[0]),
        )

    def pareto(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/pareto`` — one multi-objective (frontier) search."""
        task = schema.parse_pareto_request(payload)
        result, source = self.solve_task(task)
        return schema.pareto_body(result, source=source)

    def pareto_events(self, payload: Any) -> Iterator[Dict[str, Any]]:
        """Streaming variant of :meth:`pareto`.

        On top of the usual ``accepted``/``progress``/``result`` stream,
        every frontier member is emitted as its own ``frontier`` event line
        just before the final ``result`` — a client can render the frontier
        incrementally without parsing the (larger) result body, which
        therefore omits the ``frontier`` list it already streamed.
        """
        task = schema.parse_pareto_request(payload)

        def stream() -> Iterator[Dict[str, Any]]:
            events = self.solve_events(
                [task],
                body=lambda results, sources: schema.pareto_body(
                    results[0], source=sources[0]
                ),
            )
            for event in events:
                if event.get("event") == "result":
                    for point in event.pop("frontier", ()):
                        yield {"event": "frontier", "point": point}
                yield event

        return stream()

    def sweep(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/sweep`` — a batch of searches over a GPU-count list."""
        tasks = schema.parse_sweep_request(payload)
        results, sources = self.solve_batch(tasks)
        return schema.sweep_body(results, sources)

    def sweep_events(self, payload: Any) -> Iterator[Dict[str, Any]]:
        """Streaming variant of :meth:`sweep`."""
        tasks = schema.parse_sweep_request(payload)
        return self.solve_events(tasks, body=schema.sweep_body)

    def evaluate(self, payload: Any) -> Dict[str, Any]:
        """``POST /v1/evaluate`` — price one explicit configuration.

        A single deterministic plan build, so it runs inline (no cache
        entry, no dedup): the engine's own memoization makes repeats cheap.
        """
        with self._lock:
            self._counters["requests"] += 1
        estimate = schema.run_evaluate(schema.parse_evaluate_request(payload))
        return schema.evaluate_body(estimate)

    def status(self) -> Dict[str, Any]:
        """``GET /v1/status`` — counters the smoke tests and operators read."""
        with self._lock:
            counters = dict(self._counters)
            in_flight = len(self._inflight)
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self.executor.jobs,
            "in_flight": in_flight,
            **counters,
            "warm_start": self.warm_start,
            "cache": {
                **self.cache.stats(),
                "path": str(self.cache.path) if self.cache.path else None,
            },
        }

    def close(self) -> None:
        """Release the worker pool and persist the cache one last time."""
        self.executor.close()
        self.cache.save()
