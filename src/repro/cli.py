"""Command-line interface: ``repro-perf``.

Sub-commands map onto the paper's experiments:

* ``repro-perf search`` — optimal-configuration search at one scale;
* ``repro-perf pareto`` — multi-objective search: the Pareto frontier of
  the same space under iteration time, HBM headroom, $-cost and energy
  (:mod:`repro.core.objectives`);
* ``repro-perf serve`` — inference-serving search: prefill/decode latency
  (TTFT/TPOT), paged KV-cache capacity and continuous-batching throughput
  over the same EP/TP/PP/DP space (:mod:`repro.core.inference`);
* ``repro-perf scaling`` — strong-scaling sweep (Fig. 4 / A3);
* ``repro-perf systems`` — GPU-generation x NVS-domain grid in training days
  (Fig. 5);
* ``repro-perf speedup`` — 2D TP speedups over 1D TP (Fig. A4);
* ``repro-perf validate`` — comparison with the paper's Megatron-LM
  validation numbers (§IV);
* ``repro-perf collectives`` — analytic vs simulated collective times
  (Fig. A1);
* ``repro-perf workloads`` — list the registered workload scenarios;
* ``repro-perf schedules`` — list the registered pipeline schedules;
* ``repro-perf api`` — long-running planning service: the same searches as
  a JSON API over a persistent process with a warm shared cache, in-flight
  request dedup and streaming progress (:mod:`repro.serve_api`).

Every command that takes a model accepts ``--workload`` (preferred; resolves
through the pluggable registry in :mod:`repro.core.workloads`, including MoE
and GQA scenarios) as well as the legacy ``--model`` alias, plus the
scenario knobs ``--zero-stage 0..3`` (ZeRO sharding),
``--expert-parallel auto|N`` (MoE expert-parallel degree searched or fixed)
and ``--schedule 1f1b|gpipe|interleaved`` / ``--virtual-stages N`` (the
pipeline schedule, resolved through :mod:`repro.core.schedules`).  ``search``
additionally offers ``--explain-plan`` to print the winning candidate's
phase-level cost plan.

Each command prints a plain-text table and can additionally archive the raw
series as JSON via ``--json PATH``.

The sweep commands (``scaling``, ``systems``, ``speedup``) additionally
accept ``--jobs N`` to fan the independent searches across N worker
processes (results are identical to serial execution) and ``--cache PATH``
to persist solved points in a content-addressed JSON cache that later
sweeps — including different commands over overlapping grids — reuse.
Sweep points warm-start each other by default (each point's winner seeds
the next point's branch-and-bound incumbent; identical results, fewer
candidates evaluated); ``--no-warm-start`` disables it.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import List, Optional, Sequence

from repro.analysis.differential import (
    build_default_grid,
    format_failure_diff,
    run_differential_grid,
)
from repro.analysis.reporting import (
    render_differential,
    render_plan_phases,
    render_scaling_sweep,
    render_serving_report,
    render_speedups,
    render_system_grid,
    render_validation,
)
from repro.analysis.speedups import speedup_sweep
from repro.analysis.sweeps import scaling_sweep, system_grid_sweep
from repro.analysis.validation import run_validation
from repro.core.backends import DEFAULT_BACKEND as DEFAULT_EVAL_BACKEND
from repro.core.backends import available_backends
from repro.core.config_space import DEFAULT_SEARCH_SPACE, SearchSpace
from repro.core.execution import DEFAULT_OPTIONS, ModelingOptions
from repro.core.inference import (
    SERVING_OBJECTIVES,
    ServingSpec,
    find_serving_config,
)
from repro.core.objectives import DEFAULT_PARETO_OBJECTIVES, registered_objectives
from repro.core.search import (
    DEFAULT_EVAL_MODE,
    EVAL_MODES,
    find_optimal_config,
    find_pareto_configs,
)
from repro.core.schedules import (
    DEFAULT_SCHEDULE,
    available_schedules,
    get_schedule,
)
from repro.core.system import make_perlmutter, make_system
from repro.core.workloads import available_workloads, get_workload, scenario_space
from repro.runtime import SearchCache
from repro.simulate.cluster import ClusterTopology
from repro.simulate.ring import sweep_volumes
from repro.utils.serialization import dump_json
from repro.utils.tables import format_table


def _add_common_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        default=None,
        help="workload scenario from the registry (see `repro-perf workloads`); "
        "takes precedence over --model",
    )
    parser.add_argument("--model", default="gpt3-1t", help="model preset name (legacy alias)")
    parser.add_argument("--gpu", default="B200", help="GPU generation (A100/H200/B200)")
    parser.add_argument("--nvs", type=int, default=8, help="NVSwitch domain size")
    parser.add_argument("--global-batch", type=int, default=4096, help="global batch size")
    parser.add_argument(
        "--strategy", default="tp1d", help="tp1d, tp2d, summa or 'all'"
    )
    parser.add_argument(
        "--zero-stage",
        type=int,
        choices=(0, 1, 2, 3),
        default=None,
        help="ZeRO sharding stage (default: the paper's distributed optimizer, stage 1)",
    )
    parser.add_argument(
        "--expert-parallel",
        type=_parse_expert_parallel,
        default="auto",
        help="MoE expert-parallel degree: 'auto' searches every admissible "
        "degree, an integer fixes it (ignored for dense workloads)",
    )
    parser.add_argument(
        "--schedule",
        default=None,
        help="pipeline schedule (see `repro-perf schedules`); default: the "
        "workload's preset, usually 1f1b",
    )
    parser.add_argument(
        "--virtual-stages",
        type=int,
        default=None,
        help="virtual-stage degree for interleaving schedules (requires a "
        "schedule that supports it, e.g. --schedule interleaved)",
    )
    parser.add_argument(
        "--backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=available_backends(),
        help="evaluation backend: 'analytic' (paper's closed forms, default) "
        "or 'sim' (message-level ring/schedule replay oracle)",
    )
    parser.add_argument(
        "--eval-mode",
        default=DEFAULT_EVAL_MODE,
        choices=EVAL_MODES,
        help="candidate pricing: 'scalar' (per-candidate oracle, default) or "
        "'batch' (vectorized NumPy pricer; identical results, several times "
        "faster; analytic backend only)",
    )
    parser.add_argument("--json", default=None, help="optional path to dump raw results as JSON")


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sweep (1 = serial; results are identical)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="JSON search-cache path; solved points are reused across runs",
    )
    parser.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable cross-point incumbent seeding (every point searches "
        "cold; results are identical either way)",
    )


def _parse_gpu_list(text: str) -> List[int]:
    """Parse a comma/whitespace-separated GPU-count list.

    Empty entries are skipped, duplicates are removed (first occurrence
    wins, preserving order) and malformed or non-positive tokens raise an
    ``argparse``-friendly error instead of a raw traceback.
    """
    gpus: List[int] = []
    seen = set()
    for tok in text.replace(",", " ").split():
        try:
            value = int(tok)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid GPU count {tok!r} in --gpus list {text!r}"
            ) from None
        if value < 1:
            raise argparse.ArgumentTypeError(
                f"GPU counts must be >= 1, got {value} in --gpus list {text!r}"
            )
        if value not in seen:
            seen.add(value)
            gpus.append(value)
    if not gpus:
        raise argparse.ArgumentTypeError(f"--gpus list {text!r} contains no GPU counts")
    return gpus


def _parse_expert_parallel(text: str) -> Optional[int]:
    """Parse ``--expert-parallel``: ``None`` for 'auto', a degree otherwise.

    Used as the argparse ``type=`` converter so malformed values produce a
    usage error (exit code 2), never a traceback.
    """
    raw = text.strip().lower()
    if raw in ("auto", ""):
        return None
    try:
        degree = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be 'auto' or an integer, got {text!r}"
        ) from None
    if degree < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {degree}")
    return degree


def _parse_objectives(text: str) -> List[str]:
    """Parse a comma/whitespace-separated ``--objectives`` list.

    Membership in the registry is validated by the solver (so plugins
    registered at runtime keep working); this converter only rejects an
    empty list and duplicate names with a usage error.
    """
    names = [tok for tok in text.replace(",", " ").split() if tok]
    if not names:
        raise argparse.ArgumentTypeError(f"--objectives list {text!r} names no objectives")
    if len(set(names)) != len(names):
        raise argparse.ArgumentTypeError(f"--objectives list {text!r} repeats a name")
    return names


def _resolve_model(args: argparse.Namespace):
    """Model of the requested workload (``--workload`` wins over ``--model``)."""
    return get_workload(args.workload or args.model).model


def _scenario_space(args: argparse.Namespace) -> SearchSpace:
    """Search space honouring ``--expert-parallel``, ``--schedule`` and
    ``--virtual-stages`` (unset flags fall back to the workload's presets,
    so the default space — and every reproduced figure — is unchanged).

    Thin front-end over :func:`repro.core.workloads.scenario_space` — the
    same resolver the JSON API's schema layer uses — translating its
    ``ValueError``s into one-line usage errors.
    """
    degree = _parse_expert_parallel(str(getattr(args, "expert_parallel", None) or "auto"))
    try:
        return scenario_space(
            getattr(args, "workload", None) or getattr(args, "model", "gpt3-1t"),
            schedule=getattr(args, "schedule", None),
            virtual_stages=getattr(args, "virtual_stages", None),
            expert_parallel=degree,
        )
    except ValueError as exc:
        raise SystemExit(f"repro-perf: error: {exc}") from None


def _scenario_options(args: argparse.Namespace) -> ModelingOptions:
    """Modeling options honouring ``--zero-stage``."""
    if getattr(args, "zero_stage", None) is None:
        return DEFAULT_OPTIONS
    return ModelingOptions(zero_stage=args.zero_stage)


def _make_cache(args: argparse.Namespace) -> Optional[SearchCache]:
    return SearchCache(args.cache) if getattr(args, "cache", None) else None


def _dump_json_report(obj, path: str) -> bool:
    """Archive ``obj`` at ``--json PATH``; one-line error instead of a traceback.

    Missing parent directories are created; paths that cannot be written —
    a parent that is a regular file, a read-only directory, a full disk —
    print a ``repro-perf: error:`` line and return ``False`` so the command
    exits non-zero without burying the already-printed report.
    """
    try:
        dump_json(obj, path)
    except OSError as exc:
        print(f"repro-perf: error: cannot write --json {path!r}: {exc}", file=sys.stderr)
        return False
    return True


def _report_cache(cache: Optional[SearchCache]) -> None:
    if cache is not None:
        stats = cache.stats()
        print(
            f"search cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['entries']} entries stored",
            file=sys.stderr,
        )


def cmd_search(args: argparse.Namespace) -> int:
    """Optimal-configuration search at one GPU count (``repro-perf search``)."""
    model = _resolve_model(args)
    system = make_system(args.gpu, args.nvs)
    result = find_optimal_config(
        model,
        system,
        n_gpus=args.gpus,
        global_batch_size=args.global_batch,
        strategy=args.strategy,
        space=_scenario_space(args),
        options=_scenario_options(args),
        top_k=args.top_k,
        backend=args.backend,
        eval_mode=args.eval_mode,
    )
    if not result.found:
        print(f"No feasible configuration for {model.name} on {system.name} with {args.gpus} GPUs")
        return 1
    best = result.best
    print(f"Best configuration for {model.name} on {system.name} with {args.gpus} GPUs:")
    if args.backend != DEFAULT_EVAL_BACKEND:
        print(f"  backend     : {args.backend}")
    print(f"  config      : {best.config.describe()}")
    print(f"  assignment  : nNVS(tp1,tp2,pp,dp) = {best.assignment.as_tuple()}")
    print(f"  iteration   : {best.total_time:.3f} s")
    print(f"  memory      : {best.memory_gb:.1f} GB")
    fractions = best.breakdown.fractions()
    print("  breakdown   : " + ", ".join(f"{k}={100 * v:.1f}%" for k, v in fractions.items()))
    print(
        f"  search      : {result.statistics.parallel_configs} parallelizations, "
        f"{result.statistics.candidates_evaluated} candidates evaluated, "
        f"{result.statistics.pruned_configs} pruned by bound"
    )
    if result.statistics.warm_start_hits:
        print(
            f"  warm start  : {result.statistics.warm_start_hits} hint(s) seeded "
            f"in {1e3 * result.statistics.warm_seed_time:.1f} ms"
        )
    if getattr(args, "explain_plan", False) and best.plan is not None:
        print(render_plan_phases(best.plan))
    if args.top_k > 1 and result.top_k:
        rows = [
            [
                est.config.describe(),
                str(est.assignment.as_tuple()),
                est.total_time,
                est.memory_gb,
            ]
            for est in result.top_k
        ]
        print(format_table(["config", "assignment", "time(s)", "mem(GB)"], rows))
    if args.json and not _dump_json_report(result.summary(), args.json):
        return 1
    return 0


def _metric_column(name: str) -> tuple:
    """Column header and value scaler for one objective's report column."""
    obj = registered_objectives().get(name)
    unit = obj.unit if obj is not None else ""
    if unit == "bytes":
        return f"{name}(GB)", 1.0 / 1e9
    return (f"{name}({unit})" if unit else name), 1.0


def cmd_pareto(args: argparse.Namespace) -> int:
    """Multi-objective configuration search (``repro-perf pareto``).

    Returns the Pareto frontier of the candidate space under the requested
    ``--objectives`` instead of the single fastest point — every
    configuration no other configuration beats on *all* objectives at once.
    """
    if args.list_objectives:
        rows = [
            [name, obj.unit or "-", "max" if obj.sign < 0 else "min", obj.description]
            for name, obj in registered_objectives().items()
        ]
        print(format_table(["objective", "unit", "direction", "description"], rows))
        return 0
    model = _resolve_model(args)
    system = make_system(args.gpu, args.nvs)
    try:
        result = find_pareto_configs(
            model,
            system,
            n_gpus=args.gpus,
            global_batch_size=args.global_batch,
            objectives=tuple(args.objectives),
            strategy=args.strategy,
            space=_scenario_space(args),
            options=_scenario_options(args),
            backend=args.backend,
            eval_mode=args.eval_mode,
        )
    except (ValueError, KeyError) as exc:
        print(f"repro-perf: error: {exc}", file=sys.stderr)
        return 2
    if not result.found:
        print(f"No feasible configuration for {model.name} on {system.name} with {args.gpus} GPUs")
        return 1
    print(
        f"Pareto frontier for {model.name} on {system.name} with {args.gpus} GPUs "
        f"({', '.join(result.objectives)}): {len(result.points)} configuration(s)"
    )
    columns = [_metric_column(name) for name in result.objectives]
    rows = [
        [p.estimate.config.describe(), str(p.estimate.assignment.as_tuple())]
        + [p.metrics[name] * scale for name, (_, scale) in zip(result.objectives, columns)]
        for p in result.points
    ]
    print(format_table(["config", "assignment"] + [header for header, _ in columns], rows))
    print(
        f"  search      : {result.statistics.parallel_configs} parallelizations, "
        f"{result.statistics.candidates_evaluated} candidates evaluated, "
        f"{result.statistics.pruned_configs} pruned by dominance bound"
    )
    if args.json:
        report = {
            "summary": result.summary(),
            "frontier": [
                {
                    "config": p.estimate.config.describe(),
                    "assignment": p.estimate.assignment.as_tuple(),
                    "metrics": p.metrics,
                }
                for p in result.points
            ],
        }
        if not _dump_json_report(report, args.json):
            return 1
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    """Strong-scaling sweep, Fig. 4 / A3 (``repro-perf scaling``)."""
    model = _resolve_model(args)
    system = make_system(args.gpu, args.nvs)
    cache = _make_cache(args)
    sweep = scaling_sweep(
        model,
        system,
        strategy=args.strategy,
        n_gpus_list=args.gpus,
        global_batch_size=args.global_batch,
        space=_scenario_space(args),
        options=_scenario_options(args),
        backend=args.backend,
        eval_mode=args.eval_mode,
        jobs=args.jobs,
        cache=cache,
        warm_start=not args.no_warm_start,
    )
    _report_cache(cache)
    print(render_scaling_sweep(sweep))
    if args.json and not _dump_json_report([p.result.summary() for p in sweep.points], args.json):
        return 1
    return 0


def cmd_systems(args: argparse.Namespace) -> int:
    """Training days across the system grid, Fig. 5 (``repro-perf systems``)."""
    model = _resolve_model(args)
    cache = _make_cache(args)
    series = system_grid_sweep(
        model,
        strategy=args.strategy,
        gpu_generations=args.generations.split(","),
        nvs_domain_sizes=[int(x) for x in args.nvs_sizes.split(",")],
        n_gpus_list=args.gpus,
        global_batch_size=args.global_batch,
        space=_scenario_space(args),
        options=_scenario_options(args),
        backend=args.backend,
        eval_mode=args.eval_mode,
        jobs=args.jobs,
        cache=cache,
        warm_start=not args.no_warm_start,
    )
    _report_cache(cache)
    print(render_system_grid(series, model.name))
    if args.json and not _dump_json_report(series, args.json):
        return 1
    return 0


def cmd_speedup(args: argparse.Namespace) -> int:
    """2D TP speedups over 1D TP, Fig. A4 (``repro-perf speedup``)."""
    model = _resolve_model(args)
    cache = _make_cache(args)
    points = speedup_sweep(
        model,
        variant_strategy=args.variant,
        baseline_strategy=args.strategy,
        gpu_generations=args.generations.split(","),
        nvs_domain_sizes=[int(x) for x in args.nvs_sizes.split(",")],
        n_gpus_list=args.gpus,
        global_batch_size=args.global_batch,
        space=_scenario_space(args),
        options=_scenario_options(args),
        backend=args.backend,
        eval_mode=args.eval_mode,
        jobs=args.jobs,
        cache=cache,
        warm_start=not args.no_warm_start,
    )
    _report_cache(cache)
    print(render_speedups(points))
    if args.json and not _dump_json_report(points, args.json):
        return 1
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Model validation (``repro-perf validate``).

    Two modes, selected by ``--backend``:

    * ``--backend analytic`` (default) — compare against the paper's
      Megatron-LM validation numbers (§IV), exactly as before;
    * ``--backend sim`` — differential validation: sweep the dense/MoE/GQA
      x schedule x TP-strategy grid, evaluate every candidate under both
      backends, and report the per-term analytic-vs-simulated deltas.
      Exits non-zero (with a per-term diff for each failure) when any term
      falls outside its documented tolerance band.
    """
    if args.backend != "sim":
        # The grid knobs only parameterize the differential mode; silently
        # dropping them would let `validate --workload moe-1t` (without
        # `--backend sim`) masquerade as a passed differential run.
        for flag, value in (("--workload", args.workload), ("--gpu", args.gpu), ("--nvs", args.nvs)):
            if value is not None:
                print(
                    f"repro-perf: error: {flag} only applies to the differential "
                    f"grid; add --backend sim",
                    file=sys.stderr,
                )
                return 2
        comparisons = run_validation(jobs=args.jobs)
        print(render_validation(comparisons))
        if args.json and not _dump_json_report(comparisons, args.json):
            return 1
        return 0

    if args.workload:
        try:
            get_workload(args.workload)
        except KeyError as exc:
            print(f"repro-perf: error: {exc.args[0]}", file=sys.stderr)
            return 2
    workloads = [args.workload] if args.workload else None
    cases = build_default_grid(workloads)
    if not cases:
        print(f"repro-perf: error: no differential cases for workload {args.workload!r}")
        return 2
    system = make_system(args.gpu or "B200", args.nvs or 8)
    results = run_differential_grid(cases, system, jobs=args.jobs)
    print(render_differential(results, system.name))
    if args.json:
        series = [
            {
                "case": r.case.name,
                "config": r.case.config.describe(),
                "ok": r.ok,
                "max_rel_error": r.max_rel_error,
                "terms": {
                    d.term: {"analytic": d.analytic, "simulated": d.simulated}
                    for d in r.deltas
                },
            }
            for r in results
        ]
        if not _dump_json_report(series, args.json):
            return 1
    failures = [r for r in results if not r.ok]
    for failure in failures:
        print(format_failure_diff(failure), file=sys.stderr)
    return 1 if failures else 0


def _resolve_serving_spec(args: argparse.Namespace) -> ServingSpec:
    """Serving spec of the workload preset with CLI overrides applied.

    Starts from the workload's ``serving`` preset (or library defaults for
    training-only workloads) and replaces exactly the fields the user set,
    so ``--arrival-rate`` alone keeps the preset's prompt/output mix.
    """
    spec = get_workload(args.workload or args.model).serving or ServingSpec()
    overrides = {}
    for flag, field in (
        ("arrival_rate", "arrival_rate"),
        ("prompt_tokens", "prompt_tokens"),
        ("output_tokens", "output_tokens"),
        ("kv_block", "kv_block_tokens"),
        ("max_batch", "max_batch_per_replica"),
        ("target_ttft", "target_ttft"),
        ("target_tpot", "target_tpot"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    try:
        return replace(spec, **overrides) if overrides else spec
    except ValueError as exc:
        raise SystemExit(f"repro-perf: error: {exc}") from None


def cmd_serve(args: argparse.Namespace) -> int:
    """Serving-configuration search (``repro-perf serve``).

    Prices prefill (TTFT), continuous-batching decode (TPOT, tokens/s/GPU)
    and the paged KV cache for every EP/TP/PP/DP split of the GPU budget,
    and reports the best configuration under ``--objective``.
    """
    try:
        model = _resolve_model(args)
        serving = _resolve_serving_spec(args)
    except KeyError as exc:
        print(f"repro-perf: error: {exc.args[0]}", file=sys.stderr)
        return 2
    system = make_system(args.gpu, args.nvs)
    try:
        result = find_serving_config(
            model,
            system,
            n_gpus=args.gpus,
            serving=serving,
            objective=args.objective,
            options=_scenario_options(args),
            top_k=args.top_k,
            backend=args.backend,
            eval_mode=args.eval_mode,
        )
    except ValueError as exc:
        print(f"repro-perf: error: {exc}", file=sys.stderr)
        return 2
    print(render_serving_report(result))
    if result.found and getattr(args, "explain_plan", False) and result.best.plan is not None:
        print(render_plan_phases(result.best.plan))
    if args.json and not _dump_json_report(result.summary(), args.json):
        return 1
    return 0 if result.found else 1


def cmd_collectives(args: argparse.Namespace) -> int:
    """Analytic vs simulated collective times, Fig. A1 (``repro-perf collectives``)."""
    system = make_perlmutter(args.nvlink)
    topology = ClusterTopology.from_system(system, args.gpus)
    volumes = [2.0**exp * 1e6 for exp in range(0, 14)]
    results = sweep_volumes(
        args.collective,
        volumes,
        topology,
        system.network,
        group_size=args.gpus,
        gpus_per_nvs_domain=args.nvlink,
    )
    rows = [
        [r.volume_bytes / 1e9, r.simulated_time, r.analytic_time, 100 * r.relative_error]
        for r in results
    ]
    print(
        f"{args.collective} on {args.gpus} GPUs ({args.nvlink} GPUs/node fast domain)\n"
        + format_table(["volume(GB)", "simulated(s)", "analytic(s)", "error(%)"], rows)
    )
    if args.json and not _dump_json_report(results, args.json):
        return 1
    return 0


def cmd_schedules(args: argparse.Namespace) -> int:
    """List the registered pipeline schedules (``repro-perf schedules``)."""
    rows = []
    summaries = []
    for name in available_schedules():
        schedule = get_schedule(name)
        summaries.append(schedule.summary())
        rows.append(
            [
                name + (" (default)" if name == DEFAULT_SCHEDULE else ""),
                "yes" if schedule.supports_virtual_stages else "no",
                schedule.description,
            ]
        )
    print(format_table(["schedule", "virtual stages", "description"], rows))
    if args.json and not _dump_json_report(summaries, args.json):
        return 1
    return 0


def cmd_workloads(args: argparse.Namespace) -> int:
    """List the registered workload scenarios (``repro-perf workloads``)."""
    rows = []
    specs = []
    for name in available_workloads():
        spec = get_workload(name)
        if spec.name.lower() != name:
            continue  # alias rows (e.g. vit-long) would duplicate the listing
        specs.append(spec)
        model = spec.model
        rows.append(
            [
                name,
                model.total_params / 1e9,
                model.active_params / 1e9,
                f"{model.num_experts}x" + (f"top{model.moe_top_k}" if model.is_moe else "dense"),
                f"{model.kv_heads}/{model.num_heads}",
                spec.description,
            ]
        )
    print(
        format_table(
            ["workload", "params(B)", "active(B)", "experts", "kv/q heads", "description"],
            rows,
        )
    )
    if args.json and not _dump_json_report([spec.summary() for spec in specs], args.json):
        return 1
    return 0


def cmd_api(args: argparse.Namespace) -> int:
    """Long-running planning service (``repro-perf api``).

    Boots the stdlib JSON API of :mod:`repro.serve_api` and blocks until
    interrupted.  One process-wide ``SearchCache`` stays hot in memory
    across requests (persisted to ``--cache`` when given), identical
    in-flight searches are deduplicated, and ``--jobs`` sizes the shared
    worker pool sweeps fan out over.  See ``docs/service.md`` for the
    endpoint and schema reference.
    """
    # Local import: the one-shot commands must not pay for (or depend on)
    # the service layer.
    from repro.serve_api import ApiError, PlannerApp, create_server

    app = PlannerApp(
        cache_path=args.cache,
        jobs=args.jobs,
        warm_start=not args.no_warm_start,
    )
    try:
        server = create_server(args.host, args.port, app=app, quiet=args.quiet)
    except (ApiError, OSError) as exc:
        print(f"repro-perf: error: cannot start API server: {exc}", file=sys.stderr)
        return 1
    host, port = server.server_address[:2]
    print(
        f"repro-perf api: serving on http://{host}:{port} "
        f"(jobs={app.executor.jobs}, cache={args.cache or 'in-memory'})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-perf api: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        app.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-perf`` argument parser (one sub-command per experiment)."""
    parser = argparse.ArgumentParser(
        prog="repro-perf",
        description="Analytical performance model for foundation-model training (SC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("search", help="optimal-configuration search at one GPU count")
    _add_common_model_args(p)
    p.add_argument("--gpus", type=int, default=1024, help="number of GPUs")
    p.add_argument("--top-k", type=int, default=1, help="also print the k best configurations")
    p.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the winning configuration's phase-level cost plan",
    )
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "pareto",
        help="multi-objective search: the Pareto frontier over iteration "
        "time, HBM headroom, $-cost and energy",
    )
    _add_common_model_args(p)
    p.add_argument("--gpus", type=int, default=1024, help="number of GPUs")
    p.add_argument(
        "--objectives",
        type=_parse_objectives,
        default=list(DEFAULT_PARETO_OBJECTIVES),
        help="comma-separated objective names (see --list-objectives); "
        f"default: {','.join(DEFAULT_PARETO_OBJECTIVES)}",
    )
    p.add_argument(
        "--list-objectives",
        action="store_true",
        help="list the registered objectives and exit",
    )
    p.set_defaults(func=cmd_pareto)

    p = sub.add_parser(
        "serve",
        help="inference-serving search: prefill/decode latency, KV-cache "
        "capacity and continuous-batching throughput",
    )
    p.add_argument(
        "--workload",
        default=None,
        help="workload scenario (serving presets: llama70b-serve, "
        "moe-mixtral-serve); takes precedence over --model",
    )
    p.add_argument("--model", default="llama70b-serve", help="model preset name (legacy alias)")
    p.add_argument("--gpu", default="B200", help="GPU generation (A100/H200/B200)")
    p.add_argument("--nvs", type=int, default=8, help="NVSwitch domain size")
    p.add_argument("--gpus", type=int, default=8, help="number of GPUs")
    p.add_argument(
        "--objective",
        default="throughput",
        choices=SERVING_OBJECTIVES,
        help="what to optimise: sustainable tokens/s/GPU (throughput, "
        "default), time-to-first-token (ttft) or time-per-output-token (tpot)",
    )
    p.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        help="cluster-wide request arrival rate in req/s (default: the "
        "workload preset's)",
    )
    p.add_argument(
        "--prompt-tokens", type=int, default=None, help="prompt length per request (tokens)"
    )
    p.add_argument(
        "--output-tokens", type=int, default=None, help="generated tokens per request"
    )
    p.add_argument(
        "--kv-block",
        type=int,
        default=None,
        help="paged-KV block granularity in tokens (default: preset, usually 16)",
    )
    p.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="scheduler cap on concurrently decoding sequences per replica",
    )
    p.add_argument(
        "--target-ttft",
        type=float,
        default=None,
        help="TTFT service-level objective in seconds (configurations above "
        "it are infeasible)",
    )
    p.add_argument(
        "--target-tpot",
        type=float,
        default=None,
        help="TPOT service-level objective in seconds",
    )
    p.add_argument("--top-k", type=int, default=1, help="also print the k best configurations")
    p.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the winning configuration's phase-level cost plan "
        "(prefill + decode phases of one request)",
    )
    p.add_argument(
        "--backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=available_backends(),
        help="evaluation backend for the comm terms (analytic default)",
    )
    p.add_argument(
        "--eval-mode",
        default=DEFAULT_EVAL_MODE,
        choices=EVAL_MODES,
        help="candidate pricing: 'scalar' (default) or 'batch' (vectorized "
        "prefill-comm pricing; byte-identical results)",
    )
    p.add_argument("--json", default=None, help="optional path to dump raw results as JSON")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("scaling", help="strong-scaling sweep (Fig. 4 / A3)")
    _add_common_model_args(p)
    _add_runtime_args(p)
    p.add_argument(
        "--gpus", type=_parse_gpu_list, default="128,256,512,1024,2048,4096,8192,16384"
    )
    p.set_defaults(func=cmd_scaling)

    p = sub.add_parser("systems", help="GPU-generation x NVS grid in training days (Fig. 5)")
    _add_common_model_args(p)
    _add_runtime_args(p)
    p.add_argument("--gpus", type=_parse_gpu_list, default="1024,4096,16384")
    p.add_argument("--generations", default="A100,H200,B200")
    p.add_argument("--nvs-sizes", default="4,8,64")
    p.set_defaults(func=cmd_systems)

    p = sub.add_parser("speedup", help="2D TP speedups over 1D TP (Fig. A4)")
    _add_common_model_args(p)
    _add_runtime_args(p)
    p.add_argument("--variant", default="summa", help="variant strategy (tp2d or summa)")
    p.add_argument("--gpus", type=_parse_gpu_list, default="1024,4096,16384")
    p.add_argument("--generations", default="A100,B200")
    p.add_argument("--nvs-sizes", default="8,64")
    p.set_defaults(func=cmd_speedup)

    p = sub.add_parser(
        "validate",
        help="validate the model: against the paper's Megatron-LM numbers "
        "(default) or against the message-level sim oracle (--backend sim)",
    )
    p.add_argument("--json", default=None)
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the case evaluations (1 = serial)",
    )
    p.add_argument(
        "--backend",
        default=DEFAULT_EVAL_BACKEND,
        choices=available_backends(),
        help="'analytic': reproduce the paper's §IV comparison; 'sim': run "
        "the analytic-vs-simulated differential grid",
    )
    p.add_argument(
        "--workload",
        default=None,
        help="restrict the differential grid to one workload "
        "(e.g. --workload moe-1t; sim backend only)",
    )
    p.add_argument(
        "--gpu",
        default=None,
        help="GPU generation for the differential grid (sim backend only; "
        "default B200)",
    )
    p.add_argument(
        "--nvs",
        type=int,
        default=None,
        help="NVSwitch domain size for the grid (sim backend only; default 8)",
    )
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser(
        "api",
        help="long-running planning service: JSON API with a warm shared "
        "cache, request dedup and streaming progress (see docs/service.md)",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=8421,
        help="bind port (0 picks an ephemeral port, printed at start-up)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes of the shared solve pool (sweep requests fan "
        "out over them; 1 solves in the request thread)",
    )
    p.add_argument(
        "--cache",
        default=None,
        help="JSON search-cache path: loaded once at start-up, kept hot in "
        "memory, saved after every solved batch (omit for in-memory only)",
    )
    p.add_argument(
        "--no-warm-start",
        action="store_true",
        help="disable hint-index incumbent seeding for API requests "
        "(results are identical either way)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress the per-request access log"
    )
    p.set_defaults(func=cmd_api)

    p = sub.add_parser("workloads", help="list the registered workload scenarios")
    p.add_argument("--json", default=None)
    p.set_defaults(func=cmd_workloads)

    p = sub.add_parser("schedules", help="list the registered pipeline schedules")
    p.add_argument("--json", default=None)
    p.set_defaults(func=cmd_schedules)

    p = sub.add_parser("collectives", help="analytic vs simulated collective times (Fig. A1)")
    p.add_argument("--gpus", type=int, default=32)
    p.add_argument("--nvlink", type=int, default=4, help="GPUs per node in the fast domain (2 or 4)")
    p.add_argument("--collective", default="all_gather")
    p.add_argument("--json", default=None)
    p.set_defaults(func=cmd_collectives)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-perf`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
