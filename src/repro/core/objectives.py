"""Pluggable search objectives and their admissible lower bounds.

The classic search (:func:`repro.core.search.find_optimal_config`) minimises
one scalar — the training iteration time.  The multi-objective search
(:func:`repro.core.search.find_pareto_configs`) instead scores every
candidate with a *vector* of metrics and returns the Pareto frontier: the
set of candidates no other candidate dominates.  This module defines the
metric vocabulary:

* :class:`Objective` — one named metric.  Every registered objective is
  **time-affine**: its canonical (minimised) value is
  ``offset + slope * total_time`` where ``offset`` and ``slope >= 0``
  depend only on the parallelization (never on the NVS assignment).  That
  single structural guarantee buys three things at once:

  1. an **admissible per-objective lower bound** — plugging the
     assignment-independent time lower bound
     (:func:`repro.core.execution.config_time_lower_bound`) into the affine
     form bounds the canonical value from below, so branch-and-bound can
     prune whole parallelizations against the incumbent frontier;
  2. **vectorization for free** — the batch pricer's bit-exact candidate
     times turn into metric vectors with one multiply-add per objective;
  3. **scalar/batch bit-identity** — both eval modes compute every vector
     from the same float inputs with the same float expression.

* the built-in registry: ``time`` (iteration seconds), ``hbm_headroom``
  (spare HBM per GPU, maximised), ``cost`` (USD per iteration, priced off
  :func:`repro.core.system.gpu_hourly_price`) and ``energy`` (joules per
  iteration from the roofline FLOP/byte activity counts and
  :func:`repro.core.system.gpu_energy_rates`).

Maximised objectives carry ``sign = -1``: the search works throughout in
*canonical* (minimised) space — ``canonical = sign * raw`` — and converts
back to raw values only for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.execution import (
    DEFAULT_OPTIONS,
    ModelingOptions,
    config_compute_profile,
    config_time_lower_bound,
    estimate_config_memory,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.system import SystemSpec, gpu_energy_rates, gpu_hourly_price

__all__ = [
    "DEFAULT_PARETO_OBJECTIVES",
    "Objective",
    "ObjectiveContext",
    "get_objective",
    "register_objective",
    "registered_objectives",
    "resolve_objectives",
]


@dataclass(frozen=True)
class ObjectiveContext:
    """Per-search inputs every objective may price against.

    One context is built per search call; it carries everything that is
    constant across the enumeration (the candidate itself arrives
    separately, per :meth:`Objective.coefficients` call).
    """

    model: TransformerConfig
    system: SystemSpec
    n_gpus: int
    global_batch_size: int
    options: ModelingOptions = DEFAULT_OPTIONS


class Objective:
    """One named, time-affine search metric.

    Subclasses implement :meth:`coefficients`, returning the canonical
    (minimised) affine form ``(offset, slope)`` of one parallelization:
    ``canonical_value = offset + slope * total_time`` with ``slope >= 0``
    and both terms independent of the NVS assignment.  Everything else —
    the admissible lower bound, raw-value conversion, vectorized pricing —
    derives from that form.
    """

    #: Registry key (``--objectives`` token, API payload entry).
    name: str = ""
    #: Unit of the *raw* value, for reports.
    unit: str = ""
    #: ``+1`` for minimised metrics, ``-1`` for maximised ones.
    sign: float = 1.0
    #: One-line description shown by ``repro-perf pareto --list-objectives``.
    description: str = ""

    def coefficients(
        self, config: ParallelConfig, ctx: ObjectiveContext
    ) -> Tuple[float, float]:
        """Canonical affine form ``(offset, slope)`` of ``config``."""
        raise NotImplementedError

    def lower_bound(
        self, config: ParallelConfig, ctx: ObjectiveContext, time_bound: float
    ) -> float:
        """Admissible canonical lower bound of ``config``.

        ``time_bound`` is the assignment-independent iteration-time lower
        bound; with ``slope >= 0`` the affine form is monotone in time, so
        substituting the bound yields a true canonical lower bound over all
        assignments.
        """
        offset, slope = self.coefficients(config, ctx)
        return offset + slope * time_bound

    def raw(self, canonical: float) -> float:
        """Convert a canonical (minimised) value back to the raw metric."""
        return self.sign * canonical


class TimeObjective(Objective):
    """The training iteration time itself (the classic scalar objective)."""

    name = "time"
    unit = "s"
    sign = 1.0
    description = "training iteration time (seconds, minimised)"

    def coefficients(
        self, config: ParallelConfig, ctx: ObjectiveContext
    ) -> Tuple[float, float]:
        """Identity form: the canonical value *is* the iteration time."""
        return 0.0, 1.0


class HbmHeadroomObjective(Objective):
    """Spare HBM per GPU — capacity minus the configuration's footprint.

    Maximised: a design with more headroom tolerates batch growth, longer
    sequences and activation spikes.  The footprint is assignment- and
    time-independent, so the canonical form is a pure offset and the lower
    bound is exact.
    """

    name = "hbm_headroom"
    unit = "bytes"
    sign = -1.0
    description = "spare HBM per GPU (bytes, maximised)"

    def coefficients(
        self, config: ParallelConfig, ctx: ObjectiveContext
    ) -> Tuple[float, float]:
        """Canonical offset ``footprint - capacity`` (so less is better)."""
        memory = estimate_config_memory(
            ctx.model,
            config,
            global_batch_size=ctx.global_batch_size,
            options=ctx.options,
        )
        return memory.total_bytes - ctx.system.gpu.hbm_capacity, 0.0


class CostObjective(Objective):
    """Rental cost of one iteration in USD across the whole job.

    ``n_gpus * hourly_price / 3600`` dollars per second of iteration time —
    a pure positive slope, so the admissible bound is the time bound priced
    at the same rate.
    """

    name = "cost"
    unit = "USD"
    sign = 1.0
    description = "rental cost per iteration (USD, minimised)"

    def coefficients(
        self, config: ParallelConfig, ctx: ObjectiveContext
    ) -> Tuple[float, float]:
        """Slope = fleet-wide dollars per second of iteration time."""
        rate = ctx.n_gpus * gpu_hourly_price(ctx.system.gpu) / 3600.0
        return 0.0, rate


class EnergyObjective(Objective):
    """Activity energy of one iteration in joules across the whole job.

    Prices the roofline FLOP and HBM-byte counts of the configuration
    (:func:`repro.core.execution.config_compute_profile`) at the GPU's
    activity-energy rates (:func:`repro.core.system.gpu_energy_rates`).
    Unlike a ``power x time`` model — which would just be the time axis
    rescaled — activity energy separates *work done* from *time taken*:
    a communication-bound configuration burns time without burning
    proportionally more FLOP energy.  Assignment- and time-independent,
    so the lower bound is exact.
    """

    name = "energy"
    unit = "J"
    sign = 1.0
    description = "activity energy per iteration (joules, minimised)"

    def coefficients(
        self, config: ParallelConfig, ctx: ObjectiveContext
    ) -> Tuple[float, float]:
        """Canonical offset = fleet joules from the FLOP/byte activity."""
        flops, hbm_bytes = config_compute_profile(
            ctx.model,
            config,
            global_batch_size=ctx.global_batch_size,
            options=ctx.options,
        )
        joules_per_flop, joules_per_byte = gpu_energy_rates(ctx.system.gpu)
        per_gpu = flops * joules_per_flop + hbm_bytes * joules_per_byte
        return ctx.n_gpus * per_gpu, 0.0


#: Registered objectives by name.  Extended via :func:`register_objective`;
#: downstream code resolves names through :func:`get_objective`.
_REGISTRY: Dict[str, Objective] = {}


def register_objective(objective: Objective) -> Objective:
    """Register ``objective`` under its :attr:`~Objective.name`.

    Re-registering a name replaces the previous objective (mirroring the
    strategy and schedule registries); returns the objective so the call
    can be used as a decorator-style one-liner.
    """
    if not objective.name:
        raise ValueError("objective must define a non-empty name")
    _REGISTRY[objective.name] = objective
    return objective


def get_objective(name: str) -> Objective:
    """Look up a registered objective by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown objective {name!r}; registered: {tuple(sorted(_REGISTRY))}"
        ) from None


def registered_objectives() -> Dict[str, Objective]:
    """Snapshot of the registry (name -> objective), sorted by name."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def resolve_objectives(names) -> Tuple[Objective, ...]:
    """Resolve a sequence of objective names, validating as a set.

    Requires at least one name and rejects duplicates — a repeated
    objective would silently double-weight nothing (dominance is
    per-component) but confuse reports and fingerprints.
    """
    names = tuple(names)
    if not names:
        raise ValueError("at least one objective is required")
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate objectives in {names!r}")
    return tuple(get_objective(name) for name in names)


register_objective(TimeObjective())
register_objective(HbmHeadroomObjective())
register_objective(CostObjective())
register_objective(EnergyObjective())

#: Default objective set of ``find_pareto_configs`` / ``repro-perf pareto``.
DEFAULT_PARETO_OBJECTIVES = ("time", "hbm_headroom", "cost", "energy")
