"""Optimal-configuration search (stage S3 of the performance model).

Given ``n`` GPUs, a global batch size and a system description, the solver
enumerates every admissible configuration — the parallelization tuple
``(b_m, n1, n2, np, nd)``, the NVSwitch-domain assignment
``(nNVS1, nNVS2, nNVSp, nNVSd)`` and, for SUMMA, the panel count ``nb`` —
evaluates the analytical iteration time of each, discards configurations
that do not fit in HBM and returns the fastest feasible one (plus search
diagnostics and, optionally, the top-k runners-up).

A cheap memory pre-filter runs before the full time evaluation: the memory
footprint does not depend on the NVS assignment, so infeasible
parallelizations are rejected before the assignment loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpace,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import (
    DEFAULT_OPTIONS,
    IterationEstimate,
    ModelingOptions,
    estimate_config_memory,
    evaluate_config,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import SystemSpec

#: Strategies searched when the caller asks for "all".
ALL_STRATEGIES = ("tp1d", "tp2d", "summa")


@dataclass(frozen=True)
class SearchStatistics:
    """Diagnostics of one search run."""

    parallel_configs: int = 0
    candidates_evaluated: int = 0
    infeasible_memory: int = 0
    infeasible_other: int = 0

    def merged(self, other: "SearchStatistics") -> "SearchStatistics":
        """Combine statistics of two (sub-)searches."""
        return SearchStatistics(
            parallel_configs=self.parallel_configs + other.parallel_configs,
            candidates_evaluated=self.candidates_evaluated + other.candidates_evaluated,
            infeasible_memory=self.infeasible_memory + other.infeasible_memory,
            infeasible_other=self.infeasible_other + other.infeasible_other,
        )


@dataclass
class SearchResult:
    """Outcome of :func:`find_optimal_config`."""

    model_name: str
    system_name: str
    n_gpus: int
    global_batch_size: int
    strategy: str
    best: Optional[IterationEstimate]
    top_k: List[IterationEstimate] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def found(self) -> bool:
        """True when at least one feasible configuration exists."""
        return self.best is not None

    @property
    def best_time(self) -> float:
        """Iteration time of the best configuration (``inf`` if none found)."""
        return self.best.total_time if self.best is not None else math.inf

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports and JSON archives."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "n_gpus": self.n_gpus,
            "global_batch": self.global_batch_size,
            "strategy": self.strategy,
            "found": self.found,
            "configs_searched": self.statistics.parallel_configs,
            "candidates_evaluated": self.statistics.candidates_evaluated,
        }
        if self.best is not None:
            out.update(self.best.summary())
        return out


def evaluate_candidates(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignments: Sequence[GpuAssignment],
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> List[IterationEstimate]:
    """Evaluate one parallelization under every NVS assignment."""
    estimates = []
    for assignment in assignments:
        estimates.append(
            evaluate_config(
                model,
                system,
                config,
                assignment,
                global_batch_size=global_batch_size,
                options=options,
            )
        )
    return estimates


def _search_single_strategy(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    options: ModelingOptions,
    top_k: int,
) -> SearchResult:
    best: Optional[IterationEstimate] = None
    leaderboard: List[IterationEstimate] = []
    n_parallel = 0
    n_eval = 0
    n_mem = 0
    n_other = 0

    for config in parallel_configs(model, n_gpus, global_batch_size, strategy, space):
        n_parallel += 1
        # Memory does not depend on the assignment: reject early.
        try:
            memory = estimate_config_memory(
                model, config, global_batch_size=global_batch_size, options=options
            )
        except ValueError:
            n_other += 1
            continue
        if not memory.fits(system.gpu.hbm_capacity):
            n_mem += 1
            continue

        assignments = gpu_assignments(config, system.nvs_domain_size, space)
        for assignment in assignments:
            n_eval += 1
            estimate = evaluate_config(
                model,
                system,
                config,
                assignment,
                global_batch_size=global_batch_size,
                options=options,
            )
            if not estimate.feasible:
                n_mem += 1
                continue
            if best is None or estimate.total_time < best.total_time:
                best = estimate
            if top_k > 0:
                leaderboard.append(estimate)

    if top_k > 0:
        leaderboard.sort(key=lambda est: est.total_time)
        leaderboard = leaderboard[:top_k]

    return SearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy=strategy,
        best=best,
        top_k=leaderboard,
        statistics=SearchStatistics(
            parallel_configs=n_parallel,
            candidates_evaluated=n_eval,
            infeasible_memory=n_mem,
            infeasible_other=n_other,
        ),
    )


def find_optimal_config(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    *,
    strategy: str | Sequence[str] = "tp1d",
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    top_k: int = 0,
    fallback_activation_checkpointing: bool = True,
) -> SearchResult:
    """Brute-force search for the fastest feasible configuration.

    ``strategy`` may be a single strategy name, a sequence of names, or
    ``"all"`` to search 1D TP, 2D TP and SUMMA together (the overall best is
    returned and the per-strategy statistics are merged).

    When no configuration fits in HBM and ``fallback_activation_checkpointing``
    is set (the default), the search is repeated once with full activation
    checkpointing enabled — recomputing each block during the backward pass —
    which is how capacity-limited systems (e.g. A100 + the long-sequence ViT)
    are handled in practice.
    """
    if isinstance(strategy, str):
        strategies: Tuple[str, ...] = ALL_STRATEGIES if strategy == "all" else (strategy,)
    else:
        strategies = tuple(strategy)
    if not strategies:
        raise ValueError("at least one strategy is required")

    results = [
        _search_single_strategy(
            model, system, n_gpus, global_batch_size, strat, space, options, top_k
        )
        for strat in strategies
    ]

    if (
        fallback_activation_checkpointing
        and not options.activation_checkpointing
        and all(res.best is None for res in results)
    ):
        from dataclasses import replace as _replace

        checkpointed = _replace(options, activation_checkpointing=True)
        results = [
            _search_single_strategy(
                model, system, n_gpus, global_batch_size, strat, space, checkpointed, top_k
            )
            for strat in strategies
        ]

    if len(results) == 1:
        return results[0]

    merged_stats = SearchStatistics()
    best_overall: Optional[IterationEstimate] = None
    merged_topk: List[IterationEstimate] = []
    for res in results:
        merged_stats = merged_stats.merged(res.statistics)
        merged_topk.extend(res.top_k)
        if res.best is not None and (
            best_overall is None or res.best.total_time < best_overall.total_time
        ):
            best_overall = res.best
    merged_topk.sort(key=lambda est: est.total_time)
    if top_k > 0:
        merged_topk = merged_topk[:top_k]

    return SearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy="+".join(strategies),
        best=best_overall,
        top_k=merged_topk,
        statistics=merged_stats,
    )


def best_assignment_for(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> IterationEstimate:
    """Evaluate ``config`` under its best NVS assignment.

    This is the helper the "rationale" experiments (Figs. 1-3) use: the
    parallelization is fixed by hand and only the GPU placement is optimised,
    mirroring the paper's methodology.
    """
    assignments = gpu_assignments(config, system.nvs_domain_size, space)
    estimates = evaluate_candidates(
        model,
        system,
        config,
        assignments,
        global_batch_size=global_batch_size,
        options=options,
    )
    feasible = [est for est in estimates if est.feasible]
    pool = feasible if feasible else estimates
    return min(pool, key=lambda est: est.total_time)
