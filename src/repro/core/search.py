"""Optimal-configuration search (stage S3 of the performance model).

Given ``n`` GPUs, a global batch size and a system description, the solver
enumerates every admissible configuration — the parallelization tuple
``(b_m, n1, n2, np, nd)``, the NVSwitch-domain assignment
``(nNVS1, nNVS2, nNVSp, nNVSd)`` and, for SUMMA, the panel count ``nb`` —
evaluates the analytical iteration time of each, discards configurations
that do not fit in HBM and returns the fastest feasible one (plus search
diagnostics and, optionally, the top-k runners-up).

A cheap memory pre-filter runs before the full time evaluation: the memory
footprint does not depend on the NVS assignment, so infeasible
parallelizations are rejected before the assignment loop.

On top of the pre-filter, the search runs branch-and-bound pruning (see
:class:`repro.core.config_space.SearchSpace.prune_with_lower_bound`):
parallelizations are ordered by an assignment-independent compute-only
lower bound and, once the incumbent optimum beats a parallelization's
bound, its entire NVS-assignment loop — and that of every later, worse
bound — is skipped.  The selected optimum (and top-k set) is provably
unchanged; :class:`SearchStatistics` records how much work was avoided.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpace,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import (
    DEFAULT_BACKEND,
    DEFAULT_OPTIONS,
    IterationEstimate,
    ModelingOptions,
    cache_stats,
    config_time_lower_bound,
    estimate_config_memory,
    evaluate_config,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import SystemSpec

#: Strategies searched when the caller asks for "all".
ALL_STRATEGIES = ("tp1d", "tp2d", "summa")

#: Objective name of the classic training search (minimise iteration time).
#: The serving objectives live in :data:`repro.core.inference.SERVING_OBJECTIVES`.
TRAINING_OBJECTIVE = "iteration"


@dataclass(frozen=True)
class SearchStatistics:
    """Diagnostics of one search run."""

    #: Parallelizations ``(b_m, n1, n2, np, nd[, nb])`` enumerated, including
    #: those later rejected by the memory pre-filter or pruned by the bound.
    parallel_configs: int = 0
    #: Full (parallelization, NVS-assignment) candidates whose iteration time
    #: was evaluated.
    candidates_evaluated: int = 0
    #: Candidates rejected because they do not fit in HBM — either by the
    #: assignment-independent memory pre-filter (counted once per
    #: parallelization) or by the per-candidate feasibility check.
    infeasible_memory: int = 0
    #: Parallelizations rejected for structural reasons (bad divisibility
    #: surfacing as ``ValueError`` during the memory estimate).
    infeasible_other: int = 0
    #: Parallelizations whose compute-only lower bound was computed for
    #: branch-and-bound ordering (0 when pruning is disabled).
    bounds_computed: int = 0
    #: Parallelizations skipped outright because their lower bound met or
    #: exceeded the incumbent optimum; their NVS-assignment loops never ran.
    pruned_configs: int = 0
    #: Hits/misses of the memoized per-layer workload cache during this
    #: search (``execution._cached_workload``) — hits mean microbatch,
    #: schedule and assignment candidates re-used an already-built workload.
    #: The counters depend on how warm the process-local caches already are,
    #: so they are diagnostics only and excluded from equality: a parallel
    #: sweep (cold workers) still compares equal to a serial one.
    workload_cache_hits: int = field(default=0, compare=False)
    workload_cache_misses: int = field(default=0, compare=False)
    #: Hits/misses of the memoized roofline stage-time cache
    #: (``execution._cached_stage_times``); stage times are shared across
    #: every schedule/assignment candidate of one TP parallelization.
    stage_cache_hits: int = field(default=0, compare=False)
    stage_cache_misses: int = field(default=0, compare=False)

    def merged(self, other: "SearchStatistics") -> "SearchStatistics":
        """Combine statistics of two (sub-)searches."""
        return SearchStatistics(
            parallel_configs=self.parallel_configs + other.parallel_configs,
            candidates_evaluated=self.candidates_evaluated + other.candidates_evaluated,
            infeasible_memory=self.infeasible_memory + other.infeasible_memory,
            infeasible_other=self.infeasible_other + other.infeasible_other,
            bounds_computed=self.bounds_computed + other.bounds_computed,
            pruned_configs=self.pruned_configs + other.pruned_configs,
            workload_cache_hits=self.workload_cache_hits + other.workload_cache_hits,
            workload_cache_misses=self.workload_cache_misses + other.workload_cache_misses,
            stage_cache_hits=self.stage_cache_hits + other.stage_cache_hits,
            stage_cache_misses=self.stage_cache_misses + other.stage_cache_misses,
        )


@dataclass
class SearchResult:
    """Outcome of :func:`find_optimal_config`."""

    model_name: str
    system_name: str
    n_gpus: int
    global_batch_size: int
    strategy: str
    best: Optional[IterationEstimate]
    top_k: List[IterationEstimate] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def found(self) -> bool:
        """True when at least one feasible configuration exists."""
        return self.best is not None

    @property
    def best_time(self) -> float:
        """Iteration time of the best configuration (``inf`` if none found)."""
        return self.best.total_time if self.best is not None else math.inf

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports and JSON archives."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "n_gpus": self.n_gpus,
            "global_batch": self.global_batch_size,
            "strategy": self.strategy,
            "found": self.found,
            "configs_searched": self.statistics.parallel_configs,
            "candidates_evaluated": self.statistics.candidates_evaluated,
            "pruned_configs": self.statistics.pruned_configs,
        }
        if self.best is not None:
            out.update(self.best.summary())
        return out


def evaluate_candidates(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignments: Sequence[GpuAssignment],
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> List[IterationEstimate]:
    """Evaluate one parallelization under every NVS assignment."""
    estimates = []
    for assignment in assignments:
        estimates.append(
            evaluate_config(
                model,
                system,
                config,
                assignment,
                global_batch_size=global_batch_size,
                options=options,
                backend=backend,
            )
        )
    return estimates


def _search_single_strategy(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    options: ModelingOptions,
    top_k: int,
    backend: str = DEFAULT_BACKEND,
) -> SearchResult:
    best: Optional[IterationEstimate] = None
    n_parallel = 0
    n_eval = 0
    n_mem = 0
    n_other = 0
    n_bounds = 0
    n_pruned = 0
    caches_before = cache_stats()
    # The compute-only lower bound is provably admissible for the analytic
    # evaluation; a simulated bubble may legitimately undercut the closed
    # form, so pruning is disabled for any non-default backend.
    prune = space.prune_with_lower_bound and backend == DEFAULT_BACKEND

    # Pass 1: memory pre-filter (assignment-independent), then compute the
    # cheap compute-only lower bound of every surviving parallelization so
    # the expensive NVS-assignment loops run in best-bound-first order.
    # Each survivor keeps its enumeration rank: exact-tie candidates are
    # resolved by (time, rank, assignment index) below, so the winner is
    # the same whether or not the bound-sorted order was applied.
    survivors: List[Tuple[float, int, ParallelConfig]] = []
    for config in parallel_configs(model, n_gpus, global_batch_size, strategy, space):
        n_parallel += 1
        # Memory does not depend on the assignment: reject early.
        try:
            memory = estimate_config_memory(
                model, config, global_batch_size=global_batch_size, options=options
            )
        except ValueError:
            n_other += 1
            continue
        if not memory.fits(system.gpu.hbm_capacity):
            n_mem += 1
            continue
        bound = 0.0
        if prune:
            bound = config_time_lower_bound(
                model, system, config, global_batch_size=global_batch_size, options=options
            )
            n_bounds += 1
        survivors.append((bound, len(survivors), config))
    if prune:
        survivors.sort(key=lambda item: item[0])

    # Pass 2: evaluate assignments, skipping every parallelization whose
    # lower bound cannot beat the incumbent.  ``threshold`` is the incumbent
    # best time — or, when a top-k leaderboard is requested, the k-th best
    # time so far, so that pruning also preserves the exact top-k set.
    #
    # The leaderboard is a bounded max-heap of the k best estimates keyed by
    # (-time, -enumeration rank, -assignment index): heap[0] is the worst
    # kept entry — which doubles as the pruning threshold — and exact time
    # ties resolve by enumeration order, independent of evaluation order.
    topk_heap: List[Tuple[float, int, int, IterationEstimate]] = []
    best_key: Tuple[float, int, int] = (math.inf, -1, -1)
    for idx, (bound, rank, config) in enumerate(survivors):
        if prune:
            if top_k > 0:
                threshold = -topk_heap[0][0] if len(topk_heap) >= top_k else math.inf
            else:
                threshold = best.total_time if best is not None else math.inf
            if bound > threshold:
                # Survivors are bound-sorted: no later one can beat (or
                # exactly tie, hence the strict >) the incumbent either.
                n_pruned += len(survivors) - idx
                break

        assignments = gpu_assignments(config, system.nvs_domain_size, space)
        for assign_idx, assignment in enumerate(assignments):
            n_eval += 1
            estimate = evaluate_config(
                model,
                system,
                config,
                assignment,
                global_batch_size=global_batch_size,
                options=options,
                backend=backend,
            )
            if not estimate.feasible:
                n_mem += 1
                continue
            key = (estimate.total_time, rank, assign_idx)
            if best is None or key < best_key:
                best = estimate
                best_key = key
            if top_k > 0:
                entry = (-estimate.total_time, -rank, -assign_idx, estimate)
                if len(topk_heap) < top_k:
                    heapq.heappush(topk_heap, entry)
                elif entry > topk_heap[0]:
                    heapq.heapreplace(topk_heap, entry)

    leaderboard = [
        est for _, _, _, est in sorted(topk_heap, key=lambda e: (-e[0], -e[1], -e[2]))
    ]

    caches_after = cache_stats()

    return SearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy=strategy,
        best=best,
        top_k=leaderboard,
        statistics=SearchStatistics(
            parallel_configs=n_parallel,
            candidates_evaluated=n_eval,
            infeasible_memory=n_mem,
            infeasible_other=n_other,
            bounds_computed=n_bounds,
            pruned_configs=n_pruned,
            workload_cache_hits=(
                caches_after["workload"]["hits"] - caches_before["workload"]["hits"]
            ),
            workload_cache_misses=(
                caches_after["workload"]["misses"] - caches_before["workload"]["misses"]
            ),
            stage_cache_hits=(
                caches_after["stage_times"]["hits"] - caches_before["stage_times"]["hits"]
            ),
            stage_cache_misses=(
                caches_after["stage_times"]["misses"] - caches_before["stage_times"]["misses"]
            ),
        ),
    )


def find_optimal_config(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    *,
    strategy: str | Sequence[str] = "tp1d",
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    top_k: int = 0,
    fallback_activation_checkpointing: bool = True,
    backend: str = DEFAULT_BACKEND,
    objective: str = TRAINING_OBJECTIVE,
    serving=None,
):
    """Brute-force search for the fastest feasible configuration.

    ``strategy`` may be a single strategy name, a sequence of names, or
    ``"all"`` to search 1D TP, 2D TP and SUMMA together (the overall best is
    returned and the per-strategy statistics are merged).

    ``backend`` selects the evaluation backend per candidate
    (:mod:`repro.core.backends`); with a non-default backend the
    branch-and-bound pruning is disabled, since the analytic lower bound is
    only provably admissible for the analytic evaluation.

    ``objective`` selects the execution regime.  The default
    (:data:`TRAINING_OBJECTIVE`) minimises the training iteration time and
    returns a :class:`SearchResult`.  The serving objectives
    (``"throughput"``, ``"ttft"``, ``"tpot"`` — see
    :mod:`repro.core.inference`) evaluate the same EP/TP/PP/DP space in
    inference mode against the ``serving`` traffic description
    (a :class:`~repro.core.inference.ServingSpec`, defaulted when omitted)
    and return a :class:`~repro.core.inference.ServingSearchResult`;
    ``global_batch_size``, ``strategy`` and the training-only knobs are
    ignored there (serving models 1D TP with round-robin decode).

    When no configuration fits in HBM and ``fallback_activation_checkpointing``
    is set (the default), the search is repeated once with full activation
    checkpointing enabled — recomputing each block during the backward pass —
    which is how capacity-limited systems (e.g. A100 + the long-sequence ViT)
    are handled in practice.
    """
    if objective != TRAINING_OBJECTIVE:
        # Local import: repro.core.inference imports this module for the
        # shared SearchStatistics, so the dependency must stay one-way.
        from repro.core.inference import ServingSpec, find_serving_config

        return find_serving_config(
            model,
            system,
            n_gpus,
            serving=serving if serving is not None else ServingSpec(),
            objective=objective,
            space=space,
            options=options,
            top_k=top_k,
            backend=backend,
        )
    if isinstance(strategy, str):
        strategies: Tuple[str, ...] = ALL_STRATEGIES if strategy == "all" else (strategy,)
    else:
        strategies = tuple(strategy)
    if not strategies:
        raise ValueError("at least one strategy is required")

    results = [
        _search_single_strategy(
            model, system, n_gpus, global_batch_size, strat, space, options, top_k, backend
        )
        for strat in strategies
    ]

    if (
        fallback_activation_checkpointing
        and not options.activation_checkpointing
        and all(res.best is None for res in results)
    ):
        from dataclasses import replace as _replace

        checkpointed = _replace(options, activation_checkpointing=True)
        results = [
            _search_single_strategy(
                model, system, n_gpus, global_batch_size, strat, space, checkpointed,
                top_k, backend,
            )
            for strat in strategies
        ]

    if len(results) == 1:
        return results[0]

    merged_stats = SearchStatistics()
    best_overall: Optional[IterationEstimate] = None
    merged_topk: List[IterationEstimate] = []
    for res in results:
        merged_stats = merged_stats.merged(res.statistics)
        merged_topk.extend(res.top_k)
        if res.best is not None and (
            best_overall is None or res.best.total_time < best_overall.total_time
        ):
            best_overall = res.best
    merged_topk.sort(key=lambda est: est.total_time)
    if top_k > 0:
        merged_topk = merged_topk[:top_k]

    return SearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy="+".join(strategies),
        best=best_overall,
        top_k=merged_topk,
        statistics=merged_stats,
    )


def best_assignment_for(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> IterationEstimate:
    """Evaluate ``config`` under its best NVS assignment.

    This is the helper the "rationale" experiments (Figs. 1-3) use: the
    parallelization is fixed by hand and only the GPU placement is optimised,
    mirroring the paper's methodology.
    """
    assignments = gpu_assignments(config, system.nvs_domain_size, space)
    estimates = evaluate_candidates(
        model,
        system,
        config,
        assignments,
        global_batch_size=global_batch_size,
        options=options,
        backend=backend,
    )
    feasible = [est for est in estimates if est.feasible]
    pool = feasible if feasible else estimates
    return min(pool, key=lambda est: est.total_time)
