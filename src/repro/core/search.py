"""Optimal-configuration search (stage S3 of the performance model).

Given ``n`` GPUs, a global batch size and a system description, the solver
enumerates every admissible configuration — the parallelization tuple
``(b_m, n1, n2, np, nd)``, the NVSwitch-domain assignment
``(nNVS1, nNVS2, nNVSp, nNVSd)`` and, for SUMMA, the panel count ``nb`` —
evaluates the analytical iteration time of each, discards configurations
that do not fit in HBM and returns the fastest feasible one (plus search
diagnostics and, optionally, the top-k runners-up).

A cheap memory pre-filter runs before the full time evaluation: the memory
footprint does not depend on the NVS assignment, so infeasible
parallelizations are rejected before the assignment loop.

On top of the pre-filter, the search runs branch-and-bound pruning (see
:class:`repro.core.config_space.SearchSpace.prune_with_lower_bound`):
parallelizations are ordered by an assignment-independent compute-only
lower bound and, once the incumbent optimum beats a parallelization's
bound, its entire NVS-assignment loop — and that of every later, worse
bound — is skipped.  The selected optimum (and top-k set) is provably
unchanged; :class:`SearchStatistics` records how much work was avoided.
"""

from __future__ import annotations

import bisect
import heapq
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpace,
    config_in_space,
    gpu_assignments,
    microbatch_candidates,
    parallel_configs,
)
from repro.core.execution import (
    DEFAULT_BACKEND,
    DEFAULT_OPTIONS,
    IterationEstimate,
    ModelingOptions,
    cache_stats,
    config_time_lower_bound,
    estimate_config_memory,
    evaluate_config,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import SystemSpec

#: Strategies searched when the caller asks for "all".
ALL_STRATEGIES = ("tp1d", "tp2d", "summa")

#: Re-exported evaluation modes (see :mod:`repro.core.batch_eval`): the
#: per-candidate scalar oracle (default) and the vectorized batch pricer.
DEFAULT_EVAL_MODE = "scalar"
EVAL_MODES = ("scalar", "batch")

#: Parallelizations priced per vectorized block in batch mode.  Large enough
#: to amortize the NumPy dispatch, small enough that the incumbent (and the
#: branch-and-bound threshold derived from it) refreshes frequently.
_BATCH_CHUNK_CONFIGS = 256

#: Objective name of the classic training search (minimise iteration time).
#: The serving objectives live in :data:`repro.core.inference.SERVING_OBJECTIVES`.
TRAINING_OBJECTIVE = "iteration"


@dataclass(frozen=True)
class SearchStatistics:
    """Diagnostics of one search run."""

    #: Parallelizations ``(b_m, n1, n2, np, nd[, nb])`` enumerated, including
    #: those later rejected by the memory pre-filter or pruned by the bound.
    parallel_configs: int = 0
    #: Full (parallelization, NVS-assignment) candidates whose iteration time
    #: was evaluated (including warm-start seed evaluations).  How many
    #: candidates the branch-and-bound actually prices depends on how tight
    #: the initial threshold is — warm hints, shared incumbents and batch
    #: chunking all shift it without changing the selected optimum — so the
    #: counter is diagnostics-only and excluded from equality.
    candidates_evaluated: int = field(default=0, compare=False)
    #: Candidates rejected because they do not fit in HBM — either by the
    #: assignment-independent memory pre-filter (counted once per
    #: parallelization) or by the per-candidate feasibility check.
    infeasible_memory: int = 0
    #: Parallelizations rejected for structural reasons (bad divisibility
    #: surfacing as ``ValueError`` during the memory estimate).
    infeasible_other: int = 0
    #: Parallelizations whose compute-only lower bound was computed for
    #: branch-and-bound ordering (0 when pruning is disabled).
    bounds_computed: int = 0
    #: Parallelizations skipped outright because their lower bound met or
    #: exceeded the incumbent optimum; their NVS-assignment loops never ran.
    #: Like :attr:`candidates_evaluated`, the count depends on the initial
    #: threshold (warm hints / shared incumbents), so it is excluded from
    #: equality.
    pruned_configs: int = field(default=0, compare=False)
    #: Of :attr:`pruned_configs`, how many were pruned only thanks to an
    #: incumbent *shared from outside this strategy's own search* — a
    #: previously-searched strategy of the same call, or another
    #: :class:`~repro.runtime.executor.SweepExecutor` worker's published
    #: bound (batch eval mode only).  Cross-worker sharing depends on worker
    #: timing, so the counter is diagnostics-only and excluded from equality.
    shared_incumbent_prunes: int = field(default=0, compare=False)
    #: Hits/misses of the memoized per-layer workload cache during this
    #: search (``execution._cached_workload``) — hits mean microbatch,
    #: schedule and assignment candidates re-used an already-built workload.
    #: The counters depend on how warm the process-local caches already are,
    #: so they are diagnostics only and excluded from equality: a parallel
    #: sweep (cold workers) still compares equal to a serial one.
    workload_cache_hits: int = field(default=0, compare=False)
    workload_cache_misses: int = field(default=0, compare=False)
    #: Hits/misses of the memoized roofline stage-time cache
    #: (``execution._cached_stage_times``); stage times are shared across
    #: every schedule/assignment candidate of one TP parallelization.
    stage_cache_hits: int = field(default=0, compare=False)
    stage_cache_misses: int = field(default=0, compare=False)
    #: Warm-start hints (winners carried over from a neighboring search
    #: point) that adapted into the current point's space and evaluated
    #: feasible, i.e. actually seeded the branch-and-bound threshold.
    warm_start_hits: int = field(default=0, compare=False)
    #: Wall-clock seconds spent adapting and evaluating warm hints before
    #: the enumeration started (0.0 for cold searches).
    warm_seed_time: float = field(default=0.0, compare=False)

    def merged(self, other: "SearchStatistics") -> "SearchStatistics":
        """Combine statistics of two (sub-)searches."""
        return SearchStatistics(
            parallel_configs=self.parallel_configs + other.parallel_configs,
            candidates_evaluated=self.candidates_evaluated + other.candidates_evaluated,
            infeasible_memory=self.infeasible_memory + other.infeasible_memory,
            infeasible_other=self.infeasible_other + other.infeasible_other,
            bounds_computed=self.bounds_computed + other.bounds_computed,
            pruned_configs=self.pruned_configs + other.pruned_configs,
            shared_incumbent_prunes=(
                self.shared_incumbent_prunes + other.shared_incumbent_prunes
            ),
            warm_start_hits=self.warm_start_hits + other.warm_start_hits,
            warm_seed_time=self.warm_seed_time + other.warm_seed_time,
            workload_cache_hits=self.workload_cache_hits + other.workload_cache_hits,
            workload_cache_misses=self.workload_cache_misses + other.workload_cache_misses,
            stage_cache_hits=self.stage_cache_hits + other.stage_cache_hits,
            stage_cache_misses=self.stage_cache_misses + other.stage_cache_misses,
        )


@dataclass
class SearchResult:
    """Outcome of :func:`find_optimal_config`."""

    model_name: str
    system_name: str
    n_gpus: int
    global_batch_size: int
    strategy: str
    best: Optional[IterationEstimate]
    top_k: List[IterationEstimate] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def found(self) -> bool:
        """True when at least one feasible configuration exists."""
        return self.best is not None

    @property
    def best_time(self) -> float:
        """Iteration time of the best configuration (``inf`` if none found)."""
        return self.best.total_time if self.best is not None else math.inf

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports and JSON archives."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "n_gpus": self.n_gpus,
            "global_batch": self.global_batch_size,
            "strategy": self.strategy,
            "found": self.found,
            "configs_searched": self.statistics.parallel_configs,
            "candidates_evaluated": self.statistics.candidates_evaluated,
            "pruned_configs": self.statistics.pruned_configs,
        }
        if self.best is not None:
            out.update(self.best.summary())
        return out


def evaluate_candidates(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignments: Sequence[GpuAssignment],
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> List[IterationEstimate]:
    """Evaluate one parallelization under every NVS assignment."""
    estimates = []
    for assignment in assignments:
        estimates.append(
            evaluate_config(
                model,
                system,
                config,
                assignment,
                global_batch_size=global_batch_size,
                options=options,
                backend=backend,
            )
        )
    return estimates


#: Adapted hint parallelizations evaluated per strategy when seeding.  Hints
#: beyond this many are ignored: each seed evaluation costs a full
#: ``evaluate_config`` sweep over the config's NVS assignments, and the first
#: (nearest) hint almost always provides the tight threshold.
MAX_WARM_HINTS = 4


def adapt_warm_hints(
    model: TransformerConfig,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    warm_hints: Sequence,
    limit: int = MAX_WARM_HINTS,
) -> List[ParallelConfig]:
    """Translate warm hints into members of the *current* point's space.

    Each hint is a :class:`ParallelConfig` (or ``(config, assignment)``
    tuple; the assignment half is ignored — assignments are re-searched at
    the current point) typically taken from a neighboring search point's
    winner.  A hint whose GPU count differs from ``n_gpus`` is rescaled by
    the integer ratio along the data-parallel axis (growing) or greedily
    across the DP, PP, TP1 and TP2 axes (shrinking); a microbatch that no longer
    divides the new per-replica batch snaps to the nearest admissible
    candidate.  Only configs that pass :func:`config_in_space` — i.e. that
    the current enumeration itself would yield — are returned, which is what
    makes their evaluated times sound branch-and-bound seeds.
    """
    adapted: List[ParallelConfig] = []
    seen = set()
    for hint in warm_hints:
        config = hint[0] if isinstance(hint, tuple) else hint
        if not isinstance(config, ParallelConfig) or config.strategy != strategy:
            continue
        total = config.total_gpus
        if total != n_gpus:
            if n_gpus % total == 0:
                config = replace(
                    config, data_parallel=config.data_parallel * (n_gpus // total)
                )
            elif total % n_gpus == 0:
                ratio = total // n_gpus
                # Greedy gcd absorption across every parallel axis the
                # strategy populates — including the second tensor axis, so
                # tp2d/summa hints shrink instead of being dropped when only
                # ``tensor_parallel_2`` can absorb the surplus ratio.
                axes = {
                    "data_parallel": config.data_parallel,
                    "pipeline_parallel": config.pipeline_parallel,
                    "tensor_parallel_1": config.tensor_parallel_1,
                    "tensor_parallel_2": config.tensor_parallel_2,
                }
                for name in axes:
                    g = math.gcd(axes[name], ratio)
                    axes[name] //= g
                    ratio //= g
                if ratio != 1:
                    continue
                config = replace(config, **axes)
            else:
                continue
        if global_batch_size % config.data_parallel != 0:
            continue
        ep = math.gcd(config.expert_parallel, config.data_parallel)
        if ep != config.expert_parallel:
            config = replace(config, expert_parallel=ep)
        bms = microbatch_candidates(global_batch_size // config.data_parallel, space)
        if config.microbatch_size not in bms:
            if not bms:
                continue
            bm = min(bms, key=lambda c: (abs(c - config.microbatch_size), c))
            config = replace(config, microbatch_size=bm)
        if config in seen:
            continue
        if config_in_space(model, n_gpus, global_batch_size, strategy, space, config):
            seen.add(config)
            adapted.append(config)
            if len(adapted) >= limit:
                break
    return adapted


def _seed_from_hints(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    options: ModelingOptions,
    backend: str,
    warm_hints: Sequence,
) -> Tuple[float, int, int]:
    """Evaluate warm hints at the current point before enumeration.

    Returns ``(seed_threshold, hits, evaluations)``.  The threshold is the
    best feasible time among the adapted hints (``inf`` when none is
    feasible); since every adapted hint is a member of the current space,
    the threshold is a true upper bound on this strategy's optimum, and
    strict-``>`` pruning against it can never discard the optimum or an
    exact tie — the search result is bit-identical to a cold run.
    """
    threshold = math.inf
    hits = 0
    n_eval = 0
    for config in adapt_warm_hints(
        model, n_gpus, global_batch_size, strategy, space, warm_hints
    ):
        best_time = math.inf
        for assignment in gpu_assignments(config, system.nvs_domain_size, space):
            n_eval += 1
            estimate = evaluate_config(
                model,
                system,
                config,
                assignment,
                global_batch_size=global_batch_size,
                options=options,
                backend=backend,
            )
            if estimate.feasible and estimate.total_time < best_time:
                best_time = estimate.total_time
        if best_time < math.inf:
            hits += 1
            if best_time < threshold:
                threshold = best_time
    return threshold, hits, n_eval


def _batch_pass_two(
    model: TransformerConfig,
    system: SystemSpec,
    global_batch_size: int,
    space: SearchSpace,
    options: ModelingOptions,
    top_k: int,
    prune: bool,
    survivors: List[Tuple[float, int, ParallelConfig]],
    board,
    consume_keys: Sequence[str],
    publish_key: Optional[str],
    seed_threshold: float = math.inf,
) -> Tuple[Optional[IterationEstimate], List[IterationEstimate], int, int, int]:
    """Vectorized pass 2: price survivors in bound-ordered chunks.

    Chunks of parallelizations are expanded into (config, assignment) rows
    and priced by :func:`repro.core.batch_eval.batch_candidate_times` — one
    NumPy array program per chunk instead of one ``evaluate_config`` call
    per candidate.  The branch-and-bound threshold (the incumbent best, or
    the k-th best with a leaderboard) refreshes between chunks rather than
    between candidates, so batch mode may *evaluate* a few more candidates
    than scalar mode near the pruning frontier — but since pruning remains
    sound, the selected optimum and the exact top-k set are identical, and
    the winners are re-priced through the scalar oracle so the returned
    :class:`IterationEstimate` objects (plans included) are bit-identical
    to the scalar path's.

    With ``top_k == 0`` the threshold additionally consults the shared
    :class:`~repro.core.batch_eval.IncumbentBoard` (``consume_keys``) and
    publishes improvements under ``publish_key``.  A shared bound is a true
    feasible time of the consumed scope, so it can only prune candidates
    that cannot win; prunes that only the shared bound explains are
    tallied separately (the fifth return value).  ``seed_threshold`` — the
    best feasible time of the warm-start hints, already evaluated at this
    point — tightens the threshold the same sound way from the very first
    chunk.

    Returns ``(best, leaderboard, evaluated, pruned, shared_prunes)``.
    """
    from repro.core import batch_eval

    best_row: Optional[Tuple[ParallelConfig, GpuAssignment]] = None
    best_key: Tuple[float, int, int] = (math.inf, -1, -1)
    topk_heap: List[tuple] = []
    n_eval = 0
    n_pruned = 0
    n_shared = 0
    share = board is not None and top_k == 0 and prune
    bounds = [item[0] for item in survivors]

    i = 0
    while i < len(survivors):
        local_threshold = math.inf
        if prune:
            if top_k > 0:
                if len(topk_heap) >= top_k:
                    local_threshold = -topk_heap[0][0]
            else:
                local_threshold = min(best_key[0], seed_threshold)
        threshold = local_threshold
        if share:
            threshold = min(threshold, board.get(consume_keys))
        if prune and bounds[i] > threshold:
            n_pruned += len(survivors) - i
            if threshold < local_threshold:
                # Survivors the local incumbent alone would have kept alive.
                n_shared += bisect.bisect_right(bounds, local_threshold, i) - i
            break
        j = min(i + _BATCH_CHUNK_CONFIGS, len(survivors))
        if prune:
            # Bound-sorted: everything past the first too-large bound is
            # prunable; leave it for the next iteration's threshold check.
            j = bisect.bisect_right(bounds, threshold, i, j)
        rows: List[Tuple[int, ParallelConfig, int, GpuAssignment]] = []
        for _, rank, config in survivors[i:j]:
            assignments = gpu_assignments(config, system.nvs_domain_size, space)
            rows.extend(
                (rank, config, assign_idx, assignment)
                for assign_idx, assignment in enumerate(assignments)
            )
        n_eval += len(rows)
        times = batch_eval.batch_candidate_times(
            model,
            system,
            [(config, assignment) for _, config, _, assignment in rows],
            global_batch_size=global_batch_size,
            options=options,
        )
        for (rank, config, assign_idx, assignment), time in zip(rows, times):
            # Pass 1 already established feasibility (memory is
            # assignment-independent), so every row is a contender.
            time = float(time)
            key = (time, rank, assign_idx)
            if best_row is None or key < best_key:
                best_row = (config, assignment)
                best_key = key
            if top_k > 0:
                entry = (-time, -rank, -assign_idx, (config, assignment))
                if len(topk_heap) < top_k:
                    heapq.heappush(topk_heap, entry)
                elif entry > topk_heap[0]:
                    heapq.heapreplace(topk_heap, entry)
        if share and publish_key is not None and best_row is not None:
            board.publish(publish_key, best_key[0])
        i = j

    def _scalar(config: ParallelConfig, assignment: GpuAssignment) -> IterationEstimate:
        return evaluate_config(
            model,
            system,
            config,
            assignment,
            global_batch_size=global_batch_size,
            options=options,
            backend=DEFAULT_BACKEND,
        )

    best = _scalar(*best_row) if best_row is not None else None
    leaderboard = [
        _scalar(*row)
        for _, _, _, row in sorted(topk_heap, key=lambda e: (-e[0], -e[1], -e[2]))
    ]
    return best, leaderboard, n_eval, n_pruned, n_shared


def _search_single_strategy(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    options: ModelingOptions,
    top_k: int,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = DEFAULT_EVAL_MODE,
    board=None,
    consume_keys: Sequence[str] = (),
    publish_key: Optional[str] = None,
    warm_hints: Sequence = (),
) -> SearchResult:
    best: Optional[IterationEstimate] = None
    n_parallel = 0
    n_eval = 0
    n_mem = 0
    n_other = 0
    n_bounds = 0
    n_pruned = 0
    caches_before = cache_stats()
    # The compute-only lower bound is provably admissible for the analytic
    # evaluation; a simulated bubble may legitimately undercut the closed
    # form, so pruning is disabled for any non-default backend.
    prune = space.prune_with_lower_bound and backend == DEFAULT_BACKEND

    # Warm-start seeding: evaluate carried-over hints at *this* point first
    # and open the branch-and-bound with their best feasible time.  Only
    # meaningful with pruning on, and only sound for a best-only search — a
    # top-k leaderboard prunes on the k-th best, which a single seed time
    # would over-tighten.
    seed_threshold = math.inf
    warm_hits = 0
    warm_time = 0.0
    if warm_hints and prune and top_k == 0:
        t0 = time.perf_counter()
        seed_threshold, warm_hits, n_seed = _seed_from_hints(
            model, system, n_gpus, global_batch_size, strategy, space,
            options, backend, warm_hints,
        )
        warm_time = time.perf_counter() - t0
        n_eval += n_seed
        if board is not None and publish_key is not None and warm_hits:
            # A seed is a true feasible time of this scope: publishing it
            # lets sibling strategies and sweep workers prune against it.
            board.publish(publish_key, seed_threshold)

    # Pass 1: memory pre-filter (assignment-independent), then compute the
    # cheap compute-only lower bound of every surviving parallelization so
    # the expensive NVS-assignment loops run in best-bound-first order.
    # Each survivor keeps its enumeration rank: exact-tie candidates are
    # resolved by (time, rank, assignment index) below, so the winner is
    # the same whether or not the bound-sorted order was applied.
    survivors: List[Tuple[float, int, ParallelConfig]] = []
    for config in parallel_configs(model, n_gpus, global_batch_size, strategy, space):
        n_parallel += 1
        # Memory does not depend on the assignment: reject early.
        try:
            memory = estimate_config_memory(
                model, config, global_batch_size=global_batch_size, options=options
            )
        except ValueError:
            n_other += 1
            continue
        if not memory.fits(system.gpu.hbm_capacity):
            n_mem += 1
            continue
        bound = 0.0
        if prune:
            bound = config_time_lower_bound(
                model, system, config, global_batch_size=global_batch_size, options=options
            )
            n_bounds += 1
        survivors.append((bound, len(survivors), config))
    if prune:
        survivors.sort(key=lambda item: item[0])

    # Pass 2: evaluate assignments, skipping every parallelization whose
    # lower bound cannot beat the incumbent.  ``threshold`` is the incumbent
    # best time — or, when a top-k leaderboard is requested, the k-th best
    # time so far, so that pruning also preserves the exact top-k set.
    #
    # The leaderboard is a bounded max-heap of the k best estimates keyed by
    # (-time, -enumeration rank, -assignment index): heap[0] is the worst
    # kept entry — which doubles as the pruning threshold — and exact time
    # ties resolve by enumeration order, independent of evaluation order.
    n_shared = 0
    if eval_mode == "batch":
        best, leaderboard, n_batch_eval, n_pruned, n_shared = _batch_pass_two(
            model,
            system,
            global_batch_size,
            space,
            options,
            top_k,
            prune,
            survivors,
            board,
            consume_keys,
            publish_key,
            seed_threshold,
        )
        n_eval += n_batch_eval
    else:
        topk_heap: List[Tuple[float, int, int, IterationEstimate]] = []
        best_key: Tuple[float, int, int] = (math.inf, -1, -1)
        for idx, (bound, rank, config) in enumerate(survivors):
            if prune:
                if top_k > 0:
                    threshold = -topk_heap[0][0] if len(topk_heap) >= top_k else math.inf
                else:
                    threshold = best.total_time if best is not None else math.inf
                    threshold = min(threshold, seed_threshold)
                if bound > threshold:
                    # Survivors are bound-sorted: no later one can beat (or
                    # exactly tie, hence the strict >) the incumbent either.
                    n_pruned += len(survivors) - idx
                    break

            assignments = gpu_assignments(config, system.nvs_domain_size, space)
            for assign_idx, assignment in enumerate(assignments):
                n_eval += 1
                estimate = evaluate_config(
                    model,
                    system,
                    config,
                    assignment,
                    global_batch_size=global_batch_size,
                    options=options,
                    backend=backend,
                )
                if not estimate.feasible:
                    n_mem += 1
                    continue
                key = (estimate.total_time, rank, assign_idx)
                if best is None or key < best_key:
                    best = estimate
                    best_key = key
                if top_k > 0:
                    entry = (-estimate.total_time, -rank, -assign_idx, estimate)
                    if len(topk_heap) < top_k:
                        heapq.heappush(topk_heap, entry)
                    elif entry > topk_heap[0]:
                        heapq.heapreplace(topk_heap, entry)

        leaderboard = [
            est for _, _, _, est in sorted(topk_heap, key=lambda e: (-e[0], -e[1], -e[2]))
        ]

    caches_after = cache_stats()

    return SearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy=strategy,
        best=best,
        top_k=leaderboard,
        statistics=SearchStatistics(
            parallel_configs=n_parallel,
            candidates_evaluated=n_eval,
            infeasible_memory=n_mem,
            infeasible_other=n_other,
            bounds_computed=n_bounds,
            pruned_configs=n_pruned,
            shared_incumbent_prunes=n_shared,
            warm_start_hits=warm_hits,
            warm_seed_time=warm_time,
            workload_cache_hits=(
                caches_after["workload"]["hits"] - caches_before["workload"]["hits"]
            ),
            workload_cache_misses=(
                caches_after["workload"]["misses"] - caches_before["workload"]["misses"]
            ),
            stage_cache_hits=(
                caches_after["stage_times"]["hits"] - caches_before["stage_times"]["hits"]
            ),
            stage_cache_misses=(
                caches_after["stage_times"]["misses"] - caches_before["stage_times"]["misses"]
            ),
        ),
    )


def find_optimal_config(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    *,
    strategy: str | Sequence[str] = "tp1d",
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    top_k: int = 0,
    fallback_activation_checkpointing: bool = True,
    backend: str = DEFAULT_BACKEND,
    objective: str = TRAINING_OBJECTIVE,
    serving=None,
    eval_mode: str = DEFAULT_EVAL_MODE,
    warm_hints: Sequence = (),
):
    """Brute-force search for the fastest feasible configuration.

    ``strategy`` may be a single strategy name, a sequence of names, or
    ``"all"`` to search 1D TP, 2D TP and SUMMA together (the overall best is
    returned and the per-strategy statistics are merged).

    ``backend`` selects the evaluation backend per candidate
    (:mod:`repro.core.backends`); with a non-default backend the
    branch-and-bound pruning is disabled, since the analytic lower bound is
    only provably admissible for the analytic evaluation.

    ``eval_mode`` selects how candidates are priced.  ``"scalar"`` (the
    default) calls :func:`~repro.core.execution.evaluate_config` once per
    candidate; ``"batch"`` prices memory-filtered survivors in vectorized
    NumPy chunks (:mod:`repro.core.batch_eval`) — the selected optimum and
    top-k set are identical (the batch pricer is bit-exact against the
    scalar oracle, and the winners are re-priced through it), but searches
    run several times faster.  Batch mode is analytic-only: combining it
    with a non-default ``backend`` raises :class:`ValueError`.  With
    pruning enabled and no top-k request, batch mode additionally shares
    the incumbent bound across this call's strategies and (best-effort)
    across :class:`~repro.runtime.executor.SweepExecutor` workers.

    ``objective`` selects the execution regime.  The default
    (:data:`TRAINING_OBJECTIVE`) minimises the training iteration time and
    returns a :class:`SearchResult`.  The serving objectives
    (``"throughput"``, ``"ttft"``, ``"tpot"`` — see
    :mod:`repro.core.inference`) evaluate the same EP/TP/PP/DP space in
    inference mode against the ``serving`` traffic description
    (a :class:`~repro.core.inference.ServingSpec`, defaulted when omitted)
    and return a :class:`~repro.core.inference.ServingSearchResult`;
    ``global_batch_size``, ``strategy`` and the training-only knobs are
    ignored there (serving models 1D TP with round-robin decode).

    ``warm_hints`` seeds the branch-and-bound: each hint (a
    :class:`ParallelConfig` or ``(config, assignment)`` tuple, typically a
    neighboring search point's winner) is adapted to this point, validated
    as a member of the enumerated space and evaluated *before* the
    enumeration; the best feasible time opens the pruning threshold.  The
    selected optimum and top-k set are bit-identical to a cold search —
    a seed is just a candidate evaluated first — and
    :attr:`SearchStatistics.warm_start_hits` /
    :attr:`SearchStatistics.warm_seed_time` record the effect.  Hints are
    ignored when pruning is off, when ``top_k > 0`` (a single seed would
    over-tighten the k-th-best threshold) or when none adapts into the
    space.

    When no configuration fits in HBM and ``fallback_activation_checkpointing``
    is set (the default), the search is repeated once with full activation
    checkpointing enabled — recomputing each block during the backward pass —
    which is how capacity-limited systems (e.g. A100 + the long-sequence ViT)
    are handled in practice.
    """
    # Local import: batch_eval sits on top of execution/config_space, which
    # this module also imports; resolving it lazily keeps startup costs off
    # the scalar path and avoids fragile import ordering.
    from repro.core import batch_eval

    eval_mode = batch_eval.validate_eval_mode(eval_mode)
    if eval_mode == "batch" and backend != DEFAULT_BACKEND:
        raise ValueError(
            f"eval_mode='batch' vectorizes the analytic closed forms and is "
            f"only exact against backend={DEFAULT_BACKEND!r}; got {backend!r}"
        )
    if objective != TRAINING_OBJECTIVE:
        # Local import: repro.core.inference imports this module for the
        # shared SearchStatistics, so the dependency must stay one-way.
        from repro.core.inference import ServingSpec, find_serving_config

        return find_serving_config(
            model,
            system,
            n_gpus,
            serving=serving if serving is not None else ServingSpec(),
            objective=objective,
            space=space,
            options=options,
            top_k=top_k,
            backend=backend,
            eval_mode=eval_mode,
            warm_hints=warm_hints,
        )
    if isinstance(strategy, str):
        strategies: Tuple[str, ...] = ALL_STRATEGIES if strategy == "all" else (strategy,)
    else:
        strategies = tuple(strategy)
    if not strategies:
        raise ValueError("at least one strategy is required")

    def _run(opts: ModelingOptions) -> List[SearchResult]:
        # Shared-incumbent sharing requires: batch pricing, a plain best-only
        # search (a top-k leaderboard prunes on the k-th best, which a scope
        # incumbent would over-tighten) and pruning enabled.  Cross-strategy
        # consumption is sound because a multi-strategy call only reports the
        # *merged* best: any candidate a sibling's incumbent pruned has time
        # >= its bound > incumbent >= merged best.
        board = None
        keys: List[str] = []
        if eval_mode == "batch" and top_k == 0 and space.prune_with_lower_bound:
            board = batch_eval.incumbent_board()
            keys = batch_eval.incumbent_scope_keys(
                model, system, n_gpus, global_batch_size, space, opts, strategies
            )
        return [
            _search_single_strategy(
                model, system, n_gpus, global_batch_size, strat, space, opts,
                top_k, backend, eval_mode,
                board=board,
                consume_keys=tuple(keys),
                publish_key=keys[i] if keys else None,
                warm_hints=warm_hints,
            )
            for i, strat in enumerate(strategies)
        ]

    results = _run(options)

    if (
        fallback_activation_checkpointing
        and not options.activation_checkpointing
        and all(res.best is None for res in results)
    ):
        from dataclasses import replace as _replace

        results = _run(_replace(options, activation_checkpointing=True))

    if len(results) == 1:
        return results[0]

    merged_stats = SearchStatistics()
    best_overall: Optional[IterationEstimate] = None
    merged_topk: List[IterationEstimate] = []
    for res in results:
        merged_stats = merged_stats.merged(res.statistics)
        merged_topk.extend(res.top_k)
        if res.best is not None and (
            best_overall is None or res.best.total_time < best_overall.total_time
        ):
            best_overall = res.best
    merged_topk.sort(key=lambda est: est.total_time)
    if top_k > 0:
        merged_topk = merged_topk[:top_k]

    return SearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy="+".join(strategies),
        best=best_overall,
        top_k=merged_topk,
        statistics=merged_stats,
    )


# ----------------------------------------------------------------------
# Multi-objective (Pareto) search
# ----------------------------------------------------------------------

@dataclass
class ParetoPoint:
    """One frontier member: the estimate plus its raw metric values.

    ``metrics`` maps objective name to the *raw* value (headroom in bytes,
    cost in USD, ...) — maximised objectives are stored in their natural
    orientation, not the canonical minimised one.
    """

    estimate: IterationEstimate
    metrics: Dict[str, float]


@dataclass
class ParetoResult:
    """Outcome of :func:`find_pareto_configs`.

    ``points`` is the Pareto frontier in deterministic order: sorted by the
    canonical metric vector, then by (strategy, enumeration rank, assignment
    index) — so equal-vector ties keep every member and the order never
    depends on evaluation scheduling or eval mode.
    """

    model_name: str
    system_name: str
    n_gpus: int
    global_batch_size: int
    strategy: str
    objectives: Tuple[str, ...]
    points: List[ParetoPoint] = field(default_factory=list)
    statistics: SearchStatistics = field(default_factory=SearchStatistics)

    @property
    def found(self) -> bool:
        """True when at least one feasible configuration exists."""
        return bool(self.points)

    @property
    def best(self) -> Optional[IterationEstimate]:
        """The minimum-iteration-time frontier member (``None`` when empty).

        This is what lets a Pareto solve feed the warm-start hint index and
        the sweep winner chain exactly like a scalar solve: the fastest
        frontier point is a true member of the search space and an excellent
        seed for scalar searches of the same structure.
        """
        if not self.points:
            return None
        return min(self.points, key=lambda p: p.estimate.total_time).estimate

    @property
    def best_time(self) -> float:
        """Iteration time of the fastest frontier member (``inf`` if none)."""
        best = self.best
        return best.total_time if best is not None else math.inf

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports and JSON archives."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "n_gpus": self.n_gpus,
            "global_batch": self.global_batch_size,
            "strategy": self.strategy,
            "objectives": list(self.objectives),
            "found": self.found,
            "frontier_size": len(self.points),
            "configs_searched": self.statistics.parallel_configs,
            "candidates_evaluated": self.statistics.candidates_evaluated,
            "pruned_configs": self.statistics.pruned_configs,
        }
        best = self.best
        if best is not None:
            out.update(best.summary())
        return out


def _strictly_dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when canonical vector ``a`` strictly dominates ``b``.

    ``a`` dominates ``b`` when it is no worse in every component and
    strictly better in at least one; equal vectors never dominate each
    other (both stay on the frontier).
    """
    better = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            better = True
    return better


class _FrontierArchive:
    """Incumbent Pareto frontier of evaluated candidates.

    Entries are ``(vector, order, config, assignment)`` where ``order`` is
    the deterministic ``(strategy index, enumeration rank, assignment
    index)`` tie key.  The archive is the multi-objective analogue of the
    scalar incumbent: :meth:`dominates_bound` is the branch-and-bound
    pruning test — a parallelization whose admissible bound vector is
    strictly dominated by an archived point cannot contribute a frontier
    member (every real candidate of it is ``>=`` the bound componentwise,
    so the archived point strictly dominates them all; by transitivity the
    final frontier does too).
    """

    def __init__(self) -> None:
        self.entries: List[
            Tuple[Tuple[float, ...], Tuple[int, int, int], ParallelConfig, GpuAssignment]
        ] = []

    def dominates_bound(self, bound: Sequence[float]) -> bool:
        """True when some archived vector strictly dominates ``bound``."""
        return any(_strictly_dominates(vec, bound) for vec, _, _, _ in self.entries)

    def insert(
        self,
        vector: Tuple[float, ...],
        order: Tuple[int, int, int],
        config: ParallelConfig,
        assignment: GpuAssignment,
    ) -> bool:
        """Offer a candidate; keep the archive non-dominated.  True if kept."""
        if self.dominates_bound(vector):
            return False
        self.entries = [
            entry for entry in self.entries if not _strictly_dominates(vector, entry[0])
        ]
        self.entries.append((vector, order, config, assignment))
        return True

    def sorted_entries(self):
        """Entries in the deterministic report order (vector, then order)."""
        return sorted(self.entries, key=lambda entry: (entry[0], entry[1]))


def _pareto_single_strategy(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    strategy_index: int,
    space: SearchSpace,
    options: ModelingOptions,
    objectives,
    ctx,
    archive: _FrontierArchive,
    backend: str,
    eval_mode: str,
) -> SearchStatistics:
    """Fold one strategy's enumeration into the shared frontier archive.

    The same two-pass structure as the scalar search: a memory pre-filter
    plus per-objective admissible bound vectors (pass 1, sorted by bound),
    then candidate evaluation with dominance pruning against the incumbent
    frontier (pass 2, scalar loop or vectorized chunks).  Sharing one
    archive across strategies only ever prunes more — dominance is
    transitive, so a candidate pruned by a sibling strategy's point is
    dominated by the merged frontier too.
    """
    n_parallel = 0
    n_eval = 0
    n_mem = 0
    n_other = 0
    n_bounds = 0
    n_pruned = 0
    caches_before = cache_stats()
    # Like the scalar search: the analytic time lower bound (which every
    # affine objective bound is built from) is only admissible against the
    # analytic evaluation.
    prune = space.prune_with_lower_bound and backend == DEFAULT_BACKEND

    # Pass 1: memory pre-filter + affine coefficients + bound vectors.
    survivors: List[tuple] = []
    for rank, config in enumerate(
        parallel_configs(model, n_gpus, global_batch_size, strategy, space)
    ):
        n_parallel += 1
        try:
            memory = estimate_config_memory(
                model, config, global_batch_size=global_batch_size, options=options
            )
        except ValueError:
            n_other += 1
            continue
        if not memory.fits(system.gpu.hbm_capacity):
            n_mem += 1
            continue
        coeffs = tuple(obj.coefficients(config, ctx) for obj in objectives)
        bound_vec: Tuple[float, ...] = ()
        if prune:
            time_bound = config_time_lower_bound(
                model, system, config, global_batch_size=global_batch_size, options=options
            )
            n_bounds += 1
            bound_vec = tuple(off + slope * time_bound for off, slope in coeffs)
        survivors.append((bound_vec, rank, config, coeffs))
    if prune:
        # Best-first along the first objective's bound (ties by rank) so the
        # archive fills with strong points before the bulk of the pruning
        # tests run.  Unlike the scalar search there is no early break — a
        # later parallelization may trade the first objective for another.
        survivors.sort(key=lambda item: (item[0], item[1]))

    # Pass 2: evaluate, prune by dominance, fold into the archive.
    if eval_mode == "batch":
        from repro.core import batch_eval
        import numpy as np

        i = 0
        while i < len(survivors):
            block = []
            while i < len(survivors) and len(block) < _BATCH_CHUNK_CONFIGS:
                bound_vec, rank, config, coeffs = survivors[i]
                i += 1
                if prune and archive.dominates_bound(bound_vec):
                    n_pruned += 1
                    continue
                block.append((rank, config, coeffs))
            if not block:
                continue
            rows: List[tuple] = []
            for rank, config, coeffs in block:
                for assign_idx, assignment in enumerate(
                    gpu_assignments(config, system.nvs_domain_size, space)
                ):
                    rows.append((rank, config, assign_idx, assignment, coeffs))
            times = batch_eval.batch_candidate_times(
                model,
                system,
                [(config, assignment) for _, config, _, assignment, _ in rows],
                global_batch_size=global_batch_size,
                options=options,
            )
            n_eval += len(rows)
            # Same float expression as the scalar loop below, applied to the
            # bit-exact batch times: the vectors are identical in both modes.
            vectors = [
                tuple(off + slope * float(t) for off, slope in row[4])
                for row, t in zip(rows, times)
            ]
            # Vectorized dominance pass: rows strictly dominated within the
            # chunk can never reach the final frontier, so thinning them
            # first is result-identical and saves archive insertions.
            keep = batch_eval.non_dominated_mask(np.asarray(vectors, dtype=np.float64))
            for (rank, config, assign_idx, assignment, _), vector, kept in zip(
                rows, vectors, keep
            ):
                if kept:
                    archive.insert(
                        vector, (strategy_index, rank, assign_idx), config, assignment
                    )
    else:
        for bound_vec, rank, config, coeffs in survivors:
            if prune and archive.dominates_bound(bound_vec):
                n_pruned += 1
                continue
            for assign_idx, assignment in enumerate(
                gpu_assignments(config, system.nvs_domain_size, space)
            ):
                n_eval += 1
                estimate = evaluate_config(
                    model,
                    system,
                    config,
                    assignment,
                    global_batch_size=global_batch_size,
                    options=options,
                    backend=backend,
                )
                if not estimate.feasible:
                    n_mem += 1
                    continue
                vector = tuple(
                    off + slope * estimate.total_time for off, slope in coeffs
                )
                archive.insert(
                    vector, (strategy_index, rank, assign_idx), config, assignment
                )

    caches_after = cache_stats()
    return SearchStatistics(
        parallel_configs=n_parallel,
        candidates_evaluated=n_eval,
        infeasible_memory=n_mem,
        infeasible_other=n_other,
        bounds_computed=n_bounds,
        pruned_configs=n_pruned,
        workload_cache_hits=(
            caches_after["workload"]["hits"] - caches_before["workload"]["hits"]
        ),
        workload_cache_misses=(
            caches_after["workload"]["misses"] - caches_before["workload"]["misses"]
        ),
        stage_cache_hits=(
            caches_after["stage_times"]["hits"] - caches_before["stage_times"]["hits"]
        ),
        stage_cache_misses=(
            caches_after["stage_times"]["misses"] - caches_before["stage_times"]["misses"]
        ),
    )


def find_pareto_configs(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    *,
    objectives: Sequence[str] = (),
    strategy: str | Sequence[str] = "tp1d",
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    fallback_activation_checkpointing: bool = True,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = DEFAULT_EVAL_MODE,
    warm_hints: Sequence = (),
) -> ParetoResult:
    """Multi-objective search: the Pareto frontier of the candidate space.

    Where :func:`find_optimal_config` returns the single fastest feasible
    configuration, this returns every *non-dominated* one under the named
    ``objectives`` (defaulting to
    :data:`repro.core.objectives.DEFAULT_PARETO_OBJECTIVES` — time, HBM
    headroom, cost, energy).  A candidate is dominated when another is no
    worse on every objective and strictly better on one; equal metric
    vectors are mutually non-dominated, so exact ties all stay.

    Branch-and-bound still prunes: every registered objective provides an
    admissible assignment-independent lower bound (see
    :mod:`repro.core.objectives`), and a parallelization whose bound
    *vector* is strictly dominated by an already-evaluated frontier point
    provably contains no frontier member — the exact multi-objective
    analogue of the scalar threshold.  The returned frontier equals the
    exhaustive non-dominated filter over the full enumeration (a tier-1
    invariant pins this, for scalar and batch eval modes alike).

    A single-entry ``objectives=("time",)`` degenerates to the scalar
    search: the frontier is exactly the set of minimum-time candidates and
    its fastest member matches :func:`find_optimal_config`'s winner.

    ``eval_mode="batch"`` prices survivors through the vectorized batch
    pricer and thins each chunk with a vectorized dominance pass
    (:func:`repro.core.batch_eval.non_dominated_mask`); the frontier is
    bit-identical to scalar mode (the batch times are bit-exact, the metric
    vectors use the same float arithmetic, and every frontier member is
    re-priced through the scalar oracle).  Batch mode is analytic-only.

    ``warm_hints`` is accepted for interface compatibility with
    :func:`find_optimal_config` (sweep plumbing attaches hints uniformly)
    but ignored: a scalar seed time cannot soundly open a *frontier*
    threshold, and the frontier must equal the exhaustive filter
    regardless of seeding.
    """
    from repro.core import batch_eval
    from repro.core.objectives import (
        DEFAULT_PARETO_OBJECTIVES,
        ObjectiveContext,
        resolve_objectives,
    )

    del warm_hints  # accepted but unused (see docstring)
    eval_mode = batch_eval.validate_eval_mode(eval_mode)
    if eval_mode == "batch" and backend != DEFAULT_BACKEND:
        raise ValueError(
            f"eval_mode='batch' vectorizes the analytic closed forms and is "
            f"only exact against backend={DEFAULT_BACKEND!r}; got {backend!r}"
        )
    objs = resolve_objectives(objectives or DEFAULT_PARETO_OBJECTIVES)
    if isinstance(strategy, str):
        strategies: Tuple[str, ...] = ALL_STRATEGIES if strategy == "all" else (strategy,)
    else:
        strategies = tuple(strategy)
    if not strategies:
        raise ValueError("at least one strategy is required")

    def _run(opts: ModelingOptions) -> Tuple[_FrontierArchive, SearchStatistics]:
        archive = _FrontierArchive()
        ctx = ObjectiveContext(
            model=model,
            system=system,
            n_gpus=n_gpus,
            global_batch_size=global_batch_size,
            options=opts,
        )
        stats = SearchStatistics()
        for strategy_index, strat in enumerate(strategies):
            stats = stats.merged(
                _pareto_single_strategy(
                    model, system, n_gpus, global_batch_size, strat, strategy_index,
                    space, opts, objs, ctx, archive, backend, eval_mode,
                )
            )
        return archive, stats

    used_options = options
    archive, stats = _run(options)
    if (
        fallback_activation_checkpointing
        and not options.activation_checkpointing
        and not archive.entries
    ):
        used_options = replace(options, activation_checkpointing=True)
        archive, stats = _run(used_options)

    points: List[ParetoPoint] = []
    for vector, _, config, assignment in archive.sorted_entries():
        estimate = evaluate_config(
            model,
            system,
            config,
            assignment,
            global_batch_size=global_batch_size,
            options=used_options,
            backend=DEFAULT_BACKEND if eval_mode == "batch" else backend,
        )
        points.append(
            ParetoPoint(
                estimate=estimate,
                metrics={
                    obj.name: obj.raw(component)
                    for obj, component in zip(objs, vector)
                },
            )
        )

    return ParetoResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        global_batch_size=global_batch_size,
        strategy="+".join(strategies),
        objectives=tuple(obj.name for obj in objs),
        points=points,
        statistics=stats,
    )


def best_assignment_for(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> IterationEstimate:
    """Evaluate ``config`` under its best NVS assignment.

    This is the helper the "rationale" experiments (Figs. 1-3) use: the
    parallelization is fixed by hand and only the GPU placement is optimised,
    mirroring the paper's methodology.
    """
    assignments = gpu_assignments(config, system.nvs_domain_size, space)
    estimates = evaluate_candidates(
        model,
        system,
        config,
        assignments,
        global_batch_size=global_batch_size,
        options=options,
        backend=backend,
    )
    feasible = [est for est in estimates if est.feasible]
    pool = feasible if feasible else estimates
    return min(pool, key=lambda est: est.total_time)
