"""Cost-plan IR: the phase-level intermediate representation of one iteration.

Instead of computing the iteration time of a candidate configuration inline
(the pre-refactor ``evaluate_config`` was one ~170-line monolith), the
execution model now *builds* an :class:`ExecutionPlan` — an explicit list of
:class:`CostPhase` nodes, each carrying its duration, its multiplicity, its
overlap semantics and the HBM delta it is responsible for — and then
*reduces* that plan into the familiar :class:`TimeBreakdown`.

The IR buys three things:

* **pluggable schedules** — the pipeline schedule (1F1B, GPipe,
  interleaved-1F1B, see :mod:`repro.core.schedules`) contributes its bubble
  and its point-to-point phases as data, so schedule variants need no
  change to the assembly code;
* **introspection** — the phase list is the per-candidate "why is it this
  fast" record that the analysis layer renders
  (:func:`repro.analysis.reporting.render_plan_phases`) and that
  ``repro-perf search --explain-plan`` prints;
* **incremental re-costing** — phases are built from the memoized
  assignment-independent stage times, so microbatch/schedule/assignment
  variants of the same tensor-parallel strategy share everything but the
  cheap reduction.

Reduction is carefully arranged to be *bit-exact* with the legacy inline
arithmetic for the default 1F1B schedule: each phase's exposed time is
``count * max(0, seconds - overlap_budget)``, and phases are aggregated per
category in plan order, which reproduces the exact floating-point expression
the monolith evaluated.  This is what keeps all golden figures byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Reporting categories of :class:`TimeBreakdown`, in reduction order.
CATEGORY_COMPUTE = "compute"
CATEGORY_MEMORY = "memory"
CATEGORY_TP_COMM = "tp_comm"
CATEGORY_PP_BUBBLE = "pp_bubble"
CATEGORY_PP_COMM = "pp_comm"
CATEGORY_DP_COMM = "dp_comm"
#: Zero-duration phases carrying only a memory delta (parameters, optimizer
#: state, retained activations).  They are skipped by the time reduction.
CATEGORY_STATE = "state"

TIME_CATEGORIES: Tuple[str, ...] = (
    CATEGORY_COMPUTE,
    CATEGORY_MEMORY,
    CATEGORY_TP_COMM,
    CATEGORY_PP_BUBBLE,
    CATEGORY_PP_COMM,
    CATEGORY_DP_COMM,
)

ALL_CATEGORIES: Tuple[str, ...] = TIME_CATEGORIES + (CATEGORY_STATE,)


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-iteration time split into the paper's reporting categories."""

    compute: float = 0.0
    memory: float = 0.0
    tp_comm: float = 0.0
    pp_bubble: float = 0.0
    pp_comm: float = 0.0
    dp_comm: float = 0.0

    @property
    def total(self) -> float:
        """Total iteration time (sum of all categories)."""
        return (
            self.compute
            + self.memory
            + self.tp_comm
            + self.pp_bubble
            + self.pp_comm
            + self.dp_comm
        )

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view (seconds per category)."""
        return {
            "compute": self.compute,
            "memory": self.memory,
            "tp_comm": self.tp_comm,
            "pp_bubble": self.pp_bubble,
            "pp_comm": self.pp_comm,
            "dp_comm": self.dp_comm,
        }

    def fractions(self) -> Dict[str, float]:
        """Category shares of the total (0..1), as in the paper's bar charts."""
        total = self.total
        if total <= 0:
            return {key: 0.0 for key in self.as_dict()}
        return {key: value / total for key, value in self.as_dict().items()}


@dataclass(frozen=True)
class CostPhase:
    """One phase of the execution plan.

    A phase occupies ``seconds`` of wall-clock per instance and occurs
    ``count`` times per iteration.  Its *exposed* contribution to the
    iteration is ``count * max(0, seconds - overlap_budget)``: an
    ``overlap_budget`` models communication that hides under that much
    compute (e.g. the DP gradient ReduceScatter under the last microbatch's
    backward pass), and ``overlapped`` marks phases the model treats as
    fully hidden (their cost is recorded but exposes nothing).

    ``memory_bytes`` is the per-GPU HBM delta attributable to the phase
    (retained activations, parameter state, pipeline buffers); zero-duration
    :data:`CATEGORY_STATE` phases carry memory only.
    """

    name: str
    category: str
    seconds: float
    count: float = 1.0
    overlap_budget: float = 0.0
    overlapped: bool = False
    memory_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.category not in ALL_CATEGORIES:
            raise ValueError(
                f"unknown phase category {self.category!r}; expected one of {ALL_CATEGORIES}"
            )

    @property
    def exposed_seconds(self) -> float:
        """Wall-clock this phase adds to the iteration after overlap."""
        if self.overlapped or self.category == CATEGORY_STATE:
            return 0.0
        if self.overlap_budget > 0.0:
            return self.count * max(0.0, self.seconds - self.overlap_budget)
        return self.count * self.seconds

    @property
    def busy_seconds(self) -> float:
        """Total occupancy of the phase, ignoring overlap (diagnostics)."""
        return self.count * self.seconds


@dataclass(frozen=True)
class ExecutionPlan:
    """Phase-level cost plan of one (configuration, assignment) candidate.

    The plan is the IR between the counting layer (strategies, schedules,
    collective model) and the reporting layer (:class:`TimeBreakdown`).  It
    is deliberately a frozen value object: building it is cheap, reducing it
    is a single pass, and it serializes losslessly through
    :mod:`repro.utils.serialization` for caching and archiving.
    """

    schedule: str
    virtual_stages: int
    num_stages: int
    num_microbatches: int
    phases: Tuple[CostPhase, ...]
    #: Evaluation backend that priced the phases (``"analytic"`` closed
    #: forms or the ``"sim"`` message-level oracle — see
    #: :mod:`repro.core.backends`).
    backend: str = "analytic"

    def reduce(self) -> TimeBreakdown:
        """Fold the phases into the per-category time breakdown.

        Phases are accumulated in plan order per category; with the phases
        the default builder emits this reproduces the legacy inline
        arithmetic bit-for-bit.
        """
        totals = {category: 0.0 for category in TIME_CATEGORIES}
        for phase in self.phases:
            if phase.category == CATEGORY_STATE:
                continue
            totals[phase.category] += phase.exposed_seconds
        return TimeBreakdown(**totals)

    @property
    def total_time(self) -> float:
        """Total iteration time of the reduced plan (seconds)."""
        return self.reduce().total

    @property
    def total_memory_bytes(self) -> float:
        """Sum of the per-phase HBM deltas (per GPU)."""
        return sum(phase.memory_bytes for phase in self.phases)

    def phase(self, name: str) -> CostPhase:
        """Look up a phase by name (raises ``KeyError`` when absent)."""
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"plan has no phase {name!r}; phases: {[p.name for p in self.phases]}")

    def exposed_by_category(self) -> Dict[str, float]:
        """Exposed seconds per category (the reduction, as a dict)."""
        return self.reduce().as_dict()
