"""Inference-serving execution mode: prefill, decode and continuous batching.

The training model answers "how fast is one iteration"; serving asks a
different set of questions about the *same* hardware model: how quickly a
prompt is absorbed (**prefill** — compute-bound, full-sequence, identical to
a training forward pass), how quickly subsequent tokens appear (**decode** —
bandwidth-bound: every step re-reads the weights and the growing KV-cache
for a single new token per sequence), and how many concurrent requests a
replica can sustain (**continuous batching** under KV-cache memory
pressure).

This module prices both regimes through the existing stack — the
tensor-parallel layer workloads, the roofline, the dual-network collective
model with NVSwitch placement, and the pluggable
:class:`~repro.core.backends.CostPricer` — and represents the result as
:class:`~repro.core.plan.CostPhase` nodes in the same
:class:`~repro.core.plan.ExecutionPlan` IR the training evaluator builds,
so ``--explain-plan`` introspection, serialization and caching all carry
over unchanged.

Model summary (first-order, documented so it can be tightened later):

* **Prefill** reuses the training stage-time cache for a forward pass over
  the prompt; with pipeline parallelism the prompt traverses all ``np``
  stages sequentially, so ``TTFT = np * t_pf_stage + (np - 1) * t_p2p``.
* **Decode** advances one token per sequence per step.  Per layer it runs
  the tp1d forward structure on ``g`` tokens (the per-stage decode group)
  with a Logit-Attend over the cached ``context`` keys/values — the
  KV-cache read appears naturally as the attention operands' HBM bytes,
  GQA-aware through ``kv_heads``.  Weight reads dominate at small ``g``,
  which is what makes decode bandwidth-bound.
* **Pipelining** replaces the training bubble with microbatch round-robin:
  ``np`` decode groups of ``g = B / np`` sequences each keep every stage
  busy, and a given sequence's token period is one full rotation,
  ``TPOT = np * (t_stage + t_p2p)``.
* **KV-cache memory** is allocated in paged blocks of
  ``kv_block_tokens`` tokens (each sequence's context rounds up to whole
  blocks), sized for the worst case (every resident sequence at full
  ``prompt + output`` context) so steady state never needs eviction.
* **Continuous batching** turns the arrival rate into an effective batch
  by Little's law: ``B = lambda_replica * output_tokens * TPOT(B)`` is
  solved by (deterministic) fixed-point iteration, and prefill work steals
  stage time at utilisation ``u_p = lambda_replica * t_pf_stage``,
  inflating the decode period by ``1 / (1 - u_p)``.

The serving search (:func:`find_serving_config`) enumerates EP/TP/PP/DP
exactly like the training search (through
:func:`repro.core.config_space.parallel_configs`) and prunes with an
*admissible* bound obtained by re-pricing the candidate with a zero-cost
communication pricer: every objective is monotone in the communication
terms, so the free-communication value can never be beaten by any NVS
assignment (:class:`_FreeCommPricer`).
"""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.backends import CostPricer, DEFAULT_BACKEND, get_backend
from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpace,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import (
    DEFAULT_OPTIONS,
    ModelingOptions,
    _cached_stage_times,
    _cached_workload,
    _comm_time,
    _group_placement,
)
from repro.core.model import TransformerConfig
from repro.core.operations import (
    AttentionShape,
    CommOp,
    ComputeOp,
    flash_attention_forward,
    gelu_op,
    layernorm_op,
    matmul_op,
    softmax_op,
)
from repro.core.parallelism.base import (
    GROUP_EP,
    GROUP_PP,
    GROUP_TP1,
    GpuAssignment,
    ParallelConfig,
    get_strategy,
)
from repro.core.parallelism.data_parallel import WEIGHT_BYTES_PER_PARAM
from repro.core.parallelism.pipeline import layers_per_stage
from repro.core.plan import (
    CATEGORY_COMPUTE,
    CATEGORY_MEMORY,
    CATEGORY_PP_BUBBLE,
    CATEGORY_PP_COMM,
    CATEGORY_STATE,
    CATEGORY_TP_COMM,
    CostPhase,
    ExecutionPlan,
)
from repro.core.roofline import RooflineTime, ops_time
from repro.core.schedules import DEFAULT_SCHEDULE
from repro.core.search import SearchStatistics
from repro.core.system import SystemSpec
from repro.utils.units import GB

__all__ = [
    "SERVING_OBJECTIVES",
    "SERVING_SCHEDULE",
    "ServingEstimate",
    "ServingSearchResult",
    "ServingSpec",
    "decode_step_time",
    "evaluate_serving_config",
    "find_serving_config",
    "kv_cache_bytes_per_sequence",
    "kv_cache_bytes_per_token_per_layer",
    "serving_objective_bound",
]

#: Objectives the serving search can optimise: peak sustainable decode
#: throughput (tokens/s/GPU, maximised), time-to-first-token or
#: time-per-output-token (seconds, minimised).
SERVING_OBJECTIVES: Tuple[str, ...] = ("throughput", "ttft", "tpot")

#: Schedule name a serving plan is labeled with (the round-robin schedule
#: registered in :mod:`repro.core.schedules.serve`).
SERVING_SCHEDULE = "serve-rr"

#: Fixed-point iteration controls for the continuous-batching effective
#: batch (deterministic: pure float arithmetic, fixed bounds).
_FIXED_POINT_MAX_ITER = 64
_FIXED_POINT_RTOL = 1e-9


@dataclass(frozen=True)
class ServingSpec:
    """Traffic and memory-policy description of one serving scenario.

    Parameters
    ----------
    arrival_rate:
        Cluster-wide request arrival rate (requests/second).  Divided
        evenly over the ``nd`` data-parallel replicas.
    prompt_tokens:
        Prompt (prefill) length per request, in tokens.  Must satisfy the
        same tensor-parallel divisibility rules as a training sequence.
    output_tokens:
        Tokens generated per request (decode steps).
    kv_block_tokens:
        Paged-KV block granularity: each sequence's cache allocation rounds
        up to whole blocks of this many tokens (vLLM-style paging).
    max_batch_per_replica:
        Scheduler cap on concurrently decoding sequences per replica
        (independent of the KV-memory cap, which is computed).
    target_ttft:
        Optional TTFT service-level objective in seconds; configurations
        exceeding it are flagged infeasible.
    target_tpot:
        Optional TPOT service-level objective in seconds.
    """

    arrival_rate: float = 1.0
    prompt_tokens: int = 2048
    output_tokens: int = 256
    kv_block_tokens: int = 16
    max_batch_per_replica: int = 256
    target_ttft: Optional[float] = None
    target_tpot: Optional[float] = None

    def __post_init__(self) -> None:
        """Reject non-positive traffic, paging and SLO parameters."""
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.prompt_tokens < 1 or self.output_tokens < 1:
            raise ValueError("prompt_tokens and output_tokens must be >= 1")
        if self.kv_block_tokens < 1:
            raise ValueError("kv_block_tokens must be >= 1")
        if self.max_batch_per_replica < 1:
            raise ValueError("max_batch_per_replica must be >= 1")
        for name in ("target_ttft", "target_tpot"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")

    @property
    def max_context_tokens(self) -> int:
        """Longest context a sequence reaches (prompt fully decoded)."""
        return self.prompt_tokens + self.output_tokens

    @property
    def mean_context_tokens(self) -> float:
        """Steady-state average decode context (half the output generated)."""
        return self.prompt_tokens + self.output_tokens / 2.0

    def describe(self) -> Dict[str, object]:
        """Flat summary used by reports and the CLI."""
        out: Dict[str, object] = {
            "arrival_rate_rps": self.arrival_rate,
            "prompt_tokens": self.prompt_tokens,
            "output_tokens": self.output_tokens,
            "kv_block_tokens": self.kv_block_tokens,
            "max_batch_per_replica": self.max_batch_per_replica,
        }
        if self.target_ttft is not None:
            out["target_ttft_s"] = self.target_ttft
        if self.target_tpot is not None:
            out["target_tpot_s"] = self.target_tpot
        return out


# ----------------------------------------------------------------------
# KV-cache accounting
# ----------------------------------------------------------------------

def kv_cache_bytes_per_token_per_layer(model: TransformerConfig, tensor_parallel: int) -> float:
    """Per-GPU KV-cache bytes one token adds in one layer.

    K and V each store ``kv_heads * head_dim`` elements per token — with
    grouped-query attention this is ``kv_heads / num_heads`` of the dense
    cache, the main reason GQA models serve so much cheaper — sharded over
    the tensor-parallel group (``kv_heads`` must divide by it).
    """
    if tensor_parallel < 1:
        raise ValueError("tensor_parallel must be >= 1")
    if model.kv_heads % tensor_parallel != 0:
        raise ValueError(
            f"tensor_parallel ({tensor_parallel}) does not divide "
            f"kv_heads ({model.kv_heads})"
        )
    return 2.0 * model.kv_dim * model.dtype_bytes / tensor_parallel


def kv_cache_bytes_per_sequence(
    model: TransformerConfig,
    config: ParallelConfig,
    context_tokens: int,
    kv_block_tokens: int = 16,
) -> float:
    """Per-GPU KV-cache bytes one sequence occupies at ``context_tokens``.

    Paged allocation: the context rounds up to whole blocks of
    ``kv_block_tokens`` tokens, and each GPU stores the cache only for its
    own pipeline stage's layers and its tensor-parallel KV-head shard.
    """
    if context_tokens < 0:
        raise ValueError("context_tokens must be >= 0")
    blocks = math.ceil(context_tokens / kv_block_tokens)
    stage_layers = layers_per_stage(model, config)
    return (
        blocks
        * kv_block_tokens
        * kv_cache_bytes_per_token_per_layer(model, config.tensor_parallel_1)
        * stage_layers
    )


# ----------------------------------------------------------------------
# Decode-step workload
# ----------------------------------------------------------------------

#: MLP ops that scale with the routed expert count for MoE decode (same
#: convention as the training transform in
#: :mod:`repro.core.parallelism.expert`).
_EXPERT_OP_PREFIXES = ("mlp.up_proj", "mlp.gelu", "mlp.down_proj")


def _decode_layer(
    model: TransformerConfig,
    config: ParallelConfig,
    group_sequences: float,
    context_tokens: float,
    *,
    flash_attention: bool = True,
) -> Tuple[List[ComputeOp], List[CommOp]]:
    """Per-layer decode-step ops and collectives for ``group_sequences``.

    Mirrors the tp1d forward structure with the sequence length replaced by
    the ``g`` new tokens of the decode group, plus a Logit-Attend whose K/V
    operands are the cached ``context_tokens`` keys/values — so the
    KV-cache read traffic (GQA-aware) lands in the operands' HBM bytes and
    the weight reads land in the matmuls', exactly where the roofline
    expects them.  ``group_sequences`` may be fractional (the effective
    batch is a continuous steady-state quantity).
    """
    g = float(group_sequences)
    if g <= 0:
        raise ValueError("group_sequences must be positive")
    if context_tokens <= 0:
        raise ValueError("context_tokens must be positive")
    e, f, h = float(model.embed_dim), float(model.hidden_dim), float(model.num_heads)
    eh = float(model.head_dim)
    nt = float(config.tensor_parallel_1)
    kvd = float(model.kv_dim)
    dt = model.dtype_bytes

    ops: List[ComputeOp] = []
    comms: List[CommOp] = []

    # ---------------- Self-attention ----------------
    ops.append(layernorm_op(g * e / nt, name="sa.layernorm", dtype_bytes=dt))
    comms.append(CommOp("sa.ag_x", "all_gather", dt * g * e, GROUP_TP1))
    for proj, out_dim in (("q", e), ("k", kvd), ("v", kvd)):
        ops.append(
            matmul_op(
                f"sa.{proj}_proj", g, e, out_dim / nt, dtype_bytes=dt, shared_operand_b=True
            )
        )
    # One new query row per sequence attends over the cached context: the
    # K/V operand bytes of the fused kernel are the KV-cache read.
    ops.extend(
        flash_attention_forward(
            AttentionShape(
                batch=g,
                heads=h / nt,
                q_rows=1.0,
                kv_rows=float(context_tokens),
                head_dim=eh,
                kv_heads=float(model.kv_heads) / nt,
            ),
            dtype_bytes=dt,
            fused=flash_attention,
        )
    )
    ops.append(matmul_op("sa.out_proj", g, e / nt, e, dtype_bytes=dt, shared_operand_b=True))
    comms.append(CommOp("sa.rs_y", "reduce_scatter", dt * g * e, GROUP_TP1))

    # ---------------- MLP ----------------
    ops.append(layernorm_op(g * e / nt, name="mlp.layernorm", dtype_bytes=dt))
    comms.append(CommOp("mlp.ag_y", "all_gather", dt * g * e, GROUP_TP1))
    ops.append(matmul_op("mlp.up_proj", g, e, f / nt, dtype_bytes=dt, shared_operand_b=True))
    ops.append(gelu_op(g * f / nt, name="mlp.gelu", dtype_bytes=dt))
    ops.append(matmul_op("mlp.down_proj", g, f / nt, e, dtype_bytes=dt, shared_operand_b=True))
    comms.append(CommOp("mlp.rs_out", "reduce_scatter", dt * g * e, GROUP_TP1))

    if model.is_moe:
        # Same first-order MoE treatment as training: MLP ops scale by the
        # routed top_k (each token reads/computes its k expert shards), a
        # router gate is added, and dispatch/combine are AllToAlls over the
        # expert-parallel group carved out of DP.
        k = model.moe_top_k
        experts = float(model.num_experts)
        ops = [
            op.scaled(float(k)) if op.name.startswith(_EXPERT_OP_PREFIXES) else op
            for op in ops
        ]
        router_rows = g / nt
        ops.append(
            matmul_op("moe.router", router_rows, e, experts, dtype_bytes=dt, shared_operand_b=True)
        )
        ops.append(softmax_op(router_rows * experts, name="moe.router_softmax", dtype_bytes=dt))
        a2a_bytes = dt * g * k * e / nt
        comms.append(CommOp("moe.dispatch", "all_to_all", a2a_bytes, GROUP_EP))
        comms.append(CommOp("moe.combine", "all_to_all", a2a_bytes, GROUP_EP))

    return ops, comms


@dataclass(frozen=True)
class _DecodeStageTimes:
    """Per-stage decode-step times for one decode group size."""

    flop: float
    mem_exposed: float
    tp_comm: float
    p2p: float

    @property
    def stage_total(self) -> float:
        """Busy time of one stage for one decode step of its group."""
        return self.flop + self.mem_exposed + self.tp_comm


#: Fused kernels charged one launch latency per decode layer: the attention
#: block and the MLP block (serving runtimes fuse decode layers this way —
#: FlashDecoding-style attention, fused MLP epilogues, CUDA graphs — so the
#: paper's per-matmul small-kernel latency would overcharge decode by the
#: primitive count and bury the bandwidth terms the regime is defined by).
_DECODE_FUSED_KERNELS_PER_LAYER = 2.0
#: One more fused launch for the MoE router + dispatch epilogue.
_DECODE_FUSED_KERNELS_MOE_EXTRA = 1.0


def _decode_stage_times(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment,
    group_sequences: float,
    context_tokens: float,
    options: ModelingOptions,
    pricer: CostPricer,
) -> _DecodeStageTimes:
    """Roofline + collective times of one pipeline stage's decode step."""
    ops, comms = _decode_layer(
        model,
        config,
        group_sequences,
        context_tokens,
        flash_attention=options.flash_attention,
    )
    stage_layers = layers_per_stage(model, config)
    # Latency is charged per *fused* kernel (see above), not per primitive:
    # the per-op roofline runs latency-free and the per-layer launch cost is
    # added to the FLOP side, mirroring how ops_time folds it in.
    rt = ops_time(ops, system.gpu, include_latency=False)
    if options.include_flop_latency:
        launches = _DECODE_FUSED_KERNELS_PER_LAYER + (
            _DECODE_FUSED_KERNELS_MOE_EXTRA if model.is_moe else 0.0
        )
        rt = rt + RooflineTime(
            flop_time=launches * system.gpu.flops_latency,
            memory_time=launches * system.gpu.flops_latency,
        )
    tp_comm = _comm_time(tuple(comms), config, assignment, pricer)
    p2p = 0.0
    if config.pipeline_parallel > 1:
        placement = _group_placement(GROUP_PP, config, assignment)
        p2p = pricer.p2p(model.dtype_bytes * group_sequences * model.embed_dim, placement)
    return _DecodeStageTimes(
        flop=rt.flop_time * stage_layers,
        mem_exposed=rt.exposed_memory_time * stage_layers,
        tp_comm=tp_comm * stage_layers,
        p2p=p2p,
    )


def decode_step_time(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment | None = None,
    *,
    batch_per_replica: float,
    context_tokens: float,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> float:
    """Time for every resident sequence to advance one token (= TPOT, pure).

    The per-replica batch splits into ``np`` round-robin groups; one token
    period is a full pipeline rotation ``np * (t_stage + t_p2p)``.  Public
    entry point for analyses that want the raw decode cost without the
    continuous-batching machinery.
    """
    assignment = assignment or GpuAssignment()
    pricer = get_backend(backend)(system)
    g = max(1.0, float(batch_per_replica)) / config.pipeline_parallel
    stage = _decode_stage_times(
        model, system, config, assignment, g, context_tokens, options, pricer
    )
    return config.pipeline_parallel * (stage.stage_total + stage.p2p)


# ----------------------------------------------------------------------
# Serving estimate
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ServingEstimate:
    """Result of evaluating one configuration in serving mode."""

    model_name: str
    system_name: str
    config: ParallelConfig
    assignment: GpuAssignment
    serving: ServingSpec
    #: Time-to-first-token: the prompt's traversal of the whole pipeline.
    ttft: float
    #: Time-per-output-token at the steady-state effective batch, including
    #: the prefill-interference inflation (``inf`` when prefill saturates).
    tpot: float
    #: Peak sustainable decode throughput (tokens/s/GPU) at the KV-capacity
    #: batch, with the matching prefill duty cycle amortised in.
    tokens_per_s_per_gpu: float
    #: Steady-state concurrently-decoding sequences per replica (Little's
    #: law fixed point, clamped to [1, capacity]).
    effective_batch: float
    #: Largest decode batch the replica can hold (min of the KV-memory cap
    #: and the scheduler cap).
    capacity_batch: float
    #: Fraction of stage time stolen by prefill work at the offered load.
    prefill_utilization: float
    #: Resident KV-cache bytes per GPU at the effective batch (paged).
    kv_cache_bytes: float
    #: Resident weight bytes per GPU (no grads/optimizer at inference).
    weight_bytes: float
    feasible: bool
    infeasible_reason: Optional[str] = None
    plan: Optional[ExecutionPlan] = None
    backend: str = DEFAULT_BACKEND

    @property
    def request_latency(self) -> float:
        """End-to-end latency of one request: TTFT + all decode steps."""
        return self.ttft + self.serving.output_tokens * self.tpot

    @property
    def kv_cache_gb(self) -> float:
        """Resident KV cache per GPU in (decimal) GB."""
        return self.kv_cache_bytes / GB

    @property
    def weight_gb(self) -> float:
        """Resident weights per GPU in (decimal) GB."""
        return self.weight_bytes / GB

    @property
    def goodput_tokens_per_s(self) -> float:
        """Output tokens/s the offered arrival rate produces when feasible."""
        if not self.feasible:
            return 0.0
        return self.serving.arrival_rate * self.serving.output_tokens

    def objective_value(self, objective: str) -> float:
        """Value of the named serving objective for this estimate."""
        if objective == "throughput":
            return self.tokens_per_s_per_gpu
        if objective == "ttft":
            return self.ttft
        if objective == "tpot":
            return self.tpot
        raise ValueError(
            f"unknown serving objective {objective!r}; expected one of {SERVING_OBJECTIVES}"
        )

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports, JSON dumps and the CLI."""
        return {
            "model": self.model_name,
            "system": self.system_name,
            "config": self.config.describe(),
            "assignment": self.assignment.as_tuple(),
            "ttft_s": self.ttft,
            "tpot_s": self.tpot,
            "request_latency_s": self.request_latency,
            "tokens_per_s_per_gpu": self.tokens_per_s_per_gpu,
            "effective_batch": self.effective_batch,
            "capacity_batch": self.capacity_batch,
            "prefill_utilization": self.prefill_utilization,
            "kv_cache_gb": self.kv_cache_gb,
            "weight_gb": self.weight_gb,
            "feasible": self.feasible,
            "backend": self.backend,
        }


class _FreeCommPricer(CostPricer):
    """Zero-cost communication pricer: the serving search's admissible bound.

    Every serving objective is monotone in the communication terms — TTFT
    and TPOT only grow when collectives/P2P cost more, throughput only
    shrinks, the prefill utilisation only grows, and the Little's-law fixed
    point (the smallest one, which the iteration converges to from below)
    only moves up — so pricing a candidate with free communication bounds
    its value under *every* NVS assignment.  Memory quantities do not
    depend on communication at all, which also makes bound-infeasibility
    (capacity or saturation) a proof that every assignment is infeasible.
    """

    name = "bound"

    def collective(self, collective, volume_bytes, placement):
        """Every collective is free under the bound."""
        return 0.0

    def p2p(self, volume_bytes, placement):
        """Every point-to-point transfer is free under the bound."""
        return 0.0

    def bubble(self, schedule, num_stages, num_microbatches, forward_time, backward_time, virtual_stages):
        """Serving plans charge no schedule bubble (kept for the interface)."""
        return 0.0


def _validate_serving_candidate(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment,
    serving: ServingSpec,
) -> None:
    """Raise ``ValueError`` for structurally invalid serving candidates."""
    if config.strategy != "tp1d":
        raise ValueError(
            f"serving models 1D tensor parallelism only (got strategy {config.strategy!r}); "
            f"2D TP/SUMMA decompose the sequence, which autoregressive decode does not have"
        )
    if config.virtual_stages != 1:
        raise ValueError("serving uses microbatch round-robin, not interleaving (virtual_stages must be 1)")
    prefill_model = model.scaled(seq_len=serving.prompt_tokens)
    # tp1d's own rules cover everything decode needs too: kv_heads % n1
    # guards the KV shard, seq_len % n1 (on the prompt) guards prefill.
    err = get_strategy("tp1d").validate_config(prefill_model, config)
    if err is not None:
        raise ValueError(f"invalid serving configuration {config.describe()}: {err}")
    if not assignment.is_valid_for(config, system.nvs_domain_size):
        raise ValueError(
            f"assignment {assignment.as_tuple()} invalid for {config.describe()} "
            f"on NVS domain size {system.nvs_domain_size}"
        )


def _evaluate_serving(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment,
    serving: ServingSpec,
    options: ModelingOptions,
    pricer: CostPricer,
    _prefill_comm: Optional[Tuple[float, float]] = None,
) -> ServingEstimate:
    """Price one validated serving candidate through ``pricer``.

    ``_prefill_comm`` optionally injects the two assignment-dependent
    prefill quantities — the per-layer TP-collective time and the
    stage-boundary P2P time — pre-computed by the vectorized batch pricer
    (:func:`repro.core.batch_eval.batch_serving_prefill_comm`).  The lanes
    are bit-exact with the scalar closed forms, so injection changes no
    result; it only skips re-pricing the collectives per candidate.
    """
    np_ = config.pipeline_parallel
    nd = config.data_parallel
    stage_layers = layers_per_stage(model, config)
    prefill_model = model.scaled(seq_len=serving.prompt_tokens)

    # --- prefill: a training forward pass over the prompt ----------------
    stage = _cached_stage_times(
        "tp1d",
        prefill_model,
        system.gpu,
        1,  # one request per prefill microbatch
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        config.expert_parallel,
    )
    pf_flop = stage.fwd_flop * stage_layers
    pf_mem = stage.fwd_mem_exposed * stage_layers
    if _prefill_comm is not None:
        pf_layer_comm = _prefill_comm[0]
    else:
        pf_layer_comm = _comm_time(stage.fwd_comms, config, assignment, pricer)
    pf_tp_comm = pf_layer_comm * stage_layers
    t_pf_stage = pf_flop + pf_mem + pf_tp_comm

    pf_p2p = 0.0
    if np_ > 1:
        if _prefill_comm is not None:
            pf_p2p = _prefill_comm[1]
        else:
            placement = _group_placement(GROUP_PP, config, assignment)
            pf_p2p = pricer.p2p(
                model.dtype_bytes * serving.prompt_tokens * model.embed_dim, placement
            )
    ttft = np_ * t_pf_stage + (np_ - 1) * pf_p2p

    # --- memory: weights + paged KV capacity ------------------------------
    workload = _cached_workload(
        "tp1d",
        prefill_model,
        1,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        config.expert_parallel,
    )
    weight_bytes = (
        (workload.params_per_gpu + workload.expert_params_per_gpu)
        * stage_layers
        * WEIGHT_BYTES_PER_PARAM
    )
    # Inference retains no activations across layers; the live working set
    # is one layer's prefill intermediates (first-order).
    workspace_bytes = workload.activation_elements * model.dtype_bytes

    kv_seq_max = kv_cache_bytes_per_sequence(
        model, config, serving.max_context_tokens, serving.kv_block_tokens
    )
    available = system.gpu.hbm_capacity - weight_bytes - workspace_bytes

    feasible = True
    reason: Optional[str] = None
    if available <= 0:
        feasible = False
        reason = (
            f"weights + workspace {(weight_bytes + workspace_bytes) / GB:.1f} GB exceed "
            f"HBM capacity {system.gpu.hbm_capacity / GB:.1f} GB"
        )
        capacity_batch = 0.0
    else:
        capacity_batch = min(
            float(math.floor(available / kv_seq_max)), float(serving.max_batch_per_replica)
        )
        if capacity_batch < 1.0:
            feasible = False
            reason = (
                f"KV cache for one sequence ({kv_seq_max / GB:.2f} GB at "
                f"{serving.max_context_tokens} tokens) does not fit beside the weights"
            )

    # --- continuous batching: arrival rate -> effective batch -------------
    lam = serving.arrival_rate / nd
    prefill_utilization = lam * t_pf_stage
    slowdown = math.inf if prefill_utilization >= 1.0 else 1.0 / (1.0 - prefill_utilization)

    context = serving.mean_context_tokens

    def decode_stage(batch: float) -> _DecodeStageTimes:
        """Stage times of one decode step at per-replica batch ``batch``."""
        g = max(batch, 1.0) / np_
        return _decode_stage_times(
            model, system, config, assignment, g, context, options, pricer
        )

    def rotation_of(stage_times: _DecodeStageTimes) -> float:
        """Pure decode token period of already-computed stage times."""
        return np_ * (stage_times.stage_total + stage_times.p2p)

    if feasible and prefill_utilization >= 1.0:
        feasible = False
        reason = (
            f"prefill work saturates the replica: utilisation "
            f"{prefill_utilization:.2f} at {lam:.3f} req/s/replica"
        )

    # Decode stage times at the capacity batch, shared between the overload
    # check and the saturation-capacity ("throughput") formula below.
    cap_stage = decode_stage(capacity_batch) if capacity_batch >= 1.0 else None

    if cap_stage is not None and math.isfinite(slowdown):
        # Little's law fixed point B = lam * output * TPOT(B); the map is
        # monotone increasing in B, so iterating from below converges to
        # the smallest fixed point.  No fixed point at or below the
        # capacity batch means the offered load exceeds decode capacity.
        demand_at_cap = (
            lam * serving.output_tokens * rotation_of(cap_stage) * slowdown
        )
        if feasible and demand_at_cap > capacity_batch:
            feasible = False
            reason = (
                f"arrival rate exceeds decode capacity: Little's-law batch "
                f"{demand_at_cap:.1f} > capacity {capacity_batch:.0f} sequences/replica"
            )
        batch = 1.0
        dec = decode_stage(batch)
        for _ in range(_FIXED_POINT_MAX_ITER):
            target = max(1.0, lam * serving.output_tokens * rotation_of(dec) * slowdown)
            target = min(target, capacity_batch)
            converged = abs(target - batch) <= _FIXED_POINT_RTOL * max(1.0, batch)
            batch = target
            dec = decode_stage(batch)
            if converged:
                break
        effective_batch = batch
    else:
        # Saturated or capacity-less candidate: report single-sequence
        # latencies so the infeasible estimate still reads sensibly.
        effective_batch = 1.0
        dec = decode_stage(effective_batch)

    rotation_pure = rotation_of(dec)
    tpot = rotation_pure * slowdown

    # --- peak capacity (the "throughput" objective) -----------------------
    # At saturation the replica holds the capacity batch and each request
    # amortises one prefill: lambda_max = B / (out * TPOT_pure(B) + B * t_pf).
    if cap_stage is not None:
        tokens_capacity_replica = (
            capacity_batch
            * serving.output_tokens
            / (serving.output_tokens * rotation_of(cap_stage) + capacity_batch * t_pf_stage)
        )
    else:
        tokens_capacity_replica = 0.0
    tokens_per_s_per_gpu = tokens_capacity_replica * nd / config.total_gpus

    # --- SLO targets -------------------------------------------------------
    if feasible and serving.target_ttft is not None and ttft > serving.target_ttft:
        feasible = False
        reason = f"TTFT {ttft:.3f} s exceeds target {serving.target_ttft:.3f} s"
    if feasible and serving.target_tpot is not None and tpot > serving.target_tpot:
        feasible = False
        reason = f"TPOT {tpot:.4f} s exceeds target {serving.target_tpot:.4f} s"

    kv_resident = effective_batch * kv_cache_bytes_per_sequence(
        model, config, int(math.ceil(context)), serving.kv_block_tokens
    )

    # --- the cost plan: one request's lifetime ----------------------------
    # ``dec`` already holds the decode stage times at the effective batch.
    out = serving.output_tokens
    interference = tpot - rotation_pure if math.isfinite(tpot) else 0.0
    phases: List[CostPhase] = [
        CostPhase("prefill.compute", CATEGORY_COMPUTE, pf_flop, count=np_),
        CostPhase("prefill.hbm", CATEGORY_MEMORY, pf_mem, count=np_),
        CostPhase("prefill.tp_comm", CATEGORY_TP_COMM, pf_tp_comm, count=np_),
    ]
    if np_ > 1:
        phases.append(CostPhase("prefill.p2p", CATEGORY_PP_COMM, pf_p2p, count=np_ - 1))
    phases.extend(
        [
            CostPhase("decode.compute", CATEGORY_COMPUTE, np_ * dec.flop, count=out),
            CostPhase("decode.hbm", CATEGORY_MEMORY, np_ * dec.mem_exposed, count=out),
            CostPhase("decode.tp_comm", CATEGORY_TP_COMM, np_ * dec.tp_comm, count=out),
        ]
    )
    if np_ > 1:
        phases.append(CostPhase("decode.p2p", CATEGORY_PP_COMM, np_ * dec.p2p, count=out))
    if interference > 0.0 and math.isfinite(interference):
        phases.append(
            CostPhase("decode.prefill_interference", CATEGORY_PP_BUBBLE, interference, count=out)
        )
    phases.append(CostPhase("state.weights", CATEGORY_STATE, 0.0, memory_bytes=weight_bytes))
    phases.append(CostPhase("state.kv_cache", CATEGORY_STATE, 0.0, memory_bytes=kv_resident))

    plan = ExecutionPlan(
        schedule=SERVING_SCHEDULE,
        virtual_stages=1,
        num_stages=np_,
        num_microbatches=np_,  # round-robin decode groups in flight
        phases=tuple(phases),
        backend=pricer.name,
    )

    return ServingEstimate(
        model_name=model.name,
        system_name=system.name,
        config=config,
        assignment=assignment,
        serving=serving,
        ttft=ttft,
        tpot=tpot,
        tokens_per_s_per_gpu=tokens_per_s_per_gpu,
        effective_batch=effective_batch,
        capacity_batch=capacity_batch,
        prefill_utilization=prefill_utilization,
        kv_cache_bytes=kv_resident,
        weight_bytes=weight_bytes,
        feasible=feasible,
        infeasible_reason=reason,
        plan=plan,
        backend=pricer.name,
    )


def evaluate_serving_config(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment | None = None,
    *,
    serving: ServingSpec,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> ServingEstimate:
    """Estimate TTFT/TPOT/throughput of one configuration in serving mode.

    Mirrors :func:`repro.core.execution.evaluate_config`: raises
    ``ValueError`` for structurally invalid candidates, returns an estimate
    flagged infeasible when the candidate is valid but cannot hold a single
    sequence's KV cache or cannot sustain the offered arrival rate.
    """
    assignment = assignment or GpuAssignment()
    _validate_serving_candidate(model, system, config, assignment, serving)
    pricer = get_backend(backend)(system)
    return _evaluate_serving(model, system, config, assignment, serving, options, pricer)


def serving_objective_bound(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    *,
    serving: ServingSpec,
    objective: str,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> Tuple[float, bool]:
    """Assignment-independent bound on ``objective`` for ``config``.

    Prices the candidate with zero-cost communication
    (:class:`_FreeCommPricer`): an upper bound for the maximised
    ``throughput`` objective, a lower bound for the minimised latency
    objectives, in both cases admissible over every NVS assignment.  The
    returned flag is the bound evaluation's feasibility — ``False`` proves
    every assignment infeasible (communication can only make things
    worse), so the search drops the candidate outright.
    """
    if objective not in SERVING_OBJECTIVES:
        raise ValueError(
            f"unknown serving objective {objective!r}; expected one of {SERVING_OBJECTIVES}"
        )
    assignment = GpuAssignment()
    _validate_serving_candidate(model, system, config, assignment, serving)
    est = _evaluate_serving(
        model, system, config, assignment, serving, options, _FreeCommPricer(system)
    )
    return est.objective_value(objective), est.feasible


# ----------------------------------------------------------------------
# Serving search
# ----------------------------------------------------------------------

@dataclass
class ServingSearchResult:
    """Outcome of :func:`find_serving_config`."""

    model_name: str
    system_name: str
    n_gpus: int
    objective: str
    serving: ServingSpec
    best: Optional[ServingEstimate]
    top_k: List[ServingEstimate]
    statistics: SearchStatistics
    backend: str = DEFAULT_BACKEND

    @property
    def found(self) -> bool:
        """True when at least one feasible serving configuration exists."""
        return self.best is not None

    @property
    def best_value(self) -> float:
        """Objective value of the best configuration (``nan`` if none)."""
        if self.best is None:
            return math.nan
        return self.best.objective_value(self.objective)

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports and JSON archives."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "n_gpus": self.n_gpus,
            "objective": self.objective,
            "found": self.found,
            "configs_searched": self.statistics.parallel_configs,
            "candidates_evaluated": self.statistics.candidates_evaluated,
            "pruned_configs": self.statistics.pruned_configs,
        }
        out.update({f"serving_{k}": v for k, v in self.serving.describe().items()})
        if self.best is not None:
            out.update(self.best.summary())
        return out


def _serving_space(space: SearchSpace) -> SearchSpace:
    """Search-space view of ``space`` for serving enumeration.

    The training-only axes collapse: serving has no microbatch size (the
    decode batch is an outcome, not a knob), no training pipeline schedule
    (decode always round-robins) and no interleaving.
    """
    return replace(
        space,
        microbatch_sizes=(1,),
        schedules=(DEFAULT_SCHEDULE,),
        virtual_stages=(1,),
    )


def find_serving_config(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    *,
    serving: ServingSpec,
    objective: str = "throughput",
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    top_k: int = 0,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = "scalar",
    warm_hints: Sequence = (),
) -> ServingSearchResult:
    """Search the EP/TP/PP/DP space for the best serving configuration.

    Enumerates parallelizations with the same machinery as the training
    search (:func:`repro.core.config_space.parallel_configs`, restricted to
    the 1D tensor-parallel strategy decode uses), pre-filters with the
    assignment-independent zero-communication evaluation, orders the
    NVS-assignment loops best-bound-first and prunes every candidate whose
    bound cannot beat the incumbent — provably never changing the selected
    optimum (or the top-k set), exactly like the training branch-and-bound.

    ``objective`` selects what "best" means: ``"throughput"`` maximises
    sustainable tokens/s/GPU; ``"ttft"`` / ``"tpot"`` minimise the latency
    terms.  Infeasible candidates (KV capacity, prefill saturation,
    arrival-rate overload, SLO targets) never win.

    ``eval_mode="batch"`` prices each survivor's assignment-dependent
    prefill communication as one vectorized array program
    (:func:`repro.core.batch_eval.batch_serving_prefill_comm`) and injects
    the lanes into the scalar evaluator; the decode fixed point stays
    scalar, so every estimate — and therefore the search outcome — is
    byte-identical to scalar mode.  Analytic backend only.

    ``warm_hints`` seeds the branch-and-bound exactly like the training
    search (:func:`repro.core.search.find_optimal_config`): hints — usually
    a neighboring request's winner — are adapted into the serving space,
    evaluated at this point first, and the best feasible *score* (the
    sign-adjusted objective, so the maximised throughput seeds correctly)
    opens the pruning threshold.  The selected optimum and top-k set are
    bit-identical to a cold search.
    """
    # Local import: batch_eval shares this module's core dependencies but
    # must not be imported at module load (keeps numpy off the scalar path).
    from repro.core import batch_eval

    eval_mode = batch_eval.validate_eval_mode(eval_mode)
    if eval_mode == "batch" and backend != DEFAULT_BACKEND:
        raise ValueError(
            f"eval_mode='batch' vectorizes the analytic closed forms and is "
            f"only exact against backend={DEFAULT_BACKEND!r}; got {backend!r}"
        )
    if objective not in SERVING_OBJECTIVES:
        raise ValueError(
            f"unknown serving objective {objective!r}; expected one of {SERVING_OBJECTIVES}"
        )
    maximize = objective == "throughput"
    sign = -1.0 if maximize else 1.0
    serving_space = _serving_space(space)
    # The enumeration must apply the *prompt's* divisibility rules (the
    # prefill sequence is what tensor parallelism shards at inference).
    prefill_model = model.scaled(seq_len=serving.prompt_tokens)
    prune = space.prune_with_lower_bound and backend == DEFAULT_BACKEND
    pricer = get_backend(backend)(system)

    n_parallel = 0
    n_eval = 0
    n_mem = 0
    n_other = 0
    n_bounds = 0
    n_pruned = 0

    # Warm-start seeding (see repro.core.search._seed_from_hints): every
    # adapted hint is a member of this point's serving space, so its
    # sign-adjusted score is a true upper bound on the best score and
    # strict-> pruning against it never discards the optimum or a tie.
    seed_threshold = math.inf
    warm_hits = 0
    warm_time = 0.0
    if warm_hints and prune and top_k == 0:
        from repro.core.search import adapt_warm_hints

        t0 = _time.perf_counter()
        for config in adapt_warm_hints(
            prefill_model, n_gpus, n_gpus, "tp1d", serving_space, warm_hints
        ):
            best_score = math.inf
            for assignment in gpu_assignments(
                config, system.nvs_domain_size, serving_space
            ):
                n_eval += 1
                try:
                    est = _evaluate_serving(
                        model, system, config, assignment, serving, options, pricer
                    )
                except ValueError:
                    continue
                if est.feasible:
                    best_score = min(best_score, sign * est.objective_value(objective))
            if best_score < math.inf:
                warm_hits += 1
                seed_threshold = min(seed_threshold, best_score)
        warm_time = _time.perf_counter() - t0

    # Pass 1: the zero-communication evaluation doubles as the memory /
    # saturation pre-filter (bound-infeasibility is assignment-independent)
    # and, when pruning, as the candidate ordering score.
    survivors: List[Tuple[float, int, ParallelConfig]] = []
    for config in parallel_configs(
        prefill_model, n_gpus, n_gpus, "tp1d", serving_space
    ):
        n_parallel += 1
        try:
            bound_value, bound_feasible = serving_objective_bound(
                model, system, config, serving=serving, objective=objective, options=options
            )
            n_bounds += 1
        except ValueError:
            n_other += 1
            continue
        if not bound_feasible:
            n_mem += 1
            continue
        survivors.append((sign * bound_value, len(survivors), config))
    if prune:
        survivors.sort(key=lambda item: item[0])

    # Pass 2: assignment loops in best-bound-first order, pruned against
    # the incumbent (or the k-th best, preserving the exact top-k set).
    # Scores are ``objective`` for minimised objectives and ``-objective``
    # for the maximised one, so the loop body is shared.
    best: Optional[ServingEstimate] = None
    best_key: Tuple[float, int, int] = (math.inf, -1, -1)
    topk_heap: List[Tuple[float, int, int, ServingEstimate]] = []
    for idx, (bound_score, rank, config) in enumerate(survivors):
        if prune:
            if top_k > 0:
                threshold = -topk_heap[0][0] if len(topk_heap) >= top_k else math.inf
            else:
                threshold = best_key[0] if best is not None else math.inf
                threshold = min(threshold, seed_threshold)
            if bound_score > threshold:
                n_pruned += len(survivors) - idx
                break
        assignments = gpu_assignments(config, system.nvs_domain_size, serving_space)
        prefill_comms: Optional[List[Tuple[float, float]]] = None
        if eval_mode == "batch":
            pf_comm, pf_p2p = batch_eval.batch_serving_prefill_comm(
                model,
                system,
                config,
                assignments,
                prompt_tokens=serving.prompt_tokens,
                options=options,
            )
            prefill_comms = [
                (float(c), float(p)) for c, p in zip(pf_comm, pf_p2p)
            ]
        for assign_idx, assignment in enumerate(assignments):
            n_eval += 1
            est = _evaluate_serving(
                model, system, config, assignment, serving, options, pricer,
                _prefill_comm=(
                    prefill_comms[assign_idx] if prefill_comms is not None else None
                ),
            )
            if not est.feasible:
                n_mem += 1
                continue
            score = sign * est.objective_value(objective)
            key = (score, rank, assign_idx)
            if best is None or key < best_key:
                best = est
                best_key = key
            if top_k > 0:
                entry = (-score, -rank, -assign_idx, est)
                if len(topk_heap) < top_k:
                    heapq.heappush(topk_heap, entry)
                elif entry > topk_heap[0]:
                    heapq.heapreplace(topk_heap, entry)

    leaderboard = [
        est for _, _, _, est in sorted(topk_heap, key=lambda e: (-e[0], -e[1], -e[2]))
    ]

    return ServingSearchResult(
        model_name=model.name,
        system_name=system.name,
        n_gpus=n_gpus,
        objective=objective,
        serving=serving,
        best=best,
        top_k=leaderboard,
        statistics=SearchStatistics(
            parallel_configs=n_parallel,
            candidates_evaluated=n_eval,
            infeasible_memory=n_mem,
            infeasible_other=n_other,
            bounds_computed=n_bounds,
            pruned_configs=n_pruned,
            warm_start_hits=warm_hits,
            warm_seed_time=warm_time,
        ),
        backend=backend,
    )
