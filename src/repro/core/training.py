"""End-to-end training-time estimates (iterations -> days).

The paper reports training times in *days* for two training regimes:

* **GPT3-1T** pre-trained on 1 trillion tokens (as planned for LLM-for-
  science efforts); with a global batch of 4096 samples of 2048 tokens each,
  one iteration consumes ``4096 * 2048`` tokens.
* **VIT** trained on 40 years of hourly ERA5 data for 80 epochs; one epoch
  is ``40 * 365.25 * 24`` samples.

This module converts an iteration-time estimate into the number of training
iterations and total days for these regimes (and custom ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.model import TransformerConfig

#: Hours of ERA5 training data assumed by the paper (40 years of hourly data).
ERA5_YEARS = 40
ERA5_SAMPLES_PER_EPOCH = int(ERA5_YEARS * 365.25 * 24)
#: Number of epochs of ERA5 training assumed by the paper.
ERA5_EPOCHS = 80

#: Tokens of GPT3-1T pre-training assumed by the paper.
GPT_PRETRAINING_TOKENS = 1.0e12

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class TrainingRegime:
    """A training run: how many optimizer iterations must be executed."""

    name: str
    total_iterations: int

    def days(self, iteration_time_s: float) -> float:
        """Wall-clock days for the run at the given per-iteration time."""
        if iteration_time_s < 0:
            raise ValueError("iteration_time_s must be non-negative")
        return self.total_iterations * iteration_time_s / SECONDS_PER_DAY

    def hours(self, iteration_time_s: float) -> float:
        """Wall-clock hours for the run."""
        return self.days(iteration_time_s) * 24.0


def iterations_for_tokens(
    model: TransformerConfig, global_batch_size: int, total_tokens: float
) -> int:
    """Number of iterations needed to consume ``total_tokens``."""
    if global_batch_size < 1:
        raise ValueError("global_batch_size must be >= 1")
    tokens_per_iteration = global_batch_size * model.seq_len
    return max(1, math.ceil(total_tokens / tokens_per_iteration))


def iterations_for_epochs(
    samples_per_epoch: int, epochs: float, global_batch_size: int
) -> int:
    """Number of iterations for ``epochs`` passes over ``samples_per_epoch``."""
    if samples_per_epoch < 1 or global_batch_size < 1:
        raise ValueError("samples_per_epoch and global_batch_size must be >= 1")
    total_samples = samples_per_epoch * epochs
    return max(1, math.ceil(total_samples / global_batch_size))


def gpt_pretraining_regime(
    model: TransformerConfig,
    global_batch_size: int,
    *,
    total_tokens: float = GPT_PRETRAINING_TOKENS,
) -> TrainingRegime:
    """Pre-training regime for LLMs: a fixed token budget (default 1T)."""
    return TrainingRegime(
        name=f"{model.name}-pretrain-{total_tokens:.0e}tok",
        total_iterations=iterations_for_tokens(model, global_batch_size, total_tokens),
    )


def vit_era5_regime(
    model: TransformerConfig,
    global_batch_size: int,
    *,
    samples_per_epoch: int = ERA5_SAMPLES_PER_EPOCH,
    epochs: float = ERA5_EPOCHS,
) -> TrainingRegime:
    """ERA5 training regime for the long-sequence ViT (80 epochs, 40 years)."""
    return TrainingRegime(
        name=f"{model.name}-era5-{epochs}ep",
        total_iterations=iterations_for_epochs(samples_per_epoch, epochs, global_batch_size),
    )


def default_regime(model: TransformerConfig, global_batch_size: int) -> TrainingRegime:
    """Paper's training regime for the given model class.

    GPT-style models (sequence length <= 8K) use the 1T-token pre-training
    budget; long-sequence ViT-style models use the 80-epoch ERA5 regime.
    """
    if model.name.lower().startswith("gpt") or model.seq_len <= 8192:
        return gpt_pretraining_regime(model, global_batch_size)
    return vit_era5_regime(model, global_batch_size)


def training_days(
    iteration_time_s: float,
    model: TransformerConfig,
    global_batch_size: int,
    *,
    regime: Optional[TrainingRegime] = None,
) -> float:
    """Days of training at ``iteration_time_s`` under ``regime``.

    When no regime is given, :func:`default_regime` picks the paper's regime
    for the model class.
    """
    regime = regime or default_regime(model, global_batch_size)
    return regime.days(iteration_time_s)
