"""Communication-time model for NCCL-style collectives on a dual network.

The paper (§III-A, S2 "Communication Time") models every collective with a
latency term and a bandwidth term.  For a ring AllGather of ``V`` bytes per
GPU over a group of ``n`` GPUs with ``g`` of the group's GPUs placed inside
each NVSwitch domain:

    t_latency = alpha_s * (n / g - 1)  +  alpha_f * (n - n / g)
    t_comm    = t_latency + (n - 1) / n * max( V / (n_NIC * beta_s),  V / beta_f )

i.e. the ring takes ``n/g - 1`` slow (inter-node) hops and ``n - n/g`` fast
(intra-node) hops, and its steady-state bandwidth is constrained by the
slower of the fast domain and the (NIC-multiplexed) slow domain.  When the
whole group fits inside a single NVSwitch domain the slow network does not
participate at all.

The number of NICs available to the collective is proportional to how many
GPUs of this group sit inside each NVSwitch domain (NCCL opens one ring per
NIC): ``n_NIC_effective = nics_per_node * g / n_NVS``.

Other collectives reuse the same structure with standard ring-algorithm
multipliers: ReduceScatter is identical to AllGather, AllReduce is an RS
followed by an AG (2x the bandwidth term), Broadcast and Reduce move the
full buffer once around the ring, AllToAll (MoE expert dispatch/combine)
exchanges ``(n-1)/n`` of each GPU's buffer pairwise — the same volume shape
as one ring pass — and point-to-point moves the buffer over a single link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.system import NetworkSpec

#: Canonical collective names accepted by :func:`collective_time`.
ALL_GATHER = "all_gather"
REDUCE_SCATTER = "reduce_scatter"
ALL_REDUCE = "all_reduce"
BROADCAST = "broadcast"
REDUCE = "reduce"
ALL_TO_ALL = "all_to_all"
POINT_TO_POINT = "p2p"

SUPPORTED_COLLECTIVES = (
    ALL_GATHER,
    REDUCE_SCATTER,
    ALL_REDUCE,
    BROADCAST,
    REDUCE,
    ALL_TO_ALL,
    POINT_TO_POINT,
)

#: Multiplier applied to the ring bandwidth term for each collective.  The
#: ring term itself is ``(n-1)/n * V / B``; AllReduce performs both an RS and
#: an AG pass, hence the factor 2.
_BANDWIDTH_MULTIPLIER: Dict[str, float] = {
    ALL_GATHER: 1.0,
    REDUCE_SCATTER: 1.0,
    ALL_REDUCE: 2.0,
    BROADCAST: 1.0,
    REDUCE: 1.0,
    # Pairwise exchange of (n-1)/n of the local buffer: the aggregate per-GPU
    # traffic matches a single ring pass, so the AllGather shape is reused.
    ALL_TO_ALL: 1.0,
}


@dataclass(frozen=True)
class GroupPlacement:
    """Placement of one parallel group onto the NVSwitch domains.

    ``size`` is the number of GPUs in the group and ``gpus_per_nvs_domain``
    (the paper's ``nNVS_i``) is how many of them share a fast domain.  The
    placement is valid when ``gpus_per_nvs_domain`` divides ``size`` and does
    not exceed the machine's NVS domain size (checked by the configuration
    space, not here, so that the collective model can also be used for
    ad-hoc what-if questions).
    """

    size: int
    gpus_per_nvs_domain: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("group size must be >= 1")
        if self.gpus_per_nvs_domain < 1:
            raise ValueError("gpus_per_nvs_domain must be >= 1")
        if self.gpus_per_nvs_domain > self.size:
            object.__setattr__(self, "gpus_per_nvs_domain", self.size)

    @property
    def spans_multiple_domains(self) -> bool:
        """True when the group needs the slow (inter-node) network."""
        return self.size > self.gpus_per_nvs_domain

    @property
    def num_domains(self) -> int:
        """Number of NVSwitch domains the group spans."""
        return self.size // self.gpus_per_nvs_domain


def effective_nic_count(placement: GroupPlacement, network: NetworkSpec) -> float:
    """NICs usable by one group's collective on each node.

    NCCL opens roughly one ring per NIC; a group that only occupies ``g`` of
    the ``n_NVS`` GPUs in a node can drive ``nics_per_node * g / n_NVS`` NICs
    (at least one).
    """
    share = placement.gpus_per_nvs_domain / network.nvs_domain_size
    return max(1.0, network.nics_per_node * min(1.0, share))


def latency_time(placement: GroupPlacement, network: NetworkSpec) -> float:
    """Ring latency term: slow hops across domains plus fast hops inside them."""
    n = placement.size
    if n == 1:
        return 0.0
    slow_hops = placement.num_domains - 1
    fast_hops = n - placement.num_domains
    return network.ib_latency * slow_hops + network.nvs_latency * fast_hops


def ring_bandwidth_time(
    volume_bytes: float, placement: GroupPlacement, network: NetworkSpec
) -> float:
    """Steady-state ring bandwidth term ``(n-1)/n * V / B_effective``."""
    n = placement.size
    if n == 1 or volume_bytes <= 0:
        return 0.0
    fast_time = volume_bytes / network.effective_nvs_bandwidth
    if placement.spans_multiple_domains:
        nics = effective_nic_count(placement, network)
        slow_time = volume_bytes / (nics * network.effective_ib_bandwidth)
        per_ring = max(fast_time, slow_time)
    else:
        per_ring = fast_time
    return (n - 1) / n * per_ring


def collective_time(
    collective: str,
    volume_bytes: float,
    placement: GroupPlacement,
    network: NetworkSpec,
) -> float:
    """Time to complete ``collective`` of ``volume_bytes`` per GPU.

    The ``volume_bytes`` convention matches the paper's tables: the total
    bytes transferred per GPU (for AG/RS this is the size of the full,
    gathered tensor).
    """
    if collective not in SUPPORTED_COLLECTIVES:
        raise ValueError(
            f"unknown collective {collective!r}; supported: {SUPPORTED_COLLECTIVES}"
        )
    if placement.size == 1 or volume_bytes <= 0:
        return 0.0

    if collective == POINT_TO_POINT:
        return point_to_point_time(volume_bytes, placement, network)

    multiplier = _BANDWIDTH_MULTIPLIER[collective]
    return latency_time(placement, network) + multiplier * ring_bandwidth_time(
        volume_bytes, placement, network
    )


def point_to_point_time(
    volume_bytes: float, placement: GroupPlacement, network: NetworkSpec
) -> float:
    """Time of a single point-to-point transfer between neighbouring ranks.

    Pipeline-parallel activations cross either the fast or the slow network
    depending on whether adjacent stages share an NVSwitch domain.  With
    ``gpus_per_nvs_domain > 1`` at least one neighbour is in the same domain
    and the transfer uses NVLink; otherwise it crosses InfiniBand on a single
    NIC.
    """
    if volume_bytes <= 0:
        return 0.0
    if placement.gpus_per_nvs_domain > 1:
        return network.nvs_latency + volume_bytes / network.effective_nvs_bandwidth
    return network.ib_latency + volume_bytes / network.effective_ib_bandwidth


def all_gather_time(volume_bytes, placement, network) -> float:
    """Convenience wrapper for :func:`collective_time` with AllGather."""
    return collective_time(ALL_GATHER, volume_bytes, placement, network)


def reduce_scatter_time(volume_bytes, placement, network) -> float:
    """Convenience wrapper for :func:`collective_time` with ReduceScatter."""
    return collective_time(REDUCE_SCATTER, volume_bytes, placement, network)


def all_reduce_time(volume_bytes, placement, network) -> float:
    """Convenience wrapper for :func:`collective_time` with AllReduce."""
    return collective_time(ALL_REDUCE, volume_bytes, placement, network)


def broadcast_time(volume_bytes, placement, network) -> float:
    """Convenience wrapper for :func:`collective_time` with Broadcast."""
    return collective_time(BROADCAST, volume_bytes, placement, network)


def all_to_all_time(volume_bytes, placement, network) -> float:
    """Convenience wrapper for :func:`collective_time` with AllToAll."""
    return collective_time(ALL_TO_ALL, volume_bytes, placement, network)


def effective_algorithm_bandwidth(
    collective: str,
    volume_bytes: float,
    placement: GroupPlacement,
    network: NetworkSpec,
) -> float:
    """Achieved "algorithm bandwidth" V / t — the metric nccl-tests report."""
    t = collective_time(collective, volume_bytes, placement, network)
    if t <= 0:
        return float("inf")
    return volume_bytes / t
