"""Pipeline-schedule interface and registry.

A *pipeline schedule* decides how the ``m`` microbatches of one iteration
flow through the ``np`` pipeline stages.  The execution model only needs
four schedule-dependent quantities, so that is the whole interface:

* the **bubble time** — fill/drain idle time given the per-microbatch
  forward/backward stage times;
* the **in-flight microbatch count** — how many microbatches' activations a
  stage must retain simultaneously (the activation-memory multiplier);
* the **point-to-point volume factor** — how many times a microbatch
  crosses this GPU's stage boundaries (interleaving with ``v`` virtual
  stages per GPU multiplies the P2P traffic by ``v``);
* a **validation** hook for schedule-specific divisibility rules (e.g. the
  virtual-stage degree must divide the layers per stage).

Schedules are registered like tensor-parallel strategies
(:mod:`repro.core.parallelism.base`), so new variants plug in without
touching the execution model, the search, or the CLI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig

#: Name of the paper's default schedule (non-interleaved 1F1B).
DEFAULT_SCHEDULE = "1f1b"

#: One unit of simulated pipeline work on one GPU: ``(kind, chunk, mb)``
#: where ``kind`` is ``"forward"``/``"backward"``, ``chunk`` indexes the
#: GPU's virtual stage (always 0 without interleaving) and ``mb`` is the
#: microbatch.  Consumed by the event-driven replay in
#: :mod:`repro.simulate.pipeline_sim`.
WorkItem = Tuple[str, int, int]


class NoExecutableOrder(ValueError):
    """A schedule has no executable order for the requested parameters.

    Raised by :meth:`PipelineSchedule.execution_order` when the schedule is
    well-defined analytically but cannot be replayed (e.g. interleaving
    requires ``m % np == 0``, as in Megatron-LM).  The simulation backend
    catches exactly this (and ``NotImplementedError``) to fall back to the
    closed-form bubble; any other exception from an order builder is a real
    bug and propagates.
    """


def one_f_one_b_order(stage: int, num_stages: int, num_microbatches: int) -> List[WorkItem]:
    """Canonical per-stage 1F1B order: warm-up, steady state, cool-down.

    Stage ``s`` first runs ``min(np - s - 1, m)`` warm-up forwards, then
    alternates one-forward-one-backward until every microbatch is done, then
    drains the remaining backwards.  Shared by the 1F1B schedule and the
    interleaved schedule's degenerate ``v = 1`` case (which is defined to be
    *exactly* non-interleaved 1F1B).
    """
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    if not (0 <= stage < num_stages):
        raise ValueError(f"stage {stage} out of range [0, {num_stages})")
    warmup = min(num_stages - stage - 1, num_microbatches)
    order: List[WorkItem] = [("forward", 0, mb) for mb in range(warmup)]
    next_fwd = warmup
    next_bwd = 0
    while next_fwd < num_microbatches or next_bwd < num_microbatches:
        if next_fwd < num_microbatches:
            order.append(("forward", 0, next_fwd))
            next_fwd += 1
        if next_bwd < num_microbatches:
            order.append(("backward", 0, next_bwd))
            next_bwd += 1
    return order


class PipelineSchedule(ABC):
    """Interface of a pipeline execution schedule."""

    #: Registry key, e.g. ``"1f1b"``.
    name: str = "abstract"
    #: One-line summary shown by ``repro-perf schedules``.
    description: str = ""
    #: Whether the schedule understands ``virtual_stages > 1``.
    supports_virtual_stages: bool = False
    #: Whether the schedule describes a *training* iteration.  Serving-only
    #: schedules (forward-only round-robin) set this to ``False`` and are
    #: rejected by the training validation — their bubble/in-flight numbers
    #: would silently understate a training iteration's time and memory.
    supports_training: bool = True

    def validate(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """Return ``None`` when ``config`` is admissible, else a reason string."""
        if not self.supports_training:
            return (
                f"schedule {self.name!r} is serving-only (forward-only round-robin); "
                f"it cannot schedule a training iteration"
            )
        v = config.virtual_stages
        if v > 1 and not self.supports_virtual_stages:
            return f"schedule {self.name!r} does not support virtual stages (got v={v})"
        return None

    @abstractmethod
    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        """Fill/drain idle time of one iteration (seconds)."""

    def bubble_time_batch(
        self,
        num_stages,
        num_microbatches,
        forward_time,
        backward_time,
        virtual_stages,
    ):
        """Vectorized :meth:`bubble_time` over aligned candidate arrays.

        The batch evaluator (:mod:`repro.core.batch_eval`) prices whole
        candidate enumerations as array programs; schedules with a closed
        form override this with the elementwise NumPy transcription (same
        operations, same association order, so each lane is bit-exact with
        the scalar call).  The default falls back to looping the scalar
        :meth:`bubble_time` per lane — always correct, merely slower — so
        third-party schedules stay batch-compatible without changes.
        """
        import numpy as np

        return np.array(
            [
                self.bubble_time(int(n), int(m), float(tf), float(tb), int(v))
                for n, m, tf, tb, v in zip(
                    num_stages, num_microbatches, forward_time, backward_time, virtual_stages
                )
            ],
            dtype=np.float64,
        )

    def in_flight_microbatches(
        self, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> int:
        """Microbatches whose activations one stage retains simultaneously."""
        if num_stages < 1 or num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        return min(num_stages, num_microbatches)

    def p2p_volume_factor(self, virtual_stages: int = 1) -> float:
        """Multiplier on the per-microbatch stage-boundary P2P traffic.

        Counts boundary *crossings* per GPU: it scales both the transfer
        time (each crossing is a separate message paying full latency) and
        the in-flight buffer bytes of the memory model.
        """
        return 1.0

    def execution_order(
        self, stage: int, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> List[WorkItem]:
        """Static per-GPU work order executed by the simulation backend.

        Returns the sequence of :data:`WorkItem` tuples GPU ``stage`` runs
        in one iteration.  The event-driven replay
        (:func:`repro.simulate.pipeline_sim.simulate_schedule`) executes the
        order head-first, delaying each item until its cross-stage
        dependencies complete — so the order must be the schedule's real
        execution order (as a synchronous-communication runtime would run
        it), not merely any topological order.

        Schedules that model a bubble analytically but have no executable
        order — at all (``NotImplementedError``) or for these specific
        parameters (:class:`NoExecutableOrder`) — make the simulation
        backend fall back to the closed-form :meth:`bubble_time`.
        """
        raise NotImplementedError(
            f"schedule {self.name!r} does not define an executable order"
        )

    def summary(self) -> Dict[str, object]:
        """Flat description used by the CLI listing."""
        return {
            "schedule": self.name,
            "virtual_stages": self.supports_virtual_stages,
            "description": self.description,
        }


#: Registry of schedule instances keyed by their public name.
SCHEDULE_REGISTRY: Dict[str, PipelineSchedule] = {}


def register_schedule(schedule: PipelineSchedule) -> PipelineSchedule:
    """Register a schedule instance so it can be looked up by name."""
    SCHEDULE_REGISTRY[schedule.name] = schedule
    return schedule


def get_schedule(name: str) -> PipelineSchedule:
    """Look up a registered schedule by name (``1f1b``, ``gpipe``, ``interleaved``)."""
    key = name.strip().lower()
    if key not in SCHEDULE_REGISTRY:
        raise KeyError(f"unknown schedule {name!r}; available: {sorted(SCHEDULE_REGISTRY)}")
    return SCHEDULE_REGISTRY[key]


def available_schedules() -> Sequence[str]:
    """Names of all registered schedules."""
    return tuple(sorted(SCHEDULE_REGISTRY))
