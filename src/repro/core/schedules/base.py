"""Pipeline-schedule interface and registry.

A *pipeline schedule* decides how the ``m`` microbatches of one iteration
flow through the ``np`` pipeline stages.  The execution model only needs
four schedule-dependent quantities, so that is the whole interface:

* the **bubble time** — fill/drain idle time given the per-microbatch
  forward/backward stage times;
* the **in-flight microbatch count** — how many microbatches' activations a
  stage must retain simultaneously (the activation-memory multiplier);
* the **point-to-point volume factor** — how many times a microbatch
  crosses this GPU's stage boundaries (interleaving with ``v`` virtual
  stages per GPU multiplies the P2P traffic by ``v``);
* a **validation** hook for schedule-specific divisibility rules (e.g. the
  virtual-stage degree must divide the layers per stage).

Schedules are registered like tensor-parallel strategies
(:mod:`repro.core.parallelism.base`), so new variants plug in without
touching the execution model, the search, or the CLI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig

#: Name of the paper's default schedule (non-interleaved 1F1B).
DEFAULT_SCHEDULE = "1f1b"


class PipelineSchedule(ABC):
    """Interface of a pipeline execution schedule."""

    #: Registry key, e.g. ``"1f1b"``.
    name: str = "abstract"
    #: One-line summary shown by ``repro-perf schedules``.
    description: str = ""
    #: Whether the schedule understands ``virtual_stages > 1``.
    supports_virtual_stages: bool = False

    def validate(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """Return ``None`` when ``config`` is admissible, else a reason string."""
        v = config.virtual_stages
        if v > 1 and not self.supports_virtual_stages:
            return f"schedule {self.name!r} does not support virtual stages (got v={v})"
        return None

    @abstractmethod
    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        """Fill/drain idle time of one iteration (seconds)."""

    def in_flight_microbatches(
        self, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> int:
        """Microbatches whose activations one stage retains simultaneously."""
        if num_stages < 1 or num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        return min(num_stages, num_microbatches)

    def p2p_volume_factor(self, virtual_stages: int = 1) -> float:
        """Multiplier on the per-microbatch stage-boundary P2P traffic.

        Counts boundary *crossings* per GPU: it scales both the transfer
        time (each crossing is a separate message paying full latency) and
        the in-flight buffer bytes of the memory model.
        """
        return 1.0

    def summary(self) -> Dict[str, object]:
        """Flat description used by the CLI listing."""
        return {
            "schedule": self.name,
            "virtual_stages": self.supports_virtual_stages,
            "description": self.description,
        }


#: Registry of schedule instances keyed by their public name.
SCHEDULE_REGISTRY: Dict[str, PipelineSchedule] = {}


def register_schedule(schedule: PipelineSchedule) -> PipelineSchedule:
    """Register a schedule instance so it can be looked up by name."""
    SCHEDULE_REGISTRY[schedule.name] = schedule
    return schedule


def get_schedule(name: str) -> PipelineSchedule:
    """Look up a registered schedule by name (``1f1b``, ``gpipe``, ``interleaved``)."""
    key = name.strip().lower()
    if key not in SCHEDULE_REGISTRY:
        raise KeyError(f"unknown schedule {name!r}; available: {sorted(SCHEDULE_REGISTRY)}")
    return SCHEDULE_REGISTRY[key]


def available_schedules() -> Sequence[str]:
    """Names of all registered schedules."""
    return tuple(sorted(SCHEDULE_REGISTRY))
