"""The paper's default schedule: non-interleaved 1F1B (PipeDream-flush).

Once the pipeline is full every stage alternates one forward and one
backward microbatch, so the idle time is the fill/drain ramp
``(np - 1) * (tf + tb)`` and at most ``min(m, np)`` microbatches are in
flight per stage (which bounds the retained activation memory — the reason
1F1B is preferred over GPipe at scale).
"""

from __future__ import annotations

from typing import List

from repro.core.parallelism.pipeline import pipeline_bubble_time
from repro.core.schedules.base import (
    PipelineSchedule,
    WorkItem,
    one_f_one_b_order,
    register_schedule,
)


class OneFOneBSchedule(PipelineSchedule):
    """Non-interleaved 1F1B: the schedule the paper models."""

    name = "1f1b"
    description = "non-interleaved 1F1B: bubble (np-1)(tf+tb), min(m,np) in flight"
    supports_virtual_stages = False

    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        """The paper's ``(np - 1) * (tf + tb)`` fill/drain bubble."""
        return pipeline_bubble_time(num_stages, forward_time, backward_time)

    def bubble_time_batch(
        self, num_stages, num_microbatches, forward_time, backward_time, virtual_stages
    ):
        """Elementwise ``(np - 1) * (tf + tb)`` over candidate arrays."""
        return (num_stages - 1) * (forward_time + backward_time)

    def execution_order(
        self, stage: int, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> List[WorkItem]:
        """Warm-up forwards, one-forward-one-backward steady state, drain."""
        return one_f_one_b_order(stage, num_stages, num_microbatches)


register_schedule(OneFOneBSchedule())
