"""Pluggable pipeline schedules (1F1B, GPipe, interleaved-1F1B).

The schedule a configuration runs under is part of :class:`ParallelConfig`
(``schedule`` + ``virtual_stages``); this package maps those names onto
:class:`PipelineSchedule` instances through a registry, mirroring the
tensor-parallel strategy registry.  Importing the package registers the
built-in schedules.
"""

from repro.core.schedules.base import (
    DEFAULT_SCHEDULE,
    SCHEDULE_REGISTRY,
    NoExecutableOrder,
    PipelineSchedule,
    WorkItem,
    available_schedules,
    get_schedule,
    one_f_one_b_order,
    register_schedule,
)
from repro.core.schedules.gpipe import GPipeSchedule
from repro.core.schedules.interleaved import InterleavedSchedule
from repro.core.schedules.one_f_one_b import OneFOneBSchedule
from repro.core.schedules.serve import ServeRoundRobinSchedule

__all__ = [
    "DEFAULT_SCHEDULE",
    "SCHEDULE_REGISTRY",
    "PipelineSchedule",
    "OneFOneBSchedule",
    "GPipeSchedule",
    "InterleavedSchedule",
    "ServeRoundRobinSchedule",
    "NoExecutableOrder",
    "WorkItem",
    "available_schedules",
    "get_schedule",
    "one_f_one_b_order",
    "register_schedule",
]
