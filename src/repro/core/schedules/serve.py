"""Serving round-robin "schedule": continuous-batching decode over a pipeline.

At inference there is no backward pass and no fill/drain bubble to
amortise: the per-replica decode batch splits into ``np`` groups that
round-robin through the pipeline stages, keeping every stage busy once the
rotation is primed.  This module registers that execution pattern as a
:class:`~repro.core.schedules.base.PipelineSchedule` so the serving plans
built by :mod:`repro.core.inference` carry a real registry name and — more
usefully — so the event-driven simulator
(:func:`repro.simulate.pipeline_sim.simulate_schedule`) can *replay* a
decode step stream through the same ``execution_order`` machinery every
training schedule uses: ``m`` forward-only items per stage, whose replayed
makespan is pinned against the closed form
``m * tf + (np - 1) * (tf + p2p)`` by the serving tests.

The schedule is not meant for the training search (its "bubble" is the
one-off forward fill ramp, not a per-iteration cost); the default
:class:`~repro.core.config_space.SearchSpace` never enumerates it.
"""

from __future__ import annotations

from typing import List

from repro.core.schedules.base import (
    PipelineSchedule,
    WorkItem,
    register_schedule,
)


class ServeRoundRobinSchedule(PipelineSchedule):
    """Forward-only round-robin used by continuous-batching decode."""

    name = "serve-rr"
    description = (
        "serving decode round-robin: forward-only groups keep every stage "
        "busy; fill ramp (np-1)*tf is paid once per stream, not per token"
    )
    supports_virtual_stages = False
    # Forward-only: no backward drain, one in-flight group — those numbers
    # would badly understate a training iteration, so the training search
    # must reject this schedule (base.validate enforces it).
    supports_training = False

    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        """Forward-only fill ramp of the rotation (no drain, no backward)."""
        return (num_stages - 1) * forward_time

    def in_flight_microbatches(
        self, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> int:
        """Decode retains no backward activations; one group is live per stage."""
        if num_stages < 1 or num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        return 1

    def execution_order(
        self, stage: int, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> List[WorkItem]:
        """Forward-only order: every stage runs the groups in arrival order."""
        if num_stages < 1 or num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        if not (0 <= stage < num_stages):
            raise ValueError(f"stage {stage} out of range [0, {num_stages})")
        return [("forward", 0, mb) for mb in range(num_microbatches)]


register_schedule(ServeRoundRobinSchedule())
