"""GPipe: all forwards, then all backwards.

The fill/drain bubble is the same ``(np - 1) * (tf + tb)`` ramp as 1F1B,
but because every forward microbatch completes before the first backward
starts, *all* ``m`` microbatches' activations are resident at the steady
state — GPipe trades memory for implementation simplicity.  The execution
model therefore reports identical time to 1F1B but a (potentially much)
larger activation footprint, which is exactly how the two schedules differ
in practice at large microbatch counts.
"""

from __future__ import annotations

from typing import List

from repro.core.parallelism.pipeline import pipeline_bubble_time
from repro.core.schedules.base import PipelineSchedule, WorkItem, register_schedule


class GPipeSchedule(PipelineSchedule):
    """GPipe: same bubble ramp as 1F1B, all microbatches retained."""

    name = "gpipe"
    description = "GPipe: bubble (np-1)(tf+tb), all m microbatches in flight"
    supports_virtual_stages = False

    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        """Same ``(np - 1) * (tf + tb)`` fill/drain ramp as 1F1B."""
        return pipeline_bubble_time(num_stages, forward_time, backward_time)

    def bubble_time_batch(
        self, num_stages, num_microbatches, forward_time, backward_time, virtual_stages
    ):
        """Elementwise ``(np - 1) * (tf + tb)`` over candidate arrays."""
        return (num_stages - 1) * (forward_time + backward_time)

    def in_flight_microbatches(
        self, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> int:
        """All ``m`` microbatches' activations are retained (GPipe's cost)."""
        if num_stages < 1 or num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        return num_microbatches

    def execution_order(
        self, stage: int, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> List[WorkItem]:
        """All forwards first, then all backwards, in microbatch order."""
        if num_stages < 1 or num_microbatches < 1:
            raise ValueError("num_stages and num_microbatches must be >= 1")
        order: List[WorkItem] = [("forward", 0, mb) for mb in range(num_microbatches)]
        order.extend(("backward", 0, mb) for mb in range(num_microbatches))
        return order


register_schedule(GPipeSchedule())
