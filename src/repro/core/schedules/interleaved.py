"""Interleaved 1F1B (Megatron's virtual-pipeline schedule).

Each GPU holds ``v`` *virtual stages* — ``v`` non-contiguous chunks of
``depth / (np * v)`` layers — and the schedule round-robins microbatches
through the chunks.  The fill/drain ramp only spans one chunk instead of a
whole stage, so the bubble shrinks by the virtual-stage degree:

    bubble = (np - 1) * (tf + tb) / v

The price is communication: a microbatch now crosses ``np * v - 1`` chunk
boundaries instead of ``np - 1``, so the per-GPU point-to-point volume
grows by the factor ``v``.  With ``v = 1`` the schedule is *exactly*
non-interleaved 1F1B (the division by 1 and the x1 volume factor are exact
floating-point identities), which is pinned by a hypothesis property test.
"""

from __future__ import annotations

from typing import Optional

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.parallelism.pipeline import pipeline_bubble_time
from repro.core.schedules.base import PipelineSchedule, register_schedule


class InterleavedSchedule(PipelineSchedule):
    """Interleaved 1F1B with a virtual-stage degree ``v``."""

    name = "interleaved"
    description = "interleaved 1F1B: bubble (np-1)(tf+tb)/v, P2P volume x v"
    supports_virtual_stages = True

    def validate(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        v = config.virtual_stages
        if v == 1:
            return None
        if config.pipeline_parallel < 2:
            return f"virtual stages (v={v}) require pipeline_parallel > 1"
        if model.depth % (config.pipeline_parallel * v) != 0:
            return (
                f"virtual stages: np*v ({config.pipeline_parallel}*{v}) "
                f"must divide depth ({model.depth})"
            )
        return None

    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        if virtual_stages < 1:
            raise ValueError("virtual_stages must be >= 1")
        return pipeline_bubble_time(num_stages, forward_time, backward_time) / virtual_stages

    def p2p_volume_factor(self, virtual_stages: int = 1) -> float:
        if virtual_stages < 1:
            raise ValueError("virtual_stages must be >= 1")
        return float(virtual_stages)


register_schedule(InterleavedSchedule())
