"""Interleaved 1F1B (Megatron's virtual-pipeline schedule).

Each GPU holds ``v`` *virtual stages* — ``v`` non-contiguous chunks of
``depth / (np * v)`` layers — and the schedule round-robins microbatches
through the chunks.  The fill/drain ramp only spans one chunk instead of a
whole stage, so the bubble shrinks by the virtual-stage degree:

    bubble = (np - 1) * (tf + tb) / v

The price is communication: a microbatch now crosses ``np * v - 1`` chunk
boundaries instead of ``np - 1``, so the per-GPU point-to-point volume
grows by the factor ``v``.  With ``v = 1`` the schedule is *exactly*
non-interleaved 1F1B (the division by 1 and the x1 volume factor are exact
floating-point identities), which is pinned by a hypothesis property test.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.parallelism.pipeline import pipeline_bubble_time
from repro.core.schedules.base import (
    NoExecutableOrder,
    PipelineSchedule,
    WorkItem,
    one_f_one_b_order,
    register_schedule,
)


def _virtual_sequence(
    num_stages: int, num_microbatches: int, virtual_stages: int, *, forward: bool
) -> List[Tuple[int, int]]:
    """Megatron's interleaved traversal order as ``(chunk, microbatch)`` pairs.

    Microbatches are consumed in groups of (at most) ``np``; each group
    cycles through all ``v`` chunks before the next group starts.  The
    backward traversal visits the chunks in reverse (``v - 1 - c``), since
    gradients flow from the last virtual stage back to the first.
    """
    seq: List[Tuple[int, int]] = []
    start = 0
    while start < num_microbatches:
        group = range(start, min(start + num_stages, num_microbatches))
        for c in range(virtual_stages):
            chunk = c if forward else virtual_stages - 1 - c
            seq.extend((chunk, mb) for mb in group)
        start += num_stages
    return seq


class InterleavedSchedule(PipelineSchedule):
    """Interleaved 1F1B with a virtual-stage degree ``v``."""

    name = "interleaved"
    description = "interleaved 1F1B: bubble (np-1)(tf+tb)/v, P2P volume x v"
    supports_virtual_stages = True

    def validate(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """Interleaving needs ``np > 1`` and ``np * v`` dividing the depth."""
        v = config.virtual_stages
        if v == 1:
            return None
        if config.pipeline_parallel < 2:
            return f"virtual stages (v={v}) require pipeline_parallel > 1"
        if model.depth % (config.pipeline_parallel * v) != 0:
            return (
                f"virtual stages: np*v ({config.pipeline_parallel}*{v}) "
                f"must divide depth ({model.depth})"
            )
        return None

    def bubble_time(
        self,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int = 1,
    ) -> float:
        """The 1F1B ramp shrunk by the virtual-stage degree ``v``."""
        if virtual_stages < 1:
            raise ValueError("virtual_stages must be >= 1")
        return pipeline_bubble_time(num_stages, forward_time, backward_time) / virtual_stages

    def bubble_time_batch(
        self, num_stages, num_microbatches, forward_time, backward_time, virtual_stages
    ):
        """Elementwise ``(np - 1) * (tf + tb) / v`` over candidate arrays."""
        return (num_stages - 1) * (forward_time + backward_time) / virtual_stages

    def p2p_volume_factor(self, virtual_stages: int = 1) -> float:
        """Each microbatch crosses ``v`` chunk boundaries per GPU."""
        if virtual_stages < 1:
            raise ValueError("virtual_stages must be >= 1")
        return float(virtual_stages)

    def execution_order(
        self, stage: int, num_stages: int, num_microbatches: int, virtual_stages: int = 1
    ) -> List[WorkItem]:
        """Megatron-LM's interleaved 1F1B order for one GPU.

        With ``v = 1`` this is *exactly* the non-interleaved 1F1B order (a
        pinned property test relies on the equivalence).  With ``v > 1``
        the GPU warms up ``2 * (np - stage - 1) + (v - 1) * np`` virtual
        microbatches (all of them when ``m == np``), then alternates
        one-forward-one-backward over the virtual sequence, then drains.
        """
        v = virtual_stages
        if v < 1:
            raise ValueError("virtual_stages must be >= 1")
        if v == 1:
            return one_f_one_b_order(stage, num_stages, num_microbatches)
        if num_stages < 2:
            raise ValueError("interleaving (v > 1) requires num_stages >= 2")
        if not (0 <= stage < num_stages):
            raise ValueError(f"stage {stage} out of range [0, {num_stages})")
        if num_microbatches < 1:
            raise ValueError("num_microbatches must be >= 1")
        if num_microbatches % num_stages != 0:
            # Megatron-LM imposes the same constraint on the real schedule;
            # the analytic bubble formula needs no such restriction, so the
            # simulation backend falls back to it for non-multiple m.
            raise NoExecutableOrder(
                f"interleaved execution requires num_microbatches ({num_microbatches}) "
                f"to be a multiple of num_stages ({num_stages})"
            )

        total = num_microbatches * v
        if num_microbatches == num_stages:
            warmup = total  # Megatron's all-warm-up special case
        else:
            warmup = min(total, 2 * (num_stages - stage - 1) + (v - 1) * num_stages)
        fwd = _virtual_sequence(num_stages, num_microbatches, v, forward=True)
        bwd = _virtual_sequence(num_stages, num_microbatches, v, forward=False)

        order: List[WorkItem] = [("forward",) + fwd[k] for k in range(warmup)]
        for i in range(total - warmup):
            order.append(("forward",) + fwd[warmup + i])
            order.append(("backward",) + bwd[i])
        order.extend(("backward",) + bwd[i] for i in range(total - warmup, total))
        return order


register_schedule(InterleavedSchedule())
