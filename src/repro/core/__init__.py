"""Core analytical performance model.

This subpackage implements the paper's three modeling stages:

* **S1 (counting)** — :mod:`repro.core.operations` and
  :mod:`repro.core.parallelism` count FLOPs, HBM bytes, communication volume
  and resident memory of every transformer operation under every
  parallelization strategy;
* **S2 (timing)** — :mod:`repro.core.roofline`, :mod:`repro.core.collectives`
  and :mod:`repro.core.execution` convert those counts into per-iteration
  times on a given system (:mod:`repro.core.system`);
* **S3 (search)** — :mod:`repro.core.config_space` and
  :mod:`repro.core.search` enumerate and minimise over all admissible
  configurations; :mod:`repro.core.training` converts iteration times into
  end-to-end training days.
"""

from repro.core.model import (
    GPT3_1T,
    GPT3_175B,
    MODEL_CATALOG,
    TransformerConfig,
    VIT_32K,
    VIT_LONG_SEQ,
    get_model,
)
from repro.core.workloads import (
    MOE_1T,
    MOE_MIXTRAL,
    WORKLOAD_REGISTRY,
    WorkloadSpec,
    available_workloads,
    get_workload,
    get_workload_model,
    register_workload,
)
from repro.core.system import (
    GPU_GENERATIONS,
    GpuSpec,
    NVS_DOMAIN_SIZES,
    NetworkSpec,
    SystemSpec,
    make_gpu,
    make_network,
    make_perlmutter,
    make_system,
    system_catalog,
)
from repro.core.execution import (
    DEFAULT_OPTIONS,
    IterationEstimate,
    ModelingOptions,
    TimeBreakdown,
    build_execution_plan,
    evaluate_config,
)
from repro.core.plan import CostPhase, ExecutionPlan
from repro.core.schedules import (
    PipelineSchedule,
    available_schedules,
    get_schedule,
    register_schedule,
)
from repro.core.inference import (
    SERVING_OBJECTIVES,
    ServingEstimate,
    ServingSearchResult,
    ServingSpec,
    evaluate_serving_config,
    find_serving_config,
    kv_cache_bytes_per_sequence,
)
from repro.core.memory import MemoryEstimate, estimate_memory
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.config_space import SearchSpace, parallel_configs, gpu_assignments
from repro.core.objectives import (
    DEFAULT_PARETO_OBJECTIVES,
    Objective,
    ObjectiveContext,
    get_objective,
    register_objective,
    registered_objectives,
    resolve_objectives,
)
from repro.core.search import (
    ParetoPoint,
    ParetoResult,
    SearchResult,
    best_assignment_for,
    find_optimal_config,
    find_pareto_configs,
)
from repro.core.training import (
    TrainingRegime,
    default_regime,
    gpt_pretraining_regime,
    training_days,
    vit_era5_regime,
)

__all__ = [
    "DEFAULT_OPTIONS",
    "GPT3_175B",
    "GPT3_1T",
    "MOE_1T",
    "MOE_MIXTRAL",
    "WORKLOAD_REGISTRY",
    "WorkloadSpec",
    "available_workloads",
    "get_workload",
    "get_workload_model",
    "register_workload",
    "GPU_GENERATIONS",
    "GpuAssignment",
    "GpuSpec",
    "IterationEstimate",
    "MODEL_CATALOG",
    "MemoryEstimate",
    "ModelingOptions",
    "DEFAULT_PARETO_OBJECTIVES",
    "NVS_DOMAIN_SIZES",
    "NetworkSpec",
    "Objective",
    "ObjectiveContext",
    "ParallelConfig",
    "ParetoPoint",
    "ParetoResult",
    "SERVING_OBJECTIVES",
    "SearchResult",
    "SearchSpace",
    "ServingEstimate",
    "ServingSearchResult",
    "ServingSpec",
    "SystemSpec",
    "TimeBreakdown",
    "TrainingRegime",
    "TransformerConfig",
    "VIT_32K",
    "VIT_LONG_SEQ",
    "CostPhase",
    "ExecutionPlan",
    "PipelineSchedule",
    "available_schedules",
    "best_assignment_for",
    "build_execution_plan",
    "default_regime",
    "estimate_memory",
    "evaluate_config",
    "evaluate_serving_config",
    "find_serving_config",
    "kv_cache_bytes_per_sequence",
    "get_schedule",
    "register_schedule",
    "find_optimal_config",
    "find_pareto_configs",
    "get_model",
    "get_objective",
    "register_objective",
    "registered_objectives",
    "resolve_objectives",
    "gpt_pretraining_regime",
    "gpu_assignments",
    "make_gpu",
    "make_network",
    "make_perlmutter",
    "make_system",
    "parallel_configs",
    "system_catalog",
    "training_days",
    "vit_era5_regime",
]
