"""Throughput and utilization metrics derived from an iteration estimate.

Training teams usually reason in samples/second, tokens/second and MFU
(model FLOPs utilization — the fraction of the cluster's peak tensor-core
throughput spent on the model's *useful* FLOPs).  These are straightforward
post-processings of an :class:`repro.core.execution.IterationEstimate` and a
:class:`repro.core.system.SystemSpec`, collected here so that reports,
examples and downstream users do not re-derive them inconsistently.

The conventions follow standard practice (and the Megatron-LM papers):

* useful FLOPs per iteration = 3x the model's forward FLOPs over the global
  batch (1x forward + 2x backward), *excluding* activation recomputation —
  recompute FLOPs are real work for the hardware but not useful model FLOPs,
  which is why heavy recomputation lowers MFU;
* the peak rate is the FP16 tensor-core rate of every GPU in the job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.execution import IterationEstimate
from repro.core.model import TransformerConfig
from repro.core.system import SystemSpec

#: Useful-FLOP multiplier for one training step (forward + backward).
TRAIN_STEP_FLOP_MULTIPLIER = 3.0


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput/utilization view of one configuration on one system."""

    samples_per_second: float
    tokens_per_second: float
    model_flops_per_second: float
    peak_flops_per_second: float

    @property
    def model_flops_utilization(self) -> float:
        """MFU: achieved useful model FLOP/s over the cluster's peak FLOP/s."""
        if self.peak_flops_per_second <= 0:
            return 0.0
        return self.model_flops_per_second / self.peak_flops_per_second

    @property
    def per_gpu_teraflops(self) -> float:
        """Achieved useful TFLOP/s per GPU (the number vendors like to quote)."""
        if self.peak_flops_per_second <= 0:
            return 0.0
        n_gpus = self.peak_flops_per_second and self._n_gpus
        return self.model_flops_per_second / n_gpus / 1e12

    # Stored separately so per-GPU numbers survive dataclass freezing.
    _n_gpus: int = 1


def throughput_report(
    model: TransformerConfig,
    system: SystemSpec,
    estimate: IterationEstimate,
) -> ThroughputReport:
    """Compute samples/s, tokens/s and MFU for ``estimate``.

    ``estimate`` must have been produced for ``model`` (the global batch size
    and GPU count are read from it).
    """
    if estimate.total_time <= 0:
        raise ValueError("estimate has non-positive iteration time")
    n_gpus = estimate.config.total_gpus
    batch = estimate.global_batch_size

    samples_per_second = batch / estimate.total_time
    tokens_per_second = samples_per_second * model.seq_len

    useful_flops = TRAIN_STEP_FLOP_MULTIPLIER * model.forward_flops(batch=batch)
    model_flops_per_second = useful_flops / estimate.total_time
    peak = n_gpus * system.gpu.tensor_flops

    return ThroughputReport(
        samples_per_second=samples_per_second,
        tokens_per_second=tokens_per_second,
        model_flops_per_second=model_flops_per_second,
        peak_flops_per_second=peak,
        _n_gpus=n_gpus,
    )


def tokens_per_gpu_per_day(report: ThroughputReport) -> float:
    """Tokens processed per GPU per day — a common procurement metric."""
    return report.tokens_per_second / report._n_gpus * 86400.0
