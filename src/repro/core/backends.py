"""Evaluation-backend registry: analytic closed forms vs message-level sim.

Every cost the execution model charges falls into one of three families:
collective times, point-to-point transfers, and the pipeline-schedule
bubble.  A :class:`CostPricer` prices exactly those three families; the
plan assembly in :mod:`repro.core.execution` is written against the pricer
interface, so the *same* phase-level plan can be costed by different
backends:

* ``"analytic"`` (the default) — the paper's closed-form §III-A collective
  model and per-schedule bubble formulas.  This is the backend every
  reproduced figure uses; it is bit-exact with the pre-backend code.
* ``"sim"`` — the message-level oracle of :mod:`repro.simulate.backend`:
  ring collectives are stepped hop by hop over an explicit cluster
  topology (NVSwitch domains, NIC multiplexing) and the pipeline schedule
  is replayed event by event.  It exists to *cross-check* the analytic
  path; the differential harness (:mod:`repro.analysis.differential`)
  asserts the two agree within a documented tolerance band.

Backends register like tensor-parallel strategies and pipeline schedules:
by name, through :func:`register_backend`.  The ``"sim"`` backend lives in
:mod:`repro.simulate` (which imports :mod:`repro.core`), so it cannot be
imported here; it is registered lazily the first time it is requested.
"""

from __future__ import annotations

import importlib
from abc import ABC, abstractmethod
from typing import Callable, Dict, Tuple

from repro.core.collectives import GroupPlacement, collective_time, point_to_point_time
from repro.core.schedules.base import PipelineSchedule
from repro.core.system import SystemSpec

#: Name of the backend every reproduced paper figure uses.  Pinned by a
#: golden-harness test: the simulation backend must always be opt-in so it
#: can never silently change a reported number.
DEFAULT_BACKEND = "analytic"


class CostPricer(ABC):
    """Prices the communication and schedule costs of one candidate.

    A pricer is constructed per ``(backend, system)`` pair and consulted by
    :func:`repro.core.execution.evaluate_config`'s plan assembly for every
    cost that is not a pure roofline quantity (compute and HBM times are
    backend-independent).
    """

    #: Registry key, e.g. ``"analytic"``.
    name: str = "abstract"

    def __init__(self, system: SystemSpec):
        """Bind the pricer to the system whose network it prices."""
        self.system = system

    @abstractmethod
    def collective(
        self, collective: str, volume_bytes: float, placement: GroupPlacement
    ) -> float:
        """Time of one collective of ``volume_bytes`` under ``placement``."""

    @abstractmethod
    def p2p(self, volume_bytes: float, placement: GroupPlacement) -> float:
        """Time of one pipeline point-to-point transfer."""

    @abstractmethod
    def bubble(
        self,
        schedule: PipelineSchedule,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int,
    ) -> float:
        """Fill/drain overhead of one iteration under ``schedule``."""


class AnalyticPricer(CostPricer):
    """The paper's closed-form cost model (§III-A) — the default backend."""

    name = "analytic"

    def collective(
        self, collective: str, volume_bytes: float, placement: GroupPlacement
    ) -> float:
        """Closed-form dual-network collective time (§III-A)."""
        return collective_time(collective, volume_bytes, placement, self.system.network)

    def p2p(self, volume_bytes: float, placement: GroupPlacement) -> float:
        """Closed-form point-to-point transfer time."""
        return point_to_point_time(volume_bytes, placement, self.system.network)

    def bubble(
        self,
        schedule: PipelineSchedule,
        num_stages: int,
        num_microbatches: int,
        forward_time: float,
        backward_time: float,
        virtual_stages: int,
    ) -> float:
        """The schedule's own closed-form bubble (no replay)."""
        return schedule.bubble_time(
            num_stages, num_microbatches, forward_time, backward_time, virtual_stages
        )


#: Registered pricer factories keyed by backend name.
BACKEND_REGISTRY: Dict[str, Callable[[SystemSpec], CostPricer]] = {}

#: Backends that register themselves on first use: name -> providing module.
_LAZY_PROVIDERS: Dict[str, str] = {"sim": "repro.simulate.backend"}


def register_backend(
    name: str, factory: Callable[[SystemSpec], CostPricer]
) -> Callable[[SystemSpec], CostPricer]:
    """Register a pricer factory under ``name`` (returns the factory)."""
    BACKEND_REGISTRY[name] = factory
    return factory


def get_backend(name: str) -> Callable[[SystemSpec], CostPricer]:
    """Look up a backend's pricer factory, importing lazy providers on demand."""
    key = name.strip().lower()
    if key not in BACKEND_REGISTRY and key in _LAZY_PROVIDERS:
        importlib.import_module(_LAZY_PROVIDERS[key])
    if key not in BACKEND_REGISTRY:
        raise KeyError(
            f"unknown evaluation backend {name!r}; available: {available_backends()}"
        )
    return BACKEND_REGISTRY[key]


def available_backends() -> Tuple[str, ...]:
    """Names of every registered (or lazily registrable) backend."""
    return tuple(sorted(set(BACKEND_REGISTRY) | set(_LAZY_PROVIDERS)))


register_backend(AnalyticPricer.name, AnalyticPricer)
