"""Pluggable workload registry: named training scenarios as an extension point.

The paper studies exactly two dense workloads (GPT3-1T and a long-sequence
ViT).  This module turns the "model preset" idea into a registry so that new
scenarios — mixture-of-experts transformers, grouped-query-attention LLMs,
future multimodal variants — can be added (by this repo or by downstream
users) without touching the performance model:

>>> from repro.core.workloads import get_workload, register_workload, WorkloadSpec
>>> get_workload("moe-1t").model.num_experts
32
>>> spec = WorkloadSpec(
...     name="my-model",
...     model=TransformerConfig(name="MY", seq_len=2048, embed_dim=4096,
...                             num_heads=32, depth=32),
...     description="downstream experiment",
... )
>>> _ = register_workload(spec)

Every workload the CLI exposes through ``--workload`` (and, for backwards
compatibility, ``--model``) resolves through this registry; the paper's
original presets from :mod:`repro.core.model` are registered on import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.inference import ServingSpec
from repro.core.model import MODEL_CATALOG, TransformerConfig


@dataclass(frozen=True)
class WorkloadSpec:
    """A named training scenario: an architecture plus registry metadata.

    Parameters
    ----------
    name:
        Registry key (matched case-insensitively by :func:`get_workload`).
    model:
        The transformer architecture of the workload.
    description:
        One-line summary shown by ``repro-perf workloads``.
    tags:
        Free-form labels (``"paper"``, ``"moe"``, ``"gqa"``, ``"serve"``,
        ...) used for filtering in reports.
    default_global_batch:
        Global batch size typical for the workload (the paper uses 4096).
    pipeline_schedule:
        Default pipeline schedule for the workload (a registry name from
        :mod:`repro.core.schedules`); the CLI's ``--schedule`` flag
        overrides it.
    virtual_stages:
        Default virtual-stage degree for interleaving schedules.
    serving:
        Default serving scenario (traffic mix, KV paging, SLO targets) for
        ``repro-perf serve``; ``None`` for training-only workloads (the
        serve command then starts from :class:`~repro.core.inference.ServingSpec`
        defaults).  CLI flags override individual fields.
    """

    name: str
    model: TransformerConfig
    description: str = ""
    tags: Tuple[str, ...] = field(default_factory=tuple)
    default_global_batch: int = 4096
    pipeline_schedule: str = "1f1b"
    virtual_stages: int = 1
    serving: Optional[ServingSpec] = None

    def __post_init__(self) -> None:
        if not self.name.strip():
            raise ValueError("workload name must be non-empty")
        if not self.pipeline_schedule.strip():
            raise ValueError("workload pipeline_schedule must be non-empty")
        if self.virtual_stages < 1:
            raise ValueError("workload virtual_stages must be >= 1")
        object.__setattr__(self, "tags", tuple(self.tags))

    def summary(self) -> Dict[str, object]:
        """Flat description used by the CLI listing."""
        out: Dict[str, object] = {
            "workload": self.name,
            "description": self.description,
            "tags": ",".join(self.tags),
            "global_batch": self.default_global_batch,
            "schedule": self.pipeline_schedule
            + (f"(v={self.virtual_stages})" if self.virtual_stages > 1 else ""),
        }
        out.update(self.model.describe())
        if self.serving is not None:
            out.update({f"serving_{k}": v for k, v in self.serving.describe().items()})
        return out


#: Registry of workload specs keyed by their lower-cased name.
WORKLOAD_REGISTRY: Dict[str, WorkloadSpec] = {}


def register_workload(spec: WorkloadSpec, *, aliases: Sequence[str] = ()) -> WorkloadSpec:
    """Register ``spec`` (and optional aliases) for lookup by name.

    Re-registering a name overwrites the previous entry, so downstream code
    can shadow a built-in scenario with a tweaked variant.
    """
    for key in (spec.name, *aliases):
        WORKLOAD_REGISTRY[key.strip().lower()] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by (case-insensitive) name.

    Falls back to wrapping the legacy :data:`~repro.core.model.MODEL_CATALOG`
    presets, so every name ``--model`` ever accepted resolves here too.
    """
    key = name.strip().lower()
    if key in WORKLOAD_REGISTRY:
        return WORKLOAD_REGISTRY[key]
    if key in MODEL_CATALOG:
        return WorkloadSpec(name=key, model=MODEL_CATALOG[key], tags=("paper",))
    raise KeyError(
        f"unknown workload {name!r}; available: {available_workloads()}"
    )


def get_workload_model(name: str) -> TransformerConfig:
    """Shorthand for ``get_workload(name).model``."""
    return get_workload(name).model


def available_workloads() -> Tuple[str, ...]:
    """Sorted names of every registered workload (registry + legacy catalogue)."""
    return tuple(sorted(set(WORKLOAD_REGISTRY) | set(MODEL_CATALOG)))


# ----------------------------------------------------------------------
# Built-in scenarios
# ----------------------------------------------------------------------

# The paper's own models, re-exported through the registry.
_PAPER_DESCRIPTIONS = {
    "gpt3-1t": "paper's 1T-parameter GPT-3 style LLM (dense, MHA)",
    "vit": "paper's long-sequence ViT (ERA5, 64800 patches)",
    "vit-long": "alias of 'vit'",
    "gpt3-175b": "paper's Megatron-LM validation GPT3-175B",
    "vit-32k": "paper's Megatron-LM validation 32K-sequence ViT",
}
for _name, _model in MODEL_CATALOG.items():
    register_workload(
        WorkloadSpec(
            name=_name,
            model=_model,
            description=_PAPER_DESCRIPTIONS.get(_name, ""),
            tags=("paper", "dense"),
        )
    )

#: ~1T-total-parameter mixture-of-experts LLM with grouped-query attention:
#: 32 experts, top-2 routing, 8 KV heads — representative of modern MoE
#: pre-training (Mixtral/DeepSeek-style scaled up).  Total params ≈ 1.1T,
#: active params per token ≈ 90B.
MOE_1T = TransformerConfig(
    name="MoE-1T",
    seq_len=4096,
    embed_dim=8192,
    num_heads=64,
    kv_heads=8,
    depth=64,
    num_experts=32,
    moe_top_k=2,
)
register_workload(
    WorkloadSpec(
        name="moe-1t",
        model=MOE_1T,
        description="1T-total-param MoE LLM (32 experts, top-2, GQA 8 KV heads)",
        tags=("moe", "gqa"),
    )
)

#: Mixtral-8x7B-shaped MoE (8 experts, top-2, GQA) — a smaller scenario that
#: fits modest clusters; useful for examples and tests.
MOE_MIXTRAL = TransformerConfig(
    name="MoE-Mixtral-8x7B",
    seq_len=4096,
    embed_dim=4096,
    num_heads=32,
    kv_heads=8,
    depth=32,
    hidden_dim=14336,
    num_experts=8,
    moe_top_k=2,
)
register_workload(
    WorkloadSpec(
        name="moe-mixtral",
        model=MOE_MIXTRAL,
        description="Mixtral-8x7B-shaped MoE (8 experts, top-2, GQA 8 KV heads)",
        tags=("moe", "gqa"),
    )
)

#: The paper's GPT3-1T under the interleaved-1F1B schedule with two virtual
#: stages per GPU: halves the pipeline bubble at the price of doubled P2P
#: traffic — the Megatron-LM production configuration the paper's 1F1B
#: baseline is usually compared against.
register_workload(
    WorkloadSpec(
        name="gpt3-1t-interleaved",
        model=MODEL_CATALOG["gpt3-1t"],
        description="GPT3-1T under interleaved 1F1B (2 virtual stages)",
        tags=("paper", "dense", "schedule"),
        pipeline_schedule="interleaved",
        virtual_stages=2,
    )
)

#: GPT3-1T with grouped-query attention (8 KV heads): isolates the GQA axis
#: against the paper's dense baseline.
GPT3_1T_GQA = TransformerConfig(
    name="GPT3-1T-GQA",
    seq_len=2048,
    embed_dim=25600,
    num_heads=160,
    kv_heads=8,
    depth=128,
)
register_workload(
    WorkloadSpec(
        name="gpt3-1t-gqa",
        model=GPT3_1T_GQA,
        description="GPT3-1T with grouped-query attention (8 KV heads)",
        tags=("gqa",),
    )
)

# ----------------------------------------------------------------------
# Inference-serving scenarios (repro-perf serve)
# ----------------------------------------------------------------------

#: Llama-2-70B-shaped dense LLM with grouped-query attention — the
#: canonical open-weights serving workload (80 layers, 8 KV heads).  The
#: model's MLP is a 2-matmul GeLU block, so Llama's 3-matrix SwiGLU
#: (gate/up/down, 28672 wide) is folded into an equivalent hidden width of
#: ``1.5 * 28672 = 43008`` — same parameter count (~69B) and same weight
#: bytes per decode step, which is what the serving model prices.
#: ``seq_len`` is the training context; serving prompt/output lengths come
#: from the :class:`~repro.core.inference.ServingSpec`.
LLAMA_70B = TransformerConfig(
    name="Llama-70B",
    seq_len=4096,
    embed_dim=8192,
    num_heads=64,
    kv_heads=8,
    depth=80,
    hidden_dim=43008,
)
register_workload(
    WorkloadSpec(
        name="llama70b-serve",
        model=LLAMA_70B,
        description="Llama-70B chat serving (2K prompt, 256 out, GQA 8 KV heads)",
        tags=("serve", "gqa", "dense"),
        serving=ServingSpec(
            arrival_rate=16.0,
            prompt_tokens=2048,
            output_tokens=256,
            kv_block_tokens=16,
            max_batch_per_replica=256,
        ),
    )
)

#: Mixtral-8x7B serving: the MoE twin of ``llama70b-serve`` — decode reads
#: only the routed top-2 experts' weights but must hold all 8 per EP shard,
#: making the expert-parallel degree a live serving trade-off.
register_workload(
    WorkloadSpec(
        name="moe-mixtral-serve",
        model=MOE_MIXTRAL,
        description="Mixtral-8x7B MoE serving (2K prompt, 512 out, top-2 routing)",
        tags=("serve", "moe", "gqa"),
        serving=ServingSpec(
            arrival_rate=16.0,
            prompt_tokens=2048,
            output_tokens=512,
            kv_block_tokens=16,
            max_batch_per_replica=256,
        ),
    )
)


def scenario_space(
    workload: str,
    *,
    schedule: Optional[str] = None,
    virtual_stages: Optional[int] = None,
    expert_parallel: Optional[int] = None,
):
    """Search space for ``workload`` with scenario overrides applied.

    Shared request-resolution logic of every front-end (the CLI's scenario
    flags and the JSON API's request fields): starts from
    :data:`~repro.core.config_space.DEFAULT_SEARCH_SPACE`, applies the
    workload preset's pipeline schedule / virtual-stage degree, then the
    explicit overrides.  With no overrides and a default-schedule workload
    the default space is returned unchanged, so every reproduced figure is
    unaffected.

    Raises ``KeyError`` for an unknown workload (from :func:`get_workload`)
    and ``ValueError`` for an unknown or unusable schedule / virtual-stage
    combination; front-ends translate these into usage errors.
    """
    from dataclasses import replace as _replace

    from repro.core.config_space import DEFAULT_SEARCH_SPACE
    from repro.core.schedules import (
        DEFAULT_SCHEDULE,
        available_schedules,
        get_schedule,
    )

    overrides: Dict[str, object] = {}
    if expert_parallel is not None:
        if expert_parallel < 1:
            raise ValueError("expert_parallel must be >= 1")
        overrides["expert_parallel"] = (expert_parallel,)

    spec = get_workload(workload)
    schedule_name = schedule or spec.pipeline_schedule
    virtual = virtual_stages
    if virtual is None:
        # The preset's virtual-stage degree belongs to the preset's own
        # schedule: an explicit schedule override drops it (back to 1)
        # unless the override names the same schedule, so e.g. the
        # gpt3-1t-interleaved preset searched under 1f1b just works.
        if schedule is None or schedule == spec.pipeline_schedule:
            virtual = spec.virtual_stages
        else:
            virtual = 1
    try:
        resolved = get_schedule(schedule_name)
    except KeyError:
        raise ValueError(
            f"unknown schedule {schedule_name!r}; "
            f"available: {', '.join(available_schedules())}"
        ) from None
    if not resolved.supports_training:
        raise ValueError(
            f"schedule {resolved.name!r} is serving-only (training schedules: "
            + ", ".join(s for s in available_schedules() if get_schedule(s).supports_training)
            + ")"
        )
    if virtual < 1:
        raise ValueError("virtual_stages must be >= 1")
    if virtual > 1 and not resolved.supports_virtual_stages:
        raise ValueError(
            f"schedule {resolved.name!r} does not support virtual_stages={virtual}; "
            f"use the interleaved schedule"
        )
    if resolved.name != DEFAULT_SCHEDULE:
        overrides["schedules"] = (resolved.name,)
    if virtual != 1:
        overrides["virtual_stages"] = (virtual,)

    if not overrides:
        return DEFAULT_SEARCH_SPACE
    return _replace(DEFAULT_SEARCH_SPACE, **overrides)
