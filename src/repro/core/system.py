"""Hardware and network descriptions (Table A3 of the paper).

A *system* consists of:

* a :class:`GpuSpec` — accelerator compute rates (tensor-core and vector
  FP16), a first-order FLOP latency modelling small-matrix inefficiency,
  HBM bandwidth and HBM capacity;
* a :class:`NetworkSpec` — a fast intra-node domain (NVSwitch/NVLink) with
  latency/bandwidth ``(alpha_f, beta_f)``, a slow inter-node domain
  (InfiniBand / Slingshot) with ``(alpha_s, beta_s)``, the NVSwitch domain
  size ``n_NVS`` and the number of NICs per node (which NCCL uses to run
  multiple rings and effectively multiply the inter-node bandwidth).

The catalogue covers three GPU generations (A100, H200, B200) exactly as in
Table A3, with NVLink and InfiniBand bandwidths increasing proportionally
across generations, and a 70% achievable-bandwidth efficiency observed on
Perlmutter and applied to all network (and HBM) bandwidth figures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.utils.units import GB, to_bytes, to_flops


#: Default achievable fraction of peak network bandwidth (paper: "we observe
#: typical bandwidth efficiencies of 70% for the networks").
DEFAULT_NETWORK_EFFICIENCY = 0.70

#: Default achievable fraction of peak HBM bandwidth.  The roofline model in
#: the paper uses peak HBM bandwidth directly; we keep 1.0 as the default and
#: expose the knob for sensitivity studies.
DEFAULT_HBM_EFFICIENCY = 1.0


@dataclass(frozen=True)
class GpuSpec:
    """Accelerator description (one GPU).

    All rates are in SI units: FLOP/s, bytes/s and bytes.
    """

    name: str
    #: Peak FP16 tensor-core rate (FLOP/s) — used for matrix multiplies.
    tensor_flops: float
    #: Peak FP16 vector rate (FLOP/s) — used for LN/softmax/GeLU/elementwise.
    vector_flops: float
    #: First-order FLOP latency (s) modelling small-matmul inefficiency
    #: (t = t_sf + flops / rate).
    flops_latency: float
    #: Peak HBM bandwidth (bytes/s).
    hbm_bandwidth: float
    #: HBM capacity (bytes).
    hbm_capacity: float
    #: Achievable fraction of peak HBM bandwidth.
    hbm_efficiency: float = DEFAULT_HBM_EFFICIENCY

    def __post_init__(self) -> None:
        if min(self.tensor_flops, self.vector_flops, self.hbm_bandwidth) <= 0:
            raise ValueError("compute rates and bandwidths must be positive")
        if self.hbm_capacity <= 0:
            raise ValueError("HBM capacity must be positive")
        if not (0.0 < self.hbm_efficiency <= 1.0):
            raise ValueError("hbm_efficiency must be in (0, 1]")

    @property
    def effective_hbm_bandwidth(self) -> float:
        """Achievable HBM bandwidth in bytes/s."""
        return self.hbm_bandwidth * self.hbm_efficiency

    def with_overrides(self, **overrides) -> "GpuSpec":
        """Return a copy with fields replaced (used by hardware sweeps)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class NetworkSpec:
    """Dual-bandwidth network description.

    The fast domain (NVSwitch) connects ``nvs_domain_size`` GPUs with
    bandwidth ``nvs_bandwidth`` and latency ``nvs_latency`` per hop; the slow
    domain (InfiniBand or Slingshot) connects nodes with per-NIC bandwidth
    ``ib_bandwidth`` and latency ``ib_latency``.  NCCL can use multiple rings
    (one per NIC) so the effective inter-node bandwidth of a collective that
    spans whole nodes is ``nics_per_node * ib_bandwidth``.
    """

    name: str
    #: One-directional NVSwitch/NVLink bandwidth per GPU (bytes/s).
    nvs_bandwidth: float
    #: NVSwitch per-hop latency (s).
    nvs_latency: float
    #: Per-NIC InfiniBand bandwidth (bytes/s).
    ib_bandwidth: float
    #: InfiniBand per-hop latency (s).
    ib_latency: float
    #: Number of GPUs per NVSwitch domain (= per node in the paper's systems).
    nvs_domain_size: int
    #: Number of NICs per node.  Defaults to the NVS domain size (the paper
    #: assumes nNIC is equal or proportional to nNVS).
    nics_per_node: int = 0
    #: Achievable fraction of peak bandwidth on both networks.
    bandwidth_efficiency: float = DEFAULT_NETWORK_EFFICIENCY

    def __post_init__(self) -> None:
        if self.nvs_domain_size < 1:
            raise ValueError("nvs_domain_size must be >= 1")
        if self.nics_per_node == 0:
            object.__setattr__(self, "nics_per_node", self.nvs_domain_size)
        if self.nics_per_node < 1:
            raise ValueError("nics_per_node must be >= 1")
        if min(self.nvs_bandwidth, self.ib_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if not (0.0 < self.bandwidth_efficiency <= 1.0):
            raise ValueError("bandwidth_efficiency must be in (0, 1]")

    @property
    def effective_nvs_bandwidth(self) -> float:
        """Achievable NVSwitch bandwidth in bytes/s."""
        return self.nvs_bandwidth * self.bandwidth_efficiency

    @property
    def effective_ib_bandwidth(self) -> float:
        """Achievable per-NIC InfiniBand bandwidth in bytes/s."""
        return self.ib_bandwidth * self.bandwidth_efficiency

    def with_overrides(self, **overrides) -> "NetworkSpec":
        """Return a copy with fields replaced."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class SystemSpec:
    """A complete system: one GPU type plus the dual-bandwidth network."""

    gpu: GpuSpec
    network: NetworkSpec

    @property
    def name(self) -> str:
        """System identifier, e.g. ``B200-NVS8``."""
        return f"{self.gpu.name}-NVS{self.network.nvs_domain_size}"

    @property
    def nvs_domain_size(self) -> int:
        """Number of GPUs in each fast-interconnect domain."""
        return self.network.nvs_domain_size

    def with_gpu(self, **overrides) -> "SystemSpec":
        """Return a copy of the system with GPU fields replaced."""
        return SystemSpec(gpu=self.gpu.with_overrides(**overrides), network=self.network)

    def with_network(self, **overrides) -> "SystemSpec":
        """Return a copy of the system with network fields replaced."""
        return SystemSpec(gpu=self.gpu, network=self.network.with_overrides(**overrides))

    def describe(self) -> Dict[str, float]:
        """Summary dictionary (Table A3 row) in the paper's units."""
        return {
            "system": self.name,
            "tensor_tflops": self.gpu.tensor_flops / 1e12,
            "vector_tflops": self.gpu.vector_flops / 1e12,
            "flops_latency_s": self.gpu.flops_latency,
            "hbm_bandwidth_gbps": self.gpu.hbm_bandwidth / GB,
            "hbm_capacity_gb": self.gpu.hbm_capacity / GB,
            "nvs_bandwidth_gbps": self.network.nvs_bandwidth / GB,
            "nvs_latency_s": self.network.nvs_latency,
            "ib_bandwidth_gbps": self.network.ib_bandwidth / GB,
            "ib_latency_s": self.network.ib_latency,
            "nvs_domain_size": self.network.nvs_domain_size,
            "nics_per_node": self.network.nics_per_node,
        }


# ----------------------------------------------------------------------
# Table A3: GPU and network parameters for various GPU generations
# ----------------------------------------------------------------------

_GPU_TABLE = {
    # name: (tensor TFLOP/s, vector TFLOP/s, flop latency s, HBM GB/s, HBM GB)
    "A100": (312.0, 78.0, 2e-5, 1555.0, 80.0),
    "H200": (990.0, 134.0, 2e-5, 4800.0, 141.0),
    "B200": (2500.0, 339.0, 2e-5, 8000.0, 192.0),
}

_NETWORK_TABLE = {
    # name: (NVS GB/s one-directional, NVS latency s, IB GB/s, IB latency s)
    "A100": (300.0, 2.5e-6, 25.0, 5e-6),
    "H200": (450.0, 2.5e-6, 50.0, 5e-6),
    "B200": (900.0, 2.5e-6, 100.0, 5e-6),
}

#: NVSwitch domain sizes studied in the paper (§IV Q3).
NVS_DOMAIN_SIZES = (4, 8, 64)

#: GPU generations studied in the paper.
GPU_GENERATIONS = tuple(_GPU_TABLE)

# ----------------------------------------------------------------------
# Economics: rental price and board power per GPU generation
# ----------------------------------------------------------------------
# The cost and energy objectives of the multi-objective search
# (:mod:`repro.core.objectives`) price GPU-hours and joules.  These live in
# their own tables — *not* as :class:`GpuSpec` fields — so that adding the
# economics never changes the serialized form of a system (cache
# fingerprints, golden JSON archives and the hint index all hash
# ``to_jsonable(system)``).

#: On-demand rental price per GPU-hour (USD), representative cloud list
#: prices per generation.  Synthetic GPUs fall back to FLOP-proportional
#: pricing (see :func:`gpu_hourly_price`).
GPU_HOURLY_PRICE_USD: Dict[str, float] = {
    "A100": 2.0,
    "H200": 4.5,
    "B200": 8.0,
}

#: Board power per GPU (watts, TDP-class).  Synthetic GPUs fall back to
#: FLOP-proportional power (see :func:`gpu_power_watts`).
GPU_POWER_WATTS: Dict[str, float] = {
    "A100": 400.0,
    "H200": 700.0,
    "B200": 1000.0,
}

#: Generation anchoring the FLOP-proportional fallback for synthetic GPUs
#: (hardware sweeps override ``tensor_flops`` etc. on a copied spec).
_ECONOMICS_REFERENCE_GPU = "B200"

#: Fraction of board power attributed to the compute engines; the rest is
#: attributed to HBM traffic.  First-order activity split used by the
#: energy objective (J/FLOP and J/byte at peak rates).
COMPUTE_POWER_FRACTION = 0.7


def _flops_scaled(table: Dict[str, float], gpu: GpuSpec) -> float:
    """Table lookup by GPU name, FLOP-proportional fallback for synthetics.

    A synthetic GPU (a heatmap point, an overridden spec) is priced as the
    reference generation scaled by its tensor-FLOP ratio, so sweeps over
    made-up hardware still get a monotone, deterministic price/power axis.
    """
    value = table.get(gpu.name.upper())
    if value is not None:
        return value
    ref_tflops, _, _, _, _ = _GPU_TABLE[_ECONOMICS_REFERENCE_GPU]
    ref_flops = to_flops(ref_tflops, "TFLOPS")
    return table[_ECONOMICS_REFERENCE_GPU] * (gpu.tensor_flops / ref_flops)


def gpu_hourly_price(gpu: GpuSpec) -> float:
    """Rental price of ``gpu`` in USD per GPU-hour.

    Catalogue generations use :data:`GPU_HOURLY_PRICE_USD`; synthetic GPUs
    are priced FLOP-proportionally against the reference generation.
    """
    return _flops_scaled(GPU_HOURLY_PRICE_USD, gpu)


def gpu_power_watts(gpu: GpuSpec) -> float:
    """Board power of ``gpu`` in watts (TDP-class).

    Catalogue generations use :data:`GPU_POWER_WATTS`; synthetic GPUs are
    scaled FLOP-proportionally against the reference generation.
    """
    return _flops_scaled(GPU_POWER_WATTS, gpu)


def gpu_energy_rates(gpu: GpuSpec) -> Tuple[float, float]:
    """First-order activity-energy rates of ``gpu``: ``(J/FLOP, J/byte)``.

    The board power is split between the compute engines
    (:data:`COMPUTE_POWER_FRACTION` of it, amortized over the peak tensor
    rate) and the HBM subsystem (the remainder, amortized over the peak HBM
    bandwidth).  The energy objective multiplies these by the roofline
    FLOP/byte counts of a configuration, so energy tracks *activity* rather
    than duplicating the time axis.
    """
    power = gpu_power_watts(gpu)
    joules_per_flop = COMPUTE_POWER_FRACTION * power / gpu.tensor_flops
    joules_per_byte = (1.0 - COMPUTE_POWER_FRACTION) * power / gpu.hbm_bandwidth
    return joules_per_flop, joules_per_byte


def make_gpu(generation: str, **overrides) -> GpuSpec:
    """Build a :class:`GpuSpec` for ``generation`` (A100/H200/B200)."""
    key = generation.upper()
    if key not in _GPU_TABLE:
        raise KeyError(f"unknown GPU generation {generation!r}; available: {GPU_GENERATIONS}")
    tflops, vflops, lat, bw_gb, cap_gb = _GPU_TABLE[key]
    spec = GpuSpec(
        name=key,
        tensor_flops=to_flops(tflops, "TFLOPS"),
        vector_flops=to_flops(vflops, "TFLOPS"),
        flops_latency=lat,
        hbm_bandwidth=to_bytes(bw_gb, "GB"),
        hbm_capacity=to_bytes(cap_gb, "GB"),
    )
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


def make_network(
    generation: str,
    nvs_domain_size: int = 8,
    *,
    nics_per_node: int = 0,
    bandwidth_efficiency: float = DEFAULT_NETWORK_EFFICIENCY,
    **overrides,
) -> NetworkSpec:
    """Build a :class:`NetworkSpec` for ``generation`` and NVS domain size."""
    key = generation.upper()
    if key not in _NETWORK_TABLE:
        raise KeyError(f"unknown GPU generation {generation!r}; available: {GPU_GENERATIONS}")
    nvs_bw, nvs_lat, ib_bw, ib_lat = _NETWORK_TABLE[key]
    spec = NetworkSpec(
        name=f"{key}-net",
        nvs_bandwidth=to_bytes(nvs_bw, "GB"),
        nvs_latency=nvs_lat,
        ib_bandwidth=to_bytes(ib_bw, "GB"),
        ib_latency=ib_lat,
        nvs_domain_size=nvs_domain_size,
        nics_per_node=nics_per_node,
        bandwidth_efficiency=bandwidth_efficiency,
    )
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


def make_system(generation: str, nvs_domain_size: int = 8, **kwargs) -> SystemSpec:
    """Build a complete :class:`SystemSpec` (GPU + network) for ``generation``.

    >>> make_system("B200", 8).name
    'B200-NVS8'
    """
    return SystemSpec(
        gpu=make_gpu(generation),
        network=make_network(generation, nvs_domain_size, **kwargs),
    )


def system_catalog(
    generations=GPU_GENERATIONS, nvs_domain_sizes=NVS_DOMAIN_SIZES
) -> Dict[str, SystemSpec]:
    """Return the full grid of systems studied in the paper (Fig. 5).

    Keys are of the form ``"A100-NVS4"``.
    """
    catalog: Dict[str, SystemSpec] = {}
    for gen in generations:
        for nvs in nvs_domain_sizes:
            system = make_system(gen, nvs)
            catalog[system.name] = system
    return catalog


#: A Perlmutter-like A100 system (4 GPUs/node all-to-all NVLink, 4 NICs/node)
#: used by the empirical-validation experiments and the NCCL-style collective
#: validation (Fig. A1).
def make_perlmutter(nvlink_gpus_per_node: int = 4) -> SystemSpec:
    """Build a Perlmutter-like system (A100, 4 GPUs + 4 NICs per node).

    ``nvlink_gpus_per_node`` restricts how many GPUs per node participate in
    the fast domain (the Fig. A1 validation compares NVL=2 and NVL=4).
    """
    if nvlink_gpus_per_node not in (1, 2, 4):
        raise ValueError("Perlmutter nodes have 4 GPUs; choose 1, 2 or 4 per node")
    # Perlmutter: 4 third-generation NVLinks between each GPU pair when all
    # four GPUs are used (12 links per GPU); with 2 GPUs per node only 4
    # links per GPU are active.  Each NVLink3 link is 25 GB/s per direction.
    links_per_gpu = {1: 0, 2: 4, 4: 12}[nvlink_gpus_per_node]
    nvlink_bw_gb = max(links_per_gpu * 25.0, 25.0)
    network = NetworkSpec(
        name="perlmutter-net",
        nvs_bandwidth=to_bytes(nvlink_bw_gb, "GB"),
        nvs_latency=2.5e-6,
        ib_bandwidth=to_bytes(25.0, "GB"),
        ib_latency=5e-6,
        nvs_domain_size=nvlink_gpus_per_node,
        nics_per_node=nvlink_gpus_per_node,
    )
    return SystemSpec(gpu=make_gpu("A100"), network=network)
