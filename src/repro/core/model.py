"""Transformer architecture descriptions.

The performance model needs only the coarse architectural hyper-parameters
of the transformer (§III of the paper): batch size ``b``, sequence length
``l``, embedding dimension ``e``, hidden (MLP) dimension ``f`` (typically
``4e``), number of attention heads ``h`` and depth ``d``.

Two model classes are studied in the paper:

* ``GPT3-1T`` — a 1-trillion-parameter LLM with a short sequence
  (``l=2048, e=25600, h=160, d=128``), representative of foundation LLM
  pre-training, with an MLP:attention FLOP ratio of roughly 2x.
* ``VIT`` — a long-sequence vision transformer
  (``l=64800, e=12288, h=64, d=48``) representative of scientific foundation
  models (e.g. ERA5 weather models at 720x1440 resolution with patch size 4),
  with an MLP:attention FLOP ratio of roughly 0.5x.

Additional presets cover the models used in the paper's empirical-validation
section (GPT3-175B and a 32K-sequence ViT trained on 512 A100 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class TransformerConfig:
    """Architectural description of a (pre-LN) transformer.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    seq_len:
        Sequence length ``l`` (tokens for NLP, patches/pixels for vision).
    embed_dim:
        Embedding dimension ``e``.
    num_heads:
        Number of attention heads ``h`` (must divide ``embed_dim``).
    depth:
        Number of transformer blocks ``d``.
    hidden_dim:
        MLP hidden dimension ``f``; defaults to ``4 * embed_dim``.
    vocab_size:
        Vocabulary size for the (optional) embedding/unembedding layers.  The
        paper's model ignores the embedding cost (negligible at these scales)
        so it defaults to 0 and only contributes to the parameter count when
        explicitly set.
    dtype_bytes:
        Bytes per element of activations/weights (2 for FP16/BF16 mixed
        precision, which the paper assumes throughout).
    """

    name: str
    seq_len: int
    embed_dim: int
    num_heads: int
    depth: int
    hidden_dim: int = 0
    vocab_size: int = 0
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.hidden_dim == 0:
            object.__setattr__(self, "hidden_dim", 4 * self.embed_dim)
        if self.seq_len <= 0 or self.embed_dim <= 0 or self.depth <= 0:
            raise ValueError("seq_len, embed_dim and depth must be positive")
        if self.num_heads <= 0 or self.embed_dim % self.num_heads != 0:
            raise ValueError(
                f"num_heads ({self.num_heads}) must divide embed_dim ({self.embed_dim})"
            )
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported dtype_bytes {self.dtype_bytes}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension ``e_h = e / h``."""
        return self.embed_dim // self.num_heads

    @property
    def attention_params_per_layer(self) -> int:
        """Parameters of the self-attention block (W_Q, W_K, W_V, W_p + biases)."""
        e = self.embed_dim
        return 4 * e * e + 4 * e

    @property
    def mlp_params_per_layer(self) -> int:
        """Parameters of the MLP block (W_1, W_2 + biases)."""
        e, f = self.embed_dim, self.hidden_dim
        return 2 * e * f + f + e

    @property
    def layernorm_params_per_layer(self) -> int:
        """Parameters of the two LayerNorms (scale + shift each)."""
        return 4 * self.embed_dim

    @property
    def params_per_layer(self) -> int:
        """Total parameters in one transformer block."""
        return (
            self.attention_params_per_layer
            + self.mlp_params_per_layer
            + self.layernorm_params_per_layer
        )

    @property
    def embedding_params(self) -> int:
        """Parameters in the token-embedding table (0 unless ``vocab_size`` set)."""
        return self.vocab_size * self.embed_dim

    @property
    def total_params(self) -> int:
        """Total parameter count of the model."""
        return self.depth * self.params_per_layer + self.embedding_params

    # ------------------------------------------------------------------
    # FLOP accounting at the model level (per token / per sample)
    # ------------------------------------------------------------------
    def attention_flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of one self-attention block for ``batch`` samples.

        Includes the four projections (QKV + output) and the two
        activation-activation matmuls of Logit-Attend.
        """
        b, l, e = batch, self.seq_len, self.embed_dim
        proj = 4 * (2.0 * b * l * e * e)
        logit_attend = 2 * (2.0 * b * l * l * e)
        return proj + logit_attend

    def mlp_flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of one MLP block for ``batch`` samples."""
        b, l, e, f = batch, self.seq_len, self.embed_dim, self.hidden_dim
        return 2 * (2.0 * b * l * e * f)

    def flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of one full transformer block."""
        return self.attention_flops_per_layer(batch) + self.mlp_flops_per_layer(batch)

    def forward_flops(self, batch: int = 1) -> float:
        """Forward FLOPs of the whole model for ``batch`` samples."""
        return self.depth * self.flops_per_layer(batch)

    def mlp_to_attention_flop_ratio(self) -> float:
        """FLOP ratio of MLP to self-attention (≈2 for GPT3-1T, ≈0.5 for VIT)."""
        return self.mlp_flops_per_layer() / self.attention_flops_per_layer()

    def tokens_per_sample(self) -> int:
        """Sequence elements processed per sample (= ``seq_len``)."""
        return self.seq_len

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def scaled(self, **overrides) -> "TransformerConfig":
        """Return a copy of the config with fields replaced (keyword only)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, float]:
        """Summary dictionary used by reports and the CLI."""
        return {
            "name": self.name,
            "seq_len": self.seq_len,
            "embed_dim": self.embed_dim,
            "hidden_dim": self.hidden_dim,
            "num_heads": self.num_heads,
            "head_dim": self.head_dim,
            "depth": self.depth,
            "params_total": self.total_params,
            "params_per_layer": self.params_per_layer,
            "mlp_to_attention_flops": self.mlp_to_attention_flop_ratio(),
        }


# ----------------------------------------------------------------------
# Presets studied in the paper (§III-B and §IV Empirical Validation)
# ----------------------------------------------------------------------

#: 1-trillion-parameter GPT-3 style LLM (paper's LLM foundation model).
GPT3_1T = TransformerConfig(
    name="GPT3-1T", seq_len=2048, embed_dim=25600, num_heads=160, depth=128
)

#: Long-sequence vision transformer (paper's SciML foundation model): ERA5
#: 720x1440 grid, patch size 4 -> 180*360 = 64800 patches.
VIT_LONG_SEQ = TransformerConfig(
    name="VIT", seq_len=64800, embed_dim=12288, num_heads=64, depth=48
)

#: GPT3-175B used for the paper's Megatron-LM validation runs on Perlmutter.
GPT3_175B = TransformerConfig(
    name="GPT3-175B", seq_len=2048, embed_dim=12288, num_heads=96, depth=96
)

#: 32K-sequence ViT used for the paper's Megatron-LM validation runs.  The
#: paper does not publish the exact width/depth of this validation model; we
#: substitute a ViT sized to fit comfortably on 512 A100 GPUs with the
#: reported parallelization (n1, n2, np, nd, bm) = (2, 4, 4, 16, 1) — see
#: the docstring of :mod:`repro.analysis.validation` for the reconstruction.
VIT_32K = TransformerConfig(
    name="VIT-32K", seq_len=32400, embed_dim=6144, num_heads=48, depth=24
)

#: Registry of named model presets.
MODEL_CATALOG: Dict[str, TransformerConfig] = {
    "gpt3-1t": GPT3_1T,
    "vit": VIT_LONG_SEQ,
    "vit-long": VIT_LONG_SEQ,
    "gpt3-175b": GPT3_175B,
    "vit-32k": VIT_32K,
}


def get_model(name: str) -> TransformerConfig:
    """Look up a model preset by (case-insensitive) name.

    >>> get_model("GPT3-1T").depth
    128
    """
    key = name.strip().lower()
    if key not in MODEL_CATALOG:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(MODEL_CATALOG)}"
        )
    return MODEL_CATALOG[key]
