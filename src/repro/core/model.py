"""Transformer architecture descriptions.

The performance model needs only the coarse architectural hyper-parameters
of the transformer (§III of the paper): batch size ``b``, sequence length
``l``, embedding dimension ``e``, hidden (MLP) dimension ``f`` (typically
``4e``), number of attention heads ``h`` and depth ``d``.

Two model classes are studied in the paper:

* ``GPT3-1T`` — a 1-trillion-parameter LLM with a short sequence
  (``l=2048, e=25600, h=160, d=128``), representative of foundation LLM
  pre-training, with an MLP:attention FLOP ratio of roughly 2x.
* ``VIT`` — a long-sequence vision transformer
  (``l=64800, e=12288, h=64, d=48``) representative of scientific foundation
  models (e.g. ERA5 weather models at 720x1440 resolution with patch size 4),
  with an MLP:attention FLOP ratio of roughly 0.5x.

Additional presets cover the models used in the paper's empirical-validation
section (GPT3-175B and a 32K-sequence ViT trained on 512 A100 GPUs).

Beyond the paper's two dense workloads, the architecture description carries
three optional scenario dimensions (all defaulting to the dense/MHA model the
paper studies, with *exact* reduction to it at the defaults):

* **grouped-query attention** — ``kv_heads < num_heads`` shares each K/V head
  across a group of query heads (``kv_heads=1`` is multi-query attention),
  shrinking the K/V projections, their activations and their communication;
* **mixture-of-experts** — ``num_experts > 1`` replaces the dense MLP with
  ``num_experts`` expert MLPs of which ``moe_top_k`` are active per token,
  multiplying MLP parameters by the expert count while scaling MLP FLOPs only
  by ``moe_top_k``.

The named presets themselves live in the pluggable workload registry
(:mod:`repro.core.workloads`); the catalogue kept here covers the paper's
original models and stays for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class TransformerConfig:
    """Architectural description of a (pre-LN) transformer.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    seq_len:
        Sequence length ``l`` (tokens for NLP, patches/pixels for vision).
    embed_dim:
        Embedding dimension ``e``.
    num_heads:
        Number of attention heads ``h`` (must divide ``embed_dim``).
    depth:
        Number of transformer blocks ``d``.
    hidden_dim:
        MLP hidden dimension ``f``; defaults to ``4 * embed_dim``.
    vocab_size:
        Vocabulary size for the (optional) embedding/unembedding layers.  The
        paper's model ignores the embedding cost (negligible at these scales)
        so it defaults to 0 and only contributes to the parameter count when
        explicitly set.
    dtype_bytes:
        Bytes per element of activations/weights (2 for FP16/BF16 mixed
        precision, which the paper assumes throughout).
    kv_heads:
        Number of key/value heads for grouped-query attention; must divide
        ``num_heads``.  Defaults to 0, meaning ``num_heads`` (standard
        multi-head attention); 1 is multi-query attention.
    num_experts:
        Number of MLP experts; 1 (the default) is the dense model.
    moe_top_k:
        Experts activated per token when ``num_experts > 1``.
    """

    name: str
    seq_len: int
    embed_dim: int
    num_heads: int
    depth: int
    hidden_dim: int = 0
    vocab_size: int = 0
    dtype_bytes: int = 2
    kv_heads: int = 0
    num_experts: int = 1
    moe_top_k: int = 1

    def __post_init__(self) -> None:
        if self.hidden_dim == 0:
            object.__setattr__(self, "hidden_dim", 4 * self.embed_dim)
        if self.kv_heads == 0:
            object.__setattr__(self, "kv_heads", self.num_heads)
        if self.seq_len <= 0 or self.embed_dim <= 0 or self.depth <= 0:
            raise ValueError("seq_len, embed_dim and depth must be positive")
        if self.num_heads <= 0 or self.embed_dim % self.num_heads != 0:
            raise ValueError(
                f"num_heads ({self.num_heads}) must divide embed_dim ({self.embed_dim})"
            )
        if self.kv_heads <= 0 or self.num_heads % self.kv_heads != 0:
            raise ValueError(
                f"kv_heads ({self.kv_heads}) must divide num_heads ({self.num_heads})"
            )
        if self.num_experts < 1:
            raise ValueError(f"num_experts ({self.num_experts}) must be >= 1")
        if not 1 <= self.moe_top_k <= self.num_experts:
            raise ValueError(
                f"moe_top_k ({self.moe_top_k}) must be in [1, num_experts={self.num_experts}]"
            )
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ValueError(f"unsupported dtype_bytes {self.dtype_bytes}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def head_dim(self) -> int:
        """Per-head dimension ``e_h = e / h``."""
        return self.embed_dim // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total K (or V) projection width ``kv_heads * head_dim`` (= ``e`` for MHA)."""
        return self.kv_heads * self.head_dim

    @property
    def is_moe(self) -> bool:
        """True when the MLP is a mixture of experts (``num_experts > 1``)."""
        return self.num_experts > 1

    @property
    def attention_params_per_layer(self) -> int:
        """Parameters of the self-attention block (W_Q, W_K, W_V, W_p + biases).

        With grouped-query attention the K and V projections produce only
        ``kv_heads * head_dim`` columns instead of ``e``.
        """
        e, kv = self.embed_dim, self.kv_dim
        return 2 * e * e + 2 * e * kv + 2 * e + 2 * kv

    @property
    def router_params_per_layer(self) -> int:
        """Parameters of the MoE router/gate (0 for the dense model)."""
        return self.embed_dim * self.num_experts if self.is_moe else 0

    @property
    def expert_mlp_params(self) -> int:
        """Parameters of a single expert MLP (W_1, W_2 + biases)."""
        e, f = self.embed_dim, self.hidden_dim
        return 2 * e * f + f + e

    @property
    def mlp_params_per_layer(self) -> int:
        """Parameters of the MLP block: all experts plus the router."""
        return self.num_experts * self.expert_mlp_params + self.router_params_per_layer

    @property
    def layernorm_params_per_layer(self) -> int:
        """Parameters of the two LayerNorms (scale + shift each)."""
        return 4 * self.embed_dim

    @property
    def params_per_layer(self) -> int:
        """Total parameters in one transformer block."""
        return (
            self.attention_params_per_layer
            + self.mlp_params_per_layer
            + self.layernorm_params_per_layer
        )

    @property
    def embedding_params(self) -> int:
        """Parameters in the token-embedding table (0 unless ``vocab_size`` set)."""
        return self.vocab_size * self.embed_dim

    @property
    def total_params(self) -> int:
        """Total parameter count of the model."""
        return self.depth * self.params_per_layer + self.embedding_params

    @property
    def active_params_per_layer(self) -> int:
        """Parameters touched by one token: ``moe_top_k`` experts instead of all."""
        return (
            self.attention_params_per_layer
            + self.layernorm_params_per_layer
            + self.moe_top_k * self.expert_mlp_params
            + self.router_params_per_layer
        )

    @property
    def active_params(self) -> int:
        """Per-token active parameter count (= ``total_params`` for dense models)."""
        return self.depth * self.active_params_per_layer + self.embedding_params

    # ------------------------------------------------------------------
    # FLOP accounting at the model level (per token / per sample)
    # ------------------------------------------------------------------
    def attention_flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of one self-attention block for ``batch`` samples.

        Includes the four projections (QKV + output) and the two
        activation-activation matmuls of Logit-Attend.  With grouped-query
        attention the K/V projections shrink to ``kv_heads * head_dim``
        output columns; the Logit-Attend FLOPs are unchanged (every query
        head still attends over the full sequence).
        """
        b, l, e, kv = batch, self.seq_len, self.embed_dim, self.kv_dim
        proj = 2 * (2.0 * b * l * e * e) + 2 * (2.0 * b * l * e * kv)
        logit_attend = 2 * (2.0 * b * l * l * e)
        return proj + logit_attend

    def router_flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of the MoE router/gate (0 for the dense model)."""
        if not self.is_moe:
            return 0.0
        b, l, e = batch, self.seq_len, self.embed_dim
        return 2.0 * b * l * e * self.num_experts

    def mlp_flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of one MLP block for ``batch`` samples.

        For MoE, every token runs through ``moe_top_k`` experts (plus the
        router), so the dense MLP FLOPs scale by ``moe_top_k``.
        """
        b, l, e, f = batch, self.seq_len, self.embed_dim, self.hidden_dim
        dense = 2 * (2.0 * b * l * e * f)
        return self.moe_top_k * dense + self.router_flops_per_layer(batch)

    def flops_per_layer(self, batch: int = 1) -> float:
        """Forward FLOPs of one full transformer block."""
        return self.attention_flops_per_layer(batch) + self.mlp_flops_per_layer(batch)

    def forward_flops(self, batch: int = 1) -> float:
        """Forward FLOPs of the whole model for ``batch`` samples."""
        return self.depth * self.flops_per_layer(batch)

    def mlp_to_attention_flop_ratio(self) -> float:
        """FLOP ratio of MLP to self-attention (≈2 for GPT3-1T, ≈0.5 for VIT)."""
        return self.mlp_flops_per_layer() / self.attention_flops_per_layer()

    def tokens_per_sample(self) -> int:
        """Sequence elements processed per sample (= ``seq_len``)."""
        return self.seq_len

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def scaled(self, **overrides) -> "TransformerConfig":
        """Return a copy of the config with fields replaced (keyword only)."""
        return replace(self, **overrides)

    def describe(self) -> Dict[str, float]:
        """Summary dictionary used by reports and the CLI."""
        out = {
            "name": self.name,
            "seq_len": self.seq_len,
            "embed_dim": self.embed_dim,
            "hidden_dim": self.hidden_dim,
            "num_heads": self.num_heads,
            "head_dim": self.head_dim,
            "depth": self.depth,
            "params_total": self.total_params,
            "params_per_layer": self.params_per_layer,
            "mlp_to_attention_flops": self.mlp_to_attention_flop_ratio(),
        }
        if self.kv_heads != self.num_heads:
            out["kv_heads"] = self.kv_heads
        if self.is_moe:
            out["num_experts"] = self.num_experts
            out["moe_top_k"] = self.moe_top_k
            out["params_active"] = self.active_params
        return out


# ----------------------------------------------------------------------
# Presets studied in the paper (§III-B and §IV Empirical Validation)
# ----------------------------------------------------------------------

#: 1-trillion-parameter GPT-3 style LLM (paper's LLM foundation model).
GPT3_1T = TransformerConfig(
    name="GPT3-1T", seq_len=2048, embed_dim=25600, num_heads=160, depth=128
)

#: Long-sequence vision transformer (paper's SciML foundation model): ERA5
#: 720x1440 grid, patch size 4 -> 180*360 = 64800 patches.
VIT_LONG_SEQ = TransformerConfig(
    name="VIT", seq_len=64800, embed_dim=12288, num_heads=64, depth=48
)

#: GPT3-175B used for the paper's Megatron-LM validation runs on Perlmutter.
GPT3_175B = TransformerConfig(
    name="GPT3-175B", seq_len=2048, embed_dim=12288, num_heads=96, depth=96
)

#: 32K-sequence ViT used for the paper's Megatron-LM validation runs.  The
#: paper does not publish the exact width/depth of this validation model; we
#: substitute a ViT sized to fit comfortably on 512 A100 GPUs with the
#: reported parallelization (n1, n2, np, nd, bm) = (2, 4, 4, 16, 1) — see
#: the docstring of :mod:`repro.analysis.validation` for the reconstruction.
VIT_32K = TransformerConfig(
    name="VIT-32K", seq_len=32400, embed_dim=6144, num_heads=48, depth=24
)

#: Registry of named model presets.
MODEL_CATALOG: Dict[str, TransformerConfig] = {
    "gpt3-1t": GPT3_1T,
    "vit": VIT_LONG_SEQ,
    "vit-long": VIT_LONG_SEQ,
    "gpt3-175b": GPT3_175B,
    "vit-32k": VIT_32K,
}


def get_model(name: str) -> TransformerConfig:
    """Look up a model preset by (case-insensitive) name.

    Resolves through the pluggable workload registry
    (:mod:`repro.core.workloads`), so registered scenarios (``moe-1t``,
    ``gpt3-1t-gqa``, downstream additions) are accepted alongside the
    paper's catalogue above.

    >>> get_model("GPT3-1T").depth
    128
    """
    key = name.strip().lower()
    if key in MODEL_CATALOG:
        return MODEL_CATALOG[key]
    from repro.core.workloads import WORKLOAD_REGISTRY  # local: avoid import cycle

    if key in WORKLOAD_REGISTRY:
        return WORKLOAD_REGISTRY[key].model
    available = sorted(set(MODEL_CATALOG) | set(WORKLOAD_REGISTRY))
    raise KeyError(f"unknown model {name!r}; available: {available}")
