"""HBM memory model (stage S2, "Memory Used on HBM").

Under mixed-precision training each GPU holds:

* FP16 weights and FP16 gradients — 2 bytes per parameter each, where the
  parameter count per GPU follows from the tensor-parallel sharding and the
  number of layers per pipeline stage;
* the Adam optimizer states — 12 bytes per parameter, sharded across the
  data-parallel group when the distributed (ZeRO-1) optimizer is used;
* the intermediate activations retained for the backward pass — per layer
  and per microbatch as reported by the tensor-parallel strategy (with
  FlashAttention the ``l x l`` attention matrix is recomputed instead of
  stored), multiplied by the number of in-flight microbatches of the 1F1B
  schedule (``min(m, np)`` rather than ``m``);
* small pipeline input/output buffers for the activations in flight at the
  stage boundaries.

The configuration search declares a configuration *feasible* only if this
total fits in the GPU's HBM capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import LayerWorkload, ParallelConfig
from repro.core.parallelism.data_parallel import (
    GRAD_BYTES_PER_PARAM,
    WEIGHT_BYTES_PER_PARAM,
    optimizer_bytes_per_param,
)
from repro.core.parallelism.pipeline import (
    in_flight_microbatches,
    layers_per_stage,
    pipeline_p2p_volume_bytes,
)
from repro.utils.units import GB


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-GPU HBM footprint of one configuration (all values in bytes)."""

    weight_bytes: float
    grad_bytes: float
    optimizer_bytes: float
    activation_bytes: float
    pipeline_buffer_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total resident bytes per GPU."""
        return (
            self.weight_bytes
            + self.grad_bytes
            + self.optimizer_bytes
            + self.activation_bytes
            + self.pipeline_buffer_bytes
        )

    @property
    def total_gb(self) -> float:
        """Total footprint in (decimal) gigabytes, as plotted by the paper."""
        return self.total_bytes / GB

    def fits(self, hbm_capacity_bytes: float) -> bool:
        """True when the footprint fits in the given HBM capacity."""
        return self.total_bytes <= hbm_capacity_bytes

    def breakdown(self) -> dict:
        """Dictionary view used by reports."""
        return {
            "weights": self.weight_bytes,
            "grads": self.grad_bytes,
            "optimizer": self.optimizer_bytes,
            "activations": self.activation_bytes,
            "pipeline_buffers": self.pipeline_buffer_bytes,
        }


def estimate_memory(
    model: TransformerConfig,
    config: ParallelConfig,
    workload: LayerWorkload,
    num_microbatches: int,
    *,
    zero_optimizer: bool = True,
    activation_checkpointing: bool = False,
) -> MemoryEstimate:
    """Estimate the per-GPU HBM footprint of ``config``.

    ``workload`` must be the per-layer workload produced by the strategy for
    the same ``config`` (the activation and parameter shares are read from
    it).  With ``activation_checkpointing`` only each block's input is
    retained between the forward and backward pass (the block is recomputed
    during backward), plus one block's worth of live intermediates.
    """
    stage_layers = layers_per_stage(model, config)
    params_per_gpu = workload.params_per_gpu * stage_layers

    weight_bytes = WEIGHT_BYTES_PER_PARAM * params_per_gpu
    grad_bytes = GRAD_BYTES_PER_PARAM * params_per_gpu
    optimizer_bytes = (
        optimizer_bytes_per_param(config.data_parallel, zero_sharded=zero_optimizer)
        * params_per_gpu
    )

    in_flight = in_flight_microbatches(config.pipeline_parallel, num_microbatches)
    if activation_checkpointing:
        retained = workload.block_input_elements * stage_layers * in_flight
        # One block's intermediates are live while it is being recomputed.
        working_set = workload.activation_elements
        activation_bytes = (retained + working_set) * model.dtype_bytes
    else:
        activation_bytes = (
            workload.activation_elements * model.dtype_bytes * stage_layers * in_flight
        )

    pipeline_buffer_bytes = (
        pipeline_p2p_volume_bytes(model, config, both_directions=False) * in_flight
    )

    return MemoryEstimate(
        weight_bytes=weight_bytes,
        grad_bytes=grad_bytes,
        optimizer_bytes=optimizer_bytes,
        activation_bytes=activation_bytes,
        pipeline_buffer_bytes=pipeline_buffer_bytes,
    )
