"""HBM memory model (stage S2, "Memory Used on HBM").

Under mixed-precision training each GPU holds:

* FP16 weights and FP16 gradients — 2 bytes per parameter each, where the
  parameter count per GPU follows from the tensor-parallel sharding and the
  number of layers per pipeline stage; under ZeRO-3 the weights (and under
  ZeRO-2/3 the gradients) additionally shard across the data-parallel group;
* the Adam optimizer states — 12 bytes per parameter, sharded across the
  data-parallel group when the distributed (ZeRO-1+) optimizer is used;
* for MoE layers, the expert weights/grads/optimizer states, which replicate
  only ``nd / ep`` times (the expert-parallel degree ``ep`` shards the
  experts), so their ZeRO divisors use that smaller group;
* the intermediate activations retained for the backward pass — per layer
  and per microbatch as reported by the tensor-parallel strategy (with
  FlashAttention the ``l x l`` attention matrix is recomputed instead of
  stored), multiplied by the number of in-flight microbatches of the
  configuration's pipeline schedule (``min(m, np)`` under 1F1B, all ``m``
  under GPipe — see :mod:`repro.core.schedules`);
* small pipeline input/output buffers for the activations in flight at the
  stage boundaries.

The configuration search declares a configuration *feasible* only if this
total fits in the GPU's HBM capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import LayerWorkload, ParallelConfig
from repro.core.parallelism.data_parallel import (
    GRAD_BYTES_PER_PARAM,
    OPTIMIZER_BYTES_PER_PARAM,
    WEIGHT_BYTES_PER_PARAM,
    resolve_zero_stage,
    zero_shard_divisors,
)
from repro.core.parallelism.pipeline import (
    layers_per_stage,
    pipeline_p2p_volume_bytes,
)
from repro.core.schedules import get_schedule
from repro.utils.units import GB


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-GPU HBM footprint of one configuration (all values in bytes)."""

    weight_bytes: float
    grad_bytes: float
    optimizer_bytes: float
    activation_bytes: float
    pipeline_buffer_bytes: float

    @property
    def total_bytes(self) -> float:
        """Total resident bytes per GPU."""
        return (
            self.weight_bytes
            + self.grad_bytes
            + self.optimizer_bytes
            + self.activation_bytes
            + self.pipeline_buffer_bytes
        )

    @property
    def total_gb(self) -> float:
        """Total footprint in (decimal) gigabytes, as plotted by the paper."""
        return self.total_bytes / GB

    def fits(self, hbm_capacity_bytes: float) -> bool:
        """True when the footprint fits in the given HBM capacity."""
        return self.total_bytes <= hbm_capacity_bytes

    def breakdown(self) -> dict:
        """Dictionary view used by reports."""
        return {
            "weights": self.weight_bytes,
            "grads": self.grad_bytes,
            "optimizer": self.optimizer_bytes,
            "activations": self.activation_bytes,
            "pipeline_buffers": self.pipeline_buffer_bytes,
        }


def estimate_memory(
    model: TransformerConfig,
    config: ParallelConfig,
    workload: LayerWorkload,
    num_microbatches: int,
    *,
    zero_optimizer: bool = True,
    activation_checkpointing: bool = False,
    zero_stage: int | None = None,
) -> MemoryEstimate:
    """Estimate the per-GPU HBM footprint of ``config``.

    ``workload`` must be the per-layer workload produced by the strategy for
    the same ``config`` (the activation and parameter shares are read from
    it).  With ``activation_checkpointing`` only each block's input is
    retained between the forward and backward pass (the block is recomputed
    during backward), plus one block's worth of live intermediates.

    ``zero_stage`` (0-3) controls how much per-parameter state shards across
    the data-parallel group; ``None`` keeps the legacy behaviour driven by
    ``zero_optimizer`` (stage 1 when set, stage 0 otherwise).  Expert (MoE)
    parameters shard over the smaller ``nd / ep`` expert-replication group.
    """
    stage_layers = layers_per_stage(model, config)
    params_per_gpu = workload.params_per_gpu * stage_layers
    expert_params = workload.expert_params_per_gpu * stage_layers

    stage = resolve_zero_stage(zero_stage, zero_optimizer)
    w_div, g_div, o_div = zero_shard_divisors(stage, config.data_parallel)
    expert_group = max(1, config.data_parallel // config.expert_parallel)
    we_div, ge_div, oe_div = zero_shard_divisors(stage, expert_group)

    weight_bytes = (
        (WEIGHT_BYTES_PER_PARAM / w_div) * params_per_gpu
        + (WEIGHT_BYTES_PER_PARAM / we_div) * expert_params
    )
    grad_bytes = (
        (GRAD_BYTES_PER_PARAM / g_div) * params_per_gpu
        + (GRAD_BYTES_PER_PARAM / ge_div) * expert_params
    )
    optimizer_bytes = (
        (OPTIMIZER_BYTES_PER_PARAM / o_div) * params_per_gpu
        + (OPTIMIZER_BYTES_PER_PARAM / oe_div) * expert_params
    )

    schedule = get_schedule(config.schedule)
    in_flight = schedule.in_flight_microbatches(
        config.pipeline_parallel, num_microbatches, config.virtual_stages
    )
    if activation_checkpointing:
        retained = workload.block_input_elements * stage_layers * in_flight
        # One block's intermediates are live while it is being recomputed.
        working_set = workload.activation_elements
        activation_bytes = (retained + working_set) * model.dtype_bytes
    else:
        activation_bytes = (
            workload.activation_elements * model.dtype_bytes * stage_layers * in_flight
        )

    pipeline_buffer_bytes = (
        pipeline_p2p_volume_bytes(model, config, both_directions=False)
        * schedule.p2p_volume_factor(config.virtual_stages)
        * in_flight
    )

    return MemoryEstimate(
        weight_bytes=weight_bytes,
        grad_bytes=grad_bytes,
        optimizer_bytes=optimizer_bytes,
        activation_bytes=activation_bytes,
        pipeline_buffer_bytes=pipeline_buffer_bytes,
    )
