"""Iteration-time assembly: turn counts into an end-to-end time estimate.

This module combines every other piece of the performance model:

* the tensor-parallel strategy's per-layer workload (compute ops, exposed
  collectives, SUMMA matmuls, activation/parameter shares);
* the roofline compute-time model;
* the dual-network collective-time model with the configuration's NVSwitch
  assignment;
* the 1F1B pipeline schedule (steady state + bubbles + P2P);
* the data-parallel gradient synchronisation with its overlap rules;
* the HBM memory model for the feasibility check.

The result is an :class:`IterationEstimate` with the total time of one
training iteration (one forward+backward pass over the global batch), a
breakdown into the same categories the paper's figures use (Compute, Memory,
TP Comm, PP Bubble, PP Comm, DP Comm) and the per-GPU memory footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core.collectives import GroupPlacement, collective_time, point_to_point_time
from repro.core.memory import MemoryEstimate, estimate_memory
from repro.core.model import TransformerConfig
from repro.core.operations import CommOp
from repro.core.parallelism.base import (
    GROUP_EP,
    GROUP_PP,
    GpuAssignment,
    LayerWorkload,
    ParallelConfig,
    SummaMatmul,
    get_strategy,
)
from repro.core.parallelism.data_parallel import data_parallel_plan, resolve_zero_stage
from repro.core.parallelism.pipeline import (
    layers_per_stage,
    pipeline_bubble_time,
    pipeline_p2p_volume_bytes,
)
from repro.core.roofline import ops_time
from repro.core.system import GpuSpec, SystemSpec


@dataclass(frozen=True)
class ModelingOptions:
    """Optional modeling knobs (paper defaults unless noted)."""

    #: Use the fused FlashAttention Logit-Attend (recompute in backward).
    flash_attention: bool = True
    #: Model dropout layers explicitly (the paper omits them for brevity).
    include_dropout: bool = False
    #: Shard the Adam optimizer states over the DP group (ZeRO-1).  Legacy
    #: boolean knob; ignored when ``zero_stage`` is set explicitly.
    zero_optimizer: bool = True
    #: ZeRO sharding stage 0-3 (``None`` = legacy: stage 1 when
    #: ``zero_optimizer`` is set, stage 0 otherwise).  Stages 2/3 additionally
    #: shard gradients/parameters in the memory model; stage 3 doubles the
    #: weight AllGather volume (forward + backward re-gather).
    zero_stage: Optional[int] = None
    #: Overlap the DP gradient ReduceScatter / weight AllGather with the
    #: backward/forward pass of the last/first microbatch.
    overlap_dp: bool = True
    #: Overlap the pipeline P2P transfers with compute (the paper assumes
    #: they are exposed but small).
    overlap_pp: bool = False
    #: Include the per-kernel FLOP latency term of the roofline model.
    include_flop_latency: bool = True
    #: Full activation checkpointing: retain only each block's input and
    #: recompute the block during the backward pass (adds one forward's worth
    #: of compute and TP communication to the backward pass).  The paper does
    #: not model this explicitly; it is required to fit the long-sequence ViT
    #: on capacity-limited GPUs (A100) as its Fig. 5b implies.
    activation_checkpointing: bool = False


DEFAULT_OPTIONS = ModelingOptions()


@dataclass(frozen=True)
class TimeBreakdown:
    """Per-iteration time split into the paper's reporting categories."""

    compute: float = 0.0
    memory: float = 0.0
    tp_comm: float = 0.0
    pp_bubble: float = 0.0
    pp_comm: float = 0.0
    dp_comm: float = 0.0

    @property
    def total(self) -> float:
        """Total iteration time (sum of all categories)."""
        return (
            self.compute
            + self.memory
            + self.tp_comm
            + self.pp_bubble
            + self.pp_comm
            + self.dp_comm
        )

    def as_dict(self) -> Dict[str, float]:
        """Dictionary view (seconds per category)."""
        return {
            "compute": self.compute,
            "memory": self.memory,
            "tp_comm": self.tp_comm,
            "pp_bubble": self.pp_bubble,
            "pp_comm": self.pp_comm,
            "dp_comm": self.dp_comm,
        }

    def fractions(self) -> Dict[str, float]:
        """Category shares of the total (0..1), as in the paper's bar charts."""
        total = self.total
        if total <= 0:
            return {key: 0.0 for key in self.as_dict()}
        return {key: value / total for key, value in self.as_dict().items()}


@dataclass(frozen=True)
class IterationEstimate:
    """Result of evaluating one configuration on one system."""

    model_name: str
    system_name: str
    config: ParallelConfig
    assignment: GpuAssignment
    global_batch_size: int
    num_microbatches: int
    breakdown: TimeBreakdown
    memory: MemoryEstimate
    feasible: bool
    infeasible_reason: Optional[str] = None

    @property
    def total_time(self) -> float:
        """Time of one training iteration in seconds."""
        return self.breakdown.total

    @property
    def memory_gb(self) -> float:
        """Per-GPU HBM footprint in GB."""
        return self.memory.total_gb

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports, JSON dumps and the CLI."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "config": self.config.describe(),
            "assignment": self.assignment.as_tuple(),
            "total_time_s": self.total_time,
            "memory_gb": self.memory_gb,
            "num_microbatches": self.num_microbatches,
            "feasible": self.feasible,
        }
        out.update({f"t_{k}": v for k, v in self.breakdown.as_dict().items()})
        return out


# ----------------------------------------------------------------------
# Cached, assignment-independent pieces
# ----------------------------------------------------------------------

#: Per-SUMMA-matmul record used by the assignment-dependent comm evaluation:
#: (activation bytes, activation group, weight bytes, weight group,
#:  panel compute time, inner dim)
_SummaRecord = Tuple[float, str, float, str, float, int]


@dataclass(frozen=True)
class _StageTimes:
    """Assignment-independent per-layer times and volumes."""

    fwd_flop: float
    fwd_mem_exposed: float
    bwd_flop: float
    bwd_mem_exposed: float
    fwd_comms: Tuple[CommOp, ...]
    bwd_comms: Tuple[CommOp, ...]
    fwd_summa: Tuple[_SummaRecord, ...]
    bwd_summa: Tuple[_SummaRecord, ...]


@lru_cache(maxsize=8192)
def _cached_workload(
    strategy_name: str,
    model: TransformerConfig,
    microbatch_size: int,
    n1: int,
    n2: int,
    summa_panels: int,
    flash_attention: bool,
    include_dropout: bool,
    expert_parallel: int = 1,
) -> LayerWorkload:
    """Build (and cache) the per-layer workload for a TP configuration.

    The workload does not depend on the pipeline or data-parallel degrees,
    so those are fixed to the minimum here (the expert-parallel degree needs
    an equally large DP degree to be structurally valid, but no per-GPU
    quantity of the workload depends on ``nd`` itself); the caller re-applies
    its own config for everything else.
    """
    probe = ParallelConfig(
        strategy=strategy_name,
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=1,
        data_parallel=expert_parallel,
        microbatch_size=microbatch_size,
        summa_panels=summa_panels,
        expert_parallel=expert_parallel,
    )
    strategy = get_strategy(strategy_name)
    return strategy.layer_workload(
        model, probe, flash_attention=flash_attention, include_dropout=include_dropout
    )


def _summa_records(
    matmuls: Tuple[SummaMatmul, ...] | List[SummaMatmul],
    gpu: GpuSpec,
    summa_panels: int,
    include_latency: bool,
) -> Tuple[_SummaRecord, ...]:
    """Precompute per-panel compute times of SUMMA matmuls."""
    records = []
    for matmul in matmuls:
        nb = max(1, min(summa_panels, matmul.inner_dim))
        rate = gpu.tensor_flops
        latency = gpu.flops_latency if include_latency else 0.0
        flop_time = nb * latency + matmul.compute.flops / rate
        # Each additional panel re-reads and re-writes the local accumulator
        # block, so small panels lose matmul efficiency (Appendix A).
        panel_bytes = matmul.compute.bytes_hbm + 2.0 * (nb - 1) * matmul.output_bytes
        mem_time = panel_bytes / gpu.effective_hbm_bandwidth
        panel_compute = max(flop_time, mem_time) / nb
        records.append(
            (
                matmul.activation_bcast_bytes,
                matmul.activation_group,
                matmul.weight_bcast_bytes,
                matmul.weight_group,
                panel_compute,
                nb,
            )
        )
    return tuple(records)


@lru_cache(maxsize=8192)
def _cached_stage_times(
    strategy_name: str,
    model: TransformerConfig,
    gpu: GpuSpec,
    microbatch_size: int,
    n1: int,
    n2: int,
    summa_panels: int,
    flash_attention: bool,
    include_dropout: bool,
    include_flop_latency: bool,
    expert_parallel: int = 1,
) -> _StageTimes:
    """Roofline times of one layer (forward and backward), per microbatch."""
    workload = _cached_workload(
        strategy_name,
        model,
        microbatch_size,
        n1,
        n2,
        summa_panels,
        flash_attention,
        include_dropout,
        expert_parallel,
    )
    fwd = ops_time(workload.forward_ops, gpu, include_latency=include_flop_latency)
    bwd = ops_time(workload.backward_ops, gpu, include_latency=include_flop_latency)

    fwd_summa = _summa_records(tuple(workload.forward_summa), gpu, summa_panels, include_flop_latency)
    bwd_summa = _summa_records(tuple(workload.backward_summa), gpu, summa_panels, include_flop_latency)

    # SUMMA panel compute contributes to the compute/memory categories too.
    fwd_flop = fwd.flop_time + sum(rec[4] * rec[5] for rec in fwd_summa)
    bwd_flop = bwd.flop_time + sum(rec[4] * rec[5] for rec in bwd_summa)

    return _StageTimes(
        fwd_flop=fwd_flop,
        fwd_mem_exposed=fwd.exposed_memory_time,
        bwd_flop=bwd_flop,
        bwd_mem_exposed=bwd.exposed_memory_time,
        fwd_comms=tuple(workload.forward_comms),
        bwd_comms=tuple(workload.backward_comms),
        fwd_summa=fwd_summa,
        bwd_summa=bwd_summa,
    )


def clear_caches() -> None:
    """Drop all memoized workloads/times (used by tests and sweeps)."""
    _cached_workload.cache_clear()
    _cached_stage_times.cache_clear()


# ----------------------------------------------------------------------
# Assignment-dependent evaluation
# ----------------------------------------------------------------------

def _largest_divisor_at_most(n: int, limit: int) -> int:
    """Largest divisor of ``n`` that is <= ``limit`` (>= 1)."""
    best = 1
    for d in range(1, n + 1):
        if d > limit:
            break
        if n % d == 0:
            best = d
    return best


def _group_placement(
    group: str, config: ParallelConfig, assignment: GpuAssignment
) -> GroupPlacement:
    """Placement of the named parallel group under ``assignment``.

    Expert-parallel groups (``ep`` and the ``<group>/ep`` gradient-sync
    groups) are carved out of the data-parallel group, so their GPUs share
    NVSwitch domains at most as much as the DP group does; the co-located
    count is clamped to the largest divisor of the group size.
    """
    size = config.group_size(group)
    if group == GROUP_EP or group.endswith("/ep"):
        base = group[: -len("/ep")] if group.endswith("/ep") else "dp"
        base_nvs = assignment.for_group(base) if base != "dp" else assignment.nvs_dp
        nvs = _largest_divisor_at_most(size, max(1, base_nvs))
        return GroupPlacement(size=size, gpus_per_nvs_domain=nvs)
    return GroupPlacement(
        size=size,
        gpus_per_nvs_domain=assignment.for_group(group),
    )


def _comm_time(
    comms: Tuple[CommOp, ...],
    config: ParallelConfig,
    assignment: GpuAssignment,
    system: SystemSpec,
) -> float:
    """Total exposed time of a list of collectives."""
    total = 0.0
    for comm in comms:
        if comm.overlapped:
            continue
        placement = _group_placement(comm.group, config, assignment)
        total += collective_time(comm.collective, comm.volume_bytes, placement, system.network)
    return total


def _summa_comm_time(
    records: Tuple[_SummaRecord, ...],
    config: ParallelConfig,
    assignment: GpuAssignment,
    system: SystemSpec,
) -> float:
    """Exposed communication time of SUMMA matmuls (prologue + spill-over).

    For each blocked matmul the first panel's broadcasts are fully exposed
    (prologue); subsequent panels overlap their broadcasts with the previous
    panel's compute and only expose the excess.
    """
    total = 0.0
    for act_bytes, act_group, w_bytes, w_group, panel_compute, nb in records:
        act_place = _group_placement(act_group, config, assignment)
        w_place = _group_placement(w_group, config, assignment)
        panel_act = collective_time("broadcast", act_bytes / nb, act_place, system.network)
        panel_w = collective_time("broadcast", w_bytes / nb, w_place, system.network)
        panel_comm = panel_act + panel_w
        prologue = panel_comm
        exposed_per_panel = max(0.0, panel_comm - panel_compute)
        total += prologue + max(0, nb - 1) * exposed_per_panel
    return total


def evaluate_config(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment | None = None,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> IterationEstimate:
    """Estimate the iteration time and memory of one configuration.

    Raises ``ValueError`` for structurally invalid configurations (bad
    divisibility); returns an estimate flagged infeasible when the
    configuration is valid but does not fit in HBM.
    """
    assignment = assignment or GpuAssignment()
    strategy = get_strategy(config.strategy)
    err = strategy.validate_config(model, config)
    if err is not None:
        raise ValueError(f"invalid configuration {config.describe()}: {err}")
    if not assignment.is_valid_for(config, system.nvs_domain_size):
        raise ValueError(
            f"assignment {assignment.as_tuple()} invalid for {config.describe()} "
            f"on NVS domain size {system.nvs_domain_size}"
        )

    num_microbatches = config.num_microbatches(global_batch_size)
    stage_layers = layers_per_stage(model, config)

    stage = _cached_stage_times(
        config.strategy,
        model,
        system.gpu,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        config.expert_parallel,
    )
    workload = _cached_workload(
        config.strategy,
        model,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        config.expert_parallel,
    )

    # --- per-microbatch, per-stage times -------------------------------
    fwd_tp_comm = _comm_time(stage.fwd_comms, config, assignment, system) + _summa_comm_time(
        stage.fwd_summa, config, assignment, system
    )
    bwd_tp_comm = _comm_time(stage.bwd_comms, config, assignment, system) + _summa_comm_time(
        stage.bwd_summa, config, assignment, system
    )

    fwd_compute = stage.fwd_flop * stage_layers
    fwd_memory = stage.fwd_mem_exposed * stage_layers
    bwd_compute = stage.bwd_flop * stage_layers
    bwd_memory = stage.bwd_mem_exposed * stage_layers
    fwd_tp_comm *= stage_layers
    bwd_tp_comm *= stage_layers

    if options.activation_checkpointing:
        # The backward pass first recomputes the block's forward pass
        # (compute, memory traffic and tensor-parallel collectives).
        bwd_compute += fwd_compute
        bwd_memory += fwd_memory
        bwd_tp_comm += fwd_tp_comm

    tf = fwd_compute + fwd_memory + fwd_tp_comm
    tb = bwd_compute + bwd_memory + bwd_tp_comm

    m = num_microbatches

    # --- pipeline -------------------------------------------------------
    bubble = pipeline_bubble_time(config.pipeline_parallel, tf, tb)
    pp_comm = 0.0
    if config.pipeline_parallel > 1 and not options.overlap_pp:
        p2p_bytes = pipeline_p2p_volume_bytes(model, config, both_directions=True)
        placement = _group_placement(GROUP_PP, config, assignment)
        pp_comm = m * point_to_point_time(p2p_bytes, placement, system.network)

    # --- data parallel ---------------------------------------------------
    zero_stage = resolve_zero_stage(options.zero_stage, options.zero_optimizer)
    plans = [
        data_parallel_plan(
            workload.params_per_gpu * stage_layers,
            config,
            grad_sync_group=workload.grad_sync_group,
            overlap_with_compute=options.overlap_dp,
            zero_stage=zero_stage,
        )
    ]
    if workload.expert_params_per_gpu > 0:
        # Expert (MoE) weights replicate only nd/ep times; their gradients
        # synchronise over the correspondingly smaller group.
        plans.append(
            data_parallel_plan(
                workload.expert_params_per_gpu * stage_layers,
                config,
                grad_sync_group=workload.expert_grad_sync_group,
                overlap_with_compute=options.overlap_dp,
                zero_stage=zero_stage,
            )
        )
    dp_comm = 0.0
    rs_total = 0.0
    ag_total = 0.0
    for plan in plans:
        if plan.total_bytes <= 0:
            continue
        placement = _group_placement(plan.sync_group, config, assignment)
        rs_total += collective_time(
            "reduce_scatter", plan.grad_reduce_scatter_bytes, placement, system.network
        )
        ag_total += collective_time(
            "all_gather", plan.weight_all_gather_bytes, placement, system.network
        )
    if rs_total > 0 or ag_total > 0:
        if options.overlap_dp:
            dp_comm = max(0.0, rs_total - tb) + max(0.0, ag_total - tf)
        else:
            dp_comm = rs_total + ag_total

    breakdown = TimeBreakdown(
        compute=m * (fwd_compute + bwd_compute),
        memory=m * (fwd_memory + bwd_memory),
        tp_comm=m * (fwd_tp_comm + bwd_tp_comm),
        pp_bubble=bubble,
        pp_comm=pp_comm,
        dp_comm=dp_comm,
    )

    # --- memory feasibility ----------------------------------------------
    memory = estimate_memory(
        model,
        config,
        workload,
        m,
        zero_optimizer=options.zero_optimizer,
        activation_checkpointing=options.activation_checkpointing,
        zero_stage=options.zero_stage,
    )
    feasible = memory.fits(system.gpu.hbm_capacity)
    reason = None if feasible else (
        f"memory {memory.total_gb:.1f} GB exceeds HBM capacity "
        f"{system.gpu.hbm_capacity / 1e9:.1f} GB"
    )

    return IterationEstimate(
        model_name=model.name,
        system_name=system.name,
        config=config,
        assignment=assignment,
        global_batch_size=global_batch_size,
        num_microbatches=m,
        breakdown=breakdown,
        memory=memory,
        feasible=feasible,
        infeasible_reason=reason,
    )


def config_time_lower_bound(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> float:
    """Assignment-independent lower bound on the iteration time of ``config``.

    The compute and exposed-HBM times of each stage, and the pipeline bubble
    they imply, do not depend on the GPU-to-NVSwitch assignment; every
    communication term (TP collectives, pipeline P2P, DP synchronisation,
    SUMMA broadcasts) is non-negative under *any* assignment.  Dropping the
    communication terms therefore yields a true lower bound on
    :func:`evaluate_config`'s total time over all assignments, which the
    search uses for branch-and-bound pruning: a parallelization whose bound
    already exceeds the incumbent best cannot contain the optimum, so its
    NVS-assignment loop can be skipped entirely.
    """
    stage = _cached_stage_times(
        config.strategy,
        model,
        system.gpu,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        config.expert_parallel,
    )
    stage_layers = layers_per_stage(model, config)
    tf = (stage.fwd_flop + stage.fwd_mem_exposed) * stage_layers
    tb = (stage.bwd_flop + stage.bwd_mem_exposed) * stage_layers
    if options.activation_checkpointing:
        tb += tf
    m = config.num_microbatches(global_batch_size)
    bubble = pipeline_bubble_time(config.pipeline_parallel, tf, tb)
    return m * (tf + tb) + bubble


def estimate_config_memory(
    model: TransformerConfig,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> MemoryEstimate:
    """Memory-only estimate (cheap pre-filter used by the search)."""
    workload = _cached_workload(
        config.strategy,
        model,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        config.expert_parallel,
    )
    m = config.num_microbatches(global_batch_size)
    return estimate_memory(
        model,
        config,
        workload,
        m,
        zero_optimizer=options.zero_optimizer,
        activation_checkpointing=options.activation_checkpointing,
        zero_stage=options.zero_stage,
    )
