"""Iteration-time assembly: build a cost plan, then reduce it to a time.

This module combines every other piece of the performance model:

* the tensor-parallel strategy's per-layer workload (compute ops, exposed
  collectives, SUMMA matmuls, activation/parameter shares);
* the roofline compute-time model;
* the dual-network collective-time model with the configuration's NVSwitch
  assignment;
* the configuration's pipeline schedule (1F1B by default; GPipe and
  interleaved-1F1B through :mod:`repro.core.schedules`);
* the data-parallel gradient synchronisation with its overlap rules;
* the HBM memory model for the feasibility check.

Rather than computing the iteration time inline, :func:`evaluate_config`
*builds* a phase-level :class:`~repro.core.plan.ExecutionPlan` — the cost IR
of :mod:`repro.core.plan` — and *reduces* it.  The result is an
:class:`IterationEstimate` with the total time of one training iteration
(one forward+backward pass over the global batch), a breakdown into the same
categories the paper's figures use (Compute, Memory, TP Comm, PP Bubble,
PP Comm, DP Comm), the per-GPU memory footprint, and the plan itself for
phase-level introspection (``repro-perf search --explain-plan``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.core.backends import DEFAULT_BACKEND, CostPricer, get_backend
from repro.core.collectives import GroupPlacement
from repro.core.memory import MemoryEstimate, estimate_memory
from repro.core.model import TransformerConfig
from repro.core.operations import CommOp
from repro.core.parallelism.base import (
    GROUP_EP,
    GROUP_PP,
    GpuAssignment,
    LayerWorkload,
    ParallelConfig,
    SummaMatmul,
    get_strategy,
)
from repro.core.parallelism.data_parallel import data_parallel_plan, resolve_zero_stage
from repro.core.parallelism.pipeline import layers_per_stage, pipeline_p2p_volume_bytes
from repro.core.plan import (
    CATEGORY_COMPUTE,
    CATEGORY_DP_COMM,
    CATEGORY_MEMORY,
    CATEGORY_PP_BUBBLE,
    CATEGORY_PP_COMM,
    CATEGORY_STATE,
    CATEGORY_TP_COMM,
    CostPhase,
    ExecutionPlan,
    TimeBreakdown,
)
from repro.core.roofline import ops_time
from repro.core.schedules import get_schedule
from repro.core.system import GpuSpec, SystemSpec
from repro.utils import factorization

__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_OPTIONS",
    "ModelingOptions",
    "TimeBreakdown",
    "IterationEstimate",
    "evaluate_config",
    "build_execution_plan",
    "config_time_lower_bound",
    "estimate_config_memory",
    "cache_stats",
    "clear_caches",
    "register_cache",
]


@dataclass(frozen=True)
class ModelingOptions:
    """Optional modeling knobs (paper defaults unless noted)."""

    #: Use the fused FlashAttention Logit-Attend (recompute in backward).
    flash_attention: bool = True
    #: Model dropout layers explicitly (the paper omits them for brevity).
    include_dropout: bool = False
    #: Shard the Adam optimizer states over the DP group (ZeRO-1).  Legacy
    #: boolean knob; ignored when ``zero_stage`` is set explicitly.
    zero_optimizer: bool = True
    #: ZeRO sharding stage 0-3 (``None`` = legacy: stage 1 when
    #: ``zero_optimizer`` is set, stage 0 otherwise).  Stages 2/3 additionally
    #: shard gradients/parameters in the memory model; stage 3 doubles the
    #: weight AllGather volume (forward + backward re-gather).
    zero_stage: Optional[int] = None
    #: Overlap the DP gradient ReduceScatter / weight AllGather with the
    #: backward/forward pass of the last/first microbatch.
    overlap_dp: bool = True
    #: Overlap the pipeline P2P transfers with compute (the paper assumes
    #: they are exposed but small).
    overlap_pp: bool = False
    #: Include the per-kernel FLOP latency term of the roofline model.
    include_flop_latency: bool = True
    #: Full activation checkpointing: retain only each block's input and
    #: recompute the block during the backward pass (adds one forward's worth
    #: of compute and TP communication to the backward pass).  The paper does
    #: not model this explicitly; it is required to fit the long-sequence ViT
    #: on capacity-limited GPUs (A100) as its Fig. 5b implies.
    activation_checkpointing: bool = False


DEFAULT_OPTIONS = ModelingOptions()


@dataclass(frozen=True)
class IterationEstimate:
    """Result of evaluating one configuration on one system."""

    model_name: str
    system_name: str
    config: ParallelConfig
    assignment: GpuAssignment
    global_batch_size: int
    num_microbatches: int
    breakdown: TimeBreakdown
    memory: MemoryEstimate
    feasible: bool
    infeasible_reason: Optional[str] = None
    #: The phase-level cost plan the breakdown was reduced from.
    plan: Optional[ExecutionPlan] = None
    #: Evaluation backend that produced the estimate (see
    #: :mod:`repro.core.backends`).
    backend: str = DEFAULT_BACKEND

    @property
    def total_time(self) -> float:
        """Time of one training iteration in seconds."""
        return self.breakdown.total

    @property
    def memory_gb(self) -> float:
        """Per-GPU HBM footprint in GB."""
        return self.memory.total_gb

    def summary(self) -> Dict[str, object]:
        """Flat summary used by reports, JSON dumps and the CLI."""
        out: Dict[str, object] = {
            "model": self.model_name,
            "system": self.system_name,
            "config": self.config.describe(),
            "assignment": self.assignment.as_tuple(),
            "total_time_s": self.total_time,
            "memory_gb": self.memory_gb,
            "num_microbatches": self.num_microbatches,
            "feasible": self.feasible,
            "backend": self.backend,
        }
        out.update({f"t_{k}": v for k, v in self.breakdown.as_dict().items()})
        return out


# ----------------------------------------------------------------------
# Cached, assignment-independent pieces
# ----------------------------------------------------------------------

#: Per-SUMMA-matmul record used by the assignment-dependent comm evaluation:
#: (activation bytes, activation group, weight bytes, weight group,
#:  panel compute time, inner dim)
_SummaRecord = Tuple[float, str, float, str, float, int]

#: Explicit cache bounds.  The keys are per (strategy, model, microbatch,
#: TP factorization) — *not* per schedule, microbatch count or assignment —
#: so a whole multi-schedule search at one scale needs only a few dozen
#: entries; the bound caps worst-case growth in long-lived sweep workers.
WORKLOAD_CACHE_SIZE = 4096
STAGE_TIMES_CACHE_SIZE = 8192

#: Every memoization this module (and its helpers) maintains, keyed by a
#: stable reporting name — the single source of truth for both
#: :func:`clear_caches` and :func:`cache_stats`.
_CACHE_REGISTRY: Dict[str, object] = {}


def register_cache(name: str):
    """Track an ``lru_cache``-wrapped function under ``name``.

    Public registration hook: other model layers (e.g. the simulation
    backend's memoized collective replays) register their ``lru_cache``
    functions here so that :func:`clear_caches` and :func:`cache_stats`
    cover them too — one registry, one cold-start story for every backend.
    """

    def wrap(fn):
        _CACHE_REGISTRY[name] = fn
        return fn

    return wrap


@dataclass(frozen=True)
class _StageTimes:
    """Assignment-independent per-layer times and volumes."""

    fwd_flop: float
    fwd_mem_exposed: float
    bwd_flop: float
    bwd_mem_exposed: float
    fwd_comms: Tuple[CommOp, ...]
    bwd_comms: Tuple[CommOp, ...]
    fwd_summa: Tuple[_SummaRecord, ...]
    bwd_summa: Tuple[_SummaRecord, ...]


@register_cache("workload")
@lru_cache(maxsize=WORKLOAD_CACHE_SIZE)
def _cached_workload(
    strategy_name: str,
    model: TransformerConfig,
    microbatch_size: int,
    n1: int,
    n2: int,
    summa_panels: int,
    flash_attention: bool,
    include_dropout: bool,
    expert_parallel: int = 1,
) -> LayerWorkload:
    """Build (and cache) the per-layer workload for a TP configuration.

    The workload does not depend on the pipeline degree, the pipeline
    schedule or the data-parallel degree, so those are fixed to the minimum
    here (the expert-parallel degree needs an equally large DP degree to be
    structurally valid, but no per-GPU quantity of the workload depends on
    ``nd`` itself); the caller re-applies its own config for everything
    else.  This is what lets every microbatch-count, schedule and
    NVS-assignment candidate of one tensor-parallel strategy re-cost its
    plan from the same cached workload.
    """
    probe = ParallelConfig(
        strategy=strategy_name,
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=1,
        data_parallel=expert_parallel,
        microbatch_size=microbatch_size,
        summa_panels=summa_panels,
        expert_parallel=expert_parallel,
    )
    strategy = get_strategy(strategy_name)
    return strategy.layer_workload(
        model, probe, flash_attention=flash_attention, include_dropout=include_dropout
    )


def _summa_records(
    matmuls: Tuple[SummaMatmul, ...] | List[SummaMatmul],
    gpu: GpuSpec,
    summa_panels: int,
    include_latency: bool,
) -> Tuple[_SummaRecord, ...]:
    """Precompute per-panel compute times of SUMMA matmuls."""
    records = []
    for matmul in matmuls:
        nb = max(1, min(summa_panels, matmul.inner_dim))
        rate = gpu.tensor_flops
        latency = gpu.flops_latency if include_latency else 0.0
        flop_time = nb * latency + matmul.compute.flops / rate
        # Each additional panel re-reads and re-writes the local accumulator
        # block, so small panels lose matmul efficiency (Appendix A).
        panel_bytes = matmul.compute.bytes_hbm + 2.0 * (nb - 1) * matmul.output_bytes
        mem_time = panel_bytes / gpu.effective_hbm_bandwidth
        panel_compute = max(flop_time, mem_time) / nb
        records.append(
            (
                matmul.activation_bcast_bytes,
                matmul.activation_group,
                matmul.weight_bcast_bytes,
                matmul.weight_group,
                panel_compute,
                nb,
            )
        )
    return tuple(records)


@register_cache("stage_times")
@lru_cache(maxsize=STAGE_TIMES_CACHE_SIZE)
def _cached_stage_times(
    strategy_name: str,
    model: TransformerConfig,
    gpu: GpuSpec,
    microbatch_size: int,
    n1: int,
    n2: int,
    summa_panels: int,
    flash_attention: bool,
    include_dropout: bool,
    include_flop_latency: bool,
    expert_parallel: int = 1,
) -> _StageTimes:
    """Roofline times of one layer (forward and backward), per microbatch."""
    workload = _cached_workload(
        strategy_name,
        model,
        microbatch_size,
        n1,
        n2,
        summa_panels,
        flash_attention,
        include_dropout,
        expert_parallel,
    )
    fwd = ops_time(workload.forward_ops, gpu, include_latency=include_flop_latency)
    bwd = ops_time(workload.backward_ops, gpu, include_latency=include_flop_latency)

    fwd_summa = _summa_records(tuple(workload.forward_summa), gpu, summa_panels, include_flop_latency)
    bwd_summa = _summa_records(tuple(workload.backward_summa), gpu, summa_panels, include_flop_latency)

    # SUMMA panel compute contributes to the compute/memory categories too.
    fwd_flop = fwd.flop_time + sum(rec[4] * rec[5] for rec in fwd_summa)
    bwd_flop = bwd.flop_time + sum(rec[4] * rec[5] for rec in bwd_summa)

    return _StageTimes(
        fwd_flop=fwd_flop,
        fwd_mem_exposed=fwd.exposed_memory_time,
        bwd_flop=bwd_flop,
        bwd_mem_exposed=bwd.exposed_memory_time,
        fwd_comms=tuple(workload.forward_comms),
        bwd_comms=tuple(workload.backward_comms),
        fwd_summa=fwd_summa,
        bwd_summa=bwd_summa,
    )


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counters of every registered memoization cache."""
    return {name: fn.cache_info()._asdict() for name, fn in _CACHE_REGISTRY.items()}


def clear_caches() -> None:
    """Drop every memoization this model maintains.

    Covers every cache in the registry (workload, stage times, and anything
    a future change registers) *and* the factorization caches the
    configuration enumeration leans on, so tests, sweeps and freshly
    started worker processes all start from the same cold, bounded state
    (:class:`~repro.runtime.SweepExecutor` installs this as its pool
    initializer).
    """
    for fn in _CACHE_REGISTRY.values():
        fn.cache_clear()
    factorization.divisors.cache_clear()
    factorization.factorizations.cache_clear()


# ----------------------------------------------------------------------
# Assignment-dependent evaluation
# ----------------------------------------------------------------------

def _largest_divisor_at_most(n: int, limit: int) -> int:
    """Largest divisor of ``n`` that is <= ``limit`` (>= 1)."""
    best = 1
    for d in range(1, n + 1):
        if d > limit:
            break
        if n % d == 0:
            best = d
    return best


def _group_placement(
    group: str, config: ParallelConfig, assignment: GpuAssignment
) -> GroupPlacement:
    """Placement of the named parallel group under ``assignment``.

    Expert-parallel groups (``ep`` and the ``<group>/ep`` gradient-sync
    groups) are carved out of the data-parallel group, so their GPUs share
    NVSwitch domains at most as much as the DP group does; the co-located
    count is clamped to the largest divisor of the group size.
    """
    size = config.group_size(group)
    if group == GROUP_EP or group.endswith("/ep"):
        base = group[: -len("/ep")] if group.endswith("/ep") else "dp"
        base_nvs = assignment.for_group(base) if base != "dp" else assignment.nvs_dp
        nvs = _largest_divisor_at_most(size, max(1, base_nvs))
        return GroupPlacement(size=size, gpus_per_nvs_domain=nvs)
    return GroupPlacement(
        size=size,
        gpus_per_nvs_domain=assignment.for_group(group),
    )


def _comm_time(
    comms: Tuple[CommOp, ...],
    config: ParallelConfig,
    assignment: GpuAssignment,
    pricer: CostPricer,
) -> float:
    """Total exposed time of a list of collectives."""
    total = 0.0
    for comm in comms:
        if comm.overlapped:
            continue
        placement = _group_placement(comm.group, config, assignment)
        total += pricer.collective(comm.collective, comm.volume_bytes, placement)
    return total


def _summa_comm_time(
    records: Tuple[_SummaRecord, ...],
    config: ParallelConfig,
    assignment: GpuAssignment,
    pricer: CostPricer,
) -> float:
    """Exposed communication time of SUMMA matmuls (prologue + spill-over).

    For each blocked matmul the first panel's broadcasts are fully exposed
    (prologue); subsequent panels overlap their broadcasts with the previous
    panel's compute and only expose the excess.
    """
    total = 0.0
    for act_bytes, act_group, w_bytes, w_group, panel_compute, nb in records:
        act_place = _group_placement(act_group, config, assignment)
        w_place = _group_placement(w_group, config, assignment)
        panel_act = pricer.collective("broadcast", act_bytes / nb, act_place)
        panel_w = pricer.collective("broadcast", w_bytes / nb, w_place)
        panel_comm = panel_act + panel_w
        prologue = panel_comm
        exposed_per_panel = max(0.0, panel_comm - panel_compute)
        total += prologue + max(0, nb - 1) * exposed_per_panel
    return total


def _assemble_plan(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment,
    *,
    global_batch_size: int,
    options: ModelingOptions,
    pricer: CostPricer,
) -> Tuple[ExecutionPlan, MemoryEstimate, int]:
    """Build the phase-level cost plan of one validated candidate.

    Returns ``(plan, memory, num_microbatches)``.  Every communication and
    bubble cost is priced through ``pricer``; with the analytic pricer the
    phase values are computed with exactly the arithmetic the legacy inline
    evaluation used, so reducing the plan reproduces the pre-IR totals
    bit-for-bit under the default 1F1B schedule.
    """
    schedule = get_schedule(config.schedule)
    num_microbatches = config.num_microbatches(global_batch_size)
    stage_layers = layers_per_stage(model, config)

    stage = _cached_stage_times(
        config.strategy,
        model,
        system.gpu,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        config.expert_parallel,
    )
    workload = _cached_workload(
        config.strategy,
        model,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        config.expert_parallel,
    )

    # --- per-microbatch, per-stage times -------------------------------
    fwd_tp_comm = _comm_time(stage.fwd_comms, config, assignment, pricer) + _summa_comm_time(
        stage.fwd_summa, config, assignment, pricer
    )
    bwd_tp_comm = _comm_time(stage.bwd_comms, config, assignment, pricer) + _summa_comm_time(
        stage.bwd_summa, config, assignment, pricer
    )

    fwd_compute = stage.fwd_flop * stage_layers
    fwd_memory = stage.fwd_mem_exposed * stage_layers
    bwd_compute = stage.bwd_flop * stage_layers
    bwd_memory = stage.bwd_mem_exposed * stage_layers
    fwd_tp_comm *= stage_layers
    bwd_tp_comm *= stage_layers

    if options.activation_checkpointing:
        # The backward pass first recomputes the block's forward pass
        # (compute, memory traffic and tensor-parallel collectives).
        bwd_compute += fwd_compute
        bwd_memory += fwd_memory
        bwd_tp_comm += fwd_tp_comm

    tf = fwd_compute + fwd_memory + fwd_tp_comm
    tb = bwd_compute + bwd_memory + bwd_tp_comm

    m = num_microbatches

    # --- memory (phase deltas + feasibility input) ----------------------
    memory = estimate_memory(
        model,
        config,
        workload,
        m,
        zero_optimizer=options.zero_optimizer,
        activation_checkpointing=options.activation_checkpointing,
        zero_stage=options.zero_stage,
    )

    phases: List[CostPhase] = [
        CostPhase(
            name="microbatch.compute",
            category=CATEGORY_COMPUTE,
            seconds=fwd_compute + bwd_compute,
            count=m,
        ),
        CostPhase(
            name="microbatch.hbm",
            category=CATEGORY_MEMORY,
            seconds=fwd_memory + bwd_memory,
            count=m,
        ),
        CostPhase(
            name="microbatch.tp_comm",
            category=CATEGORY_TP_COMM,
            seconds=fwd_tp_comm + bwd_tp_comm,
            count=m,
        ),
        CostPhase(
            name="pipeline.bubble",
            category=CATEGORY_PP_BUBBLE,
            seconds=pricer.bubble(
                schedule, config.pipeline_parallel, m, tf, tb, config.virtual_stages
            ),
        ),
    ]

    # --- pipeline P2P ---------------------------------------------------
    if config.pipeline_parallel > 1:
        p2p_bytes = pipeline_p2p_volume_bytes(model, config, both_directions=True)
        placement = _group_placement(GROUP_PP, config, assignment)
        # Interleaving crosses v chunk boundaries per microbatch — v separate
        # messages, each paying the full latency, so the factor scales the
        # per-boundary *time*, not just the bytes.
        phases.append(
            CostPhase(
                name="pipeline.p2p",
                category=CATEGORY_PP_COMM,
                seconds=schedule.p2p_volume_factor(config.virtual_stages)
                * pricer.p2p(p2p_bytes, placement),
                count=m,
                overlapped=options.overlap_pp,
                memory_bytes=memory.pipeline_buffer_bytes,
            )
        )

    # --- data parallel ---------------------------------------------------
    zero_stage = resolve_zero_stage(options.zero_stage, options.zero_optimizer)
    plans = [
        data_parallel_plan(
            workload.params_per_gpu * stage_layers,
            config,
            grad_sync_group=workload.grad_sync_group,
            overlap_with_compute=options.overlap_dp,
            zero_stage=zero_stage,
        )
    ]
    if workload.expert_params_per_gpu > 0:
        # Expert (MoE) weights replicate only nd/ep times; their gradients
        # synchronise over the correspondingly smaller group.
        plans.append(
            data_parallel_plan(
                workload.expert_params_per_gpu * stage_layers,
                config,
                grad_sync_group=workload.expert_grad_sync_group,
                overlap_with_compute=options.overlap_dp,
                zero_stage=zero_stage,
            )
        )
    rs_total = 0.0
    ag_total = 0.0
    for plan in plans:
        if plan.total_bytes <= 0:
            continue
        placement = _group_placement(plan.sync_group, config, assignment)
        rs_total += pricer.collective(
            "reduce_scatter", plan.grad_reduce_scatter_bytes, placement
        )
        ag_total += pricer.collective(
            "all_gather", plan.weight_all_gather_bytes, placement
        )
    if rs_total > 0 or ag_total > 0:
        # The gradient ReduceScatter can hide under the last microbatch's
        # backward pass, the weight AllGather under the first forward.
        phases.append(
            CostPhase(
                name="dp.grad_reduce_scatter",
                category=CATEGORY_DP_COMM,
                seconds=rs_total,
                overlap_budget=tb if options.overlap_dp else 0.0,
            )
        )
        phases.append(
            CostPhase(
                name="dp.weight_all_gather",
                category=CATEGORY_DP_COMM,
                seconds=ag_total,
                overlap_budget=tf if options.overlap_dp else 0.0,
            )
        )

    # --- resident state (memory-only phases) -----------------------------
    phases.append(
        CostPhase(
            name="state.parameters",
            category=CATEGORY_STATE,
            seconds=0.0,
            memory_bytes=memory.weight_bytes + memory.grad_bytes + memory.optimizer_bytes,
        )
    )
    phases.append(
        CostPhase(
            name="state.activations",
            category=CATEGORY_STATE,
            seconds=0.0,
            memory_bytes=memory.activation_bytes,
        )
    )

    plan = ExecutionPlan(
        schedule=config.schedule,
        virtual_stages=config.virtual_stages,
        num_stages=config.pipeline_parallel,
        num_microbatches=m,
        phases=tuple(phases),
        backend=pricer.name,
    )
    return plan, memory, m


def _validate_candidate(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment,
) -> None:
    """Raise ``ValueError`` for structurally invalid (config, assignment)."""
    strategy = get_strategy(config.strategy)
    err = strategy.validate_config(model, config)
    if err is None:
        err = get_schedule(config.schedule).validate(model, config)
    if err is not None:
        raise ValueError(f"invalid configuration {config.describe()}: {err}")
    if not assignment.is_valid_for(config, system.nvs_domain_size):
        raise ValueError(
            f"assignment {assignment.as_tuple()} invalid for {config.describe()} "
            f"on NVS domain size {system.nvs_domain_size}"
        )


def build_execution_plan(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment | None = None,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> ExecutionPlan:
    """Build (but do not reduce) the cost plan of one candidate.

    Raises ``ValueError`` for structurally invalid configurations, exactly
    like :func:`evaluate_config`.
    """
    assignment = assignment or GpuAssignment()
    _validate_candidate(model, system, config, assignment)
    plan, _, _ = _assemble_plan(
        model, system, config, assignment,
        global_batch_size=global_batch_size, options=options,
        pricer=get_backend(backend)(system),
    )
    return plan


def evaluate_config(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignment: GpuAssignment | None = None,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
) -> IterationEstimate:
    """Estimate the iteration time and memory of one configuration.

    Builds the candidate's :class:`~repro.core.plan.ExecutionPlan` and
    reduces it to the category breakdown.  Raises ``ValueError`` for
    structurally invalid configurations (bad divisibility); returns an
    estimate flagged infeasible when the configuration is valid but does not
    fit in HBM.

    ``backend`` selects the cost model: ``"analytic"`` (default — the
    paper's closed forms, bit-exact with every reproduced figure) or
    ``"sim"`` (the message-level oracle of :mod:`repro.simulate.backend`).
    The memory model and the feasibility check are backend-independent.
    """
    assignment = assignment or GpuAssignment()
    _validate_candidate(model, system, config, assignment)
    pricer = get_backend(backend)(system)
    plan, memory, m = _assemble_plan(
        model, system, config, assignment,
        global_batch_size=global_batch_size, options=options,
        pricer=pricer,
    )

    breakdown = plan.reduce()

    feasible = memory.fits(system.gpu.hbm_capacity)
    reason = None if feasible else (
        f"memory {memory.total_gb:.1f} GB exceeds HBM capacity "
        f"{system.gpu.hbm_capacity / 1e9:.1f} GB"
    )

    return IterationEstimate(
        model_name=model.name,
        system_name=system.name,
        config=config,
        assignment=assignment,
        global_batch_size=global_batch_size,
        num_microbatches=m,
        breakdown=breakdown,
        memory=memory,
        feasible=feasible,
        infeasible_reason=reason,
        plan=plan,
        backend=pricer.name,
    )


def config_time_lower_bound(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> float:
    """Assignment-independent lower bound on the iteration time of ``config``.

    The compute and exposed-HBM times of each stage, and the schedule bubble
    they imply, do not depend on the GPU-to-NVSwitch assignment; every
    communication term (TP collectives, pipeline P2P, DP synchronisation,
    SUMMA broadcasts) is non-negative under *any* assignment.  Dropping the
    communication terms therefore yields a true lower bound on
    :func:`evaluate_config`'s total time over all assignments, which the
    search uses for branch-and-bound pruning: a parallelization whose bound
    already exceeds the incumbent best cannot contain the optimum, so its
    NVS-assignment loop can be skipped entirely.

    The bound stays admissible across schedules because each configuration's
    bound uses *its own* schedule's bubble (e.g. the interleaved bubble
    shrinks by the virtual-stage degree in both the bound and the full
    evaluation).
    """
    stage = _cached_stage_times(
        config.strategy,
        model,
        system.gpu,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        config.expert_parallel,
    )
    stage_layers = layers_per_stage(model, config)
    tf = (stage.fwd_flop + stage.fwd_mem_exposed) * stage_layers
    tb = (stage.bwd_flop + stage.bwd_mem_exposed) * stage_layers
    if options.activation_checkpointing:
        tb += tf
    m = config.num_microbatches(global_batch_size)
    bubble = get_schedule(config.schedule).bubble_time(
        config.pipeline_parallel, m, tf, tb, config.virtual_stages
    )
    return m * (tf + tb) + bubble


def config_compute_profile(
    model: TransformerConfig,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> Tuple[float, float]:
    """Per-GPU roofline activity of one iteration: ``(FLOPs, HBM bytes)``.

    Sums the compute-op FLOP and HBM-byte counts of the cached per-layer
    workload (dense ops plus SUMMA matmuls, forward and backward) over the
    configuration's layers per stage and microbatch count.  With activation
    checkpointing the forward pass is recomputed during the backward pass,
    so its counts are charged twice — mirroring
    :func:`config_time_lower_bound`'s time accounting.

    Like the memory footprint, the profile does not depend on the NVS
    assignment, which is what makes the energy objective's lower bound
    exact (see :mod:`repro.core.objectives`).
    """
    workload = _cached_workload(
        config.strategy,
        model,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        config.expert_parallel,
    )
    fwd_flops = sum(op.flops for op in workload.forward_ops)
    fwd_bytes = sum(op.bytes_hbm for op in workload.forward_ops)
    bwd_flops = sum(op.flops for op in workload.backward_ops)
    bwd_bytes = sum(op.bytes_hbm for op in workload.backward_ops)
    for matmul in workload.forward_summa:
        fwd_flops += matmul.compute.flops
        fwd_bytes += matmul.compute.bytes_hbm
    for matmul in workload.backward_summa:
        bwd_flops += matmul.compute.flops
        bwd_bytes += matmul.compute.bytes_hbm
    if options.activation_checkpointing:
        bwd_flops += fwd_flops
        bwd_bytes += fwd_bytes
    stage_layers = layers_per_stage(model, config)
    m = config.num_microbatches(global_batch_size)
    scale = float(m) * float(stage_layers)
    return scale * (fwd_flops + bwd_flops), scale * (fwd_bytes + bwd_bytes)


def estimate_config_memory(
    model: TransformerConfig,
    config: ParallelConfig,
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> MemoryEstimate:
    """Memory-only estimate (cheap pre-filter used by the search)."""
    workload = _cached_workload(
        config.strategy,
        model,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        config.expert_parallel,
    )
    m = config.num_microbatches(global_batch_size)
    return estimate_memory(
        model,
        config,
        workload,
        m,
        zero_optimizer=options.zero_optimizer,
        activation_checkpointing=options.activation_checkpointing,
        zero_stage=options.zero_stage,
    )
