"""Vectorized (NumPy) pricing of whole candidate enumerations.

The scalar evaluation path prices one ``(ParallelConfig, GpuAssignment)``
candidate per :func:`~repro.core.execution.evaluate_config` call — thousands
of Python object constructions per search.  This module prices an *entire*
batch of candidates as NumPy array programs instead: the candidate axes
(tp/pp/dp/ep x schedule x virtual stages x NVS assignment) are packed into
structured arrays, every :class:`~repro.core.plan.CostPhase` term is
evaluated as one vectorized operation across all candidates, and the final
reduction produces the per-candidate step times in a single pass.

**The scalar path stays the bit-exactness oracle.**  Every formula here is
the elementwise float64 transcription of the corresponding scalar code —
same operations, same association order — so with the analytic backend the
batch totals equal :attr:`IterationEstimate.total_time` bit for bit:

* collectives: :func:`repro.core.collectives.collective_time` (latency +
  ring-bandwidth closed forms of §III-A);
* plan assembly: :func:`repro.core.execution._assemble_plan` (per-layer
  roofline times x layers per stage, SUMMA prologue/spill-over, DP
  ReduceScatter/AllGather with overlap budgets);
* reduction: :meth:`repro.core.plan.ExecutionPlan.reduce` /
  :attr:`repro.core.plan.TimeBreakdown.total` (category accumulation in
  plan order).

The equivalence is pinned by ``tests/test_batch_eval.py`` (scenario grid)
and ``tests/test_batch_eval_properties.py`` (hypothesis properties); the
documented tolerance is **exact equality** (``==``) on every category and
on the total.  Only the analytic backend is supported — a simulated bubble
has no closed form to vectorize — and callers are expected to enforce
``backend == DEFAULT_BACKEND`` before routing here.

The module also hosts the :class:`IncumbentBoard`: the best-known feasible
iteration time per search scope, shared across the strategies of one
:func:`~repro.core.search.find_optimal_config` call and (best-effort, via
``multiprocessing.Value`` slots installed by
:class:`~repro.runtime.executor.SweepExecutor`) across worker processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.collectives import _BANDWIDTH_MULTIPLIER, POINT_TO_POINT
from repro.core.config_space import (
    SearchSpace,
    count_configurations,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import (
    ModelingOptions,
    DEFAULT_OPTIONS,
    _cached_stage_times,
    _cached_workload,
    _largest_divisor_at_most,
    register_cache,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import (
    GROUP_DP,
    GROUP_DP_TP2,
    GROUP_EP,
    GROUP_PP,
    GROUP_TP1,
    GROUP_TP2,
    GpuAssignment,
    ParallelConfig,
)
from repro.core.parallelism.data_parallel import (
    GRAD_BYTES_PER_PARAM,
    WEIGHT_BYTES_PER_PARAM,
    resolve_zero_stage,
)
from repro.core.schedules import get_schedule
from repro.core.system import NetworkSpec, SystemSpec
from repro.utils.serialization import canonical_fingerprint, to_jsonable

__all__ = [
    "DEFAULT_EVAL_MODE",
    "EVAL_MODES",
    "BatchBreakdown",
    "CandidateRow",
    "IncumbentBoard",
    "batch_candidate_breakdowns",
    "batch_candidate_times",
    "batch_evaluate_enumeration",
    "batch_serving_prefill_comm",
    "incumbent_board",
    "incumbent_scope_keys",
    "install_shared_slots",
    "materialize_enumeration",
    "non_dominated_mask",
    "validate_eval_mode",
]

#: Evaluation modes understood by the search (``--eval-mode``): the scalar
#: per-candidate oracle, and the vectorized batch pricer of this module.
EVAL_MODES = ("scalar", "batch")
DEFAULT_EVAL_MODE = "scalar"


def validate_eval_mode(eval_mode: str) -> str:
    """Normalise and validate an ``--eval-mode`` value."""
    mode = str(eval_mode).strip().lower()
    if mode not in EVAL_MODES:
        raise ValueError(f"unknown eval_mode {eval_mode!r}; supported: {EVAL_MODES}")
    return mode


# ----------------------------------------------------------------------
# Vectorized §III-A collective closed forms
# ----------------------------------------------------------------------

def _p2p_time_arr(volume_bytes, gpus_per_domain: np.ndarray, network: NetworkSpec):
    """Elementwise :func:`~repro.core.collectives.point_to_point_time`."""
    fast = network.nvs_latency + volume_bytes / network.effective_nvs_bandwidth
    slow = network.ib_latency + volume_bytes / network.effective_ib_bandwidth
    out = np.where(gpus_per_domain > 1, fast, slow)
    return np.where(np.asarray(volume_bytes) <= 0, 0.0, out)


def _collective_time_arr(
    collective: str,
    volume_bytes,
    size: np.ndarray,
    gpus_per_domain: np.ndarray,
    network: NetworkSpec,
):
    """Elementwise :func:`~repro.core.collectives.collective_time`.

    ``size``/``gpus_per_domain`` are aligned int64 arrays (one entry per
    candidate); ``volume_bytes`` may be a scalar or an aligned array.  Every
    operation mirrors the scalar closed form in order and association, so
    each lane is the bit-exact float64 result of the scalar call.
    """
    zero = (size == 1) | (np.asarray(volume_bytes) <= 0)
    if collective == POINT_TO_POINT:
        return np.where(
            zero, 0.0, _p2p_time_arr(volume_bytes, gpus_per_domain, network)
        )
    multiplier = _BANDWIDTH_MULTIPLIER[collective]
    # latency_time: slow hops across domains plus fast hops inside them.
    num_domains = size // gpus_per_domain
    lat = network.ib_latency * (num_domains - 1) + network.nvs_latency * (
        size - num_domains
    )
    # ring_bandwidth_time: (n-1)/n * max(fast-domain, NIC-multiplexed slow).
    fast = volume_bytes / network.effective_nvs_bandwidth
    share = gpus_per_domain / network.nvs_domain_size
    nics = np.maximum(1.0, network.nics_per_node * np.minimum(1.0, share))
    slow = volume_bytes / (nics * network.effective_ib_bandwidth)
    per_ring = np.where(size > gpus_per_domain, np.maximum(fast, slow), fast)
    ring = (size - 1) / size * per_ring
    return np.where(zero, 0.0, lat + multiplier * ring)


@register_cache("batch_ep_divisor")
@lru_cache(maxsize=4096)
def _ep_colocated(size: int, limit: int) -> int:
    """Memoized largest divisor of ``size`` at most ``limit`` (EP carve-out)."""
    return _largest_divisor_at_most(size, max(1, limit))


# ----------------------------------------------------------------------
# Candidate batches
# ----------------------------------------------------------------------

#: One fully-specified search candidate, with its bookkeeping indices:
#: ``rank`` is the parallelization's enumeration rank and ``assign_idx`` the
#: index of the assignment within ``gpu_assignments`` — the same tie-break
#: key order the scalar search uses.
@dataclass(frozen=True)
class CandidateRow:
    rank: int
    config: ParallelConfig
    assign_idx: int
    assignment: GpuAssignment


@dataclass(frozen=True)
class BatchBreakdown:
    """Per-candidate category times (aligned float64 arrays).

    The fields mirror :class:`~repro.core.plan.TimeBreakdown`;
    :attr:`total` is their sum accumulated in the same category order.
    """

    compute: np.ndarray
    memory: np.ndarray
    tp_comm: np.ndarray
    pp_bubble: np.ndarray
    pp_comm: np.ndarray
    dp_comm: np.ndarray
    total: np.ndarray

    def __len__(self) -> int:
        return len(self.total)


class _GroupGeometry:
    """Vectorized group placement for one homogeneous candidate group.

    Replicates :func:`repro.core.execution._group_placement` (including the
    EP carve-out and the ``GroupPlacement`` co-location clamp) as aligned
    ``(size, gpus_per_nvs_domain)`` int64 arrays, lazily per group label.
    """

    def __init__(
        self,
        n1: int,
        n2: int,
        ep: int,
        np_: np.ndarray,
        nd: np.ndarray,
        nvs_tp1: np.ndarray,
        nvs_tp2: np.ndarray,
        nvs_pp: np.ndarray,
        nvs_dp: np.ndarray,
    ):
        self.n1, self.n2, self.ep = n1, n2, ep
        self.np_, self.nd = np_, nd
        self.nvs = {
            GROUP_TP1: nvs_tp1,
            GROUP_TP2: nvs_tp2,
            GROUP_PP: nvs_pp,
            GROUP_DP: nvs_dp,
        }
        self._count = len(nd)
        self._cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}

    def _const(self, value: int) -> np.ndarray:
        return np.full(self._count, value, dtype=np.int64)

    def _base_size(self, group: str) -> np.ndarray:
        if group.endswith("/ep"):
            # Validity is checked during enumeration; here ep always divides.
            return self._base_size(group[: -len("/ep")]) // self.ep
        if group == GROUP_TP1:
            return self._const(self.n1)
        if group == GROUP_TP2:
            return self._const(self.n2)
        if group == GROUP_PP:
            return self.np_
        if group == GROUP_DP:
            return self.nd
        if group == GROUP_DP_TP2:
            return self.nd * self.n2
        if group == GROUP_EP:
            return self._const(self.ep)
        if group == "tp":
            return self._const(self.n1 * self.n2)
        raise KeyError(f"unknown parallel group {group!r}")

    def _base_nvs(self, group: str) -> np.ndarray:
        if group == GROUP_DP_TP2:
            return self.nvs[GROUP_DP] * self.nvs[GROUP_TP2]
        if group == "tp":
            return self.nvs[GROUP_TP1] * self.nvs[GROUP_TP2]
        return self.nvs[group]

    def __call__(self, group: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(size, gpus_per_nvs_domain)`` arrays of the named group."""
        cached = self._cache.get(group)
        if cached is not None:
            return cached
        size = self._base_size(group)
        if group == GROUP_EP or group.endswith("/ep"):
            base = group[: -len("/ep")] if group.endswith("/ep") else GROUP_DP
            base_nvs = self._base_nvs(base)
            nvs = np.fromiter(
                (_ep_colocated(int(s), int(b)) for s, b in zip(size, base_nvs)),
                dtype=np.int64,
                count=self._count,
            )
        else:
            nvs = self._base_nvs(group)
        # GroupPlacement.__post_init__ clamps co-location to the group size.
        nvs = np.minimum(nvs, size)
        self._cache[group] = (size, nvs)
        return size, nvs


def _comm_time_arr(comms, geometry: _GroupGeometry, network: NetworkSpec, count: int):
    """Vectorized :func:`repro.core.execution._comm_time` (op-order sum)."""
    total = np.zeros(count)
    for comm in comms:
        if comm.overlapped:
            continue
        size, nvs = geometry(comm.group)
        total = total + _collective_time_arr(
            comm.collective, comm.volume_bytes, size, nvs, network
        )
    return total


def _summa_comm_time_arr(records, geometry: _GroupGeometry, network: NetworkSpec, count: int):
    """Vectorized :func:`repro.core.execution._summa_comm_time`."""
    total = np.zeros(count)
    for act_bytes, act_group, w_bytes, w_group, panel_compute, nb in records:
        act_size, act_nvs = geometry(act_group)
        w_size, w_nvs = geometry(w_group)
        panel_act = _collective_time_arr(
            "broadcast", act_bytes / nb, act_size, act_nvs, network
        )
        panel_w = _collective_time_arr("broadcast", w_bytes / nb, w_size, w_nvs, network)
        panel_comm = panel_act + panel_w
        exposed_per_panel = np.maximum(0.0, panel_comm - panel_compute)
        total = total + (panel_comm + max(0, nb - 1) * exposed_per_panel)
    return total


def _dp_comm_arrs(
    params_per_gpu: float,
    stage_layers: np.ndarray,
    sync_group: str,
    zero_stage: int,
    geometry: _GroupGeometry,
    network: NetworkSpec,
):
    """Vectorized DP plan volumes + collective times for one parameter set.

    Mirrors :func:`~repro.core.parallelism.data_parallel.data_parallel_plan`
    plus the pricing loop of ``_assemble_plan``: a group of size 1 has zero
    volume (and the collective closed form returns 0 for it anyway).
    """
    size, nvs = geometry(sync_group)
    params = params_per_gpu * stage_layers
    grad_bytes = GRAD_BYTES_PER_PARAM * params
    weight_bytes = WEIGHT_BYTES_PER_PARAM * params
    if zero_stage >= 3:
        weight_bytes = 2.0 * weight_bytes
    singleton = size <= 1
    grad_bytes = np.where(singleton, 0.0, grad_bytes)
    weight_bytes = np.where(singleton, 0.0, weight_bytes)
    rs = _collective_time_arr("reduce_scatter", grad_bytes, size, nvs, network)
    ag = _collective_time_arr("all_gather", weight_bytes, size, nvs, network)
    return rs, ag


#: Axes that are constant within one vectorized group: everything the cached
#: stage times / workload depend on, plus the schedule (whose bubble formula
#: and P2P volume factor differ per schedule).
_GroupKey = Tuple[str, int, int, int, int, int, str]


def _group_key(config: ParallelConfig) -> _GroupKey:
    return (
        config.strategy,
        config.microbatch_size,
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        config.expert_parallel,
        config.schedule,
    )


def _price_group(
    model: TransformerConfig,
    system: SystemSpec,
    candidates: Sequence[Tuple[ParallelConfig, GpuAssignment]],
    global_batch_size: int,
    options: ModelingOptions,
) -> BatchBreakdown:
    """Price one homogeneous group (shared stage times) of candidates."""
    head = candidates[0][0]
    schedule = get_schedule(head.schedule)
    network = system.network
    count = len(candidates)

    stage = _cached_stage_times(
        head.strategy,
        model,
        system.gpu,
        head.microbatch_size,
        head.tensor_parallel_1,
        head.tensor_parallel_2,
        head.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        head.expert_parallel,
    )
    workload = _cached_workload(
        head.strategy,
        model,
        head.microbatch_size,
        head.tensor_parallel_1,
        head.tensor_parallel_2,
        head.summa_panels,
        options.flash_attention,
        options.include_dropout,
        head.expert_parallel,
    )

    # --- per-candidate integer axes ------------------------------------
    np_ = np.fromiter((c.pipeline_parallel for c, _ in candidates), np.int64, count)
    nd = np.fromiter((c.data_parallel for c, _ in candidates), np.int64, count)
    v = np.fromiter((c.virtual_stages for c, _ in candidates), np.int64, count)
    m = np.fromiter(
        (c.num_microbatches(global_batch_size) for c, _ in candidates), np.int64, count
    )
    stage_layers = model.depth // np_
    geometry = _GroupGeometry(
        head.tensor_parallel_1,
        head.tensor_parallel_2,
        head.expert_parallel,
        np_,
        nd,
        np.fromiter((a.nvs_tp1 for _, a in candidates), np.int64, count),
        np.fromiter((a.nvs_tp2 for _, a in candidates), np.int64, count),
        np.fromiter((a.nvs_pp for _, a in candidates), np.int64, count),
        np.fromiter((a.nvs_dp for _, a in candidates), np.int64, count),
    )

    # --- per-microbatch, per-stage times (mirrors _assemble_plan) -------
    fwd_tp_comm = _comm_time_arr(
        stage.fwd_comms, geometry, network, count
    ) + _summa_comm_time_arr(stage.fwd_summa, geometry, network, count)
    bwd_tp_comm = _comm_time_arr(
        stage.bwd_comms, geometry, network, count
    ) + _summa_comm_time_arr(stage.bwd_summa, geometry, network, count)

    fwd_compute = stage.fwd_flop * stage_layers
    fwd_memory = stage.fwd_mem_exposed * stage_layers
    bwd_compute = stage.bwd_flop * stage_layers
    bwd_memory = stage.bwd_mem_exposed * stage_layers
    fwd_tp_comm = fwd_tp_comm * stage_layers
    bwd_tp_comm = bwd_tp_comm * stage_layers

    if options.activation_checkpointing:
        bwd_compute = bwd_compute + fwd_compute
        bwd_memory = bwd_memory + fwd_memory
        bwd_tp_comm = bwd_tp_comm + fwd_tp_comm

    tf = fwd_compute + fwd_memory + fwd_tp_comm
    tb = bwd_compute + bwd_memory + bwd_tp_comm

    compute = m * (fwd_compute + bwd_compute)
    memory = m * (fwd_memory + bwd_memory)
    tp_comm = m * (fwd_tp_comm + bwd_tp_comm)
    pp_bubble = schedule.bubble_time_batch(np_, m, tf, tb, v)

    # --- pipeline P2P ---------------------------------------------------
    if options.overlap_pp:
        pp_comm = np.zeros(count)
    else:
        # pipeline_p2p_volume_bytes, hoisted: constant within the group.
        elements = (
            head.microbatch_size * model.seq_len * model.embed_dim / head.tensor_parallel
        )
        p2p_volume = 2.0 * (elements * model.dtype_bytes)
        _, pp_nvs = geometry(GROUP_PP)
        factors = {vs: schedule.p2p_volume_factor(vs) for vs in np.unique(v).tolist()}
        factor = np.fromiter((factors[vv] for vv in v.tolist()), np.float64, count)
        pp_comm = np.where(
            np_ > 1, m * (factor * _p2p_time_arr(p2p_volume, pp_nvs, network)), 0.0
        )

    # --- data parallel ---------------------------------------------------
    zero_stage = resolve_zero_stage(options.zero_stage, options.zero_optimizer)
    rs_total, ag_total = _dp_comm_arrs(
        workload.params_per_gpu, stage_layers, workload.grad_sync_group,
        zero_stage, geometry, network,
    )
    if workload.expert_params_per_gpu > 0:
        rs_exp, ag_exp = _dp_comm_arrs(
            workload.expert_params_per_gpu, stage_layers,
            workload.expert_grad_sync_group, zero_stage, geometry, network,
        )
        rs_total = rs_total + rs_exp
        ag_total = ag_total + ag_exp
    if options.overlap_dp:
        dp_comm = np.maximum(0.0, rs_total - tb) + np.maximum(0.0, ag_total - tf)
    else:
        dp_comm = rs_total + ag_total

    total = compute + memory + tp_comm + pp_bubble + pp_comm + dp_comm
    return BatchBreakdown(
        compute=compute,
        memory=memory,
        tp_comm=tp_comm,
        pp_bubble=pp_bubble,
        pp_comm=pp_comm,
        dp_comm=dp_comm,
        total=total,
    )


def batch_candidate_breakdowns(
    model: TransformerConfig,
    system: SystemSpec,
    candidates: Sequence[Tuple[ParallelConfig, GpuAssignment]],
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> BatchBreakdown:
    """Per-candidate category breakdowns of a heterogeneous candidate batch.

    Candidates are grouped by their stage-time key (strategy, microbatch,
    TP factorization, panels, EP, schedule); each group is priced as one
    array program and the results are scattered back into input order.
    """
    count = len(candidates)
    fields = {
        name: np.zeros(count)
        for name in ("compute", "memory", "tp_comm", "pp_bubble", "pp_comm", "dp_comm", "total")
    }
    groups: Dict[_GroupKey, List[int]] = {}
    for idx, (config, _) in enumerate(candidates):
        groups.setdefault(_group_key(config), []).append(idx)
    for indices in groups.values():
        priced = _price_group(
            model,
            system,
            [candidates[i] for i in indices],
            global_batch_size,
            options,
        )
        for name, out in fields.items():
            out[indices] = getattr(priced, name)
    return BatchBreakdown(**fields)


def batch_candidate_times(
    model: TransformerConfig,
    system: SystemSpec,
    candidates: Sequence[Tuple[ParallelConfig, GpuAssignment]],
    *,
    global_batch_size: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> np.ndarray:
    """Per-candidate total iteration times (float64, input order)."""
    return batch_candidate_breakdowns(
        model, system, candidates, global_batch_size=global_batch_size, options=options
    ).total


def batch_serving_prefill_comm(
    model: TransformerConfig,
    system: SystemSpec,
    config: ParallelConfig,
    assignments: Sequence[GpuAssignment],
    *,
    prompt_tokens: int,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized prefill communication of one serving parallelization.

    Returns aligned float64 arrays over ``assignments``: the per-layer
    prefill TP-collective time and the stage-boundary P2P transfer time —
    the only two serving quantities that vary with the NVS assignment
    (everything else in a serving estimate is assignment-independent or, in
    decode's case, depends on the Little's-law batch and stays scalar).
    Each lane is the bit-exact scalar value
    (:func:`repro.core.inference._evaluate_serving` computes the same
    closed forms through the analytic pricer), so injecting these into the
    scalar evaluator leaves every serving estimate byte-identical.
    """
    count = len(assignments)
    prefill_model = model.scaled(seq_len=prompt_tokens)
    stage = _cached_stage_times(
        "tp1d",
        prefill_model,
        system.gpu,
        1,  # one request per prefill microbatch
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.summa_panels,
        options.flash_attention,
        options.include_dropout,
        options.include_flop_latency,
        config.expert_parallel,
    )
    geometry = _GroupGeometry(
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.expert_parallel,
        np.full(count, config.pipeline_parallel, dtype=np.int64),
        np.full(count, config.data_parallel, dtype=np.int64),
        np.fromiter((a.nvs_tp1 for a in assignments), np.int64, count),
        np.fromiter((a.nvs_tp2 for a in assignments), np.int64, count),
        np.fromiter((a.nvs_pp for a in assignments), np.int64, count),
        np.fromiter((a.nvs_dp for a in assignments), np.int64, count),
    )
    comm = _comm_time_arr(stage.fwd_comms, geometry, system.network, count)
    _, pp_nvs = geometry(GROUP_PP)
    volume = model.dtype_bytes * prompt_tokens * model.embed_dim
    p2p = _p2p_time_arr(volume, pp_nvs, system.network)
    return comm, np.broadcast_to(p2p, (count,)).astype(np.float64, copy=False)


# ----------------------------------------------------------------------
# Whole-enumeration entry points
# ----------------------------------------------------------------------

def materialize_enumeration(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    *,
    check_counts: bool = True,
) -> List[CandidateRow]:
    """Materialize every (parallelization, assignment) candidate as rows.

    With ``check_counts`` (the default, active under ``__debug__``), the
    materialized row count is asserted equal to
    :func:`~repro.core.config_space.count_configurations`, so the
    enumeration and the batch pricer can never silently diverge.
    """
    rows: List[CandidateRow] = []
    n_configs = 0
    for rank, config in enumerate(
        parallel_configs(model, n_gpus, global_batch_size, strategy, space)
    ):
        n_configs += 1
        for assign_idx, assignment in enumerate(
            gpu_assignments(config, system.nvs_domain_size, space)
        ):
            rows.append(CandidateRow(rank, config, assign_idx, assignment))
    if check_counts and __debug__:
        counted_configs, counted_rows = count_configurations(
            model, n_gpus, global_batch_size, strategy, system.nvs_domain_size, space
        )
        assert (n_configs, len(rows)) == (counted_configs, counted_rows), (
            f"enumeration drifted from count_configurations: materialized "
            f"({n_configs}, {len(rows)}) != counted ({counted_configs}, {counted_rows})"
        )
    return rows


def batch_evaluate_enumeration(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    *,
    space: SearchSpace,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> Tuple[List[CandidateRow], BatchBreakdown]:
    """Price one strategy's full enumeration; returns (rows, breakdowns).

    Analysis/testing helper: the search itself prices memory-filtered
    chunks (see :func:`repro.core.search.find_optimal_config`), but the
    full-enumeration form is what the equivalence suites pin against the
    scalar oracle.
    """
    rows = materialize_enumeration(
        model, system, n_gpus, global_batch_size, strategy, space
    )
    priced = batch_candidate_breakdowns(
        model,
        system,
        [(row.config, row.assignment) for row in rows],
        global_batch_size=global_batch_size,
        options=options,
    )
    return rows, priced


# ----------------------------------------------------------------------
# Vectorized Pareto dominance
# ----------------------------------------------------------------------

def non_dominated_mask(vectors: np.ndarray, *, chunk: int = 512) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``vectors``.

    ``vectors`` is an ``(n, k)`` float64 matrix of canonical (minimised)
    metric vectors.  Row ``i`` is *strictly dominated* when some row ``j``
    is ``<=`` it in every component and ``<`` in at least one; the mask
    keeps exactly the rows no other row strictly dominates.  Duplicate
    vectors never dominate each other, so every copy of a non-dominated
    vector survives — the tie semantics the Pareto search's deterministic
    ``(vector, rank, assignment)`` ordering relies on.

    The all-pairs comparison is evaluated as broadcast array programs over
    ``chunk``-row blocks (O(n^2 k) work, O(chunk * n * k) memory), which is
    the "vectorized dominance pass" the batch search mode uses to thin each
    priced chunk before the frontier archive sees it.
    """
    pts = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
    if pts.ndim != 2:
        raise ValueError(f"expected an (n, k) matrix, got shape {pts.shape}")
    n = len(pts)
    keep = np.ones(n, dtype=bool)
    for start in range(0, n, chunk):
        block = pts[start : start + chunk]  # (b, k)
        # dominated[b, n]: does row i of the block strictly dominate row j?
        le = (block[:, None, :] <= pts[None, :, :]).all(axis=2)
        lt = (block[:, None, :] < pts[None, :, :]).any(axis=2)
        keep &= ~(le & lt).any(axis=0)
    return keep


# ----------------------------------------------------------------------
# Shared-incumbent board
# ----------------------------------------------------------------------

class IncumbentBoard:
    """Best-known feasible iteration times keyed by search scope.

    A *scope key* identifies one exact search problem — model, system, GPU
    count, batch, space, options and strategy (see
    :func:`incumbent_scope_keys`) — so a published time is always a true
    upper bound on that scope's optimum and pruning against it is sound.

    Two storage tiers compose:

    * a plain per-instance dict — deterministic sharing across the
      strategies of one :func:`~repro.core.search.find_optimal_config`
      call (and nothing else, so repeated searches stay reproducible);
    * optional ``multiprocessing.Value('d')`` slots — best-effort sharing
      across :class:`~repro.runtime.executor.SweepExecutor` workers.  The
      slots only ever tighten the pruning threshold, so results are
      unchanged; the *work counters* of a parallel sweep may legitimately
      differ from a serial one when a slot fires (tracked separately in
      ``SearchStatistics.shared_incumbent_prunes``).
    """

    def __init__(self, shared: Optional[Mapping[str, object]] = None):
        self._local: Dict[str, float] = {}
        self._shared = dict(shared) if shared else {}

    def get(self, keys: Iterable[str]) -> float:
        """Tightest published time over ``keys`` (``inf`` when none)."""
        best = math.inf
        for key in keys:
            best = min(best, self._local.get(key, math.inf))
            slot = self._shared.get(key)
            if slot is not None:
                with slot.get_lock():
                    best = min(best, slot.value)
        return best

    def get_local(self, keys: Iterable[str]) -> float:
        """Like :meth:`get` but ignoring the cross-process slots."""
        best = math.inf
        for key in keys:
            best = min(best, self._local.get(key, math.inf))
        return best

    def publish(self, key: str, value: float) -> None:
        """Record ``value`` under ``key`` if it improves the incumbent."""
        if value < self._local.get(key, math.inf):
            self._local[key] = value
        slot = self._shared.get(key)
        if slot is not None:
            with slot.get_lock():
                if value < slot.value:
                    slot.value = value


#: Cross-process slots installed by the SweepExecutor pool initializer.
_SHARED_SLOTS: Dict[str, object] = {}


def install_shared_slots(slots: Optional[Mapping[str, object]]) -> None:
    """Install (or clear) the process-wide cross-worker incumbent slots."""
    global _SHARED_SLOTS
    _SHARED_SLOTS = dict(slots) if slots else {}


def incumbent_board() -> IncumbentBoard:
    """Fresh board for one search call, bound to any installed slots."""
    return IncumbentBoard(_SHARED_SLOTS)


def incumbent_scope_keys(
    model: TransformerConfig,
    system: SystemSpec,
    n_gpus: int,
    global_batch_size: int,
    space: SearchSpace,
    options: ModelingOptions,
    strategies: Sequence[str],
) -> List[str]:
    """Scope keys (one per strategy) of a batch-mode training search.

    The key fingerprints every input that defines the feasible set and the
    objective, so two searches share a key only when their per-strategy
    optima are interchangeable.
    """
    base = canonical_fingerprint(
        {
            "model": to_jsonable(model),
            "system": to_jsonable(system),
            "n_gpus": n_gpus,
            "global_batch_size": global_batch_size,
            "space": to_jsonable(space),
            "options": to_jsonable(options),
        }
    )
    return [f"{base}|{strategy}" for strategy in strategies]
