"""Configuration-space enumeration (stage S3, candidate generation).

Given a GPU count ``n``, a global batch size ``b`` and a strategy, the
search space consists of

1. *Parallelization and microbatch configurations* ``(b_m, n1, n2, np, nd)``
   obtained by decomposing ``n`` into all possible factor tuples, discarding
   factors that do not evenly divide the tensor dimension they partition
   (heads/sequence/hidden for the TP factors, depth for ``np``, the global
   batch for ``nd``) and microbatch sizes that do not divide the per-replica
   batch;
2. *GPU assignment configurations* ``(nNVS1, nNVS2, nNVSp, nNVSd)`` obtained
   by decomposing the NVSwitch-domain size into per-group factors, each of
   which must divide its group size;
3. *SUMMA panel counts* ``nb`` (only for the SUMMA strategy);
4. *Pipeline schedules* and their virtual-stage degrees (``SearchSpace.schedules``
   / ``SearchSpace.virtual_stages``; the default enumerates only the paper's
   1F1B so the searched space matches the paper exactly).

The enumeration is deliberately exhaustive — the paper's solver does a
brute-force search — but restricted to power-of-two factors by default
(every configuration the paper reports is a power of two), which keeps the
search tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import (
    GpuAssignment,
    ParallelConfig,
    get_strategy,
)
from repro.core.schedules import DEFAULT_SCHEDULE, get_schedule
from repro.utils.factorization import divisors, factorizations, pow2_divisors


@dataclass(frozen=True)
class SearchSpace:
    """Knobs controlling the size of the configuration search."""

    #: Candidate microbatch sizes; ``None`` derives them from the local batch.
    microbatch_sizes: Tuple[int, ...] | None = None
    #: Upper bound on the microbatch size when deriving candidates.
    max_microbatch_size: int = 8
    #: Restrict all parallel degrees to powers of two (paper configurations).
    power_of_two_only: bool = True
    #: Candidate SUMMA panel counts (filtered by divisibility per matmul).
    summa_panels: Tuple[int, ...] = (1, 2, 4)
    #: Upper bound on the total tensor-parallel degree (None = unlimited).
    max_tensor_parallel: int | None = None
    #: Candidate expert-parallel degrees for MoE models; ``None`` derives
    #: them automatically (every factor of the data-parallel degree that also
    #: divides the expert count).  Ignored for dense models (always 1).
    expert_parallel: Tuple[int, ...] | None = None
    #: Search over GPU-to-NVS-domain assignments (the paper's contribution
    #: over Calculon); when False, a single default assignment is used that
    #: fills the domain in (tp1, tp2, pp, dp) priority order.
    search_gpu_assignment: bool = True
    #: Branch-and-bound pruning: order parallelizations by their cheap
    #: compute-only lower bound (:func:`repro.core.execution.config_time_lower_bound`)
    #: and skip the NVS-assignment loop of any parallelization whose bound
    #: already exceeds the incumbent optimum.  Never changes the selected
    #: optimum (or the top-k set); only reduces the candidates evaluated.
    prune_with_lower_bound: bool = True
    #: Pipeline schedules to enumerate (registry names, see
    #: :mod:`repro.core.schedules`).  The default searches only the paper's
    #: non-interleaved 1F1B, which keeps the candidate set (and therefore
    #: every reproduced figure) identical to the paper's.
    schedules: Tuple[str, ...] = (DEFAULT_SCHEDULE,)
    #: Candidate virtual-stage degrees for interleaving schedules; degrees a
    #: schedule rejects for a given configuration (non-dividing, or the
    #: schedule does not interleave at all) are filtered per candidate.
    virtual_stages: Tuple[int, ...] = (1,)


DEFAULT_SEARCH_SPACE = SearchSpace()


def _candidate_factors(n: int, power_of_two_only: bool) -> Sequence[int]:
    return pow2_divisors(n) if power_of_two_only else divisors(n)


def microbatch_candidates(
    local_batch: int, space: SearchSpace = DEFAULT_SEARCH_SPACE
) -> Tuple[int, ...]:
    """Microbatch sizes that divide the per-replica batch."""
    if local_batch < 1:
        return ()
    if space.microbatch_sizes is not None:
        return tuple(
            bm for bm in space.microbatch_sizes if bm >= 1 and local_batch % bm == 0
        )
    candidates = _candidate_factors(local_batch, space.power_of_two_only)
    return tuple(bm for bm in candidates if bm <= space.max_microbatch_size)


def expert_parallel_candidates(
    model: TransformerConfig,
    data_parallel: int,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> Tuple[int, ...]:
    """Admissible expert-parallel degrees for ``model`` at one DP degree.

    The EP group is carved out of the DP group, so every candidate must
    divide ``data_parallel``; each GPU holds ``num_experts / ep`` whole
    experts, so it must divide the expert count too.  Dense models always
    return ``(1,)``.

    With an explicit ``space.expert_parallel`` candidate list the result may
    be empty: a pinned degree that no candidate satisfies at this DP degree
    must eliminate the parallelization, not silently fall back to ``ep=1``.
    The automatic derivation always contains 1, so it is never empty.
    """
    if model.num_experts == 1:
        return (1,)
    candidates = (
        space.expert_parallel
        if space.expert_parallel is not None
        else _candidate_factors(data_parallel, space.power_of_two_only)
    )
    return tuple(
        ep
        for ep in candidates
        if ep >= 1 and data_parallel % ep == 0 and model.num_experts % ep == 0
    )


def parallel_configs(
    model: TransformerConfig,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> Iterator[ParallelConfig]:
    """Enumerate admissible ``(bm, n1, n2, np, nd)`` configurations.

    The strategy's own divisibility rules (heads vs ``n1``, sequence vs
    ``n2``, ...) are applied so that every yielded configuration can be
    evaluated without error.
    """
    if n_gpus < 1:
        raise ValueError("n_gpus must be >= 1")
    if global_batch_size < 1:
        raise ValueError("global_batch_size must be >= 1")
    strat = get_strategy(strategy)
    is_1d = strategy == "tp1d"

    for n1, n2, np_, nd in factorizations(n_gpus, 4):
        if is_1d and n2 != 1:
            continue
        if space.power_of_two_only and not all(
            x & (x - 1) == 0 for x in (n1, n2, np_, nd)
        ):
            continue
        if space.max_tensor_parallel is not None and n1 * n2 > space.max_tensor_parallel:
            continue
        if model.depth % np_ != 0:
            continue
        if global_batch_size % nd != 0:
            continue
        local_batch = global_batch_size // nd
        bms = microbatch_candidates(local_batch, space)
        if not bms:
            continue

        panel_options: Sequence[int]
        if strategy == "summa":
            panel_options = tuple(
                nb for nb in space.summa_panels if model.embed_dim % nb == 0
            ) or (1,)
        else:
            panel_options = (1,)

        ep_options = expert_parallel_candidates(model, nd, space)
        for bm in bms:
            for nb in panel_options:
                for ep in ep_options:
                    for sched_name in space.schedules:
                        schedule = get_schedule(sched_name)
                        for v in space.virtual_stages:
                            config = ParallelConfig(
                                strategy=strategy,
                                tensor_parallel_1=n1,
                                tensor_parallel_2=n2,
                                pipeline_parallel=np_,
                                data_parallel=nd,
                                microbatch_size=bm,
                                summa_panels=nb,
                                expert_parallel=ep,
                                schedule=sched_name,
                                virtual_stages=v,
                            )
                            if schedule.validate(model, config) is not None:
                                continue
                            if strat.validate_config(model, config) is None:
                                yield config


def config_in_space(
    model: TransformerConfig,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    space: SearchSpace,
    config: ParallelConfig,
) -> bool:
    """Membership test: would :func:`parallel_configs` yield ``config``?

    Applies exactly the same admissibility filters as the enumeration —
    factor structure, power-of-two restriction, divisibility of depth /
    batch / microbatch, SUMMA panels, expert-parallel degrees, schedule and
    strategy validation — without iterating the whole space.  The warm-start
    layer uses it to decide whether a hint carried over from a *different*
    search point is a legal candidate of the current one (only then is its
    evaluated time a sound branch-and-bound seed).

    A drift test pins this function against enumeration membership, so the
    two cannot silently diverge.
    """
    if n_gpus < 1 or global_batch_size < 1:
        return False
    if config.strategy != strategy:
        return False
    try:
        strat = get_strategy(strategy)
    except (KeyError, ValueError):
        return False
    if config.total_gpus != n_gpus:
        return False
    n1, n2 = config.tensor_parallel_1, config.tensor_parallel_2
    np_, nd = config.pipeline_parallel, config.data_parallel
    if strategy == "tp1d" and n2 != 1:
        return False
    if space.power_of_two_only and not all(
        x & (x - 1) == 0 for x in (n1, n2, np_, nd)
    ):
        return False
    if space.max_tensor_parallel is not None and n1 * n2 > space.max_tensor_parallel:
        return False
    if model.depth % np_ != 0:
        return False
    if global_batch_size % nd != 0:
        return False
    local_batch = global_batch_size // nd
    if config.microbatch_size not in microbatch_candidates(local_batch, space):
        return False

    if strategy == "summa":
        panel_options: Sequence[int] = tuple(
            nb for nb in space.summa_panels if model.embed_dim % nb == 0
        ) or (1,)
    else:
        panel_options = (1,)
    if config.summa_panels not in panel_options:
        return False

    if config.expert_parallel not in expert_parallel_candidates(model, nd, space):
        return False
    if config.schedule not in space.schedules:
        return False
    if config.virtual_stages not in space.virtual_stages:
        return False
    try:
        schedule = get_schedule(config.schedule)
    except (KeyError, ValueError):
        return False
    if schedule.validate(model, config) is not None:
        return False
    return strat.validate_config(model, config) is None


def default_assignment(config: ParallelConfig, nvs_domain_size: int) -> GpuAssignment:
    """Fill the NVS domain greedily in (tp1, tp2, pp, dp) priority order.

    This mimics the common practice (and Megatron's default rank ordering)
    of packing the tensor-parallel group onto NVLink first; it is the
    baseline against which the assignment *search* shows its benefit.
    """
    remaining = max(1, nvs_domain_size)
    values = []
    for size in (
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.pipeline_parallel,
        config.data_parallel,
    ):
        use = 1
        for d in divisors(size):
            if d <= remaining:
                use = d
            else:
                break
        values.append(use)
        remaining //= use
        remaining = max(1, remaining)
    return GpuAssignment(*values)


def gpu_assignments(
    config: ParallelConfig,
    nvs_domain_size: int,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> List[GpuAssignment]:
    """Enumerate NVSwitch-domain assignments for ``config``.

    The paper decomposes the (effective) NVS domain size into
    ``nNVS1 * nNVS2 * nNVSp * nNVSd`` with each factor dividing its group.
    When the GPU count (or the group structure) cannot fill the whole domain
    we fall back to the largest product that can be formed.
    """
    if not space.search_gpu_assignment:
        return [default_assignment(config, nvs_domain_size)]

    group_sizes = (
        config.tensor_parallel_1,
        config.tensor_parallel_2,
        config.pipeline_parallel,
        config.data_parallel,
    )
    effective = min(nvs_domain_size, config.total_gpus)
    targets = sorted((d for d in divisors(effective)), reverse=True)
    for target in targets:
        found: List[GpuAssignment] = []
        for factors in factorizations(target, 4):
            ok = all(
                group_sizes[i] % factors[i] == 0 and factors[i] <= group_sizes[i]
                for i in range(4)
            )
            if ok:
                found.append(GpuAssignment(*factors))
        if found:
            return found
    return [GpuAssignment()]


def count_configurations(
    model: TransformerConfig,
    n_gpus: int,
    global_batch_size: int,
    strategy: str,
    nvs_domain_size: int,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> Tuple[int, int]:
    """Return (#parallel configs, #total candidates incl. assignments).

    Useful for reporting how large the searched design space is.
    """
    n_configs = 0
    n_total = 0
    for config in parallel_configs(model, n_gpus, global_batch_size, strategy, space):
        n_configs += 1
        n_total += len(gpu_assignments(config, nvs_domain_size, space))
    return n_configs, n_total
