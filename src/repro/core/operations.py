"""Operation-level FLOP / HBM-byte counting (stage S1 of the performance model).

Every transformer operation is reduced to one of a handful of primitives:

* dense matrix multiply ``C = A B`` (possibly batched, possibly with the
  right operand shared across the batch, as is the case for weights);
* element-wise / reduction vector operations (LayerNorm, Softmax, GeLU,
  Dropout, bias/residual add);
* the fused Logit-Attend kernel (FlashAttention), which recomputes the
  attention matrix in the backward pass and only reads/writes the fused
  kernel's inputs and outputs from HBM.

For each primitive we count the FLOPs ``lambda_f`` and the bytes moved
to/from HBM ``lambda_m`` for both the forward and the backward pass.  The
roofline model (:mod:`repro.core.roofline`) turns these counts into time.

Counting conventions (paper §III-A, S1):

* matmul ``(m, k) x (k, n)``: ``lambda_f = 2 m k n`` (the paper's
  ``(2k-1) m n`` rounded to the standard ``2 m k n``), and
  ``lambda_m = dtype * (m k + k n + m n)``;
* the backward pass of a matmul performs two matmuls
  (``dA = dC B^T`` and ``dB = A^T dC``), i.e. twice the forward FLOPs;
* vector ops move roughly "read input + write output" bytes and their FLOP
  counts use small per-element constants — they are bandwidth-bound on every
  GPU studied, so the exact constants do not change any conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Compute pipes available on the GPU.  Matrix multiplies use the FP16
#: tensor cores; everything else uses the vector pipe.
TENSOR_PIPE = "tensor"
VECTOR_PIPE = "vector"

#: FLOPs per element for the supported vector operations (first-order
#: estimates; all of these operations are memory-bound in practice).
_VECTOR_FLOPS_PER_ELEMENT = {
    "layernorm": 8.0,
    "softmax": 5.0,
    "gelu": 8.0,
    "dropout": 2.0,
    "bias_add": 1.0,
    "residual_add": 1.0,
    "elementwise": 1.0,
}


@dataclass(frozen=True)
class ComputeOp:
    """A single device-local computation with its roofline-relevant counts."""

    name: str
    #: Floating point operations performed.
    flops: float
    #: Bytes moved between HBM and the compute units.
    bytes_hbm: float
    #: Which hardware pipe executes the FLOPs (tensor cores vs vector units).
    pipe: str = TENSOR_PIPE

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes_hbm < 0:
            raise ValueError(f"negative counts in op {self.name}")
        if self.pipe not in (TENSOR_PIPE, VECTOR_PIPE):
            raise ValueError(f"unknown pipe {self.pipe!r}")

    def scaled(self, factor: float, *, name: str | None = None) -> "ComputeOp":
        """Return a copy with FLOPs and bytes scaled by ``factor``."""
        return ComputeOp(
            name=name or self.name,
            flops=self.flops * factor,
            bytes_hbm=self.bytes_hbm * factor,
            pipe=self.pipe,
        )


@dataclass(frozen=True)
class CommOp:
    """A single collective communication performed by one parallel group.

    ``volume_bytes`` follows the paper's convention: the total number of
    bytes transferred per GPU for this collective (e.g. for an AllGather of
    a tensor with ``v`` elements, the volume is ``dtype * v``).
    """

    name: str
    #: One of ``all_gather``, ``reduce_scatter``, ``all_reduce``,
    #: ``broadcast``, ``reduce``, ``p2p``.
    collective: str
    #: Total bytes transferred per GPU.
    volume_bytes: float
    #: Which parallel group performs the collective: ``tp1``, ``tp2``,
    #: ``tp`` (the full tensor-parallel group), ``dp``, ``dp+tp2`` or ``pp``.
    group: str
    #: Whether the model assumes this communication is overlapped with
    #: compute (and therefore excluded from the exposed communication time).
    overlapped: bool = False

    def __post_init__(self) -> None:
        if self.volume_bytes < 0:
            raise ValueError(f"negative volume in comm {self.name}")


# ----------------------------------------------------------------------
# Matrix-multiply primitives
# ----------------------------------------------------------------------

def matmul_flops(m: float, k: float, n: float, *, batch: float = 1.0) -> float:
    """FLOPs of a (possibly batched) dense matmul ``(m,k) x (k,n)``."""
    return 2.0 * batch * m * k * n


def matmul_bytes(
    m: float,
    k: float,
    n: float,
    *,
    batch: float = 1.0,
    dtype_bytes: int = 2,
    shared_operand_b: bool = False,
) -> float:
    """HBM bytes moved by a dense matmul.

    ``shared_operand_b=True`` models activation-weight products where the
    weight matrix ``B`` is read once and reused across the batch.
    """
    a_bytes = batch * m * k
    b_bytes = (1.0 if shared_operand_b else batch) * k * n
    c_bytes = batch * m * n
    return dtype_bytes * (a_bytes + b_bytes + c_bytes)


def matmul_op(
    name: str,
    m: float,
    k: float,
    n: float,
    *,
    batch: float = 1.0,
    dtype_bytes: int = 2,
    shared_operand_b: bool = False,
) -> ComputeOp:
    """Build a forward matmul :class:`ComputeOp`."""
    return ComputeOp(
        name=name,
        flops=matmul_flops(m, k, n, batch=batch),
        bytes_hbm=matmul_bytes(
            m, k, n, batch=batch, dtype_bytes=dtype_bytes, shared_operand_b=shared_operand_b
        ),
        pipe=TENSOR_PIPE,
    )


def matmul_backward_ops(
    name: str,
    m: float,
    k: float,
    n: float,
    *,
    batch: float = 1.0,
    dtype_bytes: int = 2,
    shared_operand_b: bool = False,
) -> List[ComputeOp]:
    """Backward-pass ops of a matmul: ``dA = dC B^T`` and ``dB = A^T dC``.

    When the right operand is a weight shared across the batch, ``dB`` is a
    reduction over the batch dimension of ``A^T dC``; the FLOP count is the
    same and the output bytes are those of the (unbatched) weight gradient.
    """
    grad_a = ComputeOp(
        name=f"{name}.dgrad",
        flops=matmul_flops(m, n, k, batch=batch),
        bytes_hbm=matmul_bytes(
            m, n, k, batch=batch, dtype_bytes=dtype_bytes, shared_operand_b=shared_operand_b
        ),
        pipe=TENSOR_PIPE,
    )
    grad_b = ComputeOp(
        name=f"{name}.wgrad",
        flops=matmul_flops(k, m, n, batch=batch),
        bytes_hbm=matmul_bytes(
            k, m, n, batch=batch, dtype_bytes=dtype_bytes, shared_operand_b=False
        )
        if not shared_operand_b
        else dtype_bytes * (batch * (m * k + m * n) + k * n),
        pipe=TENSOR_PIPE,
    )
    return [grad_a, grad_b]


# ----------------------------------------------------------------------
# Vector-operation primitives
# ----------------------------------------------------------------------

def vector_op(
    kind: str,
    numel: float,
    *,
    name: str | None = None,
    dtype_bytes: int = 2,
    read_write_factor: float = 2.0,
) -> ComputeOp:
    """Build a vector-pipe :class:`ComputeOp` over ``numel`` elements.

    ``read_write_factor`` controls how many tensor-sized HBM transfers the
    operation performs (2 = read input + write output, 3 = additionally read
    a residual/mask, ...).
    """
    if kind not in _VECTOR_FLOPS_PER_ELEMENT:
        raise KeyError(f"unknown vector op kind {kind!r}")
    flops_per_elem = _VECTOR_FLOPS_PER_ELEMENT[kind]
    return ComputeOp(
        name=name or kind,
        flops=flops_per_elem * numel,
        bytes_hbm=read_write_factor * numel * dtype_bytes,
        pipe=VECTOR_PIPE,
    )


def layernorm_op(numel: float, *, name: str = "layernorm", dtype_bytes: int = 2) -> ComputeOp:
    """LayerNorm over a tensor with ``numel`` elements."""
    return vector_op("layernorm", numel, name=name, dtype_bytes=dtype_bytes)


def softmax_op(numel: float, *, name: str = "softmax", dtype_bytes: int = 2) -> ComputeOp:
    """Softmax over a tensor with ``numel`` elements."""
    return vector_op("softmax", numel, name=name, dtype_bytes=dtype_bytes)


def gelu_op(numel: float, *, name: str = "gelu", dtype_bytes: int = 2) -> ComputeOp:
    """GeLU activation over ``numel`` elements."""
    return vector_op("gelu", numel, name=name, dtype_bytes=dtype_bytes)


def dropout_op(numel: float, *, name: str = "dropout", dtype_bytes: int = 2) -> ComputeOp:
    """Dropout over ``numel`` elements (mask read/write included)."""
    return vector_op("dropout", numel, name=name, dtype_bytes=dtype_bytes, read_write_factor=3.0)


def vector_backward_op(op: ComputeOp, *, factor: float = 2.0) -> ComputeOp:
    """Backward op of a vector operation (roughly ``factor`` x the forward cost)."""
    return op.scaled(factor, name=f"{op.name}.bwd")


# ----------------------------------------------------------------------
# Fused Logit-Attend (FlashAttention)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AttentionShape:
    """Shape of a (partitioned) Logit-Attend operation on one GPU.

    ``q_rows`` is the number of query positions local to the GPU (``l/n2``
    under 2D TP), ``kv_rows`` the number of key/value positions visible to
    the kernel (the full ``l`` — the sequence is gathered for K and V),
    ``heads`` the number of local heads and ``head_dim`` the per-head width.
    ``kv_heads`` is the number of local key/value heads for grouped-query
    attention (0, the default, means ``heads``, i.e. standard MHA).
    """

    batch: float
    heads: float
    q_rows: float
    kv_rows: float
    head_dim: float
    kv_heads: float = 0.0

    @property
    def kv_ratio(self) -> float:
        """K/V head fraction ``kv_heads / heads`` (exactly 1.0 for MHA)."""
        if self.kv_heads <= 0:
            return 1.0
        return self.kv_heads / self.heads


def flash_attention_forward(
    shape: AttentionShape, *, dtype_bytes: int = 2, fused: bool = True
) -> List[ComputeOp]:
    """Forward ops of the Logit-Attend block.

    With ``fused=True`` (FlashAttention) only the kernel inputs and outputs
    touch HBM; the ``l x l`` logits stay in SRAM, which raises the arithmetic
    intensity and usually makes the operation compute-bound.  With
    ``fused=False`` the intermediate attention matrix is written to and read
    back from HBM (and must also be *stored* for the backward pass — that is
    accounted for by the memory model, not here).
    """
    b, h, lq, lk, dh = (
        shape.batch,
        shape.heads,
        shape.q_rows,
        shape.kv_rows,
        shape.head_dim,
    )
    # Grouped-query attention: K/V tensors carry only kv_heads heads.  The
    # score/attend FLOPs are unchanged (each query head attends over the full
    # sequence); only the K/V bytes shrink by kvr = kv_heads / heads.
    kvr = shape.kv_ratio
    qk_flops = matmul_flops(lq, dh, lk, batch=b * h)
    av_flops = matmul_flops(lq, lk, dh, batch=b * h)
    softmax_flops = _VECTOR_FLOPS_PER_ELEMENT["softmax"] * b * h * lq * lk

    if fused:
        io_bytes = dtype_bytes * b * h * (lq * dh + 2 * kvr * lk * dh + lq * dh)
        return [
            ComputeOp(
                name="flash_attention.fwd",
                flops=qk_flops + av_flops + softmax_flops,
                bytes_hbm=io_bytes,
                pipe=TENSOR_PIPE,
            )
        ]

    logits_bytes = dtype_bytes * b * h * lq * lk
    return [
        ComputeOp(
            name="attention.qk",
            flops=qk_flops,
            bytes_hbm=dtype_bytes * b * h * (lq * dh + kvr * lk * dh) + logits_bytes,
            pipe=TENSOR_PIPE,
        ),
        ComputeOp(
            name="attention.softmax",
            flops=softmax_flops,
            bytes_hbm=2 * logits_bytes,
            pipe=VECTOR_PIPE,
        ),
        ComputeOp(
            name="attention.av",
            flops=av_flops,
            bytes_hbm=logits_bytes + dtype_bytes * b * h * (kvr * lk * dh + lq * dh),
            pipe=TENSOR_PIPE,
        ),
    ]


def flash_attention_backward(
    shape: AttentionShape, *, dtype_bytes: int = 2, fused: bool = True
) -> List[ComputeOp]:
    """Backward ops of the Logit-Attend block.

    The fused backward recomputes the attention matrix (one extra forward's
    worth of FLOPs) and then computes dQ, dK, dV and the softmax backward —
    roughly 2.5x the forward FLOPs in total, as in the FlashAttention paper.
    """
    forward = flash_attention_forward(shape, dtype_bytes=dtype_bytes, fused=fused)
    fwd_flops = sum(op.flops for op in forward)
    fwd_bytes = sum(op.bytes_hbm for op in forward)
    if fused:
        return [
            ComputeOp(
                name="flash_attention.bwd",
                flops=2.5 * fwd_flops,
                bytes_hbm=1.5 * fwd_bytes,
                pipe=TENSOR_PIPE,
            )
        ]
    return [op.scaled(2.0, name=f"{op.name}.bwd") for op in forward]


# ----------------------------------------------------------------------
# Aggregation helpers
# ----------------------------------------------------------------------

def total_flops(ops: List[ComputeOp]) -> float:
    """Sum of FLOPs over a list of ops."""
    return sum(op.flops for op in ops)


def total_bytes(ops: List[ComputeOp]) -> float:
    """Sum of HBM bytes over a list of ops."""
    return sum(op.bytes_hbm for op in ops)


def arithmetic_intensity(ops: List[ComputeOp]) -> float:
    """FLOPs per HBM byte (aggregate) — useful for sanity checks and tests."""
    bytes_total = total_bytes(ops)
    if bytes_total == 0:
        return float("inf")
    return total_flops(ops) / bytes_total


def comm_volume_by_group(comms: List[CommOp]) -> dict:
    """Aggregate per-GPU communication bytes by parallel group."""
    out: dict = {}
    for comm in comms:
        out[comm.group] = out.get(comm.group, 0.0) + comm.volume_bytes
    return out
