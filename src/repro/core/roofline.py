"""Roofline execution-time model (stage S2, computation time).

The paper converts FLOP and HBM-byte counts into time with the classic
roofline model:

    t_op = max(t_sf + lambda_f / lambda_fh,  lambda_m / lambda_mh)

where ``lambda_fh`` is the peak rate of the pipe executing the operation
(FP16 tensor cores for matmuls, the vector pipe otherwise), ``lambda_mh`` is
the achievable HBM bandwidth and ``t_sf`` is a first-order FLOP latency that
captures the inefficiency of small matrix multiplies (taken from NVIDIA's
matmul performance guide).

In addition to the total time we keep the *flop-limited* and *memory-limited*
components separately so that the iteration-time breakdown can attribute
"Compute" vs "Memory" the same way the paper's figures do: the memory share
is the part of the operation time that exceeds what the FLOPs alone would
take.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.operations import ComputeOp, TENSOR_PIPE, VECTOR_PIPE
from repro.core.system import GpuSpec


@dataclass(frozen=True)
class RooflineTime:
    """Execution time of one (or an aggregate of) compute op(s)."""

    #: Time the FLOPs alone would take (including the FLOP latency term).
    flop_time: float
    #: Time the HBM traffic alone would take.
    memory_time: float

    @property
    def total(self) -> float:
        """Roofline time: the operation is limited by the slower resource."""
        return max(self.flop_time, self.memory_time)

    @property
    def exposed_memory_time(self) -> float:
        """Memory time not hidden behind the FLOPs (the paper's "Memory" share)."""
        return max(0.0, self.memory_time - self.flop_time)

    @property
    def is_compute_bound(self) -> bool:
        """True when the FLOP time dominates."""
        return self.flop_time >= self.memory_time

    def __add__(self, other: "RooflineTime") -> "RooflineTime":
        return RooflineTime(
            flop_time=self.flop_time + other.flop_time,
            memory_time=self.memory_time + other.memory_time,
        )


ZERO_TIME = RooflineTime(0.0, 0.0)


def peak_rate(gpu: GpuSpec, pipe: str) -> float:
    """Peak FLOP rate of the requested pipe on ``gpu``."""
    if pipe == TENSOR_PIPE:
        return gpu.tensor_flops
    if pipe == VECTOR_PIPE:
        return gpu.vector_flops
    raise ValueError(f"unknown pipe {pipe!r}")


def op_time(op: ComputeOp, gpu: GpuSpec, *, include_latency: bool = True) -> RooflineTime:
    """Roofline time of a single compute op on ``gpu``."""
    rate = peak_rate(gpu, op.pipe)
    latency = gpu.flops_latency if include_latency else 0.0
    flop_time = latency + op.flops / rate if op.flops > 0 else (latency if op.flops > 0 else 0.0)
    if op.flops == 0:
        flop_time = 0.0
    memory_time = op.bytes_hbm / gpu.effective_hbm_bandwidth if op.bytes_hbm > 0 else 0.0
    return RooflineTime(flop_time=flop_time, memory_time=memory_time)


def ops_time(
    ops: Iterable[ComputeOp], gpu: GpuSpec, *, include_latency: bool = True
) -> RooflineTime:
    """Sum of per-op roofline times.

    Each op is individually roofline-limited; the totals we accumulate are
    the per-op flop times and per-op *exposed* totals, so that the aggregate
    ``total`` equals the sum of per-op ``max(flop, memory)`` times.  We store
    that in the ``memory_time`` slot as ``flop_total + exposed_memory_total``
    so the :class:`RooflineTime` invariants keep holding.
    """
    flop_total = 0.0
    exposed_total = 0.0
    for op in ops:
        t = op_time(op, gpu, include_latency=include_latency)
        flop_total += t.flop_time
        exposed_total += t.exposed_memory_time
    return RooflineTime(flop_time=flop_total, memory_time=flop_total + exposed_total)


def matmul_efficiency(
    m: float, k: float, n: float, gpu: GpuSpec, *, dtype_bytes: int = 2
) -> float:
    """Achieved fraction of peak tensor-core throughput for one matmul.

    A convenience diagnostic: ratio of the ideal FLOP time (without latency)
    to the roofline time.  Small or skinny matrices become memory-bound or
    latency-bound and show efficiency << 1.
    """
    from repro.core.operations import matmul_op

    op = matmul_op("probe", m, k, n, dtype_bytes=dtype_bytes)
    t = op_time(op, gpu)
    ideal = op.flops / gpu.tensor_flops
    if t.total <= 0:
        return 1.0
    return ideal / t.total
