"""Expert parallelism: mixture-of-experts layers as a workload transform.

An MoE transformer block keeps the attention sub-block of the dense model
and replaces the single MLP with ``E`` expert MLPs of which ``k = moe_top_k``
are active per token.  Rather than re-deriving every tensor-parallel
strategy for MoE, this module *transforms* the dense
:class:`~repro.core.parallelism.base.LayerWorkload` produced by a strategy
(Megatron-style: expert weights are tensor-parallel-sharded exactly like the
dense MLP weights, and the expert-parallel group is carved out of the
data-parallel group):

* **compute** — every MLP matmul/GeLU op (forward and backward) scales by
  ``k``: with balanced routing each GPU processes ``k`` token-expert pairs
  per token, against its local shard of the active experts' weights.  A
  router matmul (``e x E`` gate) plus softmax is added;
* **communication** — token dispatch and combine are AllToAlls over the
  expert-parallel group (volume: the sequence-sharded activation times
  ``k``), in the forward pass and, conjugated, in the backward pass;
* **memory** — each GPU stores ``E / ep`` experts' weights (reported
  separately as ``expert_params_per_gpu`` because they replicate only
  ``nd / ep`` times and therefore shard/synchronise over smaller groups),
  and retains the ``k``-times-larger MLP intermediates plus the routed
  token copies for the backward pass.

First-order approximations (documented so they can be tightened later):
balanced routing with no capacity-factor padding or token dropping; expert
weights read once per matmul (weight re-reads for many small experts are
neglected against the activation traffic); and the MLP block's
tensor-parallel collectives keep their *dense* volumes — as in Megatron's
sequence-parallel MoE they bracket the pre-dispatch input and the
post-combine output (both ``b*l*e`` tensors), while the ``top_k``-fold token
expansion travels inside the AllToAlls, which *are* scaled by ``k``.  A
capacity-factor > 1 or unbalanced routing would grow both the AllToAll and
the expert compute beyond this model.

The transform is an exact no-op for dense models (``num_experts == 1``), so
every dense figure of the paper is bit-identical with or without it.
"""

from __future__ import annotations

from typing import List

from repro.core.model import TransformerConfig
from repro.core.operations import (
    CommOp,
    ComputeOp,
    matmul_backward_ops,
    matmul_op,
    softmax_op,
    vector_backward_op,
)
from repro.core.parallelism.base import GROUP_EP, LayerWorkload, ParallelConfig

#: MLP ops scaled by ``moe_top_k`` (their backward ops carry these prefixes).
_EXPERT_OP_PREFIXES = ("mlp.up_proj", "mlp.gelu", "mlp.down_proj")


def validate_expert_config(
    model: TransformerConfig, config: ParallelConfig
) -> str | None:
    """Divisibility rules of the expert-parallel axis (None when admissible)."""
    if model.num_experts == 1:
        if config.expert_parallel != 1:
            return "expert_parallel > 1 requires an MoE model (num_experts > 1)"
        return None
    if model.num_experts % config.expert_parallel != 0:
        return (
            f"expert_parallel ({config.expert_parallel}) does not divide "
            f"num_experts ({model.num_experts})"
        )
    # ep | nd is enforced structurally by ParallelConfig.__post_init__.
    return None


def _scale_expert_ops(ops: List[ComputeOp], top_k: int) -> List[ComputeOp]:
    """Scale the MLP matmul/activation ops by the routed expert count."""
    return [
        op.scaled(float(top_k)) if op.name.startswith(_EXPERT_OP_PREFIXES) else op
        for op in ops
    ]


def apply_expert_parallelism(
    model: TransformerConfig,
    config: ParallelConfig,
    workload: LayerWorkload,
) -> LayerWorkload:
    """Turn a dense per-layer workload into its MoE equivalent.

    Returns ``workload`` unchanged for dense models, so strategies can call
    this unconditionally.
    """
    err = validate_expert_config(model, config)
    if err is not None:
        raise ValueError(err)
    if model.num_experts == 1:
        return workload

    b = float(config.microbatch_size)
    l, e, f = float(model.seq_len), float(model.embed_dim), float(model.hidden_dim)
    n1 = float(config.tensor_parallel_1)
    n2 = float(config.tensor_parallel_2)
    nt = float(config.tensor_parallel)
    dt = model.dtype_bytes
    experts = float(model.num_experts)
    k = model.moe_top_k
    ep = float(config.expert_parallel)

    fwd_ops = _scale_expert_ops(workload.forward_ops, k)
    bwd_ops = _scale_expert_ops(workload.backward_ops, k)

    # Router/gate on the sequence-sharded tokens: (b*l/nt, e) x (e, E).
    router_rows = b * l / nt
    gate = matmul_op("moe.router", router_rows, e, experts, dtype_bytes=dt, shared_operand_b=True)
    gate_softmax = softmax_op(router_rows * experts, name="moe.router_softmax", dtype_bytes=dt)
    fwd_ops = fwd_ops + [gate, gate_softmax]
    bwd_ops = bwd_ops + matmul_backward_ops(
        "moe.router", router_rows, e, experts, dtype_bytes=dt, shared_operand_b=True
    ) + [vector_backward_op(gate_softmax)]

    # Dispatch/combine AllToAlls over the expert-parallel group: each of the
    # b*l/nt local tokens travels (with its full embedding) to its k experts
    # and its expert outputs travel back; the backward pass moves the
    # corresponding gradients.  The ring model applies the (ep-1)/ep factor.
    a2a_bytes = dt * b * l * k * e / nt
    fwd_comms = list(workload.forward_comms) + [
        CommOp("moe.dispatch", "all_to_all", a2a_bytes, GROUP_EP),
        CommOp("moe.combine", "all_to_all", a2a_bytes, GROUP_EP),
    ]
    bwd_comms = list(workload.backward_comms) + [
        CommOp("moe.dispatch_grad", "all_to_all", a2a_bytes, GROUP_EP),
        CommOp("moe.combine_grad", "all_to_all", a2a_bytes, GROUP_EP),
    ]

    # Memory: the MLP intermediates Z and GeLU(Z) grow k-fold, the routed
    # token copies (expert inputs) and router logits are retained as well.
    mlp_intermediate = 2.0 * b * l * f / (n1 * n2)
    activation_elements = (
        workload.activation_elements
        + (k - 1) * mlp_intermediate
        + k * b * l * e / nt
        + router_rows * experts
    )

    # Parameters: the dense MLP matrices (2ef, sharded over n1) are replaced
    # by E/ep experts of the same shard size; the router (e x E) stays dense
    # and replicated, synchronising with the other dense parameters.
    dense_mlp_matrix = 2.0 * e * f / n1
    router_params = e * experts
    params_per_gpu = workload.params_per_gpu - dense_mlp_matrix + router_params
    expert_params_per_gpu = (experts / ep) * dense_mlp_matrix

    return LayerWorkload(
        forward_ops=fwd_ops,
        forward_comms=fwd_comms,
        backward_ops=bwd_ops,
        backward_comms=bwd_comms,
        forward_summa=list(workload.forward_summa),
        backward_summa=list(workload.backward_summa),
        activation_elements=activation_elements,
        block_input_elements=workload.block_input_elements,
        params_per_gpu=params_per_gpu,
        dp_synced_params=params_per_gpu,
        grad_sync_group=workload.grad_sync_group,
        expert_params_per_gpu=expert_params_per_gpu,
        expert_grad_sync_group=f"{workload.grad_sync_group}/ep",
    )
