"""2D tensor parallelism (tensor + sequence/context parallel), Table II.

A 2D grid of ``n1 x n2`` GPUs partitions the weights and heads over ``n1``
(as in 1D TP) and additionally partitions the sequence length over ``n2``
(context parallelism).  Consequences relative to 1D TP:

* the gathered activations ``~X``/``~Y`` shrink to ``(b, l/n2, e)`` — the
  collectives over the ``n1`` group now carry ``b*l*e / n2`` bytes per GPU,
  i.e. the communication volume *scales down* with the size of the
  orthogonal group;
* two extra AllGathers per block (over the ``n2`` group, volume
  ``b*l*e/n1``) reconstruct the full-sequence K and V needed by the
  Logit-Attend operation;
* the weight matrices are *shared* (replicated) across the ``n2`` group, so
  their gradients must additionally reduce over ``n2`` — the paper schedules
  that reduction together with the data-parallel gradient ReduceScatter, so
  the gradient-sync group becomes ``nd x n2``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.model import TransformerConfig
from repro.core.operations import (
    AttentionShape,
    CommOp,
    ComputeOp,
    dropout_op,
    flash_attention_backward,
    flash_attention_forward,
    gelu_op,
    layernorm_op,
    matmul_backward_ops,
    matmul_op,
    vector_backward_op,
)
from repro.core.parallelism.base import (
    GROUP_DP_TP2,
    GROUP_TP1,
    GROUP_TP2,
    LayerWorkload,
    ParallelConfig,
    TensorParallelStrategy,
    register_strategy,
)
from repro.core.parallelism.expert import (
    apply_expert_parallelism,
    validate_expert_config,
)


class TensorParallel2D(TensorParallelStrategy):
    """2D tensor parallelism: weights over ``n1``, sequence over ``n2``."""

    name = "tp2d"

    # ------------------------------------------------------------------
    def validate_config(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """Heads/hidden divisible by ``n1``, sequence by ``n2`` and ``n1*n2``."""
        n1, n2 = config.tensor_parallel_1, config.tensor_parallel_2
        for check in (
            self._check_divisible(model.num_heads, n1, "num_heads vs n1"),
            self._check_divisible(model.kv_heads, n1, "kv_heads vs n1"),
            self._check_divisible(model.embed_dim, n1, "embed_dim vs n1"),
            self._check_divisible(model.hidden_dim, n1, "hidden_dim vs n1"),
            self._check_divisible(model.seq_len, n2, "seq_len vs n2"),
            self._check_divisible(model.seq_len, n1 * n2, "seq_len vs n1*n2"),
            self._check_divisible(model.depth, config.pipeline_parallel, "depth vs np"),
            validate_expert_config(model, config),
        ):
            if check is not None:
                return check
        return None

    # ------------------------------------------------------------------
    def layer_workload(
        self,
        model: TransformerConfig,
        config: ParallelConfig,
        *,
        flash_attention: bool = True,
        include_dropout: bool = False,
    ) -> LayerWorkload:
        """Per-layer ops/collectives of Table II (plus the MoE transform)."""
        err = self.validate_config(model, config)
        if err is not None:
            raise ValueError(err)

        b = float(config.microbatch_size)
        l, e, f, h = (
            float(model.seq_len),
            float(model.embed_dim),
            float(model.hidden_dim),
            float(model.num_heads),
        )
        eh = float(model.head_dim)
        n1 = float(config.tensor_parallel_1)
        n2 = float(config.tensor_parallel_2)
        dt = model.dtype_bytes
        # Grouped-query attention: kvr == 1.0 exactly for MHA, so all the
        # dense-model formulas below stay bit-identical at the default.
        kvr = float(model.kv_heads) / h
        kvd = e * kvr

        fwd_ops: List[ComputeOp] = []
        fwd_comms: List[CommOp] = []
        bwd_ops: List[ComputeOp] = []
        bwd_comms: List[CommOp] = []

        # ---------------- Self-attention block ----------------
        ln1 = layernorm_op(b * l * e / (n1 * n2), name="sa.layernorm", dtype_bytes=dt)
        fwd_ops.append(ln1)
        bwd_ops.append(vector_backward_op(ln1))

        # AllGather over n1 to form ~X : (b, l/n2, e).
        fwd_comms.append(CommOp("sa.ag_x", "all_gather", dt * b * l * e / n2, GROUP_TP1))
        bwd_comms.append(CommOp("sa.rs_dx", "reduce_scatter", dt * b * l * e / n2, GROUP_TP1))

        # QKV projections: (b*l/n2, e) x (e, e/n1) for Q, kvd/n1 columns for
        # the grouped K/V.
        for proj, out_dim in (("q", e), ("k", kvd), ("v", kvd)):
            fwd_ops.append(
                matmul_op(
                    f"sa.{proj}_proj", b * l / n2, e, out_dim / n1, dtype_bytes=dt, shared_operand_b=True
                )
            )
            bwd_ops.extend(
                matmul_backward_ops(
                    f"sa.{proj}_proj", b * l / n2, e, out_dim / n1, dtype_bytes=dt, shared_operand_b=True
                )
            )

        # Gather the full-sequence K and V over the n2 group (the queries stay
        # sequence-parallel).  The gathered tensors are retained for the
        # backward pass (Table II lists K : (b, h/n1, l, e_h)) — this is the
        # "shared activations" memory pressure of plain 2D TP the paper
        # contrasts with SUMMA in Fig. A2.  The backward pass reduce-scatters
        # dK and dV.
        fwd_comms.append(CommOp("sa.ag_k", "all_gather", dt * b * l * kvd / n1, GROUP_TP2))
        fwd_comms.append(CommOp("sa.ag_v", "all_gather", dt * b * l * kvd / n1, GROUP_TP2))
        bwd_comms.append(CommOp("sa.rs_dk", "reduce_scatter", dt * b * l * kvd / n1, GROUP_TP2))
        bwd_comms.append(CommOp("sa.rs_dv", "reduce_scatter", dt * b * l * kvd / n1, GROUP_TP2))

        # Fused Logit-Attend: local heads h/n1, local queries l/n2, full K/V.
        attn_shape = AttentionShape(
            batch=b,
            heads=h / n1,
            q_rows=l / n2,
            kv_rows=l,
            head_dim=eh,
            kv_heads=float(model.kv_heads) / n1,
        )
        fwd_ops.extend(flash_attention_forward(attn_shape, dtype_bytes=dt, fused=flash_attention))
        bwd_ops.extend(flash_attention_backward(attn_shape, dtype_bytes=dt, fused=flash_attention))

        # Output projection + ReduceScatter over n1.
        fwd_ops.append(
            matmul_op("sa.out_proj", b * l / n2, e / n1, e, dtype_bytes=dt, shared_operand_b=True)
        )
        bwd_ops.extend(
            matmul_backward_ops(
                "sa.out_proj", b * l / n2, e / n1, e, dtype_bytes=dt, shared_operand_b=True
            )
        )
        fwd_comms.append(CommOp("sa.rs_y", "reduce_scatter", dt * b * l * e / n2, GROUP_TP1))
        bwd_comms.append(CommOp("sa.ag_dy", "all_gather", dt * b * l * e / n2, GROUP_TP1))

        if include_dropout:
            drop = dropout_op(b * l * e / (n1 * n2), name="sa.dropout", dtype_bytes=dt)
            fwd_ops.append(drop)
            bwd_ops.append(vector_backward_op(drop))

        # ---------------- MLP block ----------------
        ln2 = layernorm_op(b * l * e / (n1 * n2), name="mlp.layernorm", dtype_bytes=dt)
        fwd_ops.append(ln2)
        bwd_ops.append(vector_backward_op(ln2))

        fwd_comms.append(CommOp("mlp.ag_y", "all_gather", dt * b * l * e / n2, GROUP_TP1))
        bwd_comms.append(CommOp("mlp.rs_dy", "reduce_scatter", dt * b * l * e / n2, GROUP_TP1))

        fwd_ops.append(
            matmul_op("mlp.up_proj", b * l / n2, e, f / n1, dtype_bytes=dt, shared_operand_b=True)
        )
        bwd_ops.extend(
            matmul_backward_ops(
                "mlp.up_proj", b * l / n2, e, f / n1, dtype_bytes=dt, shared_operand_b=True
            )
        )

        act = gelu_op(b * l * f / (n1 * n2), name="mlp.gelu", dtype_bytes=dt)
        fwd_ops.append(act)
        bwd_ops.append(vector_backward_op(act))

        fwd_ops.append(
            matmul_op("mlp.down_proj", b * l / n2, f / n1, e, dtype_bytes=dt, shared_operand_b=True)
        )
        bwd_ops.extend(
            matmul_backward_ops(
                "mlp.down_proj", b * l / n2, f / n1, e, dtype_bytes=dt, shared_operand_b=True
            )
        )
        fwd_comms.append(CommOp("mlp.rs_out", "reduce_scatter", dt * b * l * e / n2, GROUP_TP1))
        bwd_comms.append(CommOp("mlp.ag_dout", "all_gather", dt * b * l * e / n2, GROUP_TP1))

        if include_dropout:
            drop = dropout_op(b * l * e / (n1 * n2), name="mlp.dropout", dtype_bytes=dt)
            fwd_ops.append(drop)
            bwd_ops.append(vector_backward_op(drop))

        # ---------------- Memory & parameters ----------------
        # Stored activations per microbatch (elements, per GPU):
        #   sequence-sharded ~X, ~Y              -> 2 * b*l*e / n2
        #   gathered full-sequence K, V          -> 2 * b*l*kvd / n1
        #   fully partitioned X, Q, S, Y         -> 4 * b*l*e / (n1*n2)
        #   MLP intermediate Z and GeLU(Z)       -> 2 * b*l*f / (n1*n2)
        activation_elements = (
            2.0 * b * l * e / n2
            + 2.0 * b * l * kvd / n1
            + 4.0 * b * l * e / (n1 * n2)
            + 2.0 * b * l * f / (n1 * n2)
        )
        if not flash_attention:
            activation_elements += b * (h / n1) * (l / n2) * l

        # Weights are sharded over n1 only (replicated across n2), so each GPU
        # holds matrix_params / n1 parameters whose gradients reduce over
        # nd x n2 (scheduled together with the DP collectives).
        attention_matrix_params = 2.0 * e * e + 2.0 * e * kvd
        matrix_params = attention_matrix_params + 2 * e * f
        attention_biases = 2.0 * e + 2.0 * kvd
        replicated_params = model.layernorm_params_per_layer + attention_biases + f + e
        params_per_gpu = matrix_params / n1 + replicated_params

        workload = LayerWorkload(
            forward_ops=fwd_ops,
            forward_comms=fwd_comms,
            backward_ops=bwd_ops,
            backward_comms=bwd_comms,
            activation_elements=activation_elements,
            block_input_elements=b * l * e / (n1 * n2),
            params_per_gpu=params_per_gpu,
            dp_synced_params=params_per_gpu,
            grad_sync_group=GROUP_DP_TP2,
        )
        return apply_expert_parallelism(model, config, workload)


#: Module-level singleton registered for lookup by name.
TP2D = register_strategy(TensorParallel2D())
