"""Pipeline parallelism: the 1F1B non-interleaved schedule.

The model depth ``d`` is split into ``np`` stages of ``d / np`` layers.  Each
iteration processes ``m`` microbatches; the 1F1B schedule interleaves one
forward and one backward microbatch per stage once the pipeline is full, so

* the idle (bubble) time is ``(np - 1) * (t_f + t_b)`` where ``t_f`` and
  ``t_b`` are the forward/backward times of one microbatch on one stage;
* at most ``min(m, np)`` microbatches are in flight per stage, which bounds
  the activation memory that must be retained (instead of all ``m``);
* each stage boundary exchanges the activation shard
  ``(b_m, l, e) / n_t`` per microbatch (point-to-point), plus the gradient of
  the same tensor on the way back.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig


@dataclass(frozen=True)
class PipelineSchedule:
    """Summary of a 1F1B pipeline execution for one training iteration."""

    num_stages: int
    num_microbatches: int
    layers_per_stage: int
    #: Forward time of one microbatch on one stage (seconds).
    forward_time: float
    #: Backward time of one microbatch on one stage (seconds).
    backward_time: float

    @property
    def steady_state_time(self) -> float:
        """Time spent processing all microbatches on one stage."""
        return self.num_microbatches * (self.forward_time + self.backward_time)

    @property
    def bubble_time(self) -> float:
        """Pipeline fill/drain idle time: ``(np - 1) * (tf + tb)``."""
        return (self.num_stages - 1) * (self.forward_time + self.backward_time)

    @property
    def total_time(self) -> float:
        """Steady-state plus bubble time (excludes DP/PP communication)."""
        return self.steady_state_time + self.bubble_time

    @property
    def bubble_fraction(self) -> float:
        """Fraction of the iteration lost to pipeline bubbles."""
        total = self.total_time
        if total <= 0:
            return 0.0
        return self.bubble_time / total

    @property
    def in_flight_microbatches(self) -> int:
        """Microbatches whose activations are simultaneously retained."""
        return min(self.num_microbatches, self.num_stages)


def pipeline_bubble_time(num_stages: int, forward_time: float, backward_time: float) -> float:
    """Idle time of the 1F1B schedule: ``(np - 1) * (tf + tb)``."""
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    return (num_stages - 1) * (forward_time + backward_time)


def in_flight_microbatches(num_stages: int, num_microbatches: int) -> int:
    """Number of microbatches whose activations are retained under 1F1B."""
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    return min(num_stages, num_microbatches)


def pipeline_p2p_volume_bytes(
    model: TransformerConfig, config: ParallelConfig, *, both_directions: bool = True
) -> float:
    """Per-microbatch point-to-point volume at one stage boundary (bytes).

    The tensor crossing the boundary is the layer output shard
    ``(b_m, l, e) / n_t``.  With ``both_directions`` the activation gradient
    flowing backwards is counted as well.
    """
    if config.pipeline_parallel <= 1:
        return 0.0
    elements = (
        config.microbatch_size
        * model.seq_len
        * model.embed_dim
        / config.tensor_parallel
    )
    volume = elements * model.dtype_bytes
    return 2.0 * volume if both_directions else volume


def layers_per_stage(model: TransformerConfig, config: ParallelConfig) -> int:
    """Number of transformer blocks per pipeline stage."""
    if model.depth % config.pipeline_parallel != 0:
        raise ValueError(
            f"pipeline_parallel ({config.pipeline_parallel}) must divide depth ({model.depth})"
        )
    return model.depth // config.pipeline_parallel
