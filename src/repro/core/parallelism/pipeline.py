"""Pipeline-parallel primitives shared by every schedule.

The model depth ``d`` is split into ``np`` stages of ``d / np`` layers; each
stage boundary exchanges the activation shard ``(b_m, l, e) / n_t`` per
microbatch (point-to-point), plus the gradient of the same tensor on the way
back.  This module holds the *schedule-independent* quantities — the layer
split, the boundary volume, and the classic ``(np - 1) * (t_f + t_b)``
fill/drain ramp that both 1F1B and GPipe pay.

Which ramp applies, how many microbatches are in flight, and how often a
microbatch crosses this GPU's boundaries are *schedule* decisions; they live
in the pluggable :mod:`repro.core.schedules` registry (1F1B — the paper's
default — GPipe, and interleaved-1F1B with a virtual-stage degree).
:class:`PipelineTiming` below is the legacy 1F1B summary object kept for
diagnostics and the simulator (``PipelineSchedule`` remains as a
deprecated alias so existing imports keep working).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig


@dataclass(frozen=True)
class PipelineTiming:
    """Summary of a 1F1B pipeline execution for one training iteration.

    Diagnostics/simulator helper only — the *pluggable* schedule interface
    lives in :mod:`repro.core.schedules` (whose abstract base is named
    ``PipelineSchedule``; this class was renamed to avoid shadowing it).
    """

    num_stages: int
    num_microbatches: int
    layers_per_stage: int
    #: Forward time of one microbatch on one stage (seconds).
    forward_time: float
    #: Backward time of one microbatch on one stage (seconds).
    backward_time: float

    @property
    def steady_state_time(self) -> float:
        """Time spent processing all microbatches on one stage."""
        return self.num_microbatches * (self.forward_time + self.backward_time)

    @property
    def bubble_time(self) -> float:
        """Pipeline fill/drain idle time: ``(np - 1) * (tf + tb)``."""
        return (self.num_stages - 1) * (self.forward_time + self.backward_time)

    @property
    def total_time(self) -> float:
        """Steady-state plus bubble time (excludes DP/PP communication)."""
        return self.steady_state_time + self.bubble_time

    @property
    def bubble_fraction(self) -> float:
        """Fraction of the iteration lost to pipeline bubbles."""
        total = self.total_time
        if total <= 0:
            return 0.0
        return self.bubble_time / total

    @property
    def in_flight_microbatches(self) -> int:
        """Microbatches whose activations are simultaneously retained."""
        return min(self.num_microbatches, self.num_stages)


#: Deprecated alias of :class:`PipelineTiming` — kept because downstream
#: code imported the timing summary under this name before the pluggable
#: schedule ABC (:class:`repro.core.schedules.PipelineSchedule`) existed.
PipelineSchedule = PipelineTiming


def pipeline_bubble_time(num_stages: int, forward_time: float, backward_time: float) -> float:
    """Idle time of the 1F1B schedule: ``(np - 1) * (tf + tb)``."""
    if num_stages < 1:
        raise ValueError("num_stages must be >= 1")
    return (num_stages - 1) * (forward_time + backward_time)


def in_flight_microbatches(num_stages: int, num_microbatches: int) -> int:
    """Number of microbatches whose activations are retained under 1F1B."""
    if num_stages < 1 or num_microbatches < 1:
        raise ValueError("num_stages and num_microbatches must be >= 1")
    return min(num_stages, num_microbatches)


def pipeline_p2p_volume_bytes(
    model: TransformerConfig, config: ParallelConfig, *, both_directions: bool = True
) -> float:
    """Per-microbatch point-to-point volume at one stage boundary (bytes).

    The tensor crossing the boundary is the layer output shard
    ``(b_m, l, e) / n_t``.  With ``both_directions`` the activation gradient
    flowing backwards is counted as well.
    """
    if config.pipeline_parallel <= 1:
        return 0.0
    elements = (
        config.microbatch_size
        * model.seq_len
        * model.embed_dim
        / config.tensor_parallel
    )
    volume = elements * model.dtype_bytes
    return 2.0 * volume if both_directions else volume


def layers_per_stage(model: TransformerConfig, config: ParallelConfig) -> int:
    """Number of transformer blocks per pipeline stage."""
    if model.depth % config.pipeline_parallel != 0:
        raise ValueError(
            f"pipeline_parallel ({config.pipeline_parallel}) must divide depth ({model.depth})"
        )
    return model.depth // config.pipeline_parallel
