"""Parallelization strategies of the performance model.

Each strategy module translates one transformer block into the set of
device-local compute operations and parallel-group collectives it performs
under that partitioning, following the paper's Tables I (1D tensor
parallelism), II (2D tensor parallelism) and A2 (2D tensor parallelism with
SUMMA matrix multiplies), plus the pipeline-parallel (1F1B) and data-parallel
(ZeRO optimizer sharding) components.
"""

from repro.core.parallelism.base import (
    GpuAssignment,
    LayerWorkload,
    ParallelConfig,
    SummaMatmul,
    TensorParallelStrategy,
    get_strategy,
    STRATEGY_REGISTRY,
)
from repro.core.parallelism.tp1d import TensorParallel1D
from repro.core.parallelism.tp2d import TensorParallel2D
from repro.core.parallelism.summa import TensorParallelSUMMA
from repro.core.parallelism.pipeline import (
    PipelineTiming,
    pipeline_bubble_time,
    pipeline_p2p_volume_bytes,
    in_flight_microbatches,
)
from repro.core.parallelism.data_parallel import (
    DataParallelPlan,
    optimizer_bytes_per_param,
    data_parallel_plan,
)

__all__ = [
    "DataParallelPlan",
    "GpuAssignment",
    "LayerWorkload",
    "ParallelConfig",
    "PipelineTiming",
    "STRATEGY_REGISTRY",
    "SummaMatmul",
    "TensorParallel1D",
    "TensorParallel2D",
    "TensorParallelSUMMA",
    "TensorParallelStrategy",
    "data_parallel_plan",
    "get_strategy",
    "in_flight_microbatches",
    "optimizer_bytes_per_param",
    "pipeline_bubble_time",
    "pipeline_p2p_volume_bytes",
]
