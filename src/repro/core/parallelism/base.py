"""Shared data structures of the parallelization strategies.

A *configuration* in the paper's sense is the tuple

    (b_m, n1, n2, n_p, n_d)  +  (nNVS_1, nNVS_2, nNVS_p, nNVS_d)  [+ n_b]

i.e. a microbatch size, a 4D decomposition of the GPU grid into the two
tensor-parallel dimensions, the pipeline-parallel dimension and the
data-parallel dimension, an assignment of each group onto the NVSwitch
domain, and (for SUMMA) the number of panels of the blocked matrix
multiplies.  These are captured by :class:`ParallelConfig` and
:class:`GpuAssignment`.

A strategy's job is to produce a :class:`LayerWorkload`: the device-local
compute ops, the collectives (with per-GPU volumes and owning groups), the
activation footprint that must be retained for the backward pass, and the
per-GPU share of the layer's parameters.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.model import TransformerConfig
from repro.core.operations import CommOp, ComputeOp

#: Parallel-group labels used throughout the model.
GROUP_TP1 = "tp1"
GROUP_TP2 = "tp2"
GROUP_DP = "dp"
GROUP_PP = "pp"
#: Weight-gradient synchronisation group for 2D TP: the weights are shared
#: across the n2 dimension, so their gradients reduce over nd x n2.
GROUP_DP_TP2 = "dp+tp2"
#: Expert-parallel group: the subset of the data-parallel group across which
#: the MoE experts are sharded; MoE dispatch/combine AllToAlls run here.
GROUP_EP = "ep"
#: Expert-weight gradient synchronisation group: experts are replicated only
#: ``nd / ep`` times, so their gradients reduce over the DP group *divided*
#: by the expert-parallel degree.  The generic ``<group>/ep`` suffix is
#: understood by :meth:`ParallelConfig.group_size` (``dp/ep`` for 1D TP,
#: ``dp+tp2/ep`` for 2D TP whose expert weights also replicate over n2).
GROUP_DP_EP = "dp/ep"

PARALLEL_GROUPS = (GROUP_TP1, GROUP_TP2, GROUP_PP, GROUP_DP)


@dataclass(frozen=True)
class ParallelConfig:
    """One point of the parallelization design space.

    ``tensor_parallel_1 * tensor_parallel_2 * pipeline_parallel *
    data_parallel`` must equal the total GPU count the configuration is
    evaluated on.  ``microbatch_size`` is the per-model-replica microbatch
    (the paper's ``b_m``); the number of microbatches ``m`` follows from the
    global batch size: ``m = b / (n_d * b_m)``.
    """

    strategy: str
    tensor_parallel_1: int
    tensor_parallel_2: int
    pipeline_parallel: int
    data_parallel: int
    microbatch_size: int
    #: Number of SUMMA panels (ignored by non-SUMMA strategies).
    summa_panels: int = 1
    #: Expert-parallel degree for MoE models.  The EP group is carved out of
    #: the data-parallel group (Megatron-style), so it must divide ``nd`` and
    #: does not change :attr:`total_gpus`.  1 (the default) replicates every
    #: expert on every DP rank — the dense behaviour.
    expert_parallel: int = 1
    #: Pipeline schedule the configuration runs under, resolved through the
    #: registry in :mod:`repro.core.schedules` (``1f1b`` — the paper's
    #: default — ``gpipe``, or ``interleaved``).
    schedule: str = "1f1b"
    #: Virtual-stage degree for interleaving schedules: each GPU holds this
    #: many non-contiguous layer chunks.  1 (the default) is the plain
    #: one-chunk-per-GPU assignment every non-interleaved schedule uses.
    virtual_stages: int = 1

    def __post_init__(self) -> None:
        for name in (
            "tensor_parallel_1",
            "tensor_parallel_2",
            "pipeline_parallel",
            "data_parallel",
            "microbatch_size",
            "summa_panels",
            "expert_parallel",
            "virtual_stages",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.data_parallel % self.expert_parallel != 0:
            raise ValueError(
                f"expert_parallel ({self.expert_parallel}) must divide "
                f"data_parallel ({self.data_parallel})"
            )

    @property
    def tensor_parallel(self) -> int:
        """Total tensor-parallel degree ``n_t = n1 * n2``."""
        return self.tensor_parallel_1 * self.tensor_parallel_2

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs used by the configuration."""
        return (
            self.tensor_parallel_1
            * self.tensor_parallel_2
            * self.pipeline_parallel
            * self.data_parallel
        )

    def num_microbatches(self, global_batch_size: int) -> int:
        """Number of microbatches ``m`` for the given global batch size."""
        per_replica = global_batch_size // self.data_parallel
        if per_replica * self.data_parallel != global_batch_size:
            raise ValueError("data_parallel must divide the global batch size")
        if per_replica % self.microbatch_size != 0:
            raise ValueError("microbatch_size must divide the per-replica batch")
        return per_replica // self.microbatch_size

    def group_size(self, group: str) -> int:
        """Size of the named parallel group.

        A ``<group>/ep`` suffix divides the base group by the expert-parallel
        degree (e.g. ``dp/ep`` is the replication group of one expert shard).
        """
        if group.endswith("/ep"):
            base = self.group_size(group[: -len("/ep")])
            if base % self.expert_parallel != 0:
                raise ValueError(
                    f"expert_parallel ({self.expert_parallel}) does not divide "
                    f"group {group[:-3]!r} of size {base}"
                )
            return base // self.expert_parallel
        return {
            GROUP_TP1: self.tensor_parallel_1,
            GROUP_TP2: self.tensor_parallel_2,
            GROUP_PP: self.pipeline_parallel,
            GROUP_DP: self.data_parallel,
            GROUP_DP_TP2: self.data_parallel * self.tensor_parallel_2,
            GROUP_EP: self.expert_parallel,
            "tp": self.tensor_parallel,
        }[group]

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """``(bm, n1, n2, np, nd)`` — convenient for reports and tests."""
        return (
            self.microbatch_size,
            self.tensor_parallel_1,
            self.tensor_parallel_2,
            self.pipeline_parallel,
            self.data_parallel,
        )

    def describe(self) -> str:
        """Short human-readable form, e.g. ``tp1d[bm=1,n1=8,np=64,nd=32]``."""
        return (
            f"{self.strategy}[bm={self.microbatch_size},n1={self.tensor_parallel_1},"
            f"n2={self.tensor_parallel_2},np={self.pipeline_parallel},"
            f"nd={self.data_parallel}"
            + (f",nb={self.summa_panels}" if self.summa_panels > 1 else "")
            + (f",ep={self.expert_parallel}" if self.expert_parallel > 1 else "")
            + (f",sched={self.schedule}" if self.schedule != "1f1b" else "")
            + (f",v={self.virtual_stages}" if self.virtual_stages > 1 else "")
            + "]"
        )


@dataclass(frozen=True)
class GpuAssignment:
    """Assignment of each parallel group onto the NVSwitch domain.

    ``nvs_tp1`` is the paper's ``nNVS_1``: how many GPUs of the ``n1`` group
    share a fast domain, and so on.  The product of the four numbers cannot
    exceed the machine's NVS domain size, and each must divide its group.
    """

    nvs_tp1: int = 1
    nvs_tp2: int = 1
    nvs_pp: int = 1
    nvs_dp: int = 1

    def __post_init__(self) -> None:
        for name in ("nvs_tp1", "nvs_tp2", "nvs_pp", "nvs_dp"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")

    @property
    def total(self) -> int:
        """GPUs per NVS domain consumed by this assignment."""
        return self.nvs_tp1 * self.nvs_tp2 * self.nvs_pp * self.nvs_dp

    def for_group(self, group: str) -> int:
        """GPUs of the named group co-located in one NVS domain."""
        if group == GROUP_TP1:
            return self.nvs_tp1
        if group == GROUP_TP2:
            return self.nvs_tp2
        if group == GROUP_PP:
            return self.nvs_pp
        if group == GROUP_DP:
            return self.nvs_dp
        if group == GROUP_DP_TP2:
            return self.nvs_dp * self.nvs_tp2
        if group == "tp":
            return self.nvs_tp1 * self.nvs_tp2
        raise KeyError(f"unknown group {group!r}")

    def as_tuple(self) -> Tuple[int, int, int, int]:
        """``(nNVS1, nNVS2, nNVSp, nNVSd)``."""
        return (self.nvs_tp1, self.nvs_tp2, self.nvs_pp, self.nvs_dp)

    def is_valid_for(self, config: ParallelConfig, nvs_domain_size: int) -> bool:
        """Check divisibility against ``config`` and the NVS domain size."""
        if self.total > nvs_domain_size:
            return False
        return (
            config.tensor_parallel_1 % self.nvs_tp1 == 0
            and config.tensor_parallel_2 % self.nvs_tp2 == 0
            and config.pipeline_parallel % self.nvs_pp == 0
            and config.data_parallel % self.nvs_dp == 0
        )


@dataclass(frozen=True)
class SummaMatmul:
    """A blocked (SUMMA) matrix multiply with overlappable panel broadcasts.

    The compute op covers the *full* matmul; at evaluation time the execution
    model splits it into ``nb`` panels, charges one FLOP-latency per panel,
    overlaps the panel broadcasts with the panel compute and exposes only the
    prologue plus whatever communication exceeds the compute of each panel
    (Appendix A of the paper).
    """

    name: str
    compute: ComputeOp
    #: Per-GPU broadcast volume of the activation panels (bytes) and the
    #: group performing it.
    activation_bcast_bytes: float
    activation_group: str
    #: Per-GPU broadcast volume of the weight panels (bytes) and its group.
    weight_bcast_bytes: float
    weight_group: str
    #: Inner (contraction) dimension — panel counts must divide it.
    inner_dim: int
    #: Bytes of the output block ``C_ij`` held by one GPU; with ``nb`` panels
    #: the accumulator is re-read and re-written every panel step, which adds
    #: ``2 * (nb - 1) * output_bytes`` of HBM traffic (the efficiency loss of
    #: small panels the paper mentions in Appendix A).
    output_bytes: float = 0.0
    #: True for the backward-pass transposed multiplies, which use a
    #: Broadcast + Reduce instead of two Broadcasts (same volumes).
    transposed: bool = False


@dataclass
class LayerWorkload:
    """Everything the execution model needs to know about one transformer block.

    All quantities are *per GPU* and *per microbatch* unless stated otherwise.
    """

    #: Device-local forward compute ops.
    forward_ops: List[ComputeOp] = field(default_factory=list)
    #: Forward collectives (exposed unless marked overlapped).
    forward_comms: List[CommOp] = field(default_factory=list)
    #: Device-local backward compute ops.
    backward_ops: List[ComputeOp] = field(default_factory=list)
    #: Backward collectives.
    backward_comms: List[CommOp] = field(default_factory=list)
    #: SUMMA matmuls of the forward pass (empty for non-SUMMA strategies).
    forward_summa: List[SummaMatmul] = field(default_factory=list)
    #: SUMMA matmuls of the backward pass.
    backward_summa: List[SummaMatmul] = field(default_factory=list)
    #: Activation elements (not bytes) retained per microbatch for backward.
    activation_elements: float = 0.0
    #: Elements of the block's *input* tensor per GPU — the only activation
    #: retained when full activation checkpointing (recompute) is enabled.
    block_input_elements: float = 0.0
    #: Parameters of this layer resident on one GPU (sharded weights plus the
    #: replicated LayerNorm/bias parameters).  For MoE layers this covers the
    #: *dense* parameters only (attention, LayerNorms, router); the expert
    #: weights are tracked separately below because they shard and
    #: synchronise over different groups.
    params_per_gpu: float = 0.0
    #: Parameters whose gradients synchronise over the plain DP group.
    dp_synced_params: float = 0.0
    #: Group over which weight gradients are synchronised ("dp" or "dp+tp2").
    grad_sync_group: str = GROUP_DP
    #: Expert (MoE) parameters resident on one GPU — already divided by the
    #: expert-parallel degree.  0 for dense models.
    expert_params_per_gpu: float = 0.0
    #: Group over which expert-weight gradients synchronise (the dense
    #: gradient-sync group shrunk by the expert-parallel degree).
    expert_grad_sync_group: str = GROUP_DP_EP

    def total_forward_flops(self) -> float:
        """Forward FLOPs of this layer per microbatch (including SUMMA ops)."""
        return sum(op.flops for op in self.forward_ops) + sum(
            s.compute.flops for s in self.forward_summa
        )

    def total_backward_flops(self) -> float:
        """Backward FLOPs of this layer per microbatch."""
        return sum(op.flops for op in self.backward_ops) + sum(
            s.compute.flops for s in self.backward_summa
        )

    def comm_volume_by_group(self) -> Dict[str, float]:
        """Aggregate exposed per-GPU communication bytes by group (fwd+bwd)."""
        volumes: Dict[str, float] = {}
        for comm in list(self.forward_comms) + list(self.backward_comms):
            volumes[comm.group] = volumes.get(comm.group, 0.0) + comm.volume_bytes
        for summa in list(self.forward_summa) + list(self.backward_summa):
            volumes[summa.activation_group] = (
                volumes.get(summa.activation_group, 0.0) + summa.activation_bcast_bytes
            )
            volumes[summa.weight_group] = (
                volumes.get(summa.weight_group, 0.0) + summa.weight_bcast_bytes
            )
        return volumes


class TensorParallelStrategy(ABC):
    """Interface of a tensor-parallel partitioning strategy."""

    #: Registry key, e.g. ``"tp1d"``.
    name: str = "abstract"

    @abstractmethod
    def validate_config(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """Return ``None`` if the configuration is admissible, else a reason string."""

    @abstractmethod
    def layer_workload(
        self,
        model: TransformerConfig,
        config: ParallelConfig,
        *,
        flash_attention: bool = True,
        include_dropout: bool = False,
    ) -> LayerWorkload:
        """Build the per-layer workload for ``config.microbatch_size`` samples."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _check_divisible(value: int, by: int, what: str) -> Optional[str]:
        if by <= 0:
            return f"{what}: divisor must be positive"
        if value % by != 0:
            return f"{what}: {by} does not divide {value}"
        return None


#: Registry of strategy instances keyed by their public name.
STRATEGY_REGISTRY: Dict[str, TensorParallelStrategy] = {}


def register_strategy(strategy: TensorParallelStrategy) -> TensorParallelStrategy:
    """Register a strategy instance so it can be looked up by name."""
    STRATEGY_REGISTRY[strategy.name] = strategy
    return strategy


def get_strategy(name: str) -> TensorParallelStrategy:
    """Look up a registered strategy by name (``tp1d``, ``tp2d``, ``summa``)."""
    key = name.strip().lower()
    if key not in STRATEGY_REGISTRY:
        raise KeyError(f"unknown strategy {name!r}; available: {sorted(STRATEGY_REGISTRY)}")
    return STRATEGY_REGISTRY[key]


def available_strategies() -> Sequence[str]:
    """Names of all registered strategies."""
    return tuple(sorted(STRATEGY_REGISTRY))
