"""Data parallelism and ZeRO-style state partitioning (stages 0-3).

The global batch is split across ``nd`` data-parallel replicas.  Under
mixed-precision training each parameter carries 2 bytes of FP16 weight,
2 bytes of FP16 gradient and 12 bytes of Adam optimizer state (FP32 master
weight + momentum + variance).  The ZeRO stages shard progressively more of
that state across the DP group:

* **stage 0** — nothing is sharded; every replica holds all 16 bytes/param;
* **stage 1** — the optimizer states shard (``12/nd``); this is the paper's
  "distributed optimizer" default;
* **stage 2** — gradients shard as well (``2/nd``);
* **stage 3** — parameters shard too (``2/nd``), at the cost of re-gathering
  the FP16 weights both before the forward and before the backward pass.

Gradient synchronisation is a ReduceScatter of the FP16 gradients followed
(after the optimizer step) by an AllGather of the updated FP16 weights.  The
paper assumes gradient accumulation across microbatches (no per-microbatch
communication), the ReduceScatter overlapped with the backward pass of the
last microbatch, and the AllGather overlapped with the forward pass of the
first microbatch after the pipeline flush.  Under ZeRO-3 the weight
AllGather happens twice per iteration (forward and backward re-gather).
For 2D tensor parallelism the weight gradients additionally reduce over the
``n2`` group, scheduled with the same collectives, so the group becomes
``nd x n2``; expert (MoE) weights are replicated only ``nd / ep`` times, so
their collectives run over the corresponding ``<group>/ep`` group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.parallelism.base import (
    GROUP_DP,
    GROUP_DP_EP,
    GROUP_DP_TP2,
    ParallelConfig,
)


#: Bytes per parameter for FP16 weights and FP16 gradients.
WEIGHT_BYTES_PER_PARAM = 2.0
GRAD_BYTES_PER_PARAM = 2.0
#: Bytes per parameter of the mixed-precision Adam optimizer states
#: (FP32 master weights + FP32 momentum + FP32 variance).
OPTIMIZER_BYTES_PER_PARAM = 12.0

#: ZeRO stages understood by the memory and communication models.
ZERO_STAGES = (0, 1, 2, 3)


def resolve_zero_stage(zero_stage: Optional[int], zero_optimizer: bool = True) -> int:
    """Normalise the (optional) ZeRO stage against the legacy boolean knob.

    ``zero_stage=None`` preserves the original behaviour: the paper's
    distributed optimizer (stage 1) when ``zero_optimizer`` is set, stage 0
    otherwise.
    """
    if zero_stage is None:
        return 1 if zero_optimizer else 0
    if zero_stage not in ZERO_STAGES:
        raise ValueError(f"zero_stage must be one of {ZERO_STAGES}, got {zero_stage}")
    return zero_stage


def zero_shard_divisors(zero_stage: int, group_size: int) -> Tuple[int, int, int]:
    """Sharding divisors ``(weights, grads, optimizer)`` for one ZeRO stage.

    ``group_size`` is the replication count of the parameters (the DP degree
    for dense weights, ``nd / ep`` for expert weights).
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    stage = resolve_zero_stage(zero_stage)
    return (
        group_size if stage >= 3 else 1,
        group_size if stage >= 2 else 1,
        group_size if stage >= 1 else 1,
    )


def optimizer_bytes_per_param(data_parallel: int, *, zero_sharded: bool = True) -> float:
    """Optimizer-state bytes per parameter on one GPU.

    With ZeRO-1 the 12 bytes/parameter of Adam state are sharded across the
    ``nd`` data-parallel GPUs; without sharding every replica holds the full
    state.
    """
    if data_parallel < 1:
        raise ValueError("data_parallel must be >= 1")
    if zero_sharded:
        return OPTIMIZER_BYTES_PER_PARAM / data_parallel
    return OPTIMIZER_BYTES_PER_PARAM


@dataclass(frozen=True)
class DataParallelPlan:
    """Gradient/weight synchronisation plan for one training iteration."""

    #: Parameters held per GPU whose gradients must be synchronised.
    params_per_gpu: float
    #: Group performing the gradient ReduceScatter / weight AllGather.
    sync_group: str
    #: Per-GPU ReduceScatter volume (bytes) of the FP16 gradients.
    grad_reduce_scatter_bytes: float
    #: Per-GPU AllGather volume (bytes) of the updated FP16 weights.
    weight_all_gather_bytes: float
    #: Whether the collectives are (attempted to be) overlapped with compute.
    overlap_with_compute: bool = True

    @property
    def total_bytes(self) -> float:
        """Total per-GPU DP communication volume per iteration."""
        return self.grad_reduce_scatter_bytes + self.weight_all_gather_bytes


#: Gradient-sync groups a strategy may declare (dense and expert variants).
_SUPPORTED_SYNC_GROUPS = (
    GROUP_DP,
    GROUP_DP_TP2,
    GROUP_DP_EP,
    GROUP_DP_TP2 + "/ep",
)


def data_parallel_plan(
    params_per_gpu: float,
    config: ParallelConfig,
    *,
    grad_sync_group: str = GROUP_DP,
    overlap_with_compute: bool = True,
    zero_stage: Optional[int] = None,
) -> DataParallelPlan:
    """Build the DP synchronisation plan for ``params_per_gpu`` parameters.

    ``grad_sync_group`` comes from the tensor-parallel strategy: plain DP for
    1D TP and SUMMA, ``nd x n2`` for 2D TP (whose weights are replicated
    across ``n2``), and the ``/ep``-shrunk variants for MoE expert weights.

    ``zero_stage`` only changes the communication volume at stage 3, where
    the sharded FP16 weights must be re-gathered before the forward *and*
    before the backward pass (2x the weight AllGather volume).  Stages 0-2
    move the same bytes as the paper's stage-1 default: one gradient
    ReduceScatter plus one weight AllGather, which also equals the classic
    stage-0 gradient AllReduce volume.
    """
    if params_per_gpu < 0:
        raise ValueError("params_per_gpu must be non-negative")
    if grad_sync_group not in _SUPPORTED_SYNC_GROUPS:
        raise ValueError(f"unsupported gradient sync group {grad_sync_group!r}")
    stage = resolve_zero_stage(zero_stage)

    group_size = config.group_size(grad_sync_group)
    if group_size <= 1:
        # Nothing to synchronise: a single replica owns the weights (and the
        # paper's model has no DP communication in that case).
        return DataParallelPlan(
            params_per_gpu=params_per_gpu,
            sync_group=grad_sync_group,
            grad_reduce_scatter_bytes=0.0,
            weight_all_gather_bytes=0.0,
            overlap_with_compute=overlap_with_compute,
        )

    grad_bytes = GRAD_BYTES_PER_PARAM * params_per_gpu
    weight_bytes = WEIGHT_BYTES_PER_PARAM * params_per_gpu
    if stage >= 3:
        weight_bytes = 2.0 * weight_bytes
    return DataParallelPlan(
        params_per_gpu=params_per_gpu,
        sync_group=grad_sync_group,
        grad_reduce_scatter_bytes=grad_bytes,
        weight_all_gather_bytes=weight_bytes,
        overlap_with_compute=overlap_with_compute,
    )
