"""Data parallelism and optimizer-state partitioning (ZeRO stage 1).

The global batch is split across ``nd`` data-parallel replicas.  With the
distributed (ZeRO-1) optimizer the Adam states are sharded across the DP
group, so the per-parameter memory is ``2 (weights) + 2 (grads) + 12 / nd``
bytes under mixed-precision training.

Gradient synchronisation is a ReduceScatter of the FP16 gradients followed
(after the optimizer step) by an AllGather of the updated FP16 weights.  The
paper assumes gradient accumulation across microbatches (no per-microbatch
communication), the ReduceScatter overlapped with the backward pass of the
last microbatch, and the AllGather overlapped with the forward pass of the
first microbatch after the pipeline flush.  For 2D tensor parallelism the
weight gradients additionally reduce over the ``n2`` group, scheduled with
the same collectives, so the group becomes ``nd x n2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.parallelism.base import GROUP_DP, GROUP_DP_TP2, ParallelConfig


#: Bytes per parameter for FP16 weights and FP16 gradients.
WEIGHT_BYTES_PER_PARAM = 2.0
GRAD_BYTES_PER_PARAM = 2.0
#: Bytes per parameter of the mixed-precision Adam optimizer states
#: (FP32 master weights + FP32 momentum + FP32 variance).
OPTIMIZER_BYTES_PER_PARAM = 12.0


def optimizer_bytes_per_param(data_parallel: int, *, zero_sharded: bool = True) -> float:
    """Optimizer-state bytes per parameter on one GPU.

    With ZeRO-1 the 12 bytes/parameter of Adam state are sharded across the
    ``nd`` data-parallel GPUs; without sharding every replica holds the full
    state.
    """
    if data_parallel < 1:
        raise ValueError("data_parallel must be >= 1")
    if zero_sharded:
        return OPTIMIZER_BYTES_PER_PARAM / data_parallel
    return OPTIMIZER_BYTES_PER_PARAM


@dataclass(frozen=True)
class DataParallelPlan:
    """Gradient/weight synchronisation plan for one training iteration."""

    #: Parameters held per GPU whose gradients must be synchronised.
    params_per_gpu: float
    #: Group performing the gradient ReduceScatter / weight AllGather.
    sync_group: str
    #: Per-GPU ReduceScatter volume (bytes) of the FP16 gradients.
    grad_reduce_scatter_bytes: float
    #: Per-GPU AllGather volume (bytes) of the updated FP16 weights.
    weight_all_gather_bytes: float
    #: Whether the collectives are (attempted to be) overlapped with compute.
    overlap_with_compute: bool = True

    @property
    def total_bytes(self) -> float:
        """Total per-GPU DP communication volume per iteration."""
        return self.grad_reduce_scatter_bytes + self.weight_all_gather_bytes


def data_parallel_plan(
    params_per_gpu: float,
    config: ParallelConfig,
    *,
    grad_sync_group: str = GROUP_DP,
    overlap_with_compute: bool = True,
) -> DataParallelPlan:
    """Build the DP synchronisation plan for ``params_per_gpu`` parameters.

    ``grad_sync_group`` comes from the tensor-parallel strategy: plain DP for
    1D TP and SUMMA, ``nd x n2`` for 2D TP (whose weights are replicated
    across ``n2``).
    """
    if params_per_gpu < 0:
        raise ValueError("params_per_gpu must be non-negative")
    if grad_sync_group not in (GROUP_DP, GROUP_DP_TP2):
        raise ValueError(f"unsupported gradient sync group {grad_sync_group!r}")

    group_size = config.group_size(grad_sync_group)
    if group_size <= 1:
        # Nothing to synchronise: a single replica owns the weights (and the
        # paper's model has no DP communication in that case).
        return DataParallelPlan(
            params_per_gpu=params_per_gpu,
            sync_group=grad_sync_group,
            grad_reduce_scatter_bytes=0.0,
            weight_all_gather_bytes=0.0,
            overlap_with_compute=overlap_with_compute,
        )

    grad_bytes = GRAD_BYTES_PER_PARAM * params_per_gpu
    weight_bytes = WEIGHT_BYTES_PER_PARAM * params_per_gpu
    return DataParallelPlan(
        params_per_gpu=params_per_gpu,
        sync_group=grad_sync_group,
        grad_reduce_scatter_bytes=grad_bytes,
        weight_all_gather_bytes=weight_bytes,
        overlap_with_compute=overlap_with_compute,
    )
