"""1D tensor parallelism (Megatron-style), Table I of the paper.

A 1D array of ``n_t`` GPUs partitions the weight matrices in row-/column-
parallel fashion and the sequence dimension of the layer inputs.  Per
transformer block the forward pass performs two AllGathers (before the QKV
projection and before the MLP up-projection, to reconstruct the full
sequence) and two ReduceScatters (after the attention output projection and
after the MLP down-projection, to combine partial sums), each of per-GPU
volume ``b * l * e`` elements.  The backward pass performs the conjugate
collectives with the same volumes.

Key memory property (motivating 2D TP for long sequences): the gathered
tensors ``~X`` and ``~Y`` of shape ``(b, l, e)`` are *replicated* across the
``n_t`` GPUs and must be retained for the backward pass, so the activation
footprint has a term that does not shrink with ``n_t``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.model import TransformerConfig
from repro.core.operations import (
    AttentionShape,
    CommOp,
    ComputeOp,
    dropout_op,
    flash_attention_backward,
    flash_attention_forward,
    gelu_op,
    layernorm_op,
    matmul_backward_ops,
    matmul_op,
    vector_backward_op,
)
from repro.core.parallelism.base import (
    GROUP_DP,
    GROUP_TP1,
    LayerWorkload,
    ParallelConfig,
    TensorParallelStrategy,
    register_strategy,
)
from repro.core.parallelism.expert import (
    apply_expert_parallelism,
    validate_expert_config,
)


class TensorParallel1D(TensorParallelStrategy):
    """Megatron-LM style 1D tensor parallelism with sequence parallelism."""

    name = "tp1d"

    # ------------------------------------------------------------------
    def validate_config(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """Divisibility of heads/KV-heads/sequence/hidden/embed by ``n1``."""
        if config.tensor_parallel_2 != 1:
            return "tp1d requires n2 == 1 (use tp2d or summa for a 2D grid)"
        nt = config.tensor_parallel_1
        for check in (
            self._check_divisible(model.num_heads, nt, "num_heads vs n1"),
            self._check_divisible(model.kv_heads, nt, "kv_heads vs n1"),
            self._check_divisible(model.seq_len, nt, "seq_len vs n1"),
            self._check_divisible(model.hidden_dim, nt, "hidden_dim vs n1"),
            self._check_divisible(model.embed_dim, nt, "embed_dim vs n1"),
            self._check_divisible(model.depth, config.pipeline_parallel, "depth vs np"),
            validate_expert_config(model, config),
        ):
            if check is not None:
                return check
        return None

    # ------------------------------------------------------------------
    def layer_workload(
        self,
        model: TransformerConfig,
        config: ParallelConfig,
        *,
        flash_attention: bool = True,
        include_dropout: bool = False,
    ) -> LayerWorkload:
        """Per-layer ops/collectives of Table I (plus the MoE transform)."""
        err = self.validate_config(model, config)
        if err is not None:
            raise ValueError(err)

        b = float(config.microbatch_size)
        l, e, f, h = (
            float(model.seq_len),
            float(model.embed_dim),
            float(model.hidden_dim),
            float(model.num_heads),
        )
        eh = float(model.head_dim)
        nt = float(config.tensor_parallel_1)
        dt = model.dtype_bytes
        # Grouped-query attention: K/V projections produce kvd = kv_heads*eh
        # columns (kvr == 1.0 exactly for MHA, keeping every formula below
        # bit-identical to the dense model).
        kvr = float(model.kv_heads) / h
        kvd = e * kvr

        fwd_ops: List[ComputeOp] = []
        fwd_comms: List[CommOp] = []
        bwd_ops: List[ComputeOp] = []
        bwd_comms: List[CommOp] = []

        # ---------------- Self-attention block ----------------
        # LayerNorm on the locally-held sequence shard X : (b, l/nt, e).
        ln1 = layernorm_op(b * l * e / nt, name="sa.layernorm", dtype_bytes=dt)
        fwd_ops.append(ln1)
        bwd_ops.append(vector_backward_op(ln1))

        # AllGather ~X to (b, l, e) before the QKV projections; the backward
        # pass performs the conjugate ReduceScatter of d~X.
        fwd_comms.append(
            CommOp("sa.ag_x", "all_gather", dt * b * l * e, GROUP_TP1)
        )
        bwd_comms.append(
            CommOp("sa.rs_dx", "reduce_scatter", dt * b * l * e, GROUP_TP1)
        )

        # QKV projections: (b*l, e) x (e, e/nt) for Q (kvd/nt columns for the
        # grouped K/V), weights column-parallel.
        for proj, out_dim in (("q", e), ("k", kvd), ("v", kvd)):
            op = matmul_op(
                f"sa.{proj}_proj", b * l, e, out_dim / nt, dtype_bytes=dt, shared_operand_b=True
            )
            fwd_ops.append(op)
            bwd_ops.extend(
                matmul_backward_ops(
                    f"sa.{proj}_proj", b * l, e, out_dim / nt, dtype_bytes=dt, shared_operand_b=True
                )
            )

        # Fused Logit-Attend with the local heads h/nt over the full sequence.
        attn_shape = AttentionShape(
            batch=b,
            heads=h / nt,
            q_rows=l,
            kv_rows=l,
            head_dim=eh,
            kv_heads=float(model.kv_heads) / nt,
        )
        fwd_ops.extend(flash_attention_forward(attn_shape, dtype_bytes=dt, fused=flash_attention))
        bwd_ops.extend(flash_attention_backward(attn_shape, dtype_bytes=dt, fused=flash_attention))

        # Output projection: (b*l, e/nt) x (e/nt, e) producing partial sums,
        # combined by a ReduceScatter into Y : (b, l/nt, e).
        out_proj = matmul_op("sa.out_proj", b * l, e / nt, e, dtype_bytes=dt, shared_operand_b=True)
        fwd_ops.append(out_proj)
        bwd_ops.extend(
            matmul_backward_ops("sa.out_proj", b * l, e / nt, e, dtype_bytes=dt, shared_operand_b=True)
        )
        fwd_comms.append(
            CommOp("sa.rs_y", "reduce_scatter", dt * b * l * e, GROUP_TP1)
        )
        bwd_comms.append(
            CommOp("sa.ag_dy", "all_gather", dt * b * l * e, GROUP_TP1)
        )

        if include_dropout:
            drop = dropout_op(b * l * e / nt, name="sa.dropout", dtype_bytes=dt)
            fwd_ops.append(drop)
            bwd_ops.append(vector_backward_op(drop))

        # ---------------- MLP block ----------------
        ln2 = layernorm_op(b * l * e / nt, name="mlp.layernorm", dtype_bytes=dt)
        fwd_ops.append(ln2)
        bwd_ops.append(vector_backward_op(ln2))

        fwd_comms.append(CommOp("mlp.ag_y", "all_gather", dt * b * l * e, GROUP_TP1))
        bwd_comms.append(CommOp("mlp.rs_dy", "reduce_scatter", dt * b * l * e, GROUP_TP1))

        up_proj = matmul_op("mlp.up_proj", b * l, e, f / nt, dtype_bytes=dt, shared_operand_b=True)
        fwd_ops.append(up_proj)
        bwd_ops.extend(
            matmul_backward_ops("mlp.up_proj", b * l, e, f / nt, dtype_bytes=dt, shared_operand_b=True)
        )

        act = gelu_op(b * l * f / nt, name="mlp.gelu", dtype_bytes=dt)
        fwd_ops.append(act)
        bwd_ops.append(vector_backward_op(act))

        down_proj = matmul_op(
            "mlp.down_proj", b * l, f / nt, e, dtype_bytes=dt, shared_operand_b=True
        )
        fwd_ops.append(down_proj)
        bwd_ops.extend(
            matmul_backward_ops("mlp.down_proj", b * l, f / nt, e, dtype_bytes=dt, shared_operand_b=True)
        )
        fwd_comms.append(CommOp("mlp.rs_out", "reduce_scatter", dt * b * l * e, GROUP_TP1))
        bwd_comms.append(CommOp("mlp.ag_dout", "all_gather", dt * b * l * e, GROUP_TP1))

        if include_dropout:
            drop = dropout_op(b * l * e / nt, name="mlp.dropout", dtype_bytes=dt)
            fwd_ops.append(drop)
            bwd_ops.append(vector_backward_op(drop))

        # ---------------- Memory & parameters ----------------
        # Stored activations per microbatch (elements, per GPU):
        #   local shards X, Q, S, Y            -> 4 * b*l*e / nt
        #   local K, V (kv_heads wide)         -> 2 * kvr * b*l*e / nt
        #   replicated ~X, ~Y                  -> 2 * b*l*e
        #   MLP intermediate Z and GeLU(Z)     -> 2 * b*l*f / nt
        activation_elements = (
            b * l * e * (2.0 + (4.0 + 2.0 * kvr) / nt) + 2.0 * b * l * f / nt
        )
        if not flash_attention:
            # The (b, h/nt, l, l) attention matrix must be retained as well.
            activation_elements += b * (h / nt) * l * l

        attention_matrix_params = 2.0 * e * e + 2.0 * e * kvd
        matrix_params = attention_matrix_params + 2 * e * f
        attention_biases = 2.0 * e + 2.0 * kvd
        replicated_params = model.layernorm_params_per_layer + attention_biases + f + e
        params_per_gpu = matrix_params / nt + replicated_params

        workload = LayerWorkload(
            forward_ops=fwd_ops,
            forward_comms=fwd_comms,
            backward_ops=bwd_ops,
            backward_comms=bwd_comms,
            activation_elements=activation_elements,
            block_input_elements=b * l * e / nt,
            params_per_gpu=params_per_gpu,
            dp_synced_params=params_per_gpu,
            grad_sync_group=GROUP_DP,
        )
        return apply_expert_parallelism(model, config, workload)


#: Module-level singleton registered for lookup by name.
TP1D = register_strategy(TensorParallel1D())
