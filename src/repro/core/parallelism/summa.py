"""2D tensor parallelism with SUMMA matrix multiplies (Table A2, Algorithm 1).

Like :mod:`repro.core.parallelism.tp2d`, a 2D grid of ``n1 x n2`` GPUs is
used, but the activation-weight matrix multiplies are executed with the
SUMMA algorithm: every matrix (activations *and* weights) is block-
partitioned over the grid, the contraction dimension is split into ``nb``
panels, and each panel step broadcasts an activation panel along the process
rows and a weight panel along the process columns before the local rank-k
update.

Relative to plain 2D TP:

* there are no replicated weights, which further reduces memory pressure;
* the communication volume per matmul is higher in absolute terms (the
  weights travel too): ``V1 = b*l*e/n2 + e^2/n1`` for the attention
  projections and ``V2 = V3 = b*l*e/n2 + e*f/n1`` for the MLP matmuls, but it
  scales down with both grid dimensions;
* all but the first panel's broadcasts can be overlapped with the previous
  panel's compute, so the *exposed* communication is the prologue plus
  whatever part of each panel broadcast exceeds the panel compute — the
  panel count ``nb`` trades broadcast granularity against matmul efficiency
  and is part of the configuration search.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.model import TransformerConfig
from repro.core.operations import (
    AttentionShape,
    CommOp,
    ComputeOp,
    dropout_op,
    flash_attention_backward,
    flash_attention_forward,
    gelu_op,
    layernorm_op,
    matmul_op,
    vector_backward_op,
)
from repro.core.parallelism.base import (
    GROUP_DP,
    GROUP_TP1,
    GROUP_TP2,
    LayerWorkload,
    ParallelConfig,
    SummaMatmul,
    TensorParallelStrategy,
    register_strategy,
)


def _summa_forward(
    name: str,
    m: float,
    k: float,
    n: float,
    *,
    activation_bcast: float,
    weight_bcast: float,
    dtype_bytes: int,
) -> SummaMatmul:
    """Build a forward SUMMA matmul record (two broadcasts per panel)."""
    compute = matmul_op(name, m, k, n, dtype_bytes=dtype_bytes, shared_operand_b=True)
    return SummaMatmul(
        name=name,
        compute=compute,
        activation_bcast_bytes=activation_bcast,
        activation_group=GROUP_TP1,
        weight_bcast_bytes=weight_bcast,
        weight_group=GROUP_TP2,
        inner_dim=int(k),
        output_bytes=dtype_bytes * m * n,
    )


def _summa_backward(
    name: str,
    m: float,
    k: float,
    n: float,
    *,
    activation_bcast: float,
    weight_bcast: float,
    dtype_bytes: int,
) -> List[SummaMatmul]:
    """Backward SUMMA matmuls: dgrad and wgrad, each a Broadcast + Reduce.

    Both transposed multiplies move the same panel volumes as the forward
    multiply; the wgrad's reduction over the grid is part of the SUMMA
    Reduce, so no separate gradient synchronisation over ``n2`` is needed.
    """
    dgrad = SummaMatmul(
        name=f"{name}.dgrad",
        compute=matmul_op(f"{name}.dgrad", m, n, k, dtype_bytes=dtype_bytes, shared_operand_b=True),
        activation_bcast_bytes=activation_bcast,
        activation_group=GROUP_TP1,
        weight_bcast_bytes=weight_bcast,
        weight_group=GROUP_TP2,
        inner_dim=int(n),
        output_bytes=dtype_bytes * m * k,
        transposed=True,
    )
    wgrad = SummaMatmul(
        name=f"{name}.wgrad",
        compute=matmul_op(f"{name}.wgrad", k, m, n, dtype_bytes=dtype_bytes, shared_operand_b=True),
        activation_bcast_bytes=activation_bcast,
        activation_group=GROUP_TP1,
        weight_bcast_bytes=weight_bcast,
        weight_group=GROUP_TP2,
        inner_dim=int(m),
        output_bytes=dtype_bytes * k * n,
        transposed=True,
    )
    return [dgrad, wgrad]


class TensorParallelSUMMA(TensorParallelStrategy):
    """2D tensor parallelism with SUMMA blocked matrix multiplies."""

    name = "summa"

    # ------------------------------------------------------------------
    def validate_config(self, model: TransformerConfig, config: ParallelConfig) -> Optional[str]:
        """2D-grid divisibility, panel rules, and the no-MoE restriction."""
        if model.num_experts > 1 or config.expert_parallel > 1:
            return (
                "summa does not support mixture-of-experts layers "
                "(use tp1d or tp2d for MoE workloads)"
            )
        n1, n2 = config.tensor_parallel_1, config.tensor_parallel_2
        for check in (
            self._check_divisible(model.num_heads, n1, "num_heads vs n1"),
            self._check_divisible(model.kv_heads, n1, "kv_heads vs n1"),
            self._check_divisible(model.embed_dim, n1, "embed_dim vs n1"),
            self._check_divisible(model.embed_dim, n2, "embed_dim vs n2"),
            self._check_divisible(model.hidden_dim, n1, "hidden_dim vs n1"),
            self._check_divisible(model.hidden_dim, n2, "hidden_dim vs n2"),
            self._check_divisible(model.seq_len, n2, "seq_len vs n2"),
            self._check_divisible(model.seq_len, n1 * n2, "seq_len vs n1*n2"),
            self._check_divisible(model.depth, config.pipeline_parallel, "depth vs np"),
        ):
            if check is not None:
                return check
        if config.summa_panels < 1:
            return "summa_panels must be >= 1"
        if model.embed_dim % config.summa_panels != 0:
            return "summa_panels must divide the embedding dimension"
        return None

    # ------------------------------------------------------------------
    def layer_workload(
        self,
        model: TransformerConfig,
        config: ParallelConfig,
        *,
        flash_attention: bool = True,
        include_dropout: bool = False,
    ) -> LayerWorkload:
        """Per-layer workload with blocked-SUMMA matmuls (Table A2)."""
        err = self.validate_config(model, config)
        if err is not None:
            raise ValueError(err)

        b = float(config.microbatch_size)
        l, e, f, h = (
            float(model.seq_len),
            float(model.embed_dim),
            float(model.hidden_dim),
            float(model.num_heads),
        )
        eh = float(model.head_dim)
        n1 = float(config.tensor_parallel_1)
        n2 = float(config.tensor_parallel_2)
        dt = model.dtype_bytes
        # Grouped-query attention: kvr == 1.0 exactly for MHA, keeping the
        # dense formulas bit-identical at the default.
        kvr = float(model.kv_heads) / h
        kvd = e * kvr

        fwd_ops: List[ComputeOp] = []
        fwd_comms: List[CommOp] = []
        bwd_ops: List[ComputeOp] = []
        bwd_comms: List[CommOp] = []
        fwd_summa: List[SummaMatmul] = []
        bwd_summa: List[SummaMatmul] = []

        # Per-GPU broadcast volumes of Table A2 (converted to bytes).
        v_act = dt * b * l * e / n2
        v_w_attn = dt * e * e / n1
        v_w_mlp = dt * e * f / n1
        # LayerNorm statistics reduction across the e-partitioned dimension:
        # only the per-row mean and variance travel (2 scalars per sequence
        # position), not the activation tensor itself.  Table A2 lists the
        # activation volume for this row; an actual implementation (and the
        # competitiveness of SUMMA the paper reports in Fig. A4) requires the
        # statistics-only reduction, which is what we model.
        v_ln_stats = dt * 2.0 * b * l / n2

        # ---------------- Self-attention block ----------------
        # LayerNorm over the fully partitioned X : (b, l/n2, e/n1); the
        # statistics over the e dimension require an AllReduce across n1.
        ln1 = layernorm_op(b * l * e / (n1 * n2), name="sa.layernorm", dtype_bytes=dt)
        fwd_ops.append(ln1)
        bwd_ops.append(vector_backward_op(ln1))
        fwd_comms.append(CommOp("sa.ar_ln", "all_reduce", v_ln_stats, GROUP_TP1))
        bwd_comms.append(CommOp("sa.ar_ln_bwd", "all_reduce", v_ln_stats, GROUP_TP1))

        # QKV projections as SUMMA multiplies: (b*l/n2, e) x (e, e/n1) for Q;
        # the grouped K/V produce kvd/n1 columns (and broadcast proportionally
        # smaller weight panels).
        v_w_kv = dt * e * kvd / n1
        for proj, out_dim, w_bcast in (
            ("q", e, v_w_attn),
            ("k", kvd, v_w_kv),
            ("v", kvd, v_w_kv),
        ):
            fwd_summa.append(
                _summa_forward(
                    f"sa.{proj}_proj",
                    b * l / n2,
                    e,
                    out_dim / n1,
                    activation_bcast=v_act,
                    weight_bcast=w_bcast,
                    dtype_bytes=dt,
                )
            )
            bwd_summa.extend(
                _summa_backward(
                    f"sa.{proj}_proj",
                    b * l / n2,
                    e,
                    out_dim / n1,
                    activation_bcast=v_act,
                    weight_bcast=w_bcast,
                    dtype_bytes=dt,
                )
            )

        # Full-sequence K and V via AllGather over n2 (as in 2D TP).  Only the
        # sequence-sharded K/V are retained for the backward pass; the fused
        # attention backward re-gathers them (two extra AllGathers) and
        # reduce-scatters their gradients.
        fwd_comms.append(CommOp("sa.ag_k", "all_gather", dt * b * l * kvd / n1, GROUP_TP2))
        fwd_comms.append(CommOp("sa.ag_v", "all_gather", dt * b * l * kvd / n1, GROUP_TP2))
        bwd_comms.append(CommOp("sa.ag_k_bwd", "all_gather", dt * b * l * kvd / n1, GROUP_TP2))
        bwd_comms.append(CommOp("sa.ag_v_bwd", "all_gather", dt * b * l * kvd / n1, GROUP_TP2))
        bwd_comms.append(CommOp("sa.rs_dk", "reduce_scatter", dt * b * l * kvd / n1, GROUP_TP2))
        bwd_comms.append(CommOp("sa.rs_dv", "reduce_scatter", dt * b * l * kvd / n1, GROUP_TP2))

        # Fused Logit-Attend: local heads h/n1, local queries l/n2, full K/V.
        attn_shape = AttentionShape(
            batch=b,
            heads=h / n1,
            q_rows=l / n2,
            kv_rows=l,
            head_dim=eh,
            kv_heads=float(model.kv_heads) / n1,
        )
        fwd_ops.extend(flash_attention_forward(attn_shape, dtype_bytes=dt, fused=flash_attention))
        bwd_ops.extend(flash_attention_backward(attn_shape, dtype_bytes=dt, fused=flash_attention))

        # Output projection as another SUMMA multiply (the paper's text notes
        # SUMMA is used for *all* activation-weight operations, leaving no
        # shared weights on the grid).
        fwd_summa.append(
            _summa_forward(
                "sa.out_proj",
                b * l / n2,
                e,
                e / n1,
                activation_bcast=v_act,
                weight_bcast=v_w_attn,
                dtype_bytes=dt,
            )
        )
        bwd_summa.extend(
            _summa_backward(
                "sa.out_proj",
                b * l / n2,
                e,
                e / n1,
                activation_bcast=v_act,
                weight_bcast=v_w_attn,
                dtype_bytes=dt,
            )
        )

        if include_dropout:
            drop = dropout_op(b * l * e / (n1 * n2), name="sa.dropout", dtype_bytes=dt)
            fwd_ops.append(drop)
            bwd_ops.append(vector_backward_op(drop))

        # ---------------- MLP block ----------------
        ln2 = layernorm_op(b * l * e / (n1 * n2), name="mlp.layernorm", dtype_bytes=dt)
        fwd_ops.append(ln2)
        bwd_ops.append(vector_backward_op(ln2))
        fwd_comms.append(CommOp("mlp.ar_ln", "all_reduce", v_ln_stats, GROUP_TP1))
        bwd_comms.append(CommOp("mlp.ar_ln_bwd", "all_reduce", v_ln_stats, GROUP_TP1))

        # Up projection: (b*l/n2, e) x (e, f/n1), W1 : (e/n2, f/n1).
        fwd_summa.append(
            _summa_forward(
                "mlp.up_proj",
                b * l / n2,
                e,
                f / n1,
                activation_bcast=v_act,
                weight_bcast=v_w_mlp,
                dtype_bytes=dt,
            )
        )
        bwd_summa.extend(
            _summa_backward(
                "mlp.up_proj",
                b * l / n2,
                e,
                f / n1,
                activation_bcast=v_act,
                weight_bcast=v_w_mlp,
                dtype_bytes=dt,
            )
        )

        act = gelu_op(b * l * f / (n1 * n2), name="mlp.gelu", dtype_bytes=dt)
        fwd_ops.append(act)
        bwd_ops.append(vector_backward_op(act))

        # Down projection: (b*l/n2, f) x (f, e/n1), W2 : (f/n2, e/n1).
        fwd_summa.append(
            _summa_forward(
                "mlp.down_proj",
                b * l / n2,
                f,
                e / n1,
                activation_bcast=v_act,
                weight_bcast=v_w_mlp,
                dtype_bytes=dt,
            )
        )
        bwd_summa.extend(
            _summa_backward(
                "mlp.down_proj",
                b * l / n2,
                f,
                e / n1,
                activation_bcast=v_act,
                weight_bcast=v_w_mlp,
                dtype_bytes=dt,
            )
        )

        if include_dropout:
            drop = dropout_op(b * l * e / (n1 * n2), name="mlp.dropout", dtype_bytes=dt)
            fwd_ops.append(drop)
            bwd_ops.append(vector_backward_op(drop))

        # ---------------- Memory & parameters ----------------
        # Every retained activation is fully partitioned over the n1 x n2
        # grid (the gathered K/V are re-gathered in the backward pass rather
        # than stored):
        #   ~X, ~Y, X, Q, S, Y                    -> 6 * b*l*e / (n1*n2)
        #   K, V (kv_heads wide)                  -> 2 * kvr * b*l*e / (n1*n2)
        #   MLP intermediate Z and GeLU(Z)        -> 2 * b*l*f / (n1*n2)
        activation_elements = (
            (6.0 + 2.0 * kvr) * b * l * e / (n1 * n2) + 2.0 * b * l * f / (n1 * n2)
        )
        if not flash_attention:
            activation_elements += b * (h / n1) * (l / n2) * l

        # All weight matrices are block-partitioned over the full grid (no
        # shared weights under SUMMA); LayerNorms and biases stay replicated.
        matrix_params = (2.0 * e * e + 2.0 * e * kvd + 2 * e * f) / (n1 * n2)
        attention_biases = 2.0 * e + 2.0 * kvd
        replicated_params = model.layernorm_params_per_layer + attention_biases + f + e
        params_per_gpu = matrix_params + replicated_params

        return LayerWorkload(
            forward_ops=fwd_ops,
            forward_comms=fwd_comms,
            backward_ops=bwd_ops,
            backward_comms=bwd_comms,
            forward_summa=fwd_summa,
            backward_summa=bwd_summa,
            activation_elements=activation_elements,
            block_input_elements=b * l * e / (n1 * n2),
            params_per_gpu=params_per_gpu,
            dp_synced_params=params_per_gpu,
            grad_sync_group=GROUP_DP,
        )


#: Module-level singleton registered for lookup by name.
SUMMA = register_strategy(TensorParallelSUMMA())
