"""Scaling sweeps and hardware sweeps (Q2/Q3 of the paper; Figs. 4, 5, A3, A5, A6).

Three families of experiments are provided:

* :func:`scaling_sweep` — strong scaling of one model on one system: the
  optimal configuration is re-searched independently at every GPU count
  (Fig. 4 and Fig. A3);
* :func:`system_grid_sweep` — end-to-end training time (in days) across GPU
  generations and NVSwitch-domain sizes (Fig. 5);
* :func:`hardware_heatmap` — training time as a function of synthetic GPU
  parameters (tensor-core rate, HBM capacity, HBM bandwidth), holding the
  network fixed (Figs. A5 and A6).

Each sweep is a batch of independent searches and accepts ``jobs`` (worker
processes), ``cache`` (a :class:`~repro.runtime.SearchCache`),
``progress`` and ``warm_start`` keywords, executed through
:class:`~repro.runtime.SweepExecutor`; results are identical to serial
execution regardless of ``jobs``.  Tasks are submitted ordered along the
sweep axis, so warm starting (on by default) chains each point's winner
into the next point's branch-and-bound seed — same optima, far fewer
candidates evaluated (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config_space import DEFAULT_SEARCH_SPACE, SearchSpace
from repro.core.execution import DEFAULT_BACKEND, DEFAULT_OPTIONS, ModelingOptions
from repro.core.model import TransformerConfig
from repro.core.search import DEFAULT_EVAL_MODE, SearchResult
from repro.core.system import NVS_DOMAIN_SIZES, SystemSpec, make_system
from repro.core.training import TrainingRegime, default_regime
from repro.runtime import ProgressCallback, SearchCache, SearchTask, SweepExecutor
from repro.utils.units import GB, TB, to_bytes, to_flops

#: Default GPU-count grids of the paper's scaling plots.
GPT_SCALING_GPUS = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)
VIT_SCALING_GPUS = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
PAPER_GLOBAL_BATCH = 4096


@dataclass(frozen=True)
class ScalingPoint:
    """Optimal-configuration search result at one GPU count."""

    n_gpus: int
    result: SearchResult

    @property
    def iteration_time(self) -> float:
        """Best iteration time found (seconds; ``inf`` when infeasible)."""
        return self.result.best_time

    @property
    def found(self) -> bool:
        """Whether a feasible configuration exists at this scale."""
        return self.result.found


@dataclass
class ScalingSweep:
    """Strong-scaling sweep of one model/strategy/system."""

    model_name: str
    system_name: str
    strategy: str
    global_batch_size: int
    points: List[ScalingPoint] = field(default_factory=list)

    def gpu_counts(self) -> List[int]:
        """GPU counts in sweep order."""
        return [p.n_gpus for p in self.points]

    def iteration_times(self) -> List[float]:
        """Best iteration times in sweep order."""
        return [p.iteration_time for p in self.points]

    def training_days(self, regime: TrainingRegime) -> List[float]:
        """End-to-end training days in sweep order."""
        return [regime.days(p.iteration_time) if p.found else float("inf") for p in self.points]

    def parallel_efficiency(self) -> List[float]:
        """Strong-scaling efficiency relative to the smallest feasible point."""
        base = next((p for p in self.points if p.found), None)
        if base is None:
            return [0.0 for _ in self.points]
        base_throughput = 1.0 / base.iteration_time / base.n_gpus
        out = []
        for p in self.points:
            if not p.found:
                out.append(0.0)
                continue
            throughput = 1.0 / p.iteration_time / p.n_gpus
            out.append(throughput / base_throughput)
        return out


def scaling_sweep(
    model: TransformerConfig,
    system: SystemSpec,
    *,
    strategy: str = "tp1d",
    n_gpus_list: Sequence[int] = GPT_SCALING_GPUS,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = DEFAULT_EVAL_MODE,
    jobs: Optional[int] = None,
    cache: Optional[SearchCache] = None,
    progress: Optional[ProgressCallback] = None,
    warm_start: bool = True,
) -> ScalingSweep:
    """Re-run the optimal-configuration search at every GPU count (Fig. 4)."""
    sweep = ScalingSweep(
        model_name=model.name,
        system_name=system.name,
        strategy=strategy,
        global_batch_size=global_batch_size,
    )
    tasks = [
        SearchTask(
            model=model,
            system=system,
            n_gpus=n,
            global_batch_size=global_batch_size,
            strategy=strategy,
            space=space,
            options=options,
            backend=backend,
            eval_mode=eval_mode,
        )
        for n in n_gpus_list
    ]
    executor = SweepExecutor(jobs, cache=cache, progress=progress)
    for n, result in zip(n_gpus_list, executor.run(tasks, warm_start=warm_start)):
        sweep.points.append(ScalingPoint(n_gpus=n, result=result))
    return sweep


@dataclass
class SystemScalingSeries:
    """Training-days series of one system (one line of Fig. 5)."""

    system_name: str
    gpu_generation: str
    nvs_domain_size: int
    n_gpus: List[int] = field(default_factory=list)
    training_days: List[float] = field(default_factory=list)
    iteration_times: List[float] = field(default_factory=list)


def system_grid_sweep(
    model: TransformerConfig,
    *,
    strategy: str = "tp1d",
    gpu_generations: Sequence[str] = ("A100", "H200", "B200"),
    nvs_domain_sizes: Sequence[int] = NVS_DOMAIN_SIZES,
    n_gpus_list: Sequence[int] = GPT_SCALING_GPUS,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    regime: Optional[TrainingRegime] = None,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = DEFAULT_EVAL_MODE,
    jobs: Optional[int] = None,
    cache: Optional[SearchCache] = None,
    progress: Optional[ProgressCallback] = None,
    warm_start: bool = True,
) -> List[SystemScalingSeries]:
    """Training time in days vs GPU count across the system grid (Fig. 5)."""
    regime = regime or default_regime(model, global_batch_size)
    series: List[SystemScalingSeries] = []
    tasks: List[SearchTask] = []
    for generation in gpu_generations:
        for nvs in nvs_domain_sizes:
            system = make_system(generation, nvs)
            series.append(
                SystemScalingSeries(
                    system_name=system.name,
                    gpu_generation=generation,
                    nvs_domain_size=nvs,
                )
            )
            tasks.extend(
                SearchTask(
                    model=model,
                    system=system,
                    n_gpus=n,
                    global_batch_size=global_batch_size,
                    strategy=strategy,
                    space=space,
                    options=options,
                    backend=backend,
                    eval_mode=eval_mode,
                )
                for n in n_gpus_list
            )

    executor = SweepExecutor(jobs, cache=cache, progress=progress)
    results = executor.run(tasks, warm_start=warm_start)
    per_series = len(list(n_gpus_list))
    for i, entry in enumerate(series):
        for j, n in enumerate(n_gpus_list):
            result = results[i * per_series + j]
            entry.n_gpus.append(n)
            entry.iteration_times.append(result.best_time)
            entry.training_days.append(
                regime.days(result.best_time) if result.found else float("inf")
            )
    return series


@dataclass
class HardwareHeatmap:
    """Training time over a 2D grid of synthetic GPU parameters."""

    model_name: str
    strategy: str
    n_gpus: int
    x_label: str
    y_label: str
    x_values: List[float] = field(default_factory=list)
    y_values: List[float] = field(default_factory=list)
    #: ``training_days[i][j]`` corresponds to ``(y_values[i], x_values[j])``.
    training_days: List[List[float]] = field(default_factory=list)

    def as_array(self) -> np.ndarray:
        """Training-days grid as a NumPy array (rows = y, cols = x)."""
        return np.asarray(self.training_days, dtype=float)

    def min_point(self) -> Tuple[float, float, float]:
        """(x, y, days) of the fastest grid point."""
        arr = self.as_array()
        i, j = np.unravel_index(np.nanargmin(arr), arr.shape)
        return self.x_values[j], self.y_values[i], float(arr[i, j])


def hardware_heatmap(
    model: TransformerConfig,
    *,
    strategy: str = "tp1d",
    n_gpus: int = 8192,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    mode: str = "capacity_vs_flops",
    capacity_gb: Sequence[float] = (80, 141, 192, 256, 352),
    bandwidth_tbps: Sequence[float] = (1.5, 4.8, 8.0, 12.0, 16.0),
    tensor_tflops: Sequence[float] = (312, 990, 2500, 3500),
    base_generation: str = "B200",
    nvs_domain_size: int = 8,
    regime: Optional[TrainingRegime] = None,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = DEFAULT_EVAL_MODE,
    jobs: Optional[int] = None,
    cache: Optional[SearchCache] = None,
    progress: Optional[ProgressCallback] = None,
    warm_start: bool = True,
) -> HardwareHeatmap:
    """Training-days heatmap over synthetic GPU parameters (Figs. A5 / A6).

    Two modes are provided:

    * ``capacity_vs_flops`` (Fig. A5): the x axis jointly scales HBM capacity
      and bandwidth (as the paper does — the two are swept together on the x
      axis) and the y axis scales the tensor-core rate (the vector rate is
      scaled proportionally).  The network stays at the base generation.
    * ``capacity_vs_bandwidth`` (Fig. A6): capacity on x, bandwidth on y,
      compute and network fixed at the base generation.
    """
    regime = regime or default_regime(model, global_batch_size)
    base = make_system(base_generation, nvs_domain_size)

    if mode not in ("capacity_vs_flops", "capacity_vs_bandwidth"):
        raise ValueError(f"unknown heatmap mode {mode!r}")

    if mode == "capacity_vs_flops":
        x_values = list(capacity_gb)
        y_values = list(tensor_tflops)
        x_label = "hbm_capacity_gb"
        y_label = "tensor_tflops"
    else:
        x_values = list(capacity_gb)
        y_values = list(bandwidth_tbps)
        x_label = "hbm_capacity_gb"
        y_label = "hbm_bandwidth_tbps"

    # Pair each capacity with a bandwidth in capacity_vs_flops mode (the
    # paper sweeps them together on the shared x axis).
    paired_bandwidths = list(bandwidth_tbps)
    while len(paired_bandwidths) < len(x_values):
        paired_bandwidths.append(paired_bandwidths[-1])

    tasks: List[SearchTask] = []
    for y in y_values:
        for idx, x in enumerate(x_values):
            if mode == "capacity_vs_flops":
                ratio = to_flops(y, "TFLOPS") / base.gpu.tensor_flops
                gpu = base.gpu.with_overrides(
                    tensor_flops=to_flops(y, "TFLOPS"),
                    vector_flops=base.gpu.vector_flops * ratio,
                    hbm_capacity=to_bytes(x, "GB"),
                    hbm_bandwidth=paired_bandwidths[idx] * TB,
                )
            else:
                gpu = base.gpu.with_overrides(
                    hbm_capacity=to_bytes(x, "GB"),
                    hbm_bandwidth=y * TB,
                )
            tasks.append(
                SearchTask(
                    model=model,
                    system=SystemSpec(gpu=gpu, network=base.network),
                    n_gpus=n_gpus,
                    global_batch_size=global_batch_size,
                    strategy=strategy,
                    space=space,
                    options=options,
                    backend=backend,
                    eval_mode=eval_mode,
                )
            )

    executor = SweepExecutor(jobs, cache=cache, progress=progress)
    results = executor.run(tasks, warm_start=warm_start)
    grid = [
        [
            regime.days(result.best_time) if result.found else float("inf")
            for result in results[i * len(x_values) : (i + 1) * len(x_values)]
        ]
        for i in range(len(y_values))
    ]

    return HardwareHeatmap(
        model_name=model.name,
        strategy=strategy,
        n_gpus=n_gpus,
        x_label=x_label,
        y_label=y_label,
        x_values=[float(v) for v in x_values],
        y_values=[float(v) for v in y_values],
        training_days=grid,
    )
