"""Relative speedups of the 2D tensor-parallel variants over 1D TP (Fig. A4).

For every GPU count and every system of the paper's grid, the optimal
configuration is searched independently for 1D TP and for a 2D variant
(plain 2D TP or SUMMA); the speedup is the ratio of the 1D optimum's
iteration time to the 2D optimum's.  The paper reports speedups of roughly
5-10%, with SUMMA helping most in resource-constrained regimes (small GPU
counts, small HBM capacity, small NVSwitch domains) and plain 2D TP helping
more at the largest scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config_space import DEFAULT_SEARCH_SPACE, SearchSpace
from repro.core.execution import DEFAULT_BACKEND, DEFAULT_OPTIONS, ModelingOptions
from repro.core.model import TransformerConfig
from repro.core.search import DEFAULT_EVAL_MODE
from repro.core.system import make_system
from repro.runtime import ProgressCallback, SearchCache, SearchTask, SweepExecutor


@dataclass(frozen=True)
class SpeedupPoint:
    """Speedup of one 2D variant over 1D TP at one (system, GPU count)."""

    system_name: str
    n_gpus: int
    baseline_strategy: str
    variant_strategy: str
    baseline_time: float
    variant_time: float

    @property
    def speedup(self) -> float:
        """Baseline time divided by variant time (> 1 means the 2D variant wins)."""
        if self.variant_time <= 0 or self.variant_time == float("inf"):
            return 0.0
        if self.baseline_time == float("inf"):
            return float("inf")
        return self.baseline_time / self.variant_time


def speedup_sweep(
    model: TransformerConfig,
    *,
    variant_strategy: str = "summa",
    baseline_strategy: str = "tp1d",
    gpu_generations: Sequence[str] = ("A100", "H200", "B200"),
    nvs_domain_sizes: Sequence[int] = (4, 8, 64),
    n_gpus_list: Sequence[int] = (128, 256, 512, 1024, 2048, 4096, 8192, 16384),
    global_batch_size: int = 4096,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
    options: ModelingOptions = DEFAULT_OPTIONS,
    backend: str = DEFAULT_BACKEND,
    eval_mode: str = DEFAULT_EVAL_MODE,
    jobs: Optional[int] = None,
    cache: Optional[SearchCache] = None,
    progress: Optional[ProgressCallback] = None,
    warm_start: bool = True,
) -> List[SpeedupPoint]:
    """Fig. A4: speedup of ``variant_strategy`` w.r.t. ``baseline_strategy``.

    The baseline and variant searches of every grid point are all
    independent, so the whole sweep is one executor batch (and the baseline
    searches are natural cache hits for other sweeps over the same grid).
    """
    grid = [
        (make_system(generation, nvs), n)
        for generation in gpu_generations
        for nvs in nvs_domain_sizes
        for n in n_gpus_list
    ]
    tasks = [
        SearchTask(
            model=model,
            system=system,
            n_gpus=n,
            global_batch_size=global_batch_size,
            strategy=strat,
            space=space,
            options=options,
            backend=backend,
            eval_mode=eval_mode,
        )
        for system, n in grid
        for strat in (baseline_strategy, variant_strategy)
    ]
    executor = SweepExecutor(jobs, cache=cache, progress=progress)
    results = executor.run(tasks, warm_start=warm_start)

    points: List[SpeedupPoint] = []
    for idx, (system, n) in enumerate(grid):
        baseline, variant = results[2 * idx], results[2 * idx + 1]
        points.append(
            SpeedupPoint(
                system_name=system.name,
                n_gpus=n,
                baseline_strategy=baseline_strategy,
                variant_strategy=variant_strategy,
                baseline_time=baseline.best_time,
                variant_time=variant.best_time,
            )
        )
    return points


def speedups_by_system(points: Sequence[SpeedupPoint]) -> Dict[str, List[SpeedupPoint]]:
    """Group speedup points by system name (one Fig. A4 line each)."""
    grouped: Dict[str, List[SpeedupPoint]] = {}
    for point in points:
        grouped.setdefault(point.system_name, []).append(point)
    for series in grouped.values():
        series.sort(key=lambda p: p.n_gpus)
    return grouped
