"""Analysis layer: the paper's experiments expressed as reusable sweeps.

Each module maps to a family of figures/tables of the paper:

* :mod:`repro.analysis.configurations` — fixed-parallelization rationale
  studies (Figs. 1, 2, 3, A2);
* :mod:`repro.analysis.sweeps` — strong-scaling sweeps, GPU-generation /
  NVS-domain grids and hardware heatmaps (Figs. 4, 5, A3, A5, A6);
* :mod:`repro.analysis.speedups` — 2D TP vs 1D TP speedups (Fig. A4);
* :mod:`repro.analysis.validation` — comparison against the empirical
  Megatron-LM validation numbers published in §IV;
* :mod:`repro.analysis.reporting` — plain-text rendering of all of the above.
"""

from repro.analysis.configurations import (
    ConfigPoint,
    ConfigurationStudy,
    fig1_tp_dp_study,
    fig2_pp_dp_study,
    fig3_summa_study,
    figA2_tp2d_study,
)
from repro.analysis.sweeps import (
    HardwareHeatmap,
    ScalingPoint,
    ScalingSweep,
    SystemScalingSeries,
    hardware_heatmap,
    scaling_sweep,
    system_grid_sweep,
)
from repro.analysis.speedups import SpeedupPoint, speedup_sweep
from repro.analysis.validation import (
    ValidationCase,
    ValidationComparison,
    PAPER_VALIDATION_CASES,
    run_validation,
)
from repro.analysis.reporting import (
    render_configuration_study,
    render_scaling_sweep,
    render_system_grid,
    render_heatmap,
    render_speedups,
    render_validation,
)

__all__ = [
    "ConfigPoint",
    "ConfigurationStudy",
    "HardwareHeatmap",
    "PAPER_VALIDATION_CASES",
    "ScalingPoint",
    "ScalingSweep",
    "SpeedupPoint",
    "SystemScalingSeries",
    "ValidationCase",
    "ValidationComparison",
    "fig1_tp_dp_study",
    "fig2_pp_dp_study",
    "fig3_summa_study",
    "figA2_tp2d_study",
    "hardware_heatmap",
    "render_configuration_study",
    "render_heatmap",
    "render_scaling_sweep",
    "render_speedups",
    "render_system_grid",
    "render_validation",
    "run_validation",
    "scaling_sweep",
    "speedup_sweep",
    "system_grid_sweep",
]
