"""Fixed-parallelization "rationale" studies (Q1 of the paper; Figs. 1-3, A2).

These experiments fix the total GPU count and global batch size, sweep two
parallelization parameters while holding the others constant, optimise the
GPU-to-NVSwitch assignment for every point, and report the resulting time
breakdown and memory footprint.  They expose *why* the optimal configuration
looks the way it does: the convexity of time vs TP/DP, the non-convexities
introduced by the dual-bandwidth network, and the way larger NVSwitch
domains shift the optimum towards high data parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.execution import DEFAULT_OPTIONS, IterationEstimate, ModelingOptions
from repro.core.model import GPT3_1T, VIT_LONG_SEQ, TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.search import best_assignment_for
from repro.core.system import SystemSpec, make_system
from repro.core.config_space import DEFAULT_SEARCH_SPACE, SearchSpace

#: Global batch size used by every experiment in the paper.
PAPER_GLOBAL_BATCH = 4096
#: GPU count of the rationale studies (Figs. 1-3, A2).
PAPER_RATIONALE_GPUS = 16384

_CONFIG_LABELS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


@dataclass(frozen=True)
class ConfigPoint:
    """One labelled configuration of a rationale study."""

    label: str
    estimate: IterationEstimate

    @property
    def config(self) -> ParallelConfig:
        """The parallelization configuration of this point."""
        return self.estimate.config

    @property
    def total_time(self) -> float:
        """Iteration time in seconds."""
        return self.estimate.total_time


@dataclass
class ConfigurationStudy:
    """A labelled sweep of configurations (one paper panel)."""

    name: str
    model_name: str
    system_name: str
    n_gpus: int
    global_batch_size: int
    points: List[ConfigPoint] = field(default_factory=list)

    def fastest(self, *, feasible_only: bool = True) -> ConfigPoint:
        """The fastest (optionally feasible-only) point of the study."""
        pool = [p for p in self.points if p.estimate.feasible] if feasible_only else self.points
        if not pool:
            pool = self.points
        return min(pool, key=lambda p: p.total_time)

    def times(self) -> List[float]:
        """Iteration times in sweep order."""
        return [p.total_time for p in self.points]

    def memory_gb(self) -> List[float]:
        """Memory footprints (GB) in sweep order."""
        return [p.estimate.memory_gb for p in self.points]


def _evaluate_labelled(
    name: str,
    model: TransformerConfig,
    system: SystemSpec,
    configs: Sequence[ParallelConfig],
    *,
    global_batch_size: int,
    options: ModelingOptions,
    space: SearchSpace,
) -> ConfigurationStudy:
    points = []
    for i, config in enumerate(configs):
        label = _CONFIG_LABELS[i] if i < len(_CONFIG_LABELS) else f"#{i}"
        estimate = best_assignment_for(
            model,
            system,
            config,
            global_batch_size=global_batch_size,
            space=space,
            options=options,
        )
        points.append(ConfigPoint(label=label, estimate=estimate))
    return ConfigurationStudy(
        name=name,
        model_name=model.name,
        system_name=system.name,
        n_gpus=configs[0].total_gpus if configs else 0,
        global_batch_size=global_batch_size,
        points=points,
    )


# ----------------------------------------------------------------------
# Fig. 1: GPT3-1T, 1D TP, PP fixed at 64, vary TP / DP
# ----------------------------------------------------------------------

def fig1_tp_dp_study(
    *,
    model: TransformerConfig = GPT3_1T,
    system: Optional[SystemSpec] = None,
    n_gpus: int = PAPER_RATIONALE_GPUS,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    pipeline_parallel: int = 64,
    microbatch_size: int = 1,
    tp_values: Sequence[int] = (1, 2, 4, 8, 16, 32),
    options: ModelingOptions = DEFAULT_OPTIONS,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> ConfigurationStudy:
    """Fig. 1: fix PP = 64 and sweep TP (with DP = n / (TP * PP)).

    The paper observes an apparently convex time-vs-TP curve with a local
    minimum around ``nt = 8`` (Config D): small TP runs out of memory or
    exposes pipeline bubbles, large TP exposes tensor-parallel communication.
    """
    system = system or make_system("B200", 8)
    configs = []
    for nt in tp_values:
        if n_gpus % (nt * pipeline_parallel) != 0:
            continue
        nd = n_gpus // (nt * pipeline_parallel)
        if global_batch_size % nd != 0:
            continue
        configs.append(
            ParallelConfig(
                strategy="tp1d",
                tensor_parallel_1=nt,
                tensor_parallel_2=1,
                pipeline_parallel=pipeline_parallel,
                data_parallel=nd,
                microbatch_size=microbatch_size,
            )
        )
    return _evaluate_labelled(
        "fig1", model, system, configs,
        global_batch_size=global_batch_size, options=options, space=space,
    )


# ----------------------------------------------------------------------
# Fig. 2: GPT3-1T, 1D TP, TP fixed at 8, vary PP / DP on two NVS sizes
# ----------------------------------------------------------------------

def fig2_pp_dp_study(
    *,
    model: TransformerConfig = GPT3_1T,
    nvs_domain_size: int = 8,
    gpu_generation: str = "B200",
    n_gpus: int = PAPER_RATIONALE_GPUS,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    tensor_parallel: int = 8,
    microbatch_size: int = 1,
    pp_values: Sequence[int] = (128, 64, 32, 16, 8, 4, 2, 1),
    options: ModelingOptions = DEFAULT_OPTIONS,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> ConfigurationStudy:
    """Fig. 2: fix TP = 8 and sweep PP (DP = n / (TP * PP)).

    Configurations are ordered by *increasing* data parallelism (decreasing
    pipeline parallelism), as in the paper.  On a small NVS domain the
    optimum sits at large PP (np = 64); on a 64-GPU domain the optimum shifts
    to tiny PP because the fast domain hides the DP communication.
    """
    system = make_system(gpu_generation, nvs_domain_size)
    configs = []
    for np_ in pp_values:
        if model.depth % np_ != 0:
            continue
        if n_gpus % (tensor_parallel * np_) != 0:
            continue
        nd = n_gpus // (tensor_parallel * np_)
        if global_batch_size % nd != 0:
            continue
        if (global_batch_size // nd) % microbatch_size != 0:
            continue
        configs.append(
            ParallelConfig(
                strategy="tp1d",
                tensor_parallel_1=tensor_parallel,
                tensor_parallel_2=1,
                pipeline_parallel=np_,
                data_parallel=nd,
                microbatch_size=microbatch_size,
            )
        )
    return _evaluate_labelled(
        f"fig2-nvs{nvs_domain_size}", model, system, configs,
        global_batch_size=global_batch_size, options=options, space=space,
    )


# ----------------------------------------------------------------------
# Fig. 3 / Fig. A2a: 2D TP (SUMMA or plain) n1/n2 split studies
# ----------------------------------------------------------------------

def _two_regime_tp_splits(
    total_gpus: int,
    high_dp: Tuple[int, int],
    low_dp: Tuple[int, int],
    model_depth: int,
) -> List[Tuple[int, int, int]]:
    """Build (n1, n2, np) tuples for the high-DP and low-DP regimes.

    ``high_dp``/``low_dp`` are (tensor_parallel, pipeline_parallel) pairs;
    all n1*n2 = tensor_parallel splits with n1 >= 1 are enumerated for each.
    """
    splits: List[Tuple[int, int, int]] = []
    for nt, np_ in (high_dp, low_dp):
        if model_depth % np_ != 0:
            continue
        n1 = nt
        while n1 >= 1:
            n2 = nt // n1
            if n1 * n2 == nt:
                splits.append((n1, n2, np_))
            n1 //= 2
    return splits


def fig3_summa_study(
    *,
    model: TransformerConfig = GPT3_1T,
    nvs_domain_size: int = 8,
    gpu_generation: str = "B200",
    n_gpus: int = PAPER_RATIONALE_GPUS,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    high_dp_regime: Tuple[int, int] = (32, 1),
    low_dp_regime: Tuple[int, int] = (8, 128),
    summa_panels: int = 2,
    options: ModelingOptions = DEFAULT_OPTIONS,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> ConfigurationStudy:
    """Fig. 3: 2D TP SUMMA with (nt, np) = (32, 1) then (8, 128).

    For each regime the relative allocation of the tensor-parallel GPUs into
    ``n1 x n2`` is varied.  On a small NVS domain the fastest configuration
    degenerates to 1D TP (n2 = 1) with high PP; a 64-GPU domain favours the
    high-DP regime because the fast domain absorbs the TP cost.
    """
    return _tp_grid_study(
        "fig3", "summa", model, gpu_generation, nvs_domain_size, n_gpus,
        global_batch_size, high_dp_regime, low_dp_regime, summa_panels, options, space,
    )


def figA2_tp2d_study(
    *,
    model: TransformerConfig = GPT3_1T,
    nvs_domain_size: int = 64,
    gpu_generation: str = "B200",
    n_gpus: int = PAPER_RATIONALE_GPUS,
    global_batch_size: int = PAPER_GLOBAL_BATCH,
    high_dp_regime: Tuple[int, int] = (32, 1),
    low_dp_regime: Tuple[int, int] = (8, 128),
    options: ModelingOptions = DEFAULT_OPTIONS,
    space: SearchSpace = DEFAULT_SEARCH_SPACE,
) -> ConfigurationStudy:
    """Fig. A2: plain 2D TP version of the Fig. 3 study.

    For the ViT panel call this with ``model=VIT_LONG_SEQ`` and regimes such
    as ``(16, 1)`` and ``(16, 16)`` (the ViT requires nt >= 16 to fit).
    """
    return _tp_grid_study(
        "figA2", "tp2d", model, gpu_generation, nvs_domain_size, n_gpus,
        global_batch_size, high_dp_regime, low_dp_regime, 1, options, space,
    )


def _tp_grid_study(
    name: str,
    strategy: str,
    model: TransformerConfig,
    gpu_generation: str,
    nvs_domain_size: int,
    n_gpus: int,
    global_batch_size: int,
    high_dp_regime: Tuple[int, int],
    low_dp_regime: Tuple[int, int],
    summa_panels: int,
    options: ModelingOptions,
    space: SearchSpace,
) -> ConfigurationStudy:
    from repro.core.parallelism.base import get_strategy

    system = make_system(gpu_generation, nvs_domain_size)
    strat = get_strategy(strategy)
    configs: List[ParallelConfig] = []
    for n1, n2, np_ in _two_regime_tp_splits(
        n_gpus, high_dp_regime, low_dp_regime, model.depth
    ):
        nt = n1 * n2
        if n_gpus % (nt * np_) != 0:
            continue
        nd = n_gpus // (nt * np_)
        if global_batch_size % nd != 0:
            continue
        local_batch = global_batch_size // nd
        microbatch = 1 if np_ > 1 else local_batch  # np=1: a single microbatch
        if local_batch % microbatch != 0:
            continue
        config = ParallelConfig(
            strategy=strategy,
            tensor_parallel_1=n1,
            tensor_parallel_2=n2,
            pipeline_parallel=np_,
            data_parallel=nd,
            microbatch_size=microbatch,
            summa_panels=summa_panels if strategy == "summa" else 1,
        )
        if strat.validate_config(model, config) is None:
            configs.append(config)
    return _evaluate_labelled(
        f"{name}-{model.name}-nvs{nvs_domain_size}", model, system, configs,
        global_batch_size=global_batch_size, options=options, space=space,
    )
