"""Differential testing: analytic backend vs the message-level sim oracle.

PRs 1-3 made the closed-form model fast, searchable and schedule-pluggable;
this harness is what makes every future refactor of it cheap to trust.  For
a grid of scenarios — dense / MoE / GQA workloads x every registered
pipeline schedule (1F1B, GPipe, interleaved v in {2, 4}) x every
tensor-parallel strategy (1D, 2D, SUMMA) — it evaluates the *same*
(configuration, NVS-assignment) candidate under both evaluation backends
(:mod:`repro.core.backends`) and asserts the two agree term by term within
a documented tolerance band.

Tolerance rationale
-------------------
The two backends share the roofline compute/HBM model, so ``compute`` and
``memory`` must agree to floating-point noise.  Every other term differs
for a *structural* reason, which sets its band:

* **comm terms** (``tp_comm``, ``pp_comm``, ``dp_comm``) — the ring replay
  is bulk-synchronous: each of the ``n - 1`` steps lasts as long as its
  slowest active link, so a multi-node ring pays the slow-link latency in
  *every* step, while the closed form charges ``n/g - 1`` slow hops total
  and lets the bandwidth term hide the rest.  The paper itself reports
  10-25% model-vs-measurement error for collectives (Fig. A1); we allow
  25% relative plus a 100 us floor for terms too small to matter.
* **pp_bubble** — the event-driven replay reproduces the 1F1B/GPipe ramp
  exactly and the interleaved ``(np-1)(tf+tb)/v`` ramp exactly whenever
  ``m % np == 0`` (the grid only uses such points, as Megatron requires);
  what remains is the deviation of the *stage times* feeding the formula,
  which inherit the comm-term deviation.  Same band as the comm terms.
* **total** — deviations are concentrated in the (sub-dominant) comm
  terms, so the end-to-end iteration time must agree much tighter: 10%.

A failure prints a per-term table of both backends' seconds and the band
that was violated (:func:`format_failure_diff`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.execution import (
    DEFAULT_OPTIONS,
    IterationEstimate,
    ModelingOptions,
    evaluate_config,
)
from repro.core.parallelism.base import ParallelConfig
from repro.core.plan import TIME_CATEGORIES
from repro.core.search import best_assignment_for
from repro.core.system import SystemSpec, make_system
from repro.core.workloads import get_workload
from repro.runtime import SweepExecutor

#: GPU count scale of the default grid: nt(4) x np(4) x nd(4).
_GRID_GLOBAL_BATCH = 64


@dataclass(frozen=True)
class ToleranceBand:
    """Acceptance band for one breakdown term: ``|s - a| <= abs + rel * max``."""

    rel: float
    abs: float = 0.0

    def allows(self, analytic: float, simulated: float) -> bool:
        """Whether the two values agree within the band."""
        scale = max(abs(analytic), abs(simulated))
        return abs(simulated - analytic) <= self.abs + self.rel * scale


#: The documented per-term bands (see the module docstring for rationale).
TOLERANCES: Dict[str, ToleranceBand] = {
    "compute": ToleranceBand(rel=1e-9),
    "memory": ToleranceBand(rel=1e-9),
    "tp_comm": ToleranceBand(rel=0.25, abs=1e-4),
    "pp_bubble": ToleranceBand(rel=0.25, abs=1e-4),
    "pp_comm": ToleranceBand(rel=0.25, abs=1e-4),
    "dp_comm": ToleranceBand(rel=0.25, abs=1e-4),
    "total": ToleranceBand(rel=0.10),
}


@dataclass(frozen=True)
class DifferentialCase:
    """One grid point: a workload under a fixed parallelization."""

    name: str
    workload: str
    config: ParallelConfig
    global_batch_size: int = _GRID_GLOBAL_BATCH

    @property
    def strategy(self) -> str:
        return self.config.strategy

    @property
    def schedule(self) -> str:
        return self.config.schedule


@dataclass(frozen=True)
class TermDelta:
    """Analytic-vs-simulated comparison of one breakdown term."""

    term: str
    analytic: float
    simulated: float
    within: bool

    @property
    def abs_error(self) -> float:
        return abs(self.simulated - self.analytic)

    @property
    def rel_error(self) -> float:
        scale = max(abs(self.analytic), abs(self.simulated))
        return self.abs_error / scale if scale > 0 else 0.0


@dataclass
class DifferentialResult:
    """Outcome of one differential comparison."""

    case: DifferentialCase
    analytic: IterationEstimate
    simulated: IterationEstimate
    deltas: List[TermDelta] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every term (and the total) is inside its band."""
        return all(d.within for d in self.deltas)

    @property
    def max_rel_error(self) -> float:
        """Largest relative error over the compared terms."""
        return max((d.rel_error for d in self.deltas), default=0.0)

    def failing_terms(self) -> List[TermDelta]:
        return [d for d in self.deltas if not d.within]


def _compare(case: DifferentialCase, a: IterationEstimate, s: IterationEstimate) -> DifferentialResult:
    deltas = []
    a_dict = a.breakdown.as_dict()
    s_dict = s.breakdown.as_dict()
    for term in TIME_CATEGORIES:
        band = TOLERANCES[term]
        deltas.append(
            TermDelta(
                term=term,
                analytic=a_dict[term],
                simulated=s_dict[term],
                within=band.allows(a_dict[term], s_dict[term]),
            )
        )
    band = TOLERANCES["total"]
    deltas.append(
        TermDelta(
            term="total",
            analytic=a.breakdown.total,
            simulated=s.breakdown.total,
            within=band.allows(a.breakdown.total, s.breakdown.total),
        )
    )
    return DifferentialResult(case=case, analytic=a, simulated=s, deltas=deltas)


def run_case(
    case: DifferentialCase,
    system: Optional[SystemSpec] = None,
    *,
    options: ModelingOptions = DEFAULT_OPTIONS,
) -> DifferentialResult:
    """Differentially evaluate one grid point.

    The NVS assignment is chosen once — the analytic optimum for the
    candidate, mirroring how the search would place it — and the *same*
    assignment is then replayed by the simulation backend, so the
    comparison isolates the cost model, not the placement.
    """
    system = system or make_system("B200", 8)
    model = get_workload(case.workload).model
    analytic = best_assignment_for(
        model,
        system,
        case.config,
        global_batch_size=case.global_batch_size,
        options=options,
    )
    simulated = evaluate_config(
        model,
        system,
        case.config,
        analytic.assignment,
        global_batch_size=case.global_batch_size,
        options=options,
        backend="sim",
    )
    return _compare(case, analytic, simulated)


def _run_case_args(args: Tuple[DifferentialCase, SystemSpec, ModelingOptions]) -> DifferentialResult:
    """Module-level adapter so the grid can fan out across processes."""
    case, system, options = args
    return run_case(case, system, options=options)


# ----------------------------------------------------------------------
# The default grid
# ----------------------------------------------------------------------

#: (schedule, virtual stages) axis of the grid.
GRID_SCHEDULES: Tuple[Tuple[str, int], ...] = (
    ("1f1b", 1),
    ("gpipe", 1),
    ("interleaved", 2),
    ("interleaved", 4),
)

#: Workload axis: one dense, one MoE (32 experts, EP carved from DP), one
#: GQA scenario.  SUMMA does not support MoE layers, so that cell is
#: skipped (matching the strategy's own validation).
GRID_WORKLOADS: Tuple[str, ...] = ("gpt3-1t", "moe-1t", "gpt3-1t-gqa")

GRID_STRATEGIES: Tuple[str, ...] = ("tp1d", "tp2d", "summa")


def _grid_config(
    workload: str, strategy: str, schedule: str, virtual_stages: int
) -> Optional[ParallelConfig]:
    """The grid's canonical configuration for one cell (None = skipped).

    All cells use np=4 stages, nd=4 replicas and bm=1 on 64 GPUs with a
    global batch of 64, i.e. m=16 microbatches — a multiple of np, so the
    interleaved cells replay Megatron's real schedule, and np*v (at most
    16) divides every grid model's depth (64 and 128).
    """
    moe = "moe" in get_workload(workload).tags
    if moe and strategy == "summa":
        return None  # SUMMA has no MoE support (validated by the strategy)
    n1, n2 = (4, 1) if strategy == "tp1d" else (2, 2)
    return ParallelConfig(
        strategy=strategy,
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=4,
        data_parallel=4,
        microbatch_size=1,
        summa_panels=4 if strategy == "summa" else 1,
        expert_parallel=4 if moe else 1,
        schedule=schedule,
        virtual_stages=virtual_stages,
    )


def build_default_grid(workloads: Optional[Sequence[str]] = None) -> List[DifferentialCase]:
    """The dense/MoE/GQA x schedule x TP-strategy validation grid."""
    cases: List[DifferentialCase] = []
    for workload in workloads or GRID_WORKLOADS:
        for strategy in GRID_STRATEGIES:
            for schedule, v in GRID_SCHEDULES:
                config = _grid_config(workload, strategy, schedule, v)
                if config is None:
                    continue
                suffix = f"{schedule}" + (f"(v={v})" if v > 1 else "")
                cases.append(
                    DifferentialCase(
                        name=f"{workload}/{strategy}/{suffix}",
                        workload=workload,
                        config=config,
                    )
                )
    return cases


def run_differential_grid(
    cases: Optional[Sequence[DifferentialCase]] = None,
    system: Optional[SystemSpec] = None,
    *,
    options: ModelingOptions = DEFAULT_OPTIONS,
    jobs: Optional[int] = None,
) -> List[DifferentialResult]:
    """Run the full differential grid (``repro-perf validate --backend sim``).

    The cases are independent, so ``jobs > 1`` fans them across worker
    processes; result order always follows ``cases``.
    """
    cases = list(cases if cases is not None else build_default_grid())
    system = system or make_system("B200", 8)
    executor = SweepExecutor(jobs)
    return executor.map(_run_case_args, [(case, system, options) for case in cases])


def format_failure_diff(result: DifferentialResult) -> str:
    """Human-readable per-term diff of one out-of-band comparison."""
    lines = [
        f"{result.case.name}: simulated backend disagrees with the analytic model",
        f"  config: {result.case.config.describe()}  "
        f"assignment: {result.analytic.assignment.as_tuple()}",
        f"  {'term':10s} {'analytic(s)':>14s} {'simulated(s)':>14s} "
        f"{'rel err':>9s} {'band(rel,abs)':>16s}  verdict",
    ]
    for d in result.deltas:
        band = TOLERANCES[d.term]
        lines.append(
            f"  {d.term:10s} {d.analytic:14.6e} {d.simulated:14.6e} "
            f"{d.rel_error:8.2%} {f'({band.rel:g}, {band.abs:g})':>16s}  "
            + ("ok" if d.within else "OUT OF BAND")
        )
    return "\n".join(lines)
