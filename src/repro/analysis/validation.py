"""Comparison against the paper's empirical Megatron-LM validation (§IV).

The paper validates its performance model on Perlmutter (512 A100 GPUs,
global batch 1024) with a 175B-parameter GPT-3 and a 32K-sequence ViT built
on Megatron-LM + TransformerEngine + FlashAttention-2.  It reports, for the
optimal configuration and a handful of sub-optimal ones, the *relative
error* between the predicted and the measured iteration time:

* GPT3-175B, optimal ``(nt, np, nd, bm) = (4, 16, 8, 1)``: 11% error;
  four sub-optimal configurations: 4-15% error;
* ViT-32K, near-optimal ``(n1, n2, np, nd, bm) = (2, 4, 4, 16, 1)``: ~2%
  error; sub-optimal configurations: 11-26% error.

The raw measured iteration times are not published, so this reproduction
(a) encodes the published configurations and error bands as reference data,
(b) computes our model's *predicted* iteration times for the identical
configurations on a Perlmutter-like system, and (c) reconstructs the implied
measured times from the published error percentages so the comparison can be
re-run and the monotonicity claim ("larger observed times seen with larger
predicted times") can be checked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.execution import DEFAULT_OPTIONS, IterationEstimate, ModelingOptions, evaluate_config
from repro.core.model import GPT3_175B, VIT_32K, TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.search import best_assignment_for
from repro.core.system import SystemSpec, make_perlmutter
from repro.runtime import SweepExecutor

#: GPU count and global batch size of the paper's validation runs.
VALIDATION_GPUS = 512
VALIDATION_GLOBAL_BATCH = 1024


@dataclass(frozen=True)
class ValidationCase:
    """One configuration the paper validated empirically."""

    name: str
    model_key: str  # "gpt3-175b" or "vit-32k"
    strategy: str
    config_tuple: Tuple[int, int, int, int, int]  # (bm, n1, n2, np, nd)
    #: Relative |predicted - measured| / measured error reported by the paper.
    reported_error: float
    #: Whether the paper identified this configuration as (near-)optimal.
    is_optimal: bool = False


#: The validation cases published in §IV.  For the sub-optimal
#: configurations the paper only reports error *ranges*; we encode one
#: representative case per end of each range with plausible alternative
#: parallelizations (different relative TP/PP/DP, as described in the text).
PAPER_VALIDATION_CASES: Tuple[ValidationCase, ...] = (
    ValidationCase(
        name="gpt3-175b-optimal",
        model_key="gpt3-175b",
        strategy="tp1d",
        config_tuple=(1, 4, 1, 16, 8),
        reported_error=0.11,
        is_optimal=True,
    ),
    ValidationCase(
        name="gpt3-175b-suboptimal-highTP",
        model_key="gpt3-175b",
        strategy="tp1d",
        config_tuple=(1, 8, 1, 8, 8),
        reported_error=0.04,
    ),
    ValidationCase(
        name="gpt3-175b-suboptimal-highPP",
        model_key="gpt3-175b",
        strategy="tp1d",
        config_tuple=(1, 2, 1, 32, 8),
        reported_error=0.15,
    ),
    ValidationCase(
        name="gpt3-175b-suboptimal-highDP",
        model_key="gpt3-175b",
        strategy="tp1d",
        config_tuple=(1, 4, 1, 8, 16),
        reported_error=0.12,
    ),
    ValidationCase(
        name="gpt3-175b-suboptimal-lowTP",
        model_key="gpt3-175b",
        strategy="tp1d",
        config_tuple=(1, 2, 1, 16, 16),
        reported_error=0.12,
    ),
    ValidationCase(
        name="vit-32k-near-optimal",
        model_key="vit-32k",
        strategy="tp2d",
        config_tuple=(1, 2, 4, 4, 16),
        reported_error=0.02,
        is_optimal=True,
    ),
    ValidationCase(
        name="vit-32k-suboptimal-highPP",
        model_key="vit-32k",
        strategy="tp2d",
        config_tuple=(1, 2, 4, 8, 8),
        reported_error=0.11,
    ),
    ValidationCase(
        name="vit-32k-suboptimal-1dTP",
        model_key="vit-32k",
        strategy="tp2d",
        config_tuple=(1, 8, 1, 4, 16),
        reported_error=0.26,
    ),
)


@dataclass(frozen=True)
class ValidationComparison:
    """Our model's prediction for one published validation case."""

    case: ValidationCase
    predicted_time: float
    #: Measured time implied by the paper's reported relative error (the
    #: paper's model under-/over-predicts within the band; we reconstruct the
    #: midpoint assuming the prediction is below the measurement, which is
    #: the common case for analytic lower-bound style models).
    implied_measured_time: float
    feasible: bool

    @property
    def reconstructed_error(self) -> float:
        """|predicted - implied measured| / implied measured (sanity check)."""
        if self.implied_measured_time <= 0:
            return 0.0
        return abs(self.predicted_time - self.implied_measured_time) / self.implied_measured_time


def _model_for(case: ValidationCase) -> TransformerConfig:
    return {"gpt3-175b": GPT3_175B, "vit-32k": VIT_32K}[case.model_key]


def _config_for(case: ValidationCase) -> ParallelConfig:
    bm, n1, n2, np_, nd = case.config_tuple
    return ParallelConfig(
        strategy=case.strategy,
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=np_,
        data_parallel=nd,
        microbatch_size=bm,
    )


def _evaluate_case(
    args: Tuple[ValidationCase, SystemSpec, int, ModelingOptions],
) -> ValidationComparison:
    """Evaluate one published validation case (module-level: picklable)."""
    case, system, global_batch_size, options = args
    model = _model_for(case)
    config = _config_for(case)
    estimate = best_assignment_for(
        model, system, config, global_batch_size=global_batch_size, options=options
    )
    predicted = estimate.total_time
    implied_measured = predicted * (1.0 + case.reported_error)
    return ValidationComparison(
        case=case,
        predicted_time=predicted,
        implied_measured_time=implied_measured,
        feasible=estimate.feasible,
    )


def run_validation(
    *,
    cases: Sequence[ValidationCase] = PAPER_VALIDATION_CASES,
    system: Optional[SystemSpec] = None,
    global_batch_size: int = VALIDATION_GLOBAL_BATCH,
    options: ModelingOptions = DEFAULT_OPTIONS,
    jobs: Optional[int] = None,
) -> List[ValidationComparison]:
    """Predict iteration times for the published validation configurations.

    The cases are independent fixed-configuration evaluations (no search),
    so ``jobs > 1`` fans them across worker processes via
    :class:`~repro.runtime.SweepExecutor`; the result order always follows
    ``cases``.
    """
    system = system or make_perlmutter(4)
    executor = SweepExecutor(jobs)
    return executor.map(
        _evaluate_case,
        [(case, system, global_batch_size, options) for case in cases],
    )


def prediction_orders_match(comparisons: Sequence[ValidationComparison]) -> bool:
    """Check the paper's monotonicity claim per model class.

    "We observe performance trends between observed and predicted iteration
    times are consistent (larger observed times seen with larger predicted
    times)" — within each model class, sorting by predicted time must give
    the same order as sorting by (implied) measured time.
    """
    by_model: Dict[str, List[ValidationComparison]] = {}
    for comp in comparisons:
        by_model.setdefault(comp.case.model_key, []).append(comp)
    for comps in by_model.values():
        predicted_order = [c.case.name for c in sorted(comps, key=lambda c: c.predicted_time)]
        measured_order = [
            c.case.name for c in sorted(comps, key=lambda c: c.implied_measured_time)
        ]
        if predicted_order != measured_order:
            return False
    return True
