"""Plain-text rendering of the analysis results.

Every experiment family has a ``render_*`` helper that turns its result
object into the text table printed by the CLI and the benchmark harness —
the same rows and series the paper's figures report, so a figure-by-figure
comparison against the paper can be regenerated from the archived benchmark
output under ``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.configurations import ConfigurationStudy
from repro.analysis.differential import DifferentialResult
from repro.analysis.speedups import SpeedupPoint, speedups_by_system
from repro.analysis.sweeps import HardwareHeatmap, ScalingSweep, SystemScalingSeries
from repro.analysis.validation import ValidationComparison
from repro.core.inference import ServingSearchResult
from repro.core.plan import ExecutionPlan
from repro.utils.tables import format_table
from repro.utils.units import GB


def render_plan_phases(plan: ExecutionPlan) -> str:
    """Render an :class:`~repro.core.plan.ExecutionPlan` as a phase table.

    One row per :class:`~repro.core.plan.CostPhase`: the per-instance
    duration, the multiplicity, the overlap budget the phase can hide
    under, the wall-clock it actually exposes after overlap, and the HBM
    delta it accounts for.  This is the ``repro-perf search --explain-plan``
    view of *why* a configuration costs what it costs.
    """
    headers = ["phase", "category", "count", "each(s)", "overlap(s)", "exposed(s)", "mem(GB)"]
    rows = []
    for phase in plan.phases:
        rows.append(
            [
                phase.name,
                phase.category,
                phase.count,
                phase.seconds,
                "hidden" if phase.overlapped else phase.overlap_budget,
                phase.exposed_seconds,
                phase.memory_bytes / GB,
            ]
        )
    title = (
        f"execution plan: schedule={plan.schedule}"
        + (f" (v={plan.virtual_stages})" if plan.virtual_stages > 1 else "")
        + f", {plan.num_stages} stages x {plan.num_microbatches} microbatches"
        + (f", backend={plan.backend}" if plan.backend != "analytic" else "")
    )
    return title + "\n" + format_table(headers, rows)


def render_serving_report(result: ServingSearchResult) -> str:
    """Render a serving-search outcome (``repro-perf serve``) as text.

    A headline block for the winning configuration (TTFT/TPOT/capacity,
    effective batch, KV-cache and weight footprints, prefill utilisation)
    followed by one table row per reported candidate — the winner plus the
    ``--top-k`` runners-up, ranked by the search objective.
    """
    spec = result.serving
    title = (
        f"serving search: {result.model_name} on {result.system_name}, "
        f"{result.n_gpus} GPUs, objective={result.objective}\n"
        f"traffic: {spec.arrival_rate:g} req/s, prompt {spec.prompt_tokens}, "
        f"output {spec.output_tokens} tokens "
        f"(paged KV, {spec.kv_block_tokens}-token blocks)"
    )
    if not result.found:
        return (
            title
            + "\nno feasible serving configuration "
            + f"({result.statistics.parallel_configs} parallelizations examined)"
        )

    best = result.best
    headline = [
        f"  config      : {best.config.describe()}",
        f"  assignment  : nNVS(tp1,tp2,pp,dp) = {best.assignment.as_tuple()}",
        f"  TTFT        : {best.ttft:.4f} s    TPOT: {best.tpot * 1e3:.2f} ms    "
        f"request latency: {best.request_latency:.2f} s",
        f"  capacity    : {best.tokens_per_s_per_gpu:.0f} tokens/s/GPU "
        f"(effective batch {best.effective_batch:.1f} of {best.capacity_batch:.0f} "
        f"per replica)",
        f"  memory      : KV cache {best.kv_cache_gb:.1f} GB + weights "
        f"{best.weight_gb:.1f} GB per GPU",
        f"  prefill util: {100 * best.prefill_utilization:.1f}% of stage time",
        f"  search      : {result.statistics.parallel_configs} parallelizations, "
        f"{result.statistics.candidates_evaluated} candidates evaluated, "
        f"{result.statistics.pruned_configs} pruned by bound",
    ]
    if result.statistics.warm_start_hits:
        headline.append(
            f"  warm start  : {result.statistics.warm_start_hits} hint(s) seeded "
            f"in {1e3 * result.statistics.warm_seed_time:.1f} ms"
        )

    # Only feasible candidates can reach the winner/top-k set, so the
    # table needs no feasibility column.
    candidates = result.top_k if result.top_k else [best]
    headers = [
        "config",
        "assignment",
        "TTFT(s)",
        "TPOT(ms)",
        "tok/s/GPU",
        "batch",
        "kv(GB)",
    ]
    rows = []
    for est in candidates:
        rows.append(
            [
                est.config.describe(),
                str(est.assignment.as_tuple()),
                est.ttft,
                est.tpot * 1e3,
                est.tokens_per_s_per_gpu,
                est.effective_batch,
                est.kv_cache_gb,
            ]
        )
    return title + "\n" + "\n".join(headline) + "\n" + format_table(headers, rows)


def render_configuration_study(study: ConfigurationStudy) -> str:
    """Render a Figs. 1-3 / A2 style study as a text table."""
    headers = [
        "Config",
        "bm",
        "n1",
        "n2",
        "PP",
        "DP",
        "m",
        "mem(GB)",
        "time(s)",
        "compute%",
        "tp%",
        "bubble%",
        "dp%",
        "pp%",
        "mem%",
        "feasible",
    ]
    rows = []
    for point in study.points:
        est = point.estimate
        frac = est.breakdown.fractions()
        rows.append(
            [
                point.label,
                est.config.microbatch_size,
                est.config.tensor_parallel_1,
                est.config.tensor_parallel_2,
                est.config.pipeline_parallel,
                est.config.data_parallel,
                est.num_microbatches,
                est.memory_gb,
                est.total_time,
                100 * frac["compute"],
                100 * frac["tp_comm"],
                100 * frac["pp_bubble"],
                100 * frac["dp_comm"],
                100 * frac["pp_comm"],
                100 * frac["memory"],
                est.feasible,
            ]
        )
    title = (
        f"{study.name}: {study.model_name} on {study.system_name}, "
        f"{study.n_gpus} GPUs, global batch {study.global_batch_size}"
    )
    return title + "\n" + format_table(headers, rows)


def render_scaling_sweep(sweep: ScalingSweep) -> str:
    """Render a Fig. 4 / A3 style strong-scaling sweep."""
    headers = [
        "#GPUs",
        "bm",
        "n1",
        "n2",
        "PP",
        "DP",
        "m",
        "mem(GB)",
        "iter(s)",
        "compute%",
        "tp%",
        "bubble%",
        "dp%",
        "assignment",
    ]
    rows = []
    for point in sweep.points:
        if not point.found:
            rows.append([point.n_gpus] + ["-"] * (len(headers) - 1))
            continue
        best = point.result.best
        frac = best.breakdown.fractions()
        rows.append(
            [
                point.n_gpus,
                best.config.microbatch_size,
                best.config.tensor_parallel_1,
                best.config.tensor_parallel_2,
                best.config.pipeline_parallel,
                best.config.data_parallel,
                best.num_microbatches,
                best.memory_gb,
                best.total_time,
                100 * frac["compute"],
                100 * frac["tp_comm"],
                100 * frac["pp_bubble"],
                100 * frac["dp_comm"],
                str(best.assignment.as_tuple()),
            ]
        )
    title = (
        f"strong scaling: {sweep.model_name} / {sweep.strategy} on {sweep.system_name}, "
        f"global batch {sweep.global_batch_size}"
    )
    return title + "\n" + format_table(headers, rows)


def render_system_grid(series: Sequence[SystemScalingSeries], model_name: str = "") -> str:
    """Render a Fig. 5 style system grid (training days vs GPU count)."""
    if not series:
        return "(no series)"
    gpu_counts = series[0].n_gpus
    headers = ["System"] + [str(n) for n in gpu_counts]
    rows = []
    for entry in series:
        row: List[object] = [entry.system_name]
        for days in entry.training_days:
            row.append("inf" if days == float("inf") else f"{days:.2f}")
        rows.append(row)
    title = f"training days vs #GPUs ({model_name})" if model_name else "training days vs #GPUs"
    return title + "\n" + format_table(headers, rows)


def render_heatmap(heatmap: HardwareHeatmap) -> str:
    """Render a Fig. A5 / A6 style hardware heatmap."""
    headers = [f"{heatmap.y_label} \\ {heatmap.x_label}"] + [
        f"{x:g}" for x in heatmap.x_values
    ]
    rows = []
    for y, row_values in zip(heatmap.y_values, heatmap.training_days):
        row: List[object] = [f"{y:g}"]
        for days in row_values:
            row.append("inf" if days == float("inf") else f"{days:.2f}")
        rows.append(row)
    title = (
        f"training days heatmap: {heatmap.model_name} / {heatmap.strategy} "
        f"on {heatmap.n_gpus} GPUs"
    )
    return title + "\n" + format_table(headers, rows)


def render_speedups(points: Sequence[SpeedupPoint]) -> str:
    """Render a Fig. A4 style speedup table (systems x GPU counts)."""
    grouped = speedups_by_system(points)
    if not grouped:
        return "(no speedup points)"
    gpu_counts = sorted({p.n_gpus for p in points})
    headers = ["System"] + [str(n) for n in gpu_counts]
    rows = []
    for system_name, series in sorted(grouped.items()):
        by_n: Dict[int, SpeedupPoint] = {p.n_gpus: p for p in series}
        row: List[object] = [system_name]
        for n in gpu_counts:
            point = by_n.get(n)
            row.append(f"{point.speedup:.3f}" if point is not None else "-")
        rows.append(row)
    sample = points[0]
    title = f"relative speed-up of {sample.variant_strategy} w.r.t. {sample.baseline_strategy}"
    return title + "\n" + format_table(headers, rows)


def render_differential(results: Sequence[DifferentialResult], system_name: str = "") -> str:
    """Render the analytic-vs-simulated differential grid as a table.

    One row per grid case: both backends' iteration times, the largest
    per-term relative error, the term it occurred in, and the verdict.
    The per-term detail of failing rows is printed separately by
    :func:`repro.analysis.differential.format_failure_diff`.
    """
    headers = [
        "Case",
        "schedule",
        "analytic(s)",
        "simulated(s)",
        "worst term",
        "max rel err",
        "within band",
    ]
    rows = []
    for result in results:
        worst = max(result.deltas, key=lambda d: d.rel_error, default=None)
        rows.append(
            [
                result.case.name,
                result.case.schedule
                + (
                    f"(v={result.case.config.virtual_stages})"
                    if result.case.config.virtual_stages > 1
                    else ""
                ),
                result.analytic.total_time,
                result.simulated.total_time,
                worst.term if worst else "-",
                f"{result.max_rel_error:.2%}",
                result.ok,
            ]
        )
    n_ok = sum(1 for r in results if r.ok)
    title = (
        "differential validation: analytic model vs message-level simulation"
        + (f" on {system_name}" if system_name else "")
        + f" ({n_ok}/{len(results)} cases within tolerance)"
    )
    return title + "\n" + format_table(headers, rows)


def render_validation(comparisons: Sequence[ValidationComparison]) -> str:
    """Render the §IV empirical-validation comparison."""
    headers = [
        "Case",
        "model",
        "strategy",
        "(bm,n1,n2,np,nd)",
        "predicted(s)",
        "implied measured(s)",
        "paper error",
        "reconstructed error",
        "feasible",
    ]
    rows = []
    for comp in comparisons:
        rows.append(
            [
                comp.case.name,
                comp.case.model_key,
                comp.case.strategy,
                str(comp.case.config_tuple),
                comp.predicted_time,
                comp.implied_measured_time,
                f"{100 * comp.case.reported_error:.0f}%",
                f"{100 * comp.reconstructed_error:.0f}%",
                comp.feasible,
            ]
        )
    return "empirical validation (512 A100 GPUs, global batch 1024)\n" + format_table(
        headers, rows
    )
