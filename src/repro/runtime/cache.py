"""Content-addressed cache of optimal-configuration search results.

Every sweep in this repo (Figs. 4, 5, A3–A6 and the CLI's ``scaling`` /
``systems`` / ``speedup`` commands) is a batch of independent
:func:`repro.core.search.find_optimal_config` calls, and different sweeps
frequently revisit identical points — e.g. the Fig. 4 scaling curve and the
Fig. 5 system grid both solve GPT3-1T on B200-NVS8 at the same GPU counts.

:class:`SearchCache` memoizes those solves.  Each :class:`SearchTask` is
fingerprinted by the SHA-256 of the canonical JSON of **all** of its inputs
(model hyper-parameters, full system spec, GPU count, global batch,
strategy, search-space knobs, modeling options, top-k), so any change to any
input — even a single bandwidth number of a synthetic heatmap GPU — misses
the cache instead of returning a stale result.  Entries are stored in their
JSON form and rebuilt into :class:`~repro.core.search.SearchResult` trees on
read, so a cache can be persisted to disk and shared across processes and
sessions via :mod:`repro.utils.serialization`.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.search import TRAINING_OBJECTIVE, SearchResult
from repro.utils.serialization import (
    canonical_fingerprint,
    dataclass_from_jsonable,
    dump_json,
    load_json,
    to_jsonable,
)

#: Bump when the fingerprint recipe or the stored result schema changes;
#: persisted caches with a different version are discarded on load.
#: v2: ParallelConfig gained ``expert_parallel`` and the model gained the
#: GQA/MoE scenario fields.
#: v3: the cost-plan IR — ParallelConfig gained ``schedule``/``virtual_stages``,
#: SearchSpace gained the schedule axes, IterationEstimate carries its
#: ExecutionPlan, and SearchStatistics gained the memoization counters.
#: v4: pluggable evaluation backends — the fingerprint includes the task's
#: ``backend`` (an analytic and a simulated solve of the same point must
#: never collide) and IterationEstimate/ExecutionPlan record theirs.
#: v5: the inference-serving mode — the fingerprint includes the task's
#: ``objective`` and ``serving`` spec, and serving-objective entries rebuild
#: into :class:`~repro.core.inference.ServingSearchResult` trees.
#: v6: vectorized evaluation — the fingerprint includes the task's
#: ``eval_mode``.  Scalar and batch solves of the same point select the same
#: optimum, but their diagnostics-only work counters may differ, so the
#: entries must not collide.
CACHE_FORMAT_VERSION = 6


class SearchCache:
    """In-memory, optionally JSON-persisted store of solved search points.

    Parameters
    ----------
    path:
        Optional JSON file backing the cache.  When given and the file
        exists, its entries are loaded eagerly; :meth:`save` writes the
        current entries back.  A file written by an incompatible
        :data:`CACHE_FORMAT_VERSION` is silently treated as empty.

    A single instance is safe to share between threads (the long-running
    API server keeps one process-wide cache hot across concurrent
    requests): every lookup, store, counter update and the whole
    read-merge-replace of :meth:`save` run under one process-local lock.
    Cross-*process* coordination remains best-effort merge-on-save, as
    documented on :meth:`save`.
    """

    def __init__(self, path: str | Path | None = None):
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._entries: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        # Reentrant so save()'s merge can call helpers that also lock, and
        # so a subclass hook running under the lock can still use get/put.
        self._lock = threading.RLock()
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(task: "SearchTask") -> str:  # noqa: F821 (doc reference)
        """Content hash of every search input of ``task``."""
        return canonical_fingerprint(
            {
                "cache_format": CACHE_FORMAT_VERSION,
                "model": to_jsonable(task.model),
                "system": to_jsonable(task.system),
                "n_gpus": task.n_gpus,
                "global_batch_size": task.global_batch_size,
                "strategy": task.strategy,
                "space": to_jsonable(task.space),
                "options": to_jsonable(task.options),
                "top_k": task.top_k,
                "backend": task.backend,
                "objective": getattr(task, "objective", TRAINING_OBJECTIVE),
                "serving": to_jsonable(getattr(task, "serving", None)),
                "eval_mode": getattr(task, "eval_mode", "scalar"),
            }
        )

    @staticmethod
    def _result_type(task) -> type:
        """Dataclass a cached entry of ``task`` rebuilds into.

        Training tasks store :class:`~repro.core.search.SearchResult` trees;
        serving-objective tasks store
        :class:`~repro.core.inference.ServingSearchResult` trees.  The
        fingerprint includes the objective, so the two can never collide.
        """
        if getattr(task, "objective", TRAINING_OBJECTIVE) != TRAINING_OBJECTIVE:
            from repro.core.inference import ServingSearchResult

            return ServingSearchResult
        return SearchResult

    # ------------------------------------------------------------------
    # Read/write
    # ------------------------------------------------------------------
    def get(self, task):
        """Return the cached result for ``task``, or ``None`` on a miss.

        Training tasks yield a :class:`~repro.core.search.SearchResult`,
        serving-objective tasks a
        :class:`~repro.core.inference.ServingSearchResult` (see
        :meth:`_result_type`).
        """
        fp = self.fingerprint(task)
        with self._lock:
            entry = self._entries.get(fp)
            if entry is not None:
                try:
                    result = dataclass_from_jsonable(self._result_type(task), entry)
                except (TypeError, KeyError, ValueError, AttributeError):
                    # Hand-edited / schema-drifted / corrupted entry: drop it
                    # and recompute rather than aborting the whole sweep.
                    self._entries.pop(fp, None)
                else:
                    self.hits += 1
                    return result
            self.misses += 1
            return None

    def put(self, task, result: SearchResult) -> None:
        """Store ``result`` under ``task``'s fingerprint."""
        entry = to_jsonable(result)
        with self._lock:
            self._entries[self.fingerprint(task)] = entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, task) -> bool:
        fp = self.fingerprint(task)
        with self._lock:
            return fp in self._entries

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Optional[Path]:
        """Persist all entries as JSON; returns the path written (if any).

        The write is atomic (temp file + ``os.replace``), so an interrupted
        save never truncates an existing cache, and the pid-suffixed temp
        file is unlinked even when serialization fails mid-write (disk
        full, unserializable entry), so aborted saves leave no litter.
        Entries another process wrote to the same file are merged in on a
        best-effort basis: the file is re-read at save time and our entries
        overlaid (fingerprints are content hashes, so colliding entries are
        equal).  *Within* this process the whole read-merge-replace runs
        under the cache lock, so concurrent threads can never drop each
        other's entries.  Across processes there is no file locking — a
        process that saves between our re-read and our replace loses its
        entries for this snapshot, which only costs a re-solve later, never
        a stale result.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            return None
        with self._lock:
            merged = {**self._read_entries(target), **self._entries}
            tmp = target.with_name(f"{target.name}.tmp{os.getpid()}")
            try:
                dump_json({"version": CACHE_FORMAT_VERSION, "entries": merged}, tmp)
                os.replace(tmp, target)
            finally:
                # No-op on success (os.replace consumed the temp file);
                # best-effort cleanup when the dump or the replace raised.
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
            self._entries = merged
            return target

    @staticmethod
    def _read_entries(path: Path) -> Dict[str, Any]:
        """Entries stored in ``path``; empty on missing/corrupt/old files.

        ``json.loads`` failures (truncated writes, binary garbage, undecodable
        bytes — all of which surface as ``ValueError`` subclasses — and OS
        errors such as the path being a directory) degrade to an empty cache,
        and individually malformed entry values are filtered out so a partly
        corrupted file never poisons a later :meth:`save`.
        """
        try:
            data = load_json(path)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("version") != CACHE_FORMAT_VERSION:
            return {}
        entries = data.get("entries")
        if not isinstance(entries, dict):
            return {}
        return {k: v for k, v in entries.items() if isinstance(v, dict)}

    def _load(self) -> None:
        with self._lock:
            self._entries.update(self._read_entries(self.path))

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for reports and the CLI summary line)."""
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "entries": len(self._entries)}
