"""Content-addressed cache of optimal-configuration search results.

Every sweep in this repo (Figs. 4, 5, A3–A6 and the CLI's ``scaling`` /
``systems`` / ``speedup`` commands) is a batch of independent
:func:`repro.core.search.find_optimal_config` calls, and different sweeps
frequently revisit identical points — e.g. the Fig. 4 scaling curve and the
Fig. 5 system grid both solve GPT3-1T on B200-NVS8 at the same GPU counts.

:class:`SearchCache` memoizes those solves.  Each :class:`SearchTask` is
fingerprinted by the SHA-256 of the canonical JSON of **all** of its inputs
(model hyper-parameters, full system spec, GPU count, global batch,
strategy, search-space knobs, modeling options, top-k), so any change to any
input — even a single bandwidth number of a synthetic heatmap GPU — misses
the cache instead of returning a stale result.  Entries are stored in their
JSON form and rebuilt into :class:`~repro.core.search.SearchResult` trees on
read, so a cache can be persisted to disk and shared across processes and
sessions via :mod:`repro.utils.serialization`.
"""

from __future__ import annotations

import math
import os
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.parallelism.base import ParallelConfig
from repro.core.search import TRAINING_OBJECTIVE, SearchResult
from repro.utils.serialization import (
    canonical_fingerprint,
    dataclass_from_jsonable,
    dump_json,
    load_json,
    to_jsonable,
)

#: Bump when the fingerprint recipe or the stored result schema changes;
#: persisted caches with a different version are discarded on load.
#: v2: ParallelConfig gained ``expert_parallel`` and the model gained the
#: GQA/MoE scenario fields.
#: v3: the cost-plan IR — ParallelConfig gained ``schedule``/``virtual_stages``,
#: SearchSpace gained the schedule axes, IterationEstimate carries its
#: ExecutionPlan, and SearchStatistics gained the memoization counters.
#: v4: pluggable evaluation backends — the fingerprint includes the task's
#: ``backend`` (an analytic and a simulated solve of the same point must
#: never collide) and IterationEstimate/ExecutionPlan record theirs.
#: v5: the inference-serving mode — the fingerprint includes the task's
#: ``objective`` and ``serving`` spec, and serving-objective entries rebuild
#: into :class:`~repro.core.inference.ServingSearchResult` trees.
#: v6: vectorized evaluation — the fingerprint includes the task's
#: ``eval_mode``.  Scalar and batch solves of the same point select the same
#: optimum, but their diagnostics-only work counters may differ, so the
#: entries must not collide.
#: v7: warm-started search — the persisted file gains a ``"hints"`` section
#: (the structure-keyed winner index, see :func:`reduced_fingerprint`).  The
#: *exact* fingerprint recipe is unchanged on purpose: a task's ``warm_hints``
#: are an optimization input, not a search input — they provably do not
#: change the selected optimum — so they must not (and do not) enter the
#: cache identity.
#: v8: multi-objective search — the fingerprint includes the task's
#: ``objectives`` tuple (a Pareto solve and a scalar solve of the same point
#: store different result trees and must never collide), and
#: :meth:`SearchCache.warm_hints` gained a deterministic final tie-break, so
#: hint order no longer depends on recording order at equal distance.
CACHE_FORMAT_VERSION = 8

#: Winner records kept per reduced key; the oldest are evicted first.  A
#: sweep along one axis revisits the same reduced key once per point, so a
#: few dozen records cover every realistic neighborhood.
_MAX_HINTS_PER_KEY = 64


def reduced_fingerprint(task: "SearchTask") -> str:  # noqa: F821 (doc reference)
    """Structure key of ``task``: the fingerprint minus the *point* inputs.

    Two tasks share a reduced key when they search the same model / system /
    strategy / space / options / backend / objective but at a different
    point along a sweep or traffic axis — a different ``n_gpus``,
    ``global_batch_size`` or serving arrival rate.  Winners recorded under
    one reduced key are therefore exactly the candidates worth re-evaluating
    first at any other point of the same structure (warm starting).

    ``eval_mode`` and ``top_k`` are also dropped: neither changes which
    configuration wins, so a scalar solve may warm-start a batch one and
    vice versa.
    """
    serving = to_jsonable(getattr(task, "serving", None))
    if isinstance(serving, dict):
        serving = {k: v for k, v in serving.items() if k != "arrival_rate"}
    return canonical_fingerprint(
        {
            "hint_index": CACHE_FORMAT_VERSION,
            "model": to_jsonable(task.model),
            "system": to_jsonable(task.system),
            "strategy": task.strategy,
            "space": to_jsonable(task.space),
            "options": to_jsonable(task.options),
            "backend": task.backend,
            "objective": getattr(task, "objective", TRAINING_OBJECTIVE),
            "serving": serving,
        }
    )


class SearchCache:
    """In-memory, optionally JSON-persisted store of solved search points.

    Parameters
    ----------
    path:
        Optional JSON file backing the cache.  When given and the file
        exists, its entries are loaded eagerly; :meth:`save` writes the
        current entries back.  A file written by an incompatible
        :data:`CACHE_FORMAT_VERSION` is silently treated as empty.

    A single instance is safe to share between threads (the long-running
    API server keeps one process-wide cache hot across concurrent
    requests): every lookup, store, counter update and the whole
    read-merge-replace of :meth:`save` run under one process-local lock.
    Cross-*process* coordination remains best-effort merge-on-save, as
    documented on :meth:`save`.
    """

    def __init__(self, path: str | Path | None = None):
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._entries: Dict[str, Any] = {}
        # Structure-keyed hint index: reduced fingerprint -> list of winner
        # records ({n_gpus, global_batch_size, arrival_rate, config}).  Fed
        # by put(), consumed by warm_hints(), persisted alongside the exact
        # entries so a restarted API process warm-starts from its history.
        self._hints: Dict[str, List[Dict[str, Any]]] = {}
        self.hits = 0
        self.misses = 0
        # Reentrant so save()'s merge can call helpers that also lock, and
        # so a subclass hook running under the lock can still use get/put.
        self._lock = threading.RLock()
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(task: "SearchTask") -> str:  # noqa: F821 (doc reference)
        """Content hash of every search input of ``task``."""
        return canonical_fingerprint(
            {
                "cache_format": CACHE_FORMAT_VERSION,
                "model": to_jsonable(task.model),
                "system": to_jsonable(task.system),
                "n_gpus": task.n_gpus,
                "global_batch_size": task.global_batch_size,
                "strategy": task.strategy,
                "space": to_jsonable(task.space),
                "options": to_jsonable(task.options),
                "top_k": task.top_k,
                "backend": task.backend,
                "objective": getattr(task, "objective", TRAINING_OBJECTIVE),
                "serving": to_jsonable(getattr(task, "serving", None)),
                "eval_mode": getattr(task, "eval_mode", "scalar"),
                "objectives": list(getattr(task, "objectives", ()) or ()),
            }
        )

    @staticmethod
    def _result_type(task) -> type:
        """Dataclass a cached entry of ``task`` rebuilds into.

        Training tasks store :class:`~repro.core.search.SearchResult` trees;
        serving-objective tasks store
        :class:`~repro.core.inference.ServingSearchResult` trees; tasks with
        a non-empty ``objectives`` tuple store
        :class:`~repro.core.search.ParetoResult` trees.  The fingerprint
        includes the objective and the objectives tuple, so none of the
        three can ever collide.
        """
        if getattr(task, "objectives", ()):
            from repro.core.search import ParetoResult

            return ParetoResult
        if getattr(task, "objective", TRAINING_OBJECTIVE) != TRAINING_OBJECTIVE:
            from repro.core.inference import ServingSearchResult

            return ServingSearchResult
        return SearchResult

    # ------------------------------------------------------------------
    # Read/write
    # ------------------------------------------------------------------
    def get(self, task):
        """Return the cached result for ``task``, or ``None`` on a miss.

        Training tasks yield a :class:`~repro.core.search.SearchResult`,
        serving-objective tasks a
        :class:`~repro.core.inference.ServingSearchResult` (see
        :meth:`_result_type`).
        """
        fp = self.fingerprint(task)
        with self._lock:
            entry = self._entries.get(fp)
            if entry is not None:
                try:
                    result = dataclass_from_jsonable(self._result_type(task), entry)
                except (TypeError, KeyError, ValueError, AttributeError):
                    # Hand-edited / schema-drifted / corrupted entry: drop it
                    # and recompute rather than aborting the whole sweep.
                    self._entries.pop(fp, None)
                else:
                    self.hits += 1
                    return result
            self.misses += 1
            return None

    def put(self, task, result: SearchResult) -> None:
        """Store ``result`` under ``task``'s fingerprint.

        The winner (when one exists) is additionally recorded in the
        structure-keyed hint index, so later tasks of the same structure at
        *different* points can warm-start from it (:meth:`warm_hints`).
        """
        entry = to_jsonable(result)
        with self._lock:
            self._entries[self.fingerprint(task)] = entry
            record = self._hint_record(task, result)
            if record is not None:
                self._record_hint(reduced_fingerprint(task), record)

    @staticmethod
    def _hint_record(task, result) -> Optional[Dict[str, Any]]:
        """Winner record of ``result`` for the hint index (None if no winner)."""
        best = getattr(result, "best", None)
        config = getattr(best, "config", None)
        if config is None:
            return None
        serving = getattr(task, "serving", None)
        return {
            "n_gpus": task.n_gpus,
            "global_batch_size": task.global_batch_size,
            "arrival_rate": getattr(serving, "arrival_rate", None),
            "config": to_jsonable(config),
        }

    def _record_hint(self, key: str, record: Dict[str, Any]) -> None:
        """Append ``record`` under ``key``, deduplicated, newest last."""
        bucket = self._hints.setdefault(key, [])
        bucket[:] = [r for r in bucket if r != record]
        bucket.append(record)
        del bucket[:-_MAX_HINTS_PER_KEY]

    def warm_hints(self, task, limit: int = 4) -> Tuple[ParallelConfig, ...]:
        """Nearest prior winners of ``task``'s structure, best-first.

        Looks up the reduced key (:func:`reduced_fingerprint`) and returns
        up to ``limit`` recorded winner configs ordered by distance to the
        requested point — the absolute log2 ratio of GPU count, then of
        global batch size, then of arrival rate, with the canonical
        fingerprint of the config as the final tie-break so equidistant
        records rank identically no matter in which order sweeps recorded
        them (merge-on-save can interleave buckets arbitrarily across
        processes).  The configs are raw
        (native to the point they won at); the solver adapts and validates
        them (:func:`repro.core.search.adapt_warm_hints`), so a hint can
        never change the search result, only speed it up.
        """
        with self._lock:
            bucket = list(self._hints.get(reduced_fingerprint(task), ()))
        if not bucket:
            return ()

        def _log_ratio(a, b) -> float:
            try:
                a, b = float(a), float(b)
            except (TypeError, ValueError):
                return math.inf
            if a <= 0 or b <= 0:
                return math.inf
            return abs(math.log2(a / b))

        arrival = getattr(getattr(task, "serving", None), "arrival_rate", None)

        def _distance(record: Dict[str, Any]) -> Tuple[float, float, float, str]:
            return (
                _log_ratio(record.get("n_gpus"), task.n_gpus),
                _log_ratio(record.get("global_batch_size"), task.global_batch_size),
                0.0 if arrival is None else _log_ratio(record.get("arrival_rate"), arrival),
                canonical_fingerprint(record.get("config")),
            )

        hints: List[ParallelConfig] = []
        for record in sorted(bucket, key=_distance):
            try:
                config = dataclass_from_jsonable(ParallelConfig, record["config"])
            except (TypeError, KeyError, ValueError, AttributeError):
                continue
            if config not in hints:
                hints.append(config)
            if len(hints) >= limit:
                break
        return tuple(hints)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, task) -> bool:
        fp = self.fingerprint(task)
        with self._lock:
            return fp in self._entries

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Optional[Path]:
        """Persist all entries as JSON; returns the path written (if any).

        The write is atomic (temp file + ``os.replace``), so an interrupted
        save never truncates an existing cache, and the pid-suffixed temp
        file is unlinked even when serialization fails mid-write (disk
        full, unserializable entry), so aborted saves leave no litter.
        Entries another process wrote to the same file are merged in on a
        best-effort basis: the file is re-read at save time and our entries
        overlaid (fingerprints are content hashes, so colliding entries are
        equal).  *Within* this process the whole read-merge-replace runs
        under the cache lock, so concurrent threads can never drop each
        other's entries.  Across processes there is no file locking — a
        process that saves between our re-read and our replace loses its
        entries for this snapshot, which only costs a re-solve later, never
        a stale result.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            return None
        with self._lock:
            merged = {**self._read_entries(target), **self._entries}
            merged_hints = self._read_hints(target)
            for key, bucket in self._hints.items():
                for record in bucket:
                    existing = merged_hints.setdefault(key, [])
                    existing[:] = [r for r in existing if r != record]
                    existing.append(record)
                del merged_hints[key][:-_MAX_HINTS_PER_KEY]
            tmp = target.with_name(f"{target.name}.tmp{os.getpid()}")
            try:
                dump_json(
                    {
                        "version": CACHE_FORMAT_VERSION,
                        "entries": merged,
                        "hints": merged_hints,
                    },
                    tmp,
                )
                os.replace(tmp, target)
            finally:
                # No-op on success (os.replace consumed the temp file);
                # best-effort cleanup when the dump or the replace raised.
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
            self._entries = merged
            self._hints = merged_hints
            return target

    @staticmethod
    def _read_entries(path: Path) -> Dict[str, Any]:
        """Entries stored in ``path``; empty on missing/corrupt/old files.

        ``json.loads`` failures (truncated writes, binary garbage, undecodable
        bytes — all of which surface as ``ValueError`` subclasses — and OS
        errors such as the path being a directory) degrade to an empty cache,
        and individually malformed entry values are filtered out so a partly
        corrupted file never poisons a later :meth:`save`.
        """
        try:
            data = load_json(path)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("version") != CACHE_FORMAT_VERSION:
            return {}
        entries = data.get("entries")
        if not isinstance(entries, dict):
            return {}
        return {k: v for k, v in entries.items() if isinstance(v, dict)}

    @staticmethod
    def _read_hints(path: Path) -> Dict[str, List[Dict[str, Any]]]:
        """Hint index stored in ``path``; empty on missing/corrupt/old files."""
        try:
            data = load_json(path)
        except (OSError, ValueError):
            return {}
        if not isinstance(data, dict) or data.get("version") != CACHE_FORMAT_VERSION:
            return {}
        hints = data.get("hints")
        if not isinstance(hints, dict):
            return {}
        return {
            key: [r for r in bucket if isinstance(r, dict)]
            for key, bucket in hints.items()
            if isinstance(bucket, list)
        }

    def _load(self) -> None:
        with self._lock:
            self._entries.update(self._read_entries(self.path))
            for key, bucket in self._read_hints(self.path).items():
                for record in bucket:
                    self._record_hint(key, record)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters (for reports and the CLI summary line)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "hint_keys": len(self._hints),
                "hint_entries": sum(len(b) for b in self._hints.values()),
            }
