"""Parallel fan-out of independent solver invocations.

Every figure-level experiment decomposes into *independent*
:func:`~repro.core.search.find_optimal_config` calls — one per GPU count
(Fig. 4), per (generation, NVS-domain, GPU-count) grid cell (Fig. 5), or per
synthetic-GPU heatmap point (Figs. A5/A6).  The searches share no state, so
they fan out perfectly across a :class:`concurrent.futures.ProcessPoolExecutor`.

:class:`SweepExecutor` provides that fan-out with three guarantees:

* **deterministic ordering** — results come back in submission order
  regardless of which worker finishes first, so a parallel sweep is
  bit-identical to a serial one;
* **serial fallback** — ``jobs=1`` (the default), a failed pool start, or a
  broken pool mid-flight all degrade to plain in-process execution;
* **progress callbacks** — an optional ``progress(done, total)`` hook fires
  as points complete (including cache hits), for long sweeps.

:meth:`SweepExecutor.run` layers the content-addressed
:class:`~repro.runtime.cache.SearchCache` underneath: hits skip dispatch
entirely, misses are solved (in parallel) and written back, and a
path-backed cache is saved once at the end of the batch.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpace,
    count_configurations,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import DEFAULT_BACKEND, DEFAULT_OPTIONS, ModelingOptions, clear_caches
from repro.core.inference import ServingSpec
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.search import (
    ALL_STRATEGIES,
    DEFAULT_EVAL_MODE,
    MAX_WARM_HINTS,
    TRAINING_OBJECTIVE,
    SearchResult,
    find_optimal_config,
    find_pareto_configs,
)
from repro.core.system import SystemSpec
from repro.runtime.cache import SearchCache, reduced_fingerprint

#: ``progress(done, total)`` — invoked after every completed point.
ProgressCallback = Callable[[int, int], None]


@dataclass(frozen=True)
class SearchTask:
    """One self-contained :func:`find_optimal_config` invocation.

    The task carries *values*, not references to shared state, so it can be
    pickled to a worker process and fingerprinted by the cache.
    """

    model: TransformerConfig
    system: SystemSpec
    n_gpus: int
    global_batch_size: int
    strategy: Union[str, Tuple[str, ...]] = "tp1d"
    space: SearchSpace = DEFAULT_SEARCH_SPACE
    options: ModelingOptions = DEFAULT_OPTIONS
    top_k: int = 0
    #: Evaluation backend per candidate (see :mod:`repro.core.backends`).
    backend: str = DEFAULT_BACKEND
    #: Search objective: the training iteration time by default, or one of
    #: the serving objectives (``throughput``/``ttft``/``tpot``), in which
    #: case the task solves in inference mode against ``serving`` and its
    #: result is a :class:`~repro.core.inference.ServingSearchResult`.
    objective: str = TRAINING_OBJECTIVE
    #: Traffic description for serving-objective tasks (``None`` -> defaults).
    serving: Optional[ServingSpec] = None
    #: Multi-objective mode: a non-empty tuple of registered objective names
    #: (see :mod:`repro.core.objectives`) switches the task to
    #: :func:`~repro.core.search.find_pareto_configs` and its result to a
    #: :class:`~repro.core.search.ParetoResult`.  Unlike ``warm_hints`` this
    #: *is* part of equality and of the cache fingerprint — a Pareto solve
    #: and a scalar solve of the same point are different computations.
    objectives: Tuple[str, ...] = ()
    #: Candidate pricing mode (see :mod:`repro.core.batch_eval`): the scalar
    #: per-candidate oracle, or the vectorized ``"batch"`` pricer (identical
    #: results, several times faster; analytic backend only).
    eval_mode: str = DEFAULT_EVAL_MODE
    #: Warm-start hints: winner configs of neighboring points, evaluated
    #: first to seed the branch-and-bound threshold (see
    #: :func:`repro.core.search.find_optimal_config`).  Hints provably never
    #: change the result, so they are **excluded from equality and hashing**
    #: (batch dedup treats a hinted and an unhinted copy of the same search
    #: as one task) and from the cache fingerprint (a warm solve and a cold
    #: solve share one cache entry).
    warm_hints: Tuple[ParallelConfig, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        # Normalise strategy sequences to tuples so tasks stay hashable
        # (batch dedup uses them as dict keys) and picklable.
        if not isinstance(self.strategy, str):
            object.__setattr__(self, "strategy", tuple(self.strategy))
        if not isinstance(self.warm_hints, tuple):
            object.__setattr__(self, "warm_hints", tuple(self.warm_hints))
        if not isinstance(self.objectives, tuple):
            object.__setattr__(self, "objectives", tuple(self.objectives))


#: Relative per-candidate cost of the vectorized batch pricer versus the
#: scalar oracle.  Batch mode prices ~5x faster per candidate (see
#: ``scripts/perf_guard.py``'s measured floor of 3x and ``BENCH_search.json``),
#: so a batch task of equal candidate count is a much *shorter* job — LPT
#: dispatch must know that or it misorders mixed-mode task lists.
_BATCH_MODE_COST_FACTOR = 0.2


def _serving_task_candidates(task: SearchTask) -> int:
    """Candidate count of a serving-objective task's *actual* enumeration.

    Serving searches do not run the training enumeration: they restrict to
    the tp1d strategy, collapse the training-only axes (microbatch size,
    schedule, interleaving — see
    :func:`repro.core.inference._serving_space`) and apply the prompt's
    tensor-parallel divisibility rules.  Counting the training space instead
    (as this function's caller once did) overstated a serving task's cost by
    the collapsed axes' product — enough to push every serving point to the
    front of the longest-first dispatch order ahead of genuinely larger
    training searches.
    """
    from repro.core.inference import ServingSpec, _serving_space

    serving = task.serving if task.serving is not None else ServingSpec()
    serving_space = _serving_space(task.space)
    prefill_model = task.model.scaled(seq_len=serving.prompt_tokens)
    total = 0
    for config in parallel_configs(
        prefill_model, task.n_gpus, task.n_gpus, "tp1d", serving_space
    ):
        total += len(
            gpu_assignments(config, task.system.nvs_domain_size, serving_space)
        )
    return total


def estimate_task_cost(task: SearchTask) -> float:
    """Estimated solve cost of ``task`` (arbitrary units, larger = longer).

    Counts the full (parallelization, NVS-assignment) candidate set the
    task's solver actually enumerates: for training (and Pareto) tasks,
    :func:`repro.core.config_space.count_configurations` summed over the
    task's strategies; for serving-objective tasks the post-filter tp1d
    serving enumeration (:func:`_serving_task_candidates`) — the training
    count would overstate serving work by the collapsed microbatch/schedule
    axes.  The count is then scaled by the evaluation mode's per-candidate
    cost (:data:`_BATCH_MODE_COST_FACTOR`): a batch-mode search of the same
    space finishes ~5x sooner than a scalar one.  Used by
    :meth:`SweepExecutor.run` to dispatch the longest searches first
    (longest-processing-time order), so one huge GPU-count point submitted
    last no longer serializes the tail of a sweep.  Falls back to the GPU
    count if the enumeration itself rejects the task (the solver will
    surface the real error).
    """
    if isinstance(task.strategy, str):
        strategies = ALL_STRATEGIES if task.strategy == "all" else (task.strategy,)
    else:
        strategies = task.strategy
    total = 0
    if task.objective != TRAINING_OBJECTIVE and not task.objectives:
        try:
            total = _serving_task_candidates(task)
        except (ValueError, KeyError):
            total = task.n_gpus
    else:
        for strategy in strategies:
            try:
                _, n_candidates = count_configurations(
                    task.model,
                    task.n_gpus,
                    task.global_batch_size,
                    strategy,
                    task.system.nvs_domain_size,
                    task.space,
                )
                total += n_candidates
            except (ValueError, KeyError):
                total += task.n_gpus
    if task.eval_mode == "batch":
        return float(total) * _BATCH_MODE_COST_FACTOR
    return float(total)


def solve_search_task(task: SearchTask):
    """Run the optimal-configuration search described by ``task``.

    Module-level (not a method) so :class:`ProcessPoolExecutor` can pickle
    it.  Returns a :class:`~repro.core.search.SearchResult` for training
    tasks, a :class:`~repro.core.inference.ServingSearchResult` for
    serving-objective tasks and a :class:`~repro.core.search.ParetoResult`
    for tasks with a non-empty ``objectives`` tuple.
    """
    if task.objectives:
        return find_pareto_configs(
            task.model,
            task.system,
            n_gpus=task.n_gpus,
            global_batch_size=task.global_batch_size,
            objectives=task.objectives,
            strategy=task.strategy,
            space=task.space,
            options=task.options,
            backend=task.backend,
            eval_mode=task.eval_mode,
            warm_hints=task.warm_hints,
        )
    return find_optimal_config(
        task.model,
        task.system,
        n_gpus=task.n_gpus,
        global_batch_size=task.global_batch_size,
        strategy=task.strategy,
        space=task.space,
        options=task.options,
        top_k=task.top_k,
        backend=task.backend,
        objective=task.objective,
        serving=task.serving,
        eval_mode=task.eval_mode,
        warm_hints=task.warm_hints,
    )


def _winner_config(result) -> Optional[ParallelConfig]:
    """The winning :class:`ParallelConfig` of a search result, if any."""
    return getattr(getattr(result, "best", None), "config", None)


def _task_strategies(task: SearchTask) -> Tuple[str, ...]:
    """The concrete strategy tuple a task's training search will run."""
    if isinstance(task.strategy, str):
        return ALL_STRATEGIES if task.strategy == "all" else (task.strategy,)
    return tuple(task.strategy)


def _incumbent_slots_for(tasks: Sequence[SearchTask]) -> Optional[Dict[str, object]]:
    """Cross-worker incumbent slots for the batch-eligible tasks of a batch.

    One ``multiprocessing.Value('d', inf)`` per scope key of every task
    that can consume a shared bound: batch eval mode, best-only (no top-k),
    the training objective, the analytic backend and pruning enabled.
    Returns ``None`` when no task qualifies or the platform cannot allocate
    shared memory (sharing is an optimisation, never a requirement).
    """
    from repro.core.batch_eval import incumbent_scope_keys

    keys = set()
    for task in tasks:
        if (
            task.eval_mode != "batch"
            or task.top_k != 0
            or task.objective != TRAINING_OBJECTIVE
            or task.objectives  # a shared scalar bound cannot prune a frontier
            or task.backend != DEFAULT_BACKEND
            or not task.space.prune_with_lower_bound
        ):
            continue
        keys.update(
            incumbent_scope_keys(
                task.model,
                task.system,
                task.n_gpus,
                task.global_batch_size,
                task.space,
                task.options,
                _task_strategies(task),
            )
        )
    if not keys:
        return None
    try:
        import multiprocessing

        return {key: multiprocessing.Value("d", math.inf) for key in sorted(keys)}
    except (OSError, ImportError, NotImplementedError):
        return None


def _worker_init(slots: Optional[Dict[str, object]]) -> None:
    """Pool initializer: cold caches plus the shared incumbent slots.

    Workers start from a cold, explicitly bounded memoization state —
    ``clear_caches()`` covers every model-layer cache, so a long-lived
    worker's memory stays bounded by the caches' sizes rather than by
    whatever the parent had accumulated.  The slots (inherited through
    process creation) let batch-mode searches of the same scope tighten
    each other's branch-and-bound thresholds across workers.
    """
    clear_caches()
    from repro.core.batch_eval import install_shared_slots

    install_shared_slots(slots)


class SweepExecutor:
    """Executes batches of independent solver calls, serially or in parallel.

    Parameters
    ----------
    jobs:
        Worker-process count.  ``None`` or ``1`` runs serially in-process;
        ``N > 1`` fans out across a :class:`ProcessPoolExecutor` (falling
        back to serial execution if a pool cannot be started or breaks).
    cache:
        Optional :class:`SearchCache` consulted by :meth:`run` before
        dispatching and updated with every solved point.
    progress:
        Optional ``progress(done, total)`` callback.  :meth:`map` and
        :meth:`run` also accept a per-call ``progress=`` override, so one
        shared executor can report each caller's batch to that caller only.
    persistent:
        Keep one worker pool alive across :meth:`map`/:meth:`run` calls
        instead of starting a fresh pool per batch.  This is what the
        long-running API server uses: concurrent request threads are
        multiplexed onto the same warm workers (``ProcessPoolExecutor`` is
        thread-safe), amortizing process start-up across requests.  A
        persistent pool does not install per-batch shared incumbent slots
        (its workers outlive any one batch); results are identical either
        way — the slots only accelerate pruning.  Call :meth:`close` (or
        use the executor as a context manager) to release the workers.

    One instance may be used from several threads concurrently: per-call
    state (progress callbacks, incumbent slots) is passed down the call
    chain rather than stored on the instance, and pool creation/teardown
    is guarded by a lock.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        *,
        cache: Optional[SearchCache] = None,
        progress: Optional[ProgressCallback] = None,
        persistent: bool = False,
    ):
        self.jobs = max(1, int(jobs)) if jobs else 1
        self.cache = cache
        self.progress = progress
        self.persistent = bool(persistent)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _acquire_pool(
        self, n_items: int, slots: Optional[Dict[str, object]]
    ) -> Tuple[ProcessPoolExecutor, bool]:
        """A pool to run one batch on, plus whether the *caller* owns it.

        Transient (per-batch) pools are sized to the batch and install the
        batch's shared incumbent ``slots``; the persistent pool is sized to
        ``jobs``, initialized once without slots, and reused.  Raises the
        ``ProcessPoolExecutor`` start-up errors of the host (handled by
        :meth:`_map_parallel`'s serial fallback).
        """
        if not self.persistent:
            return (
                ProcessPoolExecutor(
                    max_workers=min(self.jobs, n_items),
                    initializer=_worker_init,
                    initargs=(slots,),
                ),
                True,
            )
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_worker_init,
                    initargs=(None,),
                )
            return self._pool, False

    def _discard_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop a broken persistent pool so the next batch starts a new one."""
        with self._pool_lock:
            if self._pool is pool:
                self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the persistent worker pool (no-op for per-batch pools)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Generic fan-out
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        progress: Optional[ProgressCallback] = None,
        _done_offset: int = 0,
        _total: Optional[int] = None,
        _slots: Optional[Dict[str, object]] = None,
    ) -> List:
        """Apply ``fn`` to every item, returning results in input order.

        ``fn`` and the items must be picklable when ``jobs > 1``.  Failures
        to run *in parallel* — worker processes cannot be started, or the
        pool breaks mid-batch — degrade to serial execution of the items
        that have not completed yet; exceptions raised by ``fn`` itself
        always propagate.  ``progress`` overrides the instance-level
        callback for this call only.
        """
        items = list(items)
        total = _total if _total is not None else len(items)
        report = progress if progress is not None else self.progress
        if self.jobs <= 1 or len(items) <= 1:
            return self._map_serial(fn, items, _done_offset, total, report)
        return self._map_parallel(fn, items, _done_offset, total, report, _slots)

    @staticmethod
    def _report(done: int, total: int, report: Optional[ProgressCallback]) -> None:
        if report is not None:
            report(done, total)

    def _map_serial(
        self,
        fn: Callable,
        items: List,
        done: int,
        total: int,
        report: Optional[ProgressCallback],
    ) -> List:
        results = []
        for item in items:
            results.append(fn(item))
            done += 1
            self._report(done, total, report)
        return results

    def _map_parallel(
        self,
        fn: Callable,
        items: List,
        done: int,
        total: int,
        report: Optional[ProgressCallback],
        slots: Optional[Dict[str, object]] = None,
    ) -> List:
        try:
            # _worker_init clears the memoization caches (bounded worker
            # memory) and installs the batch's shared incumbent slots.
            pool, owned = self._acquire_pool(len(items), slots)
        except (OSError, NotImplementedError, ImportError):
            # This host cannot start worker processes at all (restricted
            # sandbox, missing semaphores, ...): run everything in-process.
            return self._map_serial(fn, items, done, total, report)

        results: List = [None] * len(items)
        completed = [False] * len(items)
        try:
            futures = {}
            try:
                for idx, item in enumerate(items):
                    futures[pool.submit(fn, item)] = idx
            except (OSError, RuntimeError):
                # Worker processes could not be forked, or a shared
                # persistent pool was shut down under us (distinct from fn
                # raising, which surfaces via fut.result() below): drop the
                # pool and run everything in-process.
                for fut in futures:
                    fut.cancel()
                if not owned:
                    self._discard_pool(pool)
                return self._map_serial(fn, items, done, total, report)
            try:
                pending = set(futures)
                while pending:
                    finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for fut in finished:
                        idx = futures[fut]
                        # fn's own exceptions re-raise here and propagate.
                        results[idx] = fut.result()
                        completed[idx] = True
                        done += 1
                        self._report(done, total, report)
            except BrokenProcessPool:
                # A worker died mid-batch: keep every completed result and
                # finish only the incomplete items serially, so no work is
                # repeated and progress stays monotonic.  A broken
                # persistent pool is discarded so later batches recover.
                if not owned:
                    self._discard_pool(pool)
                for idx, item in enumerate(items):
                    if not completed[idx]:
                        results[idx] = fn(item)
                        completed[idx] = True
                        done += 1
                        self._report(done, total, report)
        finally:
            if owned:
                pool.shutdown(wait=False, cancel_futures=True)
        return results

    # ------------------------------------------------------------------
    # Cache-aware search batches
    # ------------------------------------------------------------------
    def _hints_for(
        self,
        task: SearchTask,
        board: Dict[str, List[ParallelConfig]],
    ) -> Tuple[ParallelConfig, ...]:
        """Warm hints for ``task``: its own, then the run's, then the cache's.

        The in-run board holds winners of points already solved (or cache-hit)
        in this batch, most recent first — for a sweep ordered along its axis
        that is exactly the neighboring point.  The cache's structure-keyed
        index extends the reach to points solved in past runs or by other
        processes.  Deduplicated, capped at
        :data:`repro.core.search.MAX_WARM_HINTS`.
        """
        hints: List[ParallelConfig] = list(task.warm_hints)
        hints.extend(board.get(reduced_fingerprint(task), ()))
        if self.cache is not None:
            hints.extend(self.cache.warm_hints(task))
        unique: List[ParallelConfig] = []
        for hint in hints:
            if hint not in unique:
                unique.append(hint)
            if len(unique) >= MAX_WARM_HINTS:
                break
        return tuple(unique)

    @staticmethod
    def _record_winner(
        task: SearchTask, result, board: Dict[str, List[ParallelConfig]]
    ) -> None:
        """Prepend ``result``'s winner to the in-run hint board."""
        config = _winner_config(result)
        if config is None:
            return
        bucket = board.setdefault(reduced_fingerprint(task), [])
        if config in bucket:
            bucket.remove(config)
        bucket.insert(0, config)

    def run(
        self,
        tasks: Sequence[SearchTask],
        *,
        progress: Optional[ProgressCallback] = None,
        warm_start: bool = True,
    ) -> List[SearchResult]:
        """Solve every task (cache hits first), preserving input order.

        Duplicate tasks within the batch are solved once and fanned back to
        every occurrence (the ``speedup`` sweep, for instance, can submit
        the same baseline search for many grid points).

        With ``warm_start`` (the default) each solve is seeded with the
        winners of neighboring points: serially, every point's winner chains
        forward into the next solve of the same structure; in parallel,
        hints come from the batch's cache hits and the cache's persistent
        hint index (a worker cannot see a sibling's in-flight winner —
        batch-eval tasks still share bounds live through the incumbent
        board).  Warm starting provably never changes any selected optimum
        (see :func:`~repro.core.search.find_optimal_config`), only the
        compare-excluded work counters.

        Batch-eval tasks additionally share their branch-and-bound
        incumbents across workers (see :func:`_incumbent_slots_for`).  The
        selected optima are identical either way — a shared bound can only
        prune candidates that provably cannot win — but the *work counters*
        of such a task (``candidates_evaluated``, ``pruned_configs``) may
        differ between a parallel and a serial run, since how early a
        sibling's bound arrives depends on worker timing;
        ``shared_incumbent_prunes`` (compare-excluded) attributes the
        difference.
        """
        tasks = list(tasks)
        total = len(tasks)
        report = progress if progress is not None else self.progress
        results: List[Optional[SearchResult]] = [None] * total

        hint_board: Dict[str, List[ParallelConfig]] = {}
        pending: Dict[SearchTask, List[int]] = {}
        done = 0
        for idx, task in enumerate(tasks):
            hit = self.cache.get(task) if self.cache is not None else None
            if hit is not None:
                results[idx] = hit
                if warm_start:
                    self._record_winner(task, hit, hint_board)
                done += 1
                self._report(done, total, report)
            else:
                pending.setdefault(task, []).append(idx)

        unique_tasks = list(pending)
        slots: Optional[Dict[str, object]] = None
        serial = self.jobs <= 1 or len(unique_tasks) <= 1
        if not serial:
            # Longest-processing-time dispatch: hand the biggest searches to
            # the pool first so the sweep's critical path is the single
            # largest point, not "whatever happened to be submitted last".
            # Results are fanned back to their original positions through
            # ``pending``, so the returned order (and every result) is
            # identical to serial execution.
            unique_tasks.sort(key=estimate_task_cost, reverse=True)
            if not self.persistent:
                # A persistent pool's workers were initialized before this
                # batch existed, so per-batch slots cannot be installed;
                # cross-worker bound sharing is an optimisation only.
                slots = _incumbent_slots_for(unique_tasks)

        if not warm_start:
            solve = solve_search_task
            dispatch: Sequence[SearchTask] = unique_tasks
        elif serial:
            # In-process: chain each solved point's winner into the next
            # task of the same structure (sweeps submit tasks ordered along
            # their axis, so the previous point is the nearest neighbor).
            # A closure is fine here — the serial path never pickles it.
            def solve(task: SearchTask):
                result = solve_search_task(
                    replace(task, warm_hints=self._hints_for(task, hint_board))
                )
                self._record_winner(task, result, hint_board)
                return result

            dispatch = unique_tasks
        else:
            # Worker processes cannot see each other's in-flight winners, so
            # hints are pre-attached from what is already known (this
            # batch's cache hits and the cache's persistent hint index);
            # live cross-worker seeding continues through the shared
            # incumbent board for batch-eval tasks.
            solve = solve_search_task
            dispatch = [
                replace(task, warm_hints=self._hints_for(task, hint_board))
                for task in unique_tasks
            ]

        solved = self.map(
            solve,
            dispatch,
            progress=report,
            _done_offset=done,
            _total=total,
            _slots=slots,
        )
        done += len(unique_tasks)
        for task, result in zip(unique_tasks, solved):
            for idx in pending[task]:
                results[idx] = result
            # Duplicate occurrences complete "for free" once their unique
            # task is solved; report them so progress still reaches total.
            for _ in pending[task][1:]:
                done += 1
                self._report(done, total, report)
            if self.cache is not None:
                self.cache.put(task, result)
        if self.cache is not None:
            self.cache.save()
        return results  # type: ignore[return-value]
