"""Sweep-execution runtime: parallel fan-out plus content-addressed caching.

The analysis layer (:mod:`repro.analysis`) expresses every figure as a batch
of independent optimal-configuration searches.  This subpackage is the
execution layer underneath it:

* :class:`~repro.runtime.executor.SweepExecutor` — fans a batch of
  :class:`~repro.runtime.executor.SearchTask`\\ s across worker processes
  with deterministic result ordering, a serial fallback and progress
  callbacks;
* :class:`~repro.runtime.cache.SearchCache` — memoizes solved points under
  a content hash of all search inputs, with optional JSON persistence, so
  repeated and overlapping sweeps skip already-solved points.

Both are reachable from the CLI via the ``--jobs`` / ``--cache`` flags of
the ``scaling``, ``systems`` and ``speedup`` sub-commands.
"""

from repro.runtime.cache import CACHE_FORMAT_VERSION, SearchCache
from repro.runtime.executor import (
    ProgressCallback,
    SearchTask,
    SweepExecutor,
    solve_search_task,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "ProgressCallback",
    "SearchCache",
    "SearchTask",
    "SweepExecutor",
    "solve_search_task",
]
