"""Legacy setup shim.

The project is fully described by ``pyproject.toml`` (package metadata, the
``repro-perf`` console script and the ``src/`` layout); this file only
exists so that ``pip install -e .`` works on offline machines that lack the
``wheel`` package (pip falls back to the legacy editable install path via
``--no-use-pep517`` / ``setup.py develop``).
"""

from setuptools import setup

setup()
