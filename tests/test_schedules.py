"""Pluggable pipeline schedules: registry, properties, legacy equivalence.

The three headline properties the cost-plan refactor promises:

* ``interleaved(v=1)`` reduces *exactly* (bit-for-bit) to ``1f1b``;
* the GPipe bubble is never smaller than the 1F1B bubble for the same
  stage times (and its activation memory is never smaller either);
* reducing the built :class:`ExecutionPlan` equals the legacy inline
  computation — re-derived independently here from the same primitives —
  on a sampled grid of dense / MoE / GQA configurations.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_space import SearchSpace, parallel_configs
from repro.core.execution import (
    DEFAULT_OPTIONS,
    ModelingOptions,
    _cached_stage_times,
    _cached_workload,
    _comm_time,
    _group_placement,
    _summa_comm_time,
    evaluate_config,
)
from repro.core.backends import AnalyticPricer
from repro.core.collectives import collective_time, point_to_point_time
from repro.core.model import GPT3_1T
from repro.core.parallelism.base import GROUP_PP, GpuAssignment, ParallelConfig
from repro.core.parallelism.data_parallel import data_parallel_plan, resolve_zero_stage
from repro.core.parallelism.pipeline import (
    layers_per_stage,
    pipeline_bubble_time,
    pipeline_p2p_volume_bytes,
)
from repro.core.schedules import (
    SCHEDULE_REGISTRY,
    available_schedules,
    get_schedule,
    register_schedule,
)
from repro.core.schedules.base import PipelineSchedule
from repro.core.search import find_optimal_config
from repro.core.system import make_system
from repro.core.workloads import get_workload


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


#: Scenario grid the equivalence properties sample from: a dense paper
#: model, a GQA variant and an MoE+GQA model, each at a small GPU count.
_SCENARIOS = []
for _workload, _n_gpus, _batch in (
    ("gpt3-1t", 32, 64),
    ("gpt3-1t-gqa", 32, 64),
    ("moe-mixtral", 16, 32),
):
    _model = get_workload(_workload).model
    _SCENARIOS.extend(
        (_model, _n_gpus, _batch, _config)
        for _config in parallel_configs(_model, _n_gpus, _batch, "tp1d")
    )


class TestRegistry:
    def test_builtin_schedules_registered(self):
        assert set(available_schedules()) >= {"1f1b", "gpipe", "interleaved"}

    def test_lookup_is_case_insensitive(self):
        assert get_schedule("  GPipe ") is SCHEDULE_REGISTRY["gpipe"]

    def test_unknown_schedule_raises(self):
        with pytest.raises(KeyError):
            get_schedule("pipedream-2bw")

    def test_custom_schedule_plugs_in(self, b200):
        class ZeroBubble(PipelineSchedule):
            name = "zero-bubble-test"
            description = "idealised zero-bubble schedule (test only)"

            def bubble_time(self, num_stages, num_microbatches, tf, tb, virtual_stages=1):
                return 0.0

        register_schedule(ZeroBubble())
        try:
            config = ParallelConfig(
                strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
                pipeline_parallel=64, data_parallel=32, microbatch_size=1,
                schedule="zero-bubble-test",
            )
            est = evaluate_config(
                GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
            )
            assert est.breakdown.pp_bubble == 0.0
        finally:
            SCHEDULE_REGISTRY.pop("zero-bubble-test")


class TestInterleavedReducesTo1F1B:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(_SCENARIOS))
    def test_v1_is_bit_identical_to_1f1b(self, scenario):
        model, n_gpus, batch, config = scenario
        interleaved = dataclasses.replace(config, schedule="interleaved", virtual_stages=1)
        base = evaluate_config(model, make_system("B200", 8), config, global_batch_size=batch)
        variant = evaluate_config(
            model, make_system("B200", 8), interleaved, global_batch_size=batch
        )
        assert variant.breakdown == base.breakdown  # bit-exact, not approx
        assert variant.memory == base.memory
        assert variant.feasible == base.feasible

    @settings(max_examples=40, deadline=None)
    @given(
        num_stages=st.integers(min_value=1, max_value=128),
        num_microbatches=st.integers(min_value=1, max_value=512),
        tf=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        tb=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_v1_formulas_match_exactly(self, num_stages, num_microbatches, tf, tb):
        one = get_schedule("1f1b")
        inter = get_schedule("interleaved")
        assert inter.bubble_time(num_stages, num_microbatches, tf, tb, 1) == one.bubble_time(
            num_stages, num_microbatches, tf, tb, 1
        )
        assert inter.in_flight_microbatches(num_stages, num_microbatches, 1) == (
            one.in_flight_microbatches(num_stages, num_microbatches, 1)
        )
        assert inter.p2p_volume_factor(1) == one.p2p_volume_factor(1)

    def test_higher_degree_shrinks_bubble_and_grows_p2p(self, b200):
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=64, data_parallel=32, microbatch_size=1,
            schedule="interleaved", virtual_stages=2,
        )
        base = evaluate_config(
            GPT3_1T, b200, dataclasses.replace(config, schedule="1f1b", virtual_stages=1),
            GpuAssignment(nvs_tp1=8), global_batch_size=4096,
        )
        inter = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        assert inter.breakdown.pp_bubble == pytest.approx(base.breakdown.pp_bubble / 2)
        assert inter.breakdown.pp_comm == pytest.approx(2 * base.breakdown.pp_comm)
        # Everything schedule-independent is untouched.
        assert inter.breakdown.compute == base.breakdown.compute
        assert inter.breakdown.tp_comm == base.breakdown.tp_comm

    def test_non_dividing_degree_rejected(self, b200):
        # 128 layers / 64 stages = 2 layers per stage; v=4 cannot divide them.
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=64, data_parallel=32, microbatch_size=1,
            schedule="interleaved", virtual_stages=4,
        )
        with pytest.raises(ValueError):
            evaluate_config(
                GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
            )

    def test_interleaving_requires_pipeline(self, b200):
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=1, data_parallel=16, microbatch_size=1,
            schedule="interleaved", virtual_stages=2,
        )
        with pytest.raises(ValueError):
            evaluate_config(
                GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
            )


class TestGPipeVs1F1B:
    @settings(max_examples=60, deadline=None)
    @given(
        num_stages=st.integers(min_value=1, max_value=128),
        num_microbatches=st.integers(min_value=1, max_value=512),
        tf=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        tb=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    def test_gpipe_bubble_never_smaller(self, num_stages, num_microbatches, tf, tb):
        gpipe = get_schedule("gpipe")
        one = get_schedule("1f1b")
        assert gpipe.bubble_time(num_stages, num_microbatches, tf, tb) >= one.bubble_time(
            num_stages, num_microbatches, tf, tb
        )
        # ... and it retains at least as many microbatches.
        assert gpipe.in_flight_microbatches(num_stages, num_microbatches) >= (
            one.in_flight_microbatches(num_stages, num_microbatches)
        )

    def test_gpipe_memory_dominates_when_microbatches_exceed_stages(self, b200):
        base = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=8, data_parallel=4, microbatch_size=1,
        )
        one = evaluate_config(
            GPT3_1T, b200, base, GpuAssignment(nvs_tp1=8), global_batch_size=1024
        )
        gpipe = evaluate_config(
            GPT3_1T, b200, dataclasses.replace(base, schedule="gpipe"),
            GpuAssignment(nvs_tp1=8), global_batch_size=1024,
        )
        # 256 microbatches in flight instead of 8: GPipe pays in HBM,
        # not in time.
        assert gpipe.memory.activation_bytes > one.memory.activation_bytes
        assert gpipe.breakdown == one.breakdown


def _legacy_breakdown(model, system, config, assignment, global_batch_size, options):
    """The pre-IR inline iteration-time arithmetic, re-derived independently.

    This is a line-for-line port of the monolithic ``evaluate_config`` as it
    existed before the cost-plan refactor (1F1B hard-coded); the property
    below checks the plan-built breakdown reproduces it bit-for-bit.
    """
    num_microbatches = config.num_microbatches(global_batch_size)
    stage_layers = layers_per_stage(model, config)
    stage = _cached_stage_times(
        config.strategy, model, system.gpu, config.microbatch_size,
        config.tensor_parallel_1, config.tensor_parallel_2, config.summa_panels,
        options.flash_attention, options.include_dropout,
        options.include_flop_latency, config.expert_parallel,
    )
    workload = _cached_workload(
        config.strategy, model, config.microbatch_size,
        config.tensor_parallel_1, config.tensor_parallel_2, config.summa_panels,
        options.flash_attention, options.include_dropout, config.expert_parallel,
    )

    pricer = AnalyticPricer(system)
    fwd_tp = _comm_time(stage.fwd_comms, config, assignment, pricer) + _summa_comm_time(
        stage.fwd_summa, config, assignment, pricer
    )
    bwd_tp = _comm_time(stage.bwd_comms, config, assignment, pricer) + _summa_comm_time(
        stage.bwd_summa, config, assignment, pricer
    )
    fwd_compute = stage.fwd_flop * stage_layers
    fwd_memory = stage.fwd_mem_exposed * stage_layers
    bwd_compute = stage.bwd_flop * stage_layers
    bwd_memory = stage.bwd_mem_exposed * stage_layers
    fwd_tp *= stage_layers
    bwd_tp *= stage_layers
    if options.activation_checkpointing:
        bwd_compute += fwd_compute
        bwd_memory += fwd_memory
        bwd_tp += fwd_tp
    tf = fwd_compute + fwd_memory + fwd_tp
    tb = bwd_compute + bwd_memory + bwd_tp
    m = num_microbatches

    bubble = pipeline_bubble_time(config.pipeline_parallel, tf, tb)
    pp_comm = 0.0
    if config.pipeline_parallel > 1 and not options.overlap_pp:
        p2p_bytes = pipeline_p2p_volume_bytes(model, config, both_directions=True)
        placement = _group_placement(GROUP_PP, config, assignment)
        pp_comm = m * point_to_point_time(p2p_bytes, placement, system.network)

    zero_stage = resolve_zero_stage(options.zero_stage, options.zero_optimizer)
    plans = [
        data_parallel_plan(
            workload.params_per_gpu * stage_layers, config,
            grad_sync_group=workload.grad_sync_group,
            overlap_with_compute=options.overlap_dp, zero_stage=zero_stage,
        )
    ]
    if workload.expert_params_per_gpu > 0:
        plans.append(
            data_parallel_plan(
                workload.expert_params_per_gpu * stage_layers, config,
                grad_sync_group=workload.expert_grad_sync_group,
                overlap_with_compute=options.overlap_dp, zero_stage=zero_stage,
            )
        )
    dp_comm = 0.0
    rs_total = 0.0
    ag_total = 0.0
    for plan in plans:
        if plan.total_bytes <= 0:
            continue
        placement = _group_placement(plan.sync_group, config, assignment)
        rs_total += collective_time(
            "reduce_scatter", plan.grad_reduce_scatter_bytes, placement, system.network
        )
        ag_total += collective_time(
            "all_gather", plan.weight_all_gather_bytes, placement, system.network
        )
    if rs_total > 0 or ag_total > 0:
        if options.overlap_dp:
            dp_comm = max(0.0, rs_total - tb) + max(0.0, ag_total - tf)
        else:
            dp_comm = rs_total + ag_total

    return {
        "compute": m * (fwd_compute + bwd_compute),
        "memory": m * (fwd_memory + bwd_memory),
        "tp_comm": m * (fwd_tp + bwd_tp),
        "pp_bubble": bubble,
        "pp_comm": pp_comm,
        "dp_comm": dp_comm,
    }


class TestPlanReductionMatchesLegacy:
    @settings(max_examples=60, deadline=None)
    @given(
        scenario=st.sampled_from(_SCENARIOS),
        overlap_dp=st.booleans(),
        overlap_pp=st.booleans(),
        checkpointing=st.booleans(),
    )
    def test_reduction_is_bit_exact(self, scenario, overlap_dp, overlap_pp, checkpointing):
        model, n_gpus, batch, config = scenario
        system = make_system("B200", 8)
        options = ModelingOptions(
            overlap_dp=overlap_dp,
            overlap_pp=overlap_pp,
            activation_checkpointing=checkpointing,
        )
        assignment = GpuAssignment()
        est = evaluate_config(
            model, system, config, assignment, global_batch_size=batch, options=options
        )
        legacy = _legacy_breakdown(model, system, config, assignment, batch, options)
        assert est.breakdown.as_dict() == legacy  # == on every float: bit-exact

    def test_summa_strategy_also_matches(self, b200):
        model = GPT3_1T
        for config in parallel_configs(model, 16, 32, "summa"):
            est = evaluate_config(model, b200, config, global_batch_size=32)
            legacy = _legacy_breakdown(
                model, b200, config, GpuAssignment(), 32, DEFAULT_OPTIONS
            )
            assert est.breakdown.as_dict() == legacy


class TestScheduleSearch:
    def test_interleaved_pruned_search_matches_exhaustive(self, b200):
        space = SearchSpace(
            schedules=("interleaved",), virtual_stages=(1, 2), prune_with_lower_bound=True
        )
        exhaustive_space = dataclasses.replace(space, prune_with_lower_bound=False)
        pruned = find_optimal_config(
            GPT3_1T, b200, n_gpus=128, global_batch_size=128, strategy="tp1d", space=space
        )
        exhaustive = find_optimal_config(
            GPT3_1T, b200, n_gpus=128, global_batch_size=128, strategy="tp1d",
            space=exhaustive_space,
        )
        assert pruned.found and exhaustive.found
        assert pruned.best == exhaustive.best
        assert pruned.statistics.candidates_evaluated <= (
            exhaustive.statistics.candidates_evaluated
        )
        # The halved bubble makes interleaving beat plain 1F1B here.
        baseline = find_optimal_config(
            GPT3_1T, b200, n_gpus=128, global_batch_size=128, strategy="tp1d"
        )
        assert pruned.best_time < baseline.best_time

    def test_schedule_axis_enumerates_both_degrees(self, b200):
        space = SearchSpace(schedules=("interleaved",), virtual_stages=(1, 2))
        degrees = {
            config.virtual_stages
            for config in parallel_configs(GPT3_1T, 64, 128, "tp1d", space)
        }
        assert degrees == {1, 2}

    def test_default_space_only_searches_1f1b(self, b200):
        for config in parallel_configs(GPT3_1T, 64, 128, "tp1d"):
            assert config.schedule == "1f1b"
            assert config.virtual_stages == 1

    def test_gpipe_search_never_beats_1f1b(self, b200):
        # GPipe matches 1F1B's time where it fits, but its all-m activation
        # retention rules out some candidates, so its optimum can only tie
        # or lose.
        one = find_optimal_config(GPT3_1T, b200, n_gpus=128, global_batch_size=128)
        gpipe = find_optimal_config(
            GPT3_1T, b200, n_gpus=128, global_batch_size=128,
            space=SearchSpace(schedules=("gpipe",)),
        )
        assert one.found and gpipe.found
        assert gpipe.best_time >= one.best_time
