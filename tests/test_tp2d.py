"""2D tensor parallelism (Table II of the paper)."""

import pytest

from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.operations import total_flops
from repro.core.parallelism.base import (
    GROUP_DP_TP2,
    GROUP_TP1,
    GROUP_TP2,
    ParallelConfig,
    get_strategy,
)


def make_config(n1=4, n2=4, np_=1, nd=1, bm=1, model="gpt"):
    return ParallelConfig(
        strategy="tp2d",
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=np_,
        data_parallel=nd,
        microbatch_size=bm,
    )


@pytest.fixture(scope="module")
def strategy():
    return get_strategy("tp2d")


@pytest.fixture(scope="module")
def workload(strategy):
    return strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=4))


class TestTableII:
    """Communication volumes of Table II scale with the orthogonal dimension."""

    def test_n1_collectives_carry_ble_over_n2(self, workload):
        b, l, e = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim
        expected = 2 * b * l * e / 4  # bytes, divided by n2 = 4
        n1_comms = [c for c in workload.forward_comms if c.group == GROUP_TP1]
        assert len(n1_comms) == 4
        for comm in n1_comms:
            assert comm.volume_bytes == pytest.approx(expected)

    def test_kv_gather_carries_ble_over_n1(self, workload):
        b, l, e = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim
        expected = 2 * b * l * e / 4  # bytes, divided by n1 = 4
        n2_comms = [c for c in workload.forward_comms if c.group == GROUP_TP2]
        assert len(n2_comms) == 2  # K and V
        for comm in n2_comms:
            assert comm.volume_bytes == pytest.approx(expected)
            assert comm.collective == "all_gather"

    def test_volumes_scale_down_with_partner_dimension(self, strategy):
        w_n2_2 = strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=2))
        w_n2_8 = strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=8))
        v2 = sum(c.volume_bytes for c in w_n2_2.forward_comms if c.group == GROUP_TP1)
        v8 = sum(c.volume_bytes for c in w_n2_8.forward_comms if c.group == GROUP_TP1)
        assert v8 == pytest.approx(v2 / 4)

    def test_reduces_to_1d_volumes_when_n2_is_one(self, strategy):
        tp1d = get_strategy("tp1d")
        w2d = strategy.layer_workload(GPT3_1T, make_config(n1=8, n2=1))
        w1d = tp1d.layer_workload(
            GPT3_1T,
            ParallelConfig(
                strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
                pipeline_parallel=1, data_parallel=1, microbatch_size=1,
            ),
        )
        v2d = sum(c.volume_bytes for c in w2d.forward_comms if c.group == GROUP_TP1)
        v1d = sum(c.volume_bytes for c in w1d.forward_comms)
        assert v2d == pytest.approx(v1d)


class TestComputeAndMemory:
    def test_flops_scale_inversely_with_grid_size(self, strategy):
        w4 = strategy.layer_workload(GPT3_1T, make_config(n1=2, n2=2))
        w16 = strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=4))
        assert total_flops(w16.forward_ops) == pytest.approx(
            total_flops(w4.forward_ops) / 4, rel=0.05
        )

    def test_activation_memory_beats_1d_for_long_sequences(self, strategy):
        tp1d = get_strategy("tp1d")
        nt = 16
        w1d = tp1d.layer_workload(
            VIT_LONG_SEQ,
            ParallelConfig(
                strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
                pipeline_parallel=1, data_parallel=1, microbatch_size=1,
            ),
        )
        w2d = strategy.layer_workload(VIT_LONG_SEQ, make_config(n1=4, n2=4))
        assert w2d.activation_elements < 0.75 * w1d.activation_elements

    def test_weights_sharded_over_n1_only(self, strategy):
        w = strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=4))
        e, f = GPT3_1T.embed_dim, GPT3_1T.hidden_dim
        matrix = 4 * e * e + 2 * e * f
        assert w.params_per_gpu == pytest.approx(matrix / 4, rel=0.05)

    def test_grad_sync_group_includes_n2(self, workload):
        assert workload.grad_sync_group == GROUP_DP_TP2


class TestValidation:
    def test_sequence_must_divide_n2(self, strategy):
        # GPT3-1T seq_len = 2048; n2 = 3 does not divide it.
        config = ParallelConfig(
            strategy="tp2d", tensor_parallel_1=4, tensor_parallel_2=3,
            pipeline_parallel=1, data_parallel=1, microbatch_size=1,
        )
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_heads_must_divide_n1(self, strategy):
        config = make_config(n1=64, n2=1)  # 160 heads not divisible by 64
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_valid_vit_config(self, strategy):
        config = make_config(n1=4, n2=4)
        assert strategy.validate_config(VIT_LONG_SEQ, config) is None
