"""Pipeline parallelism: the 1F1B schedule model."""

import pytest

from repro.core.model import GPT3_1T
from repro.core.parallelism.base import ParallelConfig
from repro.core.parallelism.pipeline import (
    PipelineTiming,
    in_flight_microbatches,
    layers_per_stage,
    pipeline_bubble_time,
    pipeline_p2p_volume_bytes,
)


def tp1d_config(np_=8, nt=8, nd=1, bm=1):
    return ParallelConfig(
        strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=bm,
    )


class TestBubbleModel:
    def test_formula(self):
        assert pipeline_bubble_time(8, 1.0, 2.0) == pytest.approx(7 * 3.0)

    def test_single_stage_has_no_bubble(self):
        assert pipeline_bubble_time(1, 1.0, 2.0) == 0.0

    def test_invalid_stages(self):
        with pytest.raises(ValueError):
            pipeline_bubble_time(0, 1.0, 1.0)

    def test_schedule_object(self):
        sched = PipelineTiming(
            num_stages=4, num_microbatches=16, layers_per_stage=2,
            forward_time=1.0, backward_time=2.0,
        )
        assert sched.bubble_time == pytest.approx(9.0)
        assert sched.steady_state_time == pytest.approx(48.0)
        assert sched.total_time == pytest.approx(57.0)
        assert sched.bubble_fraction == pytest.approx(9.0 / 57.0)
        assert sched.in_flight_microbatches == 4

    def test_bubble_fraction_shrinks_with_more_microbatches(self):
        few = PipelineTiming(8, 8, 1, 1.0, 2.0)
        many = PipelineTiming(8, 128, 1, 1.0, 2.0)
        assert many.bubble_fraction < few.bubble_fraction


class TestInFlightMicrobatches:
    def test_bounded_by_stages(self):
        assert in_flight_microbatches(num_stages=8, num_microbatches=128) == 8

    def test_bounded_by_microbatches(self):
        assert in_flight_microbatches(num_stages=64, num_microbatches=4) == 4

    def test_invalid(self):
        with pytest.raises(ValueError):
            in_flight_microbatches(0, 1)


class TestP2PVolume:
    def test_no_pipeline_means_no_p2p(self):
        assert pipeline_p2p_volume_bytes(GPT3_1T, tp1d_config(np_=1)) == 0.0

    def test_volume_formula(self):
        config = tp1d_config(np_=8, nt=8, bm=2)
        expected = 2 * (2 * GPT3_1T.seq_len * GPT3_1T.embed_dim / 8) * 2  # fwd + bwd
        assert pipeline_p2p_volume_bytes(GPT3_1T, config) == pytest.approx(expected)

    def test_one_direction_is_half(self):
        config = tp1d_config(np_=8, nt=8, bm=2)
        both = pipeline_p2p_volume_bytes(GPT3_1T, config, both_directions=True)
        one = pipeline_p2p_volume_bytes(GPT3_1T, config, both_directions=False)
        assert both == pytest.approx(2 * one)

    def test_volume_shrinks_with_tensor_parallel(self):
        small_tp = pipeline_p2p_volume_bytes(GPT3_1T, tp1d_config(np_=8, nt=2))
        large_tp = pipeline_p2p_volume_bytes(GPT3_1T, tp1d_config(np_=8, nt=32))
        assert large_tp < small_tp


class TestLayersPerStage:
    def test_even_split(self):
        assert layers_per_stage(GPT3_1T, tp1d_config(np_=64)) == 2
        assert layers_per_stage(GPT3_1T, tp1d_config(np_=128)) == 1

    def test_uneven_split_raises(self):
        with pytest.raises(ValueError):
            layers_per_stage(GPT3_1T, tp1d_config(np_=96))


def test_legacy_pipeline_schedule_alias():
    """Downstream imports of the old name keep resolving to the timing object."""
    from repro.core.parallelism import pipeline

    assert pipeline.PipelineSchedule is PipelineTiming
