"""Rationale studies (Figs. 1-3, A2): the paper's Q1 observations."""

import pytest

from repro.analysis.configurations import (
    fig1_tp_dp_study,
    fig2_pp_dp_study,
    fig3_summa_study,
    figA2_tp2d_study,
)
from repro.core.model import VIT_LONG_SEQ


@pytest.fixture(scope="module")
def fig1():
    return fig1_tp_dp_study()


@pytest.fixture(scope="module")
def fig2_nvs8():
    return fig2_pp_dp_study(nvs_domain_size=8)


@pytest.fixture(scope="module")
def fig2_nvs64():
    return fig2_pp_dp_study(nvs_domain_size=64)


class TestFig1:
    """Fig. 1: convex time vs TP with a local minimum around nt = 8."""

    def test_six_labelled_configs(self, fig1):
        assert [p.label for p in fig1.points] == list("ABCDEF")
        assert fig1.n_gpus == 16384

    def test_optimum_is_config_d(self, fig1):
        best = fig1.fastest()
        assert best.label == "D"
        assert best.config.as_tuple() == (1, 8, 1, 64, 32)

    def test_times_are_convex_around_the_minimum(self, fig1):
        times = fig1.times()
        best_idx = times.index(min(times))
        assert all(times[i] >= times[i + 1] for i in range(best_idx))
        assert all(times[i] <= times[i + 1] for i in range(best_idx, len(times) - 1))

    def test_memory_drops_with_tensor_parallel(self, fig1):
        memory = fig1.memory_gb()
        assert memory[0] > memory[-1]

    def test_bubble_dominates_at_low_tp_and_comm_at_high_tp(self, fig1):
        first = fig1.points[0].estimate.breakdown.fractions()
        last = fig1.points[-1].estimate.breakdown.fractions()
        assert first["pp_bubble"] > 0.5
        assert last["tp_comm"] > first["tp_comm"]


class TestFig2:
    """Fig. 2: the NVS-domain size shifts the PP/DP optimum."""

    def test_small_nvs_optimum_at_large_pp(self, fig2_nvs8):
        best = fig2_nvs8.fastest()
        assert best.config.pipeline_parallel >= 32

    def test_large_nvs_optimum_at_small_pp(self, fig2_nvs64):
        best = fig2_nvs64.fastest()
        assert best.config.pipeline_parallel <= 8

    def test_large_nvs_is_at_least_as_fast(self, fig2_nvs8, fig2_nvs64):
        assert fig2_nvs64.fastest().total_time <= fig2_nvs8.fastest().total_time

    def test_np1_is_infeasible_on_b200(self, fig2_nvs64):
        """The paper notes np = 1 would be fastest but does not fit in HBM."""
        np1 = [p for p in fig2_nvs64.points if p.config.pipeline_parallel == 1]
        assert np1 and not np1[0].estimate.feasible


class TestFig3:
    """Fig. 3: SUMMA n1/n2 splits under small and large NVS domains."""

    def test_small_nvs_prefers_1d_like_split_with_high_pp(self):
        study = fig3_summa_study(nvs_domain_size=8)
        best = study.fastest()
        assert best.config.tensor_parallel_2 == 1
        assert best.config.pipeline_parallel > 1

    def test_large_nvs_prefers_high_dp_with_2d_split(self):
        study = fig3_summa_study(nvs_domain_size=64)
        best = study.fastest()
        assert best.config.pipeline_parallel == 1
        assert best.config.tensor_parallel_2 > 1


class TestFigA2:
    def test_gpt_2d_tp_study_produces_both_regimes(self):
        study = figA2_tp2d_study(nvs_domain_size=64)
        pps = {p.config.pipeline_parallel for p in study.points}
        assert 1 in pps and 128 in pps

    def test_vit_study_uses_vit_regimes(self):
        study = figA2_tp2d_study(
            model=VIT_LONG_SEQ,
            nvs_domain_size=8,
            high_dp_regime=(16, 1),
            low_dp_regime=(16, 16),
        )
        assert study.points
        assert all(p.config.tensor_parallel == 16 for p in study.points)
