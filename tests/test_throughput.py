"""Throughput / MFU reporting."""

import pytest

from repro.core.execution import evaluate_config
from repro.core.model import GPT3_1T
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import make_system
from repro.core.throughput import (
    ThroughputReport,
    throughput_report,
    tokens_per_gpu_per_day,
)


@pytest.fixture(scope="module")
def estimate():
    system = make_system("B200", 8)
    config = ParallelConfig(
        strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
        pipeline_parallel=64, data_parallel=32, microbatch_size=1,
    )
    return system, evaluate_config(
        GPT3_1T, system, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
    )


class TestThroughputReport:
    def test_samples_and_tokens_per_second(self, estimate):
        system, est = estimate
        report = throughput_report(GPT3_1T, system, est)
        assert report.samples_per_second == pytest.approx(4096 / est.total_time)
        assert report.tokens_per_second == pytest.approx(
            report.samples_per_second * GPT3_1T.seq_len
        )

    def test_mfu_is_a_sane_fraction(self, estimate):
        system, est = estimate
        report = throughput_report(GPT3_1T, system, est)
        # A compute-dominated GPT configuration achieves a plausible MFU.
        assert 0.2 < report.model_flops_utilization < 0.9

    def test_per_gpu_teraflops_below_peak(self, estimate):
        system, est = estimate
        report = throughput_report(GPT3_1T, system, est)
        assert 0 < report.per_gpu_teraflops < system.gpu.tensor_flops / 1e12

    def test_tokens_per_gpu_per_day(self, estimate):
        system, est = estimate
        report = throughput_report(GPT3_1T, system, est)
        per_gpu_day = tokens_per_gpu_per_day(report)
        assert per_gpu_day == pytest.approx(
            report.tokens_per_second / 16384 * 86400
        )

    def test_zero_iteration_time_rejected(self, estimate):
        system, est = estimate
        bad = ThroughputReport(1.0, 1.0, 1.0, 0.0)
        assert bad.model_flops_utilization == 0.0
        import dataclasses

        broken = dataclasses.replace(est, breakdown=est.breakdown)
        # evaluate_config never returns zero time; exercise the guard directly.
        with pytest.raises(ValueError):
            throughput_report(GPT3_1T, system, dataclasses.replace(
                broken,
                breakdown=type(est.breakdown)(),
            ))
