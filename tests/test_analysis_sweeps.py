"""Scaling sweeps, system grids, hardware heatmaps and speedups (Figs. 4, 5, A3-A6)."""

import pytest

from repro.analysis.speedups import speedup_sweep, speedups_by_system
from repro.analysis.sweeps import (
    hardware_heatmap,
    scaling_sweep,
    system_grid_sweep,
)
from repro.core.config_space import SearchSpace
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.system import make_system
from repro.core.training import gpt_pretraining_regime

#: Small GPU grids keep the unit tests fast; the full paper grids are used by
#: the benchmark harness.
SMALL_GRID = (256, 1024, 4096)


@pytest.fixture(scope="module")
def gpt_sweep():
    return scaling_sweep(
        GPT3_1T, make_system("B200", 8), strategy="tp1d", n_gpus_list=SMALL_GRID
    )


class TestScalingSweep:
    def test_points_cover_requested_grid(self, gpt_sweep):
        assert gpt_sweep.gpu_counts() == list(SMALL_GRID)
        assert all(p.found for p in gpt_sweep.points)

    def test_iteration_time_decreases_with_more_gpus(self, gpt_sweep):
        times = gpt_sweep.iteration_times()
        assert times[0] > times[1] > times[2]

    def test_parallel_efficiency_within_unity(self, gpt_sweep):
        eff = gpt_sweep.parallel_efficiency()
        assert eff[0] == pytest.approx(1.0)
        assert all(0 < e <= 1.3 for e in eff)

    def test_training_days_use_regime(self, gpt_sweep):
        regime = gpt_pretraining_regime(GPT3_1T, 4096)
        days = gpt_sweep.training_days(regime)
        assert days[0] > days[-1] > 0

    def test_compute_fraction_shrinks_at_scale(self, gpt_sweep):
        fractions = [
            p.result.best.breakdown.fractions()["compute"] for p in gpt_sweep.points
        ]
        assert fractions[0] >= fractions[-1]


class TestSystemGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return system_grid_sweep(
            GPT3_1T,
            strategy="tp1d",
            gpu_generations=("A100", "B200"),
            nvs_domain_sizes=(8,),
            n_gpus_list=(1024, 4096),
        )

    def test_one_series_per_system(self, grid):
        assert {s.system_name for s in grid} == {"A100-NVS8", "B200-NVS8"}

    def test_newer_generation_is_faster(self, grid):
        by_name = {s.system_name: s for s in grid}
        a100 = by_name["A100-NVS8"].training_days
        b200 = by_name["B200-NVS8"].training_days
        assert all(b < a for a, b in zip(a100, b200))

    def test_b200_pretraining_is_order_days_at_scale(self, grid):
        by_name = {s.system_name: s for s in grid}
        # At 4096 B200 GPUs pre-training 1T tokens takes O(10) days; at 16K it
        # drops to O(3-5) days (checked in the benchmark harness).
        assert 3 < by_name["B200-NVS8"].training_days[-1] < 40


class TestHardwareHeatmap:
    def test_capacity_vs_flops_mode(self):
        heatmap = hardware_heatmap(
            GPT3_1T,
            strategy="tp1d",
            n_gpus=4096,
            capacity_gb=(80, 192),
            bandwidth_tbps=(1.5, 8.0),
            tensor_tflops=(312, 2500),
            mode="capacity_vs_flops",
        )
        arr = heatmap.as_array()
        assert arr.shape == (2, 2)
        # Higher FLOP rate (row 1) must be at least as fast as row 0.
        assert (arr[1] <= arr[0] + 1e-9).all()

    def test_flop_rate_is_primary_factor_for_gpt(self):
        """Paper Fig. A5a: FLOP rate matters much more than capacity for GPT3-1T."""
        heatmap = hardware_heatmap(
            GPT3_1T,
            strategy="tp1d",
            n_gpus=4096,
            capacity_gb=(80, 352),
            bandwidth_tbps=(8.0, 8.0),
            tensor_tflops=(312, 2500),
            mode="capacity_vs_flops",
        )
        arr = heatmap.as_array()
        flop_gain = arr[0, 0] / arr[1, 0]
        capacity_gain = arr[0, 0] / arr[0, 1]
        assert flop_gain > 2.0
        assert capacity_gain < 1.6

    def test_capacity_vs_bandwidth_mode(self):
        heatmap = hardware_heatmap(
            GPT3_1T,
            strategy="tp1d",
            n_gpus=4096,
            capacity_gb=(96, 384),
            bandwidth_tbps=(2.0, 8.0),
            mode="capacity_vs_bandwidth",
        )
        assert heatmap.as_array().shape == (2, 2)
        x, y, days = heatmap.min_point()
        assert days > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            hardware_heatmap(GPT3_1T, mode="capacity_vs_phase_of_moon")


class TestSpeedups:
    @pytest.fixture(scope="class")
    def points(self):
        return speedup_sweep(
            GPT3_1T,
            variant_strategy="summa",
            gpu_generations=("A100",),
            nvs_domain_sizes=(4,),
            n_gpus_list=(512, 1024),
        )

    def test_point_structure(self, points):
        assert len(points) == 2
        assert all(p.baseline_strategy == "tp1d" for p in points)
        assert all(p.variant_strategy == "summa" for p in points)

    def test_summa_helps_in_constrained_regime(self, points):
        """Paper Fig. A4a: SUMMA helps on capacity-constrained A100 / small NVS."""
        assert any(p.speedup > 1.0 for p in points)

    def test_grouping_by_system(self, points):
        grouped = speedups_by_system(points)
        assert set(grouped) == {"A100-NVS4"}
        assert [p.n_gpus for p in grouped["A100-NVS4"]] == [512, 1024]
