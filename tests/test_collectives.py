"""Dual-network collective-time model (paper §III-A, S2 communication time)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collectives import (
    ALL_GATHER,
    ALL_REDUCE,
    BROADCAST,
    POINT_TO_POINT,
    REDUCE_SCATTER,
    GroupPlacement,
    all_gather_time,
    all_reduce_time,
    collective_time,
    effective_algorithm_bandwidth,
    effective_nic_count,
    latency_time,
    point_to_point_time,
    ring_bandwidth_time,
)
from repro.core.system import make_network

NET = make_network("A100", 8)
GB = 1e9


class TestGroupPlacement:
    def test_clamps_to_group_size(self):
        p = GroupPlacement(size=4, gpus_per_nvs_domain=16)
        assert p.gpus_per_nvs_domain == 4
        assert not p.spans_multiple_domains

    def test_num_domains(self):
        assert GroupPlacement(size=32, gpus_per_nvs_domain=4).num_domains == 8

    def test_invalid(self):
        with pytest.raises(ValueError):
            GroupPlacement(size=0)
        with pytest.raises(ValueError):
            GroupPlacement(size=4, gpus_per_nvs_domain=0)


class TestLatencyTerm:
    def test_paper_formula(self):
        # t_latency = alpha_s (n/g - 1) + alpha_f (n - n/g)
        p = GroupPlacement(size=32, gpus_per_nvs_domain=4)
        expected = NET.ib_latency * (8 - 1) + NET.nvs_latency * (32 - 8)
        assert latency_time(p, NET) == pytest.approx(expected)

    def test_single_domain_has_no_slow_hops(self):
        p = GroupPlacement(size=8, gpus_per_nvs_domain=8)
        assert latency_time(p, NET) == pytest.approx(NET.nvs_latency * 7)

    def test_fully_distributed_has_only_slow_hops(self):
        p = GroupPlacement(size=8, gpus_per_nvs_domain=1)
        assert latency_time(p, NET) == pytest.approx(NET.ib_latency * 7)

    def test_single_gpu_is_free(self):
        assert latency_time(GroupPlacement(size=1), NET) == 0.0


class TestBandwidthTerm:
    def test_single_domain_uses_fast_bandwidth(self):
        p = GroupPlacement(size=8, gpus_per_nvs_domain=8)
        expected = (7 / 8) * (GB / NET.effective_nvs_bandwidth)
        assert ring_bandwidth_time(GB, p, NET) == pytest.approx(expected)

    def test_cross_domain_limited_by_slower_path(self):
        p = GroupPlacement(size=32, gpus_per_nvs_domain=1)
        # With one GPU per node only one NIC's worth of IB is available.
        expected = (31 / 32) * (GB / NET.effective_ib_bandwidth)
        assert ring_bandwidth_time(GB, p, NET) == pytest.approx(expected)

    def test_more_gpus_per_node_increase_effective_ib(self):
        sparse = GroupPlacement(size=32, gpus_per_nvs_domain=1)
        dense = GroupPlacement(size=32, gpus_per_nvs_domain=8)
        assert ring_bandwidth_time(GB, dense, NET) < ring_bandwidth_time(GB, sparse, NET)

    def test_effective_nic_count(self):
        assert effective_nic_count(GroupPlacement(32, 8), NET) == pytest.approx(8)
        assert effective_nic_count(GroupPlacement(32, 2), NET) == pytest.approx(2)
        assert effective_nic_count(GroupPlacement(32, 1), NET) >= 1.0


class TestCollectiveTime:
    def test_zero_volume_or_single_gpu(self):
        p = GroupPlacement(size=8, gpus_per_nvs_domain=8)
        assert collective_time(ALL_GATHER, 0.0, p, NET) == 0.0
        assert collective_time(ALL_GATHER, GB, GroupPlacement(1), NET) == 0.0

    def test_allreduce_is_twice_allgather_bandwidth(self):
        p = GroupPlacement(size=16, gpus_per_nvs_domain=8)
        ag = all_gather_time(GB, p, NET) - latency_time(p, NET)
        ar = all_reduce_time(GB, p, NET) - latency_time(p, NET)
        assert ar == pytest.approx(2 * ag)

    def test_reduce_scatter_equals_allgather(self):
        p = GroupPlacement(size=16, gpus_per_nvs_domain=8)
        assert collective_time(REDUCE_SCATTER, GB, p, NET) == pytest.approx(
            collective_time(ALL_GATHER, GB, p, NET)
        )

    def test_unknown_collective(self):
        with pytest.raises(ValueError):
            collective_time("all_to_all_v2", GB, GroupPlacement(8, 8), NET)

    def test_point_to_point_prefers_fast_domain(self):
        fast = point_to_point_time(GB, GroupPlacement(2, 2), NET)
        slow = point_to_point_time(GB, GroupPlacement(2, 1), NET)
        assert fast < slow

    def test_broadcast_moves_full_buffer(self):
        p = GroupPlacement(size=8, gpus_per_nvs_domain=8)
        t = collective_time(BROADCAST, GB, p, NET)
        assert t > 0
        assert t == pytest.approx(latency_time(p, NET) + ring_bandwidth_time(GB, p, NET))

    def test_algorithm_bandwidth(self):
        p = GroupPlacement(size=8, gpus_per_nvs_domain=8)
        bw = effective_algorithm_bandwidth(ALL_GATHER, 10 * GB, p, NET)
        assert 0 < bw <= NET.effective_nvs_bandwidth * 8 / 7

    @given(
        st.floats(min_value=1e3, max_value=1e11),
        st.sampled_from([2, 4, 8, 16, 64, 256]),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_is_monotone_in_volume(self, volume, group, per_domain):
        if per_domain > group:
            per_domain = group
        p = GroupPlacement(size=group, gpus_per_nvs_domain=per_domain)
        t1 = collective_time(ALL_GATHER, volume, p, NET)
        t2 = collective_time(ALL_GATHER, 2 * volume, p, NET)
        assert t2 >= t1 >= 0

    @given(st.sampled_from([8, 16, 32, 64, 128]))
    @settings(max_examples=20, deadline=None)
    def test_denser_placement_is_never_slower(self, group):
        sparse = GroupPlacement(size=group, gpus_per_nvs_domain=1)
        dense = GroupPlacement(size=group, gpus_per_nvs_domain=min(8, group))
        v = 1e9
        assert collective_time(ALL_GATHER, v, dense, NET) <= collective_time(
            ALL_GATHER, v, sparse, NET
        )
