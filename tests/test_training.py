"""End-to-end training-time estimates (iterations and days)."""

import math

import pytest

from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.training import (
    ERA5_EPOCHS,
    ERA5_SAMPLES_PER_EPOCH,
    GPT_PRETRAINING_TOKENS,
    TrainingRegime,
    default_regime,
    gpt_pretraining_regime,
    iterations_for_epochs,
    iterations_for_tokens,
    training_days,
    vit_era5_regime,
)


class TestIterationCounts:
    def test_gpt_pretraining_iterations(self):
        # 1T tokens / (4096 * 2048 tokens per iteration) ~ 119209 iterations.
        iters = iterations_for_tokens(GPT3_1T, 4096, GPT_PRETRAINING_TOKENS)
        assert iters == math.ceil(1e12 / (4096 * 2048))

    def test_vit_era5_iterations(self):
        iters = iterations_for_epochs(ERA5_SAMPLES_PER_EPOCH, ERA5_EPOCHS, 4096)
        assert iters == math.ceil(ERA5_SAMPLES_PER_EPOCH * ERA5_EPOCHS / 4096)
        assert ERA5_SAMPLES_PER_EPOCH == int(40 * 365.25 * 24)

    def test_iterations_scale_inversely_with_batch(self):
        small = iterations_for_tokens(GPT3_1T, 2048, 1e12)
        large = iterations_for_tokens(GPT3_1T, 4096, 1e12)
        assert small == pytest.approx(2 * large, rel=0.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            iterations_for_tokens(GPT3_1T, 0, 1e12)
        with pytest.raises(ValueError):
            iterations_for_epochs(0, 10, 4096)


class TestRegimes:
    def test_gpt_regime_days_for_paper_scale(self):
        """Paper: O(3-5) days on 16K B200 GPUs at ~2.7 s/iteration."""
        regime = gpt_pretraining_regime(GPT3_1T, 4096)
        days = regime.days(2.7)
        assert 2.0 < days < 6.0

    def test_a100_scale_is_order_30_days(self):
        """Paper: O(30) days on 16K A100 GPUs (iteration time ~20-25 s)."""
        regime = gpt_pretraining_regime(GPT3_1T, 4096)
        assert 20.0 < regime.days(22.0) < 40.0

    def test_vit_regime(self):
        regime = vit_era5_regime(VIT_LONG_SEQ, 4096)
        assert regime.total_iterations == iterations_for_epochs(
            ERA5_SAMPLES_PER_EPOCH, ERA5_EPOCHS, 4096
        )
        assert regime.days(10.0) > 0

    def test_default_regime_selects_by_model_class(self):
        assert "pretrain" in default_regime(GPT3_1T, 4096).name
        assert "era5" in default_regime(VIT_LONG_SEQ, 4096).name

    def test_hours_is_24x_days(self):
        regime = TrainingRegime("x", total_iterations=1000)
        assert regime.hours(1.0) == pytest.approx(24 * regime.days(1.0))

    def test_negative_iteration_time_rejected(self):
        with pytest.raises(ValueError):
            TrainingRegime("x", 10).days(-1.0)

    def test_training_days_helper(self):
        days = training_days(2.7, GPT3_1T, 4096)
        assert days == pytest.approx(gpt_pretraining_regime(GPT3_1T, 4096).days(2.7))
