"""1D tensor parallelism (Table I of the paper)."""

import pytest

from repro.core.model import GPT3_1T, TransformerConfig
from repro.core.operations import total_flops
from repro.core.parallelism.base import GROUP_DP, GROUP_TP1, ParallelConfig, get_strategy


def make_config(nt=8, np_=1, nd=1, bm=1):
    return ParallelConfig(
        strategy="tp1d",
        tensor_parallel_1=nt,
        tensor_parallel_2=1,
        pipeline_parallel=np_,
        data_parallel=nd,
        microbatch_size=bm,
    )


@pytest.fixture(scope="module")
def strategy():
    return get_strategy("tp1d")


@pytest.fixture(scope="module")
def workload(strategy):
    return strategy.layer_workload(GPT3_1T, make_config(nt=8))


class TestTableI:
    """Communication volumes of Table I: AG/RS of b*l*e, independent of nt."""

    def test_four_collectives_per_forward_pass(self, workload):
        assert len(workload.forward_comms) == 4
        kinds = [c.collective for c in workload.forward_comms]
        assert kinds.count("all_gather") == 2
        assert kinds.count("reduce_scatter") == 2

    def test_forward_volume_is_ble_per_collective(self, workload):
        b, l, e = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim
        expected = 2 * b * l * e  # FP16 bytes
        for comm in workload.forward_comms:
            assert comm.volume_bytes == pytest.approx(expected)
            assert comm.group == GROUP_TP1

    def test_volume_does_not_scale_with_nt(self, strategy):
        w8 = strategy.layer_workload(GPT3_1T, make_config(nt=8))
        w32 = strategy.layer_workload(GPT3_1T, make_config(nt=32))
        v8 = sum(c.volume_bytes for c in w8.forward_comms)
        v32 = sum(c.volume_bytes for c in w32.forward_comms)
        assert v8 == pytest.approx(v32)

    def test_volume_scales_with_microbatch(self, strategy):
        w1 = strategy.layer_workload(GPT3_1T, make_config(bm=1))
        w4 = strategy.layer_workload(GPT3_1T, make_config(bm=4))
        assert sum(c.volume_bytes for c in w4.forward_comms) == pytest.approx(
            4 * sum(c.volume_bytes for c in w1.forward_comms)
        )

    def test_backward_comms_are_conjugate(self, workload):
        fwd_kinds = sorted(c.collective for c in workload.forward_comms)
        bwd_kinds = sorted(c.collective for c in workload.backward_comms)
        assert fwd_kinds == bwd_kinds
        assert sum(c.volume_bytes for c in workload.forward_comms) == pytest.approx(
            sum(c.volume_bytes for c in workload.backward_comms)
        )


class TestComputePartitioning:
    def test_flops_scale_inversely_with_nt(self, strategy):
        w8 = strategy.layer_workload(GPT3_1T, make_config(nt=8))
        w16 = strategy.layer_workload(GPT3_1T, make_config(nt=16))
        # Matmul and attention FLOPs are partitioned; LayerNorms are cheap.
        assert total_flops(w16.forward_ops) == pytest.approx(
            total_flops(w8.forward_ops) / 2, rel=0.02
        )

    def test_total_flops_roughly_match_model_level_count(self, strategy):
        w1 = strategy.layer_workload(GPT3_1T, make_config(nt=1))
        model_level = GPT3_1T.flops_per_layer(batch=1)
        # Strategy-level count includes the small vector ops too.
        assert total_flops(w1.forward_ops) == pytest.approx(model_level, rel=0.05)

    def test_backward_flops_exceed_forward(self, workload):
        assert workload.total_backward_flops() > 1.5 * workload.total_forward_flops()


class TestMemoryAndParameters:
    def test_replicated_activation_term_does_not_shrink_with_nt(self, strategy):
        w8 = strategy.layer_workload(GPT3_1T, make_config(nt=8))
        w64 = strategy.layer_workload(GPT3_1T, make_config(nt=32))
        b, l, e = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim
        # Both retain at least the two replicated (b, l, e) tensors.
        assert w8.activation_elements > 2 * b * l * e
        assert w64.activation_elements > 2 * b * l * e
        # And the sharded part shrinks, so w64 < w8.
        assert w64.activation_elements < w8.activation_elements

    def test_params_partitioned_by_nt(self, strategy):
        w1 = strategy.layer_workload(GPT3_1T, make_config(nt=1))
        w8 = strategy.layer_workload(GPT3_1T, make_config(nt=8))
        e, f = GPT3_1T.embed_dim, GPT3_1T.hidden_dim
        matrix = 4 * e * e + 2 * e * f
        assert w1.params_per_gpu == pytest.approx(matrix, rel=0.01)
        assert w8.params_per_gpu == pytest.approx(matrix / 8, rel=0.05)

    def test_grad_sync_group_is_plain_dp(self, workload):
        assert workload.grad_sync_group == GROUP_DP

    def test_disabling_flash_attention_stores_logits(self, strategy):
        with_flash = strategy.layer_workload(GPT3_1T, make_config(nt=8), flash_attention=True)
        without = strategy.layer_workload(GPT3_1T, make_config(nt=8), flash_attention=False)
        b, l, h = 1, GPT3_1T.seq_len, GPT3_1T.num_heads
        assert without.activation_elements - with_flash.activation_elements == pytest.approx(
            b * (h / 8) * l * l
        )


class TestValidation:
    def test_requires_n2_equal_one(self, strategy):
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=4, tensor_parallel_2=2,
            pipeline_parallel=1, data_parallel=1, microbatch_size=1,
        )
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_heads_must_divide(self, strategy):
        # GPT3-1T has 160 heads; nt = 64 does not divide 160.
        config = make_config(nt=64)
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_depth_must_divide_pp(self, strategy):
        config = make_config(nt=8, np_=3)
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_valid_config_passes(self, strategy):
        assert strategy.validate_config(GPT3_1T, make_config(nt=8, np_=64, nd=32)) is None

    def test_layer_workload_raises_on_invalid(self, strategy):
        with pytest.raises(ValueError):
            strategy.layer_workload(GPT3_1T, make_config(nt=64))

    def test_dropout_adds_ops(self, strategy):
        plain = strategy.layer_workload(GPT3_1T, make_config(nt=8), include_dropout=False)
        dropped = strategy.layer_workload(GPT3_1T, make_config(nt=8), include_dropout=True)
        assert len(dropped.forward_ops) == len(plain.forward_ops) + 2
