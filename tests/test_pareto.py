"""Multi-objective Pareto search: registry, invariants, determinism.

The tier-1 contract pinned here: :func:`find_pareto_configs` returns
*exactly* the non-dominated subset of the full enumeration — the same set
an exhaustive evaluate-everything-then-filter pass produces — for dense
and MoE models, in scalar and batch eval modes, with branch-and-bound
pruning on or off.  The scalar objective case degenerates bit-identically
to :func:`find_optimal_config`.
"""

from dataclasses import replace

import pytest

from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import DEFAULT_OPTIONS, config_time_lower_bound, evaluate_config
from repro.core.model import get_model
from repro.core.objectives import (
    DEFAULT_PARETO_OBJECTIVES,
    Objective,
    ObjectiveContext,
    get_objective,
    register_objective,
    registered_objectives,
    resolve_objectives,
)
from repro.core.search import (
    ParetoResult,
    _strictly_dominates,
    find_optimal_config,
    find_pareto_configs,
)
from repro.core.system import make_system
from repro.core.workloads import MOE_MIXTRAL
from repro.utils.serialization import dataclass_from_jsonable, to_jsonable

TINY_DENSE = replace(get_model("gpt3-175b"), name="tiny-dense", depth=8)
TINY_MOE = replace(MOE_MIXTRAL, name="tiny-moe", depth=8)
N_GPUS = 16
GLOBAL_BATCH = 64


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


def _canonical(point, names):
    """A frontier point's metric vector back in canonical (minimised) space."""
    return tuple(get_objective(n).sign * point.metrics[n] for n in names)


def exhaustive_frontier(model, system, names, *, strategy="tp1d"):
    """Reference implementation: evaluate everything, filter dominated."""
    objs = resolve_objectives(names)
    ctx = ObjectiveContext(
        model=model, system=system, n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH, options=DEFAULT_OPTIONS,
    )
    candidates = []
    for config in parallel_configs(model, N_GPUS, GLOBAL_BATCH, strategy):
        try:
            coeffs = [obj.coefficients(config, ctx) for obj in objs]
        except ValueError:
            continue
        for assignment in gpu_assignments(config, system.nvs_domain_size):
            estimate = evaluate_config(
                model, system, config, assignment,
                global_batch_size=GLOBAL_BATCH,
            )
            if not estimate.feasible:
                continue
            vector = tuple(
                off + slope * estimate.total_time for off, slope in coeffs
            )
            candidates.append((vector, config, assignment))
    return [
        c for c in candidates
        if not any(_strictly_dominates(o[0], c[0]) for o in candidates)
    ]


class TestObjectiveRegistry:
    def test_defaults_are_registered(self):
        names = registered_objectives()
        assert set(DEFAULT_PARETO_OBJECTIVES) <= set(names)
        assert list(names) == sorted(names)

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="registered:"):
            get_objective("no-such-metric")

    def test_resolve_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="at least one"):
            resolve_objectives(())
        with pytest.raises(ValueError, match="duplicate"):
            resolve_objectives(("time", "cost", "time"))

    def test_register_requires_a_name(self):
        with pytest.raises(ValueError, match="non-empty name"):
            register_objective(Objective())

    def test_raw_undoes_the_canonical_sign(self):
        headroom = get_objective("hbm_headroom")
        assert headroom.sign == -1.0
        assert headroom.raw(-12.5) == 12.5
        assert get_objective("time").raw(3.0) == 3.0

    def test_units_and_descriptions_exist(self):
        for objective in registered_objectives().values():
            assert objective.unit
            assert objective.description


class TestObjectiveBounds:
    """Every objective's lower bound is admissible over all assignments."""

    def test_bounds_never_exceed_evaluated_values(self, b200):
        objs = resolve_objectives(DEFAULT_PARETO_OBJECTIVES)
        ctx = ObjectiveContext(
            model=TINY_DENSE, system=b200, n_gpus=N_GPUS,
            global_batch_size=GLOBAL_BATCH, options=DEFAULT_OPTIONS,
        )
        checked = 0
        for config in parallel_configs(TINY_DENSE, N_GPUS, GLOBAL_BATCH, "tp1d"):
            try:
                time_bound = config_time_lower_bound(
                    TINY_DENSE, b200, config,
                    global_batch_size=GLOBAL_BATCH, options=DEFAULT_OPTIONS,
                )
            except ValueError:
                continue
            for assignment in gpu_assignments(config, b200.nvs_domain_size):
                estimate = evaluate_config(
                    TINY_DENSE, b200, config, assignment,
                    global_batch_size=GLOBAL_BATCH,
                )
                if not estimate.feasible:
                    continue
                assert time_bound <= estimate.total_time + 1e-12
                for obj in objs:
                    offset, slope = obj.coefficients(config, ctx)
                    assert slope >= 0.0
                    bound = obj.lower_bound(config, ctx, time_bound)
                    actual = offset + slope * estimate.total_time
                    assert bound <= actual + 1e-9
                checked += 1
        assert checked > 0

    def test_cost_and_energy_are_positive(self, b200):
        ctx = ObjectiveContext(
            model=TINY_DENSE, system=b200, n_gpus=N_GPUS,
            global_batch_size=GLOBAL_BATCH, options=DEFAULT_OPTIONS,
        )
        config = next(iter(parallel_configs(TINY_DENSE, N_GPUS, GLOBAL_BATCH, "tp1d")))
        cost_off, cost_slope = get_objective("cost").coefficients(config, ctx)
        assert cost_off == 0.0 and cost_slope > 0.0
        energy_off, energy_slope = get_objective("energy").coefficients(config, ctx)
        assert energy_off > 0.0 and energy_slope == 0.0


class TestParetoMatchesExhaustive:
    """Tier-1 invariant: pruned search == exhaustive non-dominated filter."""

    @pytest.mark.parametrize("eval_mode", ["scalar", "batch"])
    @pytest.mark.parametrize(
        "model", [TINY_DENSE, TINY_MOE], ids=["dense", "moe"]
    )
    def test_frontier_equals_exhaustive_filter(self, b200, model, eval_mode):
        names = DEFAULT_PARETO_OBJECTIVES
        result = find_pareto_configs(
            model, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=names, strategy="tp1d", eval_mode=eval_mode,
        )
        assert result.found
        reference = exhaustive_frontier(model, b200, names)
        got = {
            (p.estimate.config.as_tuple(), p.estimate.assignment.as_tuple())
            for p in result.points
        }
        want = {(c.as_tuple(), a.as_tuple()) for _, c, a in reference}
        assert got == want
        # The canonical vectors match bit-for-bit, not just approximately.
        got_vectors = sorted(_canonical(p, names) for p in result.points)
        want_vectors = sorted(v for v, _, _ in reference)
        assert got_vectors == want_vectors

    def test_pruning_does_not_change_the_frontier(self, b200):
        kwargs = dict(
            n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=DEFAULT_PARETO_OBJECTIVES, strategy="tp1d",
        )
        pruned = find_pareto_configs(TINY_DENSE, b200, **kwargs)
        unpruned = find_pareto_configs(
            TINY_DENSE, b200,
            space=replace(DEFAULT_SEARCH_SPACE, prune_with_lower_bound=False),
            **kwargs,
        )
        assert [p.estimate.config for p in pruned.points] == [
            p.estimate.config for p in unpruned.points
        ]
        assert [p.metrics for p in pruned.points] == [
            p.metrics for p in unpruned.points
        ]
        assert unpruned.statistics.pruned_configs == 0


class TestScalarBatchIdentity:
    def test_frontiers_are_bit_identical(self, b200):
        kwargs = dict(
            n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=DEFAULT_PARETO_OBJECTIVES, strategy="tp1d",
        )
        scalar = find_pareto_configs(TINY_DENSE, b200, eval_mode="scalar", **kwargs)
        batch = find_pareto_configs(TINY_DENSE, b200, eval_mode="batch", **kwargs)
        assert len(scalar.points) == len(batch.points)
        for s, b in zip(scalar.points, batch.points):
            assert s.estimate.config == b.estimate.config
            assert s.estimate.assignment == b.estimate.assignment
            assert s.metrics == b.metrics  # exact float equality
            assert s.estimate.total_time == b.estimate.total_time


class TestDegenerateScalarObjective:
    def test_time_only_matches_find_optimal_config(self, b200):
        classic = find_optimal_config(
            TINY_DENSE, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
        )
        pareto = find_pareto_configs(
            TINY_DENSE, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=("time",), strategy="tp1d",
        )
        assert pareto.found
        assert pareto.best_time == classic.best_time  # bit-identical
        assert pareto.best.config == classic.best.config
        # A single-objective frontier is exactly the set of minimum-time
        # candidates (ties all kept).
        assert all(
            p.metrics["time"] == classic.best_time for p in pareto.points
        )

    def test_warm_hints_do_not_change_the_frontier(self, b200):
        kwargs = dict(
            n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=DEFAULT_PARETO_OBJECTIVES, strategy="tp1d",
        )
        cold = find_pareto_configs(TINY_DENSE, b200, **kwargs)
        donor = find_optimal_config(
            TINY_DENSE, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
        )
        warm = find_pareto_configs(
            TINY_DENSE, b200, warm_hints=(donor.best.config,), **kwargs
        )
        assert [p.metrics for p in cold.points] == [p.metrics for p in warm.points]


class TestParetoResultShape:
    def test_summary_and_serialization_round_trip(self, b200):
        result = find_pareto_configs(
            TINY_DENSE, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=("time", "cost"), strategy="tp1d",
        )
        summary = result.summary()
        assert summary["found"] is True
        assert summary["frontier_size"] == len(result.points)
        assert summary["objectives"] == ["time", "cost"]
        restored = dataclass_from_jsonable(ParetoResult, to_jsonable(result))
        assert restored == result
        assert restored.best_time == result.best_time

    def test_empty_result_reports_not_found(self):
        """A single A100 cannot hold the 175B-layer stack: empty frontier."""
        a100 = make_system("A100", 4)
        result = find_pareto_configs(
            get_model("gpt3-1t"), a100, n_gpus=4, global_batch_size=GLOBAL_BATCH,
            objectives=("time",), strategy="tp1d",
        )
        assert not result.found
        assert result.best is None
        assert result.best_time == float("inf")
        assert result.summary()["frontier_size"] == 0

    def test_deterministic_point_order(self, b200):
        names = DEFAULT_PARETO_OBJECTIVES
        result = find_pareto_configs(
            TINY_DENSE, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=names, strategy="tp1d",
        )
        vectors = [_canonical(p, names) for p in result.points]
        assert vectors == sorted(vectors)

    def test_batch_mode_requires_analytic_backend(self, b200):
        with pytest.raises(ValueError, match="batch"):
            find_pareto_configs(
                TINY_DENSE, b200, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
                objectives=("time",), eval_mode="batch", backend="simulate",
            )
