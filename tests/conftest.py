"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.model import GPT3_1T, GPT3_175B, VIT_LONG_SEQ, TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import make_perlmutter, make_system


@pytest.fixture(scope="session")
def b200_nvs8():
    """B200 system with an 8-GPU NVSwitch domain (the paper's default)."""
    return make_system("B200", 8)


@pytest.fixture(scope="session")
def b200_nvs64():
    """B200 system with a 64-GPU NVSwitch domain."""
    return make_system("B200", 64)


@pytest.fixture(scope="session")
def a100_nvs4():
    """A100 system with a 4-GPU NVSwitch domain (Perlmutter-like)."""
    return make_system("A100", 4)


@pytest.fixture(scope="session")
def perlmutter():
    """Perlmutter-like validation system (A100, 4 GPUs + 4 NICs per node)."""
    return make_perlmutter(4)


@pytest.fixture(scope="session")
def gpt3_1t() -> TransformerConfig:
    """The paper's GPT3-1T model."""
    return GPT3_1T


@pytest.fixture(scope="session")
def vit() -> TransformerConfig:
    """The paper's long-sequence ViT model."""
    return VIT_LONG_SEQ


@pytest.fixture(scope="session")
def gpt3_175b() -> TransformerConfig:
    """The paper's validation GPT3-175B model."""
    return GPT3_175B


@pytest.fixture()
def small_model() -> TransformerConfig:
    """A small transformer used by fast unit tests."""
    return TransformerConfig(
        name="tiny", seq_len=512, embed_dim=1024, num_heads=16, depth=8
    )


@pytest.fixture()
def paper_fig1_config() -> ParallelConfig:
    """The paper's Fig. 1 Config D: (m, nt, nd, np) = (128, 8, 32, 64)."""
    return ParallelConfig(
        strategy="tp1d",
        tensor_parallel_1=8,
        tensor_parallel_2=1,
        pipeline_parallel=64,
        data_parallel=32,
        microbatch_size=1,
    )


@pytest.fixture()
def full_nvs8_assignment() -> GpuAssignment:
    """Assignment placing the full 8-GPU NVS domain on the TP group."""
    return GpuAssignment(nvs_tp1=8)
