"""Unit-conversion helpers."""

import pytest

from repro.utils.units import (
    GB,
    GIB,
    from_bytes,
    from_seconds,
    to_bytes,
    to_flops,
    to_seconds,
)


class TestByteConversions:
    def test_gb_to_bytes(self):
        assert to_bytes(80, "GB") == 80e9

    def test_tb_to_bytes(self):
        assert to_bytes(1.5, "TB") == 1.5e12

    def test_binary_units(self):
        assert to_bytes(1, "GiB") == 2**30
        assert GIB == 2**30

    def test_round_trip(self):
        assert from_bytes(to_bytes(123.4, "MB"), "MB") == pytest.approx(123.4)

    def test_case_insensitive(self):
        assert to_bytes(1, "gb") == GB

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            to_bytes(1, "parsec")
        with pytest.raises(ValueError):
            from_bytes(1, "parsec")


class TestTimeConversions:
    def test_milliseconds(self):
        assert to_seconds(250, "ms") == pytest.approx(0.25)

    def test_days(self):
        assert to_seconds(2, "days") == 2 * 86400

    def test_round_trip(self):
        assert from_seconds(to_seconds(3.5, "h"), "h") == pytest.approx(3.5)

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            to_seconds(1, "fortnight")
        with pytest.raises(ValueError):
            from_seconds(1, "fortnight")


class TestFlopConversions:
    def test_tflops(self):
        assert to_flops(312, "TFLOPS") == 312e12

    def test_pflops(self):
        assert to_flops(1, "PFLOPS") == 1e15

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            to_flops(1, "bogoflops")
