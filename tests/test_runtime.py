"""Sweep-execution runtime: executor, search cache and search pruning."""

import dataclasses

import pytest

from repro.analysis.sweeps import scaling_sweep
from repro.core.config_space import SearchSpace, gpu_assignments, parallel_configs
from repro.core.execution import (
    clear_caches,
    config_time_lower_bound,
    estimate_config_memory,
    evaluate_config,
)
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.search import find_optimal_config
from repro.core.system import make_system
from repro.runtime import SearchCache, SearchTask, SweepExecutor, solve_search_task
from repro.runtime.executor import estimate_task_cost
from repro.utils.serialization import dataclass_from_jsonable, to_jsonable


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


def _task(system, n_gpus, **overrides):
    kwargs = dict(
        model=GPT3_1T,
        system=system,
        n_gpus=n_gpus,
        global_batch_size=4096,
        strategy="tp1d",
    )
    kwargs.update(overrides)
    return SearchTask(**kwargs)


def _square(x):
    return x * x


def _stub_result(task):
    """A cheap, serializable stand-in for a real engine result."""
    from repro.core.search import SearchResult

    return SearchResult(
        model_name=task.model.name,
        system_name=task.system.name,
        n_gpus=task.n_gpus,
        global_batch_size=task.global_batch_size,
        strategy=str(task.strategy),
        best=None,
    )


def _cross_process_writer(path, n_gpus, barrier):
    """One writer process: load the (empty) cache, sync, put, save."""
    cache = SearchCache(path)
    barrier.wait(timeout=30)  # both processes load before either saves
    task = _task(make_system("B200", 8), n_gpus)
    cache.put(task, _stub_result(task))
    cache.save()


class TestSweepExecutor:
    def test_map_preserves_input_order(self):
        items = [5, 3, 1, 4, 2]
        assert SweepExecutor(2).map(_square, items) == [25, 9, 1, 16, 4]
        assert SweepExecutor(1).map(_square, items) == [25, 9, 1, 16, 4]

    def test_parallel_run_identical_to_serial(self, b200):
        tasks = [_task(b200, n) for n in (128, 256, 512)]
        serial = SweepExecutor(1).run(tasks)
        parallel = SweepExecutor(3).run(tasks)
        # Bit-identical SearchResult trees, statistics included.
        assert serial == parallel

    def test_scaling_sweep_parallel_equals_serial(self, b200):
        kwargs = dict(strategy="tp1d", n_gpus_list=(128, 256, 512), global_batch_size=4096)
        serial = scaling_sweep(GPT3_1T, b200, jobs=1, **kwargs)
        parallel = scaling_sweep(GPT3_1T, b200, jobs=2, **kwargs)
        assert [p.result for p in serial.points] == [p.result for p in parallel.points]

    def test_progress_callback_sees_every_point(self, b200):
        tasks = [_task(b200, n) for n in (128, 256)]
        seen = []
        SweepExecutor(1, progress=lambda done, total: seen.append((done, total))).run(tasks)
        assert seen == [(1, 2), (2, 2)]

    def test_duplicate_tasks_solved_once(self, b200):
        class CountingExecutor(SweepExecutor):
            dispatched = 0

            def map(self, fn, items, **kwargs):
                items = list(items)
                self.dispatched += len(items)
                return super().map(fn, items, **kwargs)

        task = _task(b200, 128)
        seen = []
        ex = CountingExecutor(1, progress=lambda d, t: seen.append((d, t)))
        results = ex.run([task, task, task])
        assert ex.dispatched == 1
        assert results[0] == results[1] == results[2]
        # Progress still covers all three occurrences, monotonically.
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_cost_estimate_orders_large_points_first(self, b200):
        # More GPUs decompose into more parallelizations: the estimated
        # search-space size must be monotone in the sweep's hardest axis.
        costs = [estimate_task_cost(_task(b200, n)) for n in (128, 1024, 4096)]
        assert costs == sorted(costs)
        assert costs[0] > 0

    def test_cost_estimate_covers_all_strategies(self, b200):
        single = estimate_task_cost(_task(b200, 256))
        combined = estimate_task_cost(_task(b200, 256, strategy="all"))
        assert combined > single

    def test_cost_estimate_survives_bad_tasks(self, b200):
        # A task the enumeration rejects falls back to the GPU count rather
        # than raising during dispatch ordering.
        bad = _task(b200, 256, strategy="no-such-strategy")
        assert estimate_task_cost(bad) == 256.0

    def test_lpt_dispatch_preserves_results_and_order(self, b200):
        dispatched = []

        class RecordingExecutor(SweepExecutor):
            def map(self, fn, items, **kwargs):
                dispatched.extend(items)
                return [fn(item) for item in items]

        tasks = [_task(b200, n) for n in (128, 512, 256)]
        recording = RecordingExecutor(4)
        results = recording.run(tasks)
        # Dispatch goes biggest-first (LPT), results return in input order.
        assert [t.n_gpus for t in dispatched] == [512, 256, 128]
        assert [r.n_gpus for r in results] == [128, 512, 256]
        assert results == SweepExecutor(1).run(tasks)

    def test_worker_exception_propagates(self, b200):
        bad = _task(b200, 128, strategy=())
        with pytest.raises(ValueError):
            SweepExecutor(1).run([bad])
        with pytest.raises(ValueError):
            SweepExecutor(2).run([bad, _task(b200, 128)])


class TestSearchCache:
    def test_miss_then_hit_returns_equal_result(self, b200):
        cache = SearchCache()
        task = _task(b200, 256)
        assert cache.get(task) is None
        result = solve_search_task(task)
        cache.put(task, result)
        cached = cache.get(task)
        assert cached == result
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "entries": 1,
            "hint_keys": 1,
            "hint_entries": 1,
        }

    def test_fingerprint_changes_with_any_input(self, b200):
        base = _task(b200, 256)
        variants = [
            _task(b200, 512),
            _task(b200, 256, global_batch_size=2048),
            _task(b200, 256, strategy="tp2d"),
            _task(b200, 256, top_k=3),
            _task(b200, 256, space=SearchSpace(max_tensor_parallel=4)),
            _task(b200, 256, eval_mode="batch"),
            _task(make_system("B200", 64), 256),
            _task(make_system("H200", 8), 256),
            dataclasses.replace(base, model=VIT_LONG_SEQ),
        ]
        fingerprints = {SearchCache.fingerprint(t) for t in [base] + variants}
        assert len(fingerprints) == len(variants) + 1

    def test_invalidation_on_fingerprint_change(self, b200):
        cache = SearchCache()
        task = _task(b200, 256)
        cache.put(task, solve_search_task(task))
        # A different system (even just a larger NVS domain) must miss.
        assert cache.get(_task(make_system("B200", 64), 256)) is None

    def test_persistence_roundtrip(self, b200, tmp_path):
        path = tmp_path / "cache.json"
        task = _task(b200, 256)
        result = solve_search_task(task)

        cache = SearchCache(path)
        cache.put(task, result)
        cache.save()

        reloaded = SearchCache(path)
        assert len(reloaded) == 1
        assert reloaded.get(task) == result

    def test_malformed_entry_degrades_to_miss(self, b200):
        cache = SearchCache()
        task = _task(b200, 256)
        cache._entries[SearchCache.fingerprint(task)] = {"garbage": True}
        assert cache.get(task) is None  # dropped, not raised
        assert cache.misses == 1
        # The bad entry is evicted so a fresh solve can overwrite it.
        assert len(cache) == 0

    def test_incompatible_version_treated_as_empty(self, b200, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"version": -1, "entries": {"deadbeef": {}}}')
        assert len(SearchCache(path)) == 0

    def test_save_is_atomic_and_merges_concurrent_writers(self, b200, tmp_path):
        path = tmp_path / "cache.json"
        task_a, task_b = _task(b200, 128), _task(b200, 256)

        writer_a = SearchCache(path)
        writer_b = SearchCache(path)  # loaded before A saves
        writer_a.put(task_a, solve_search_task(task_a))
        writer_a.save()
        writer_b.put(task_b, solve_search_task(task_b))
        writer_b.save()  # must not clobber A's entry

        merged = SearchCache(path)
        assert len(merged) == 2
        assert merged.get(task_a) is not None
        assert merged.get(task_b) is not None
        # No temp files left behind by the atomic replace.
        assert list(tmp_path.iterdir()) == [path]

    def test_concurrent_threads_lose_no_entries(self, b200, tmp_path):
        """Regression: unsynchronized put/save raced and dropped entries.

        The API server shares one ``SearchCache`` across request threads;
        interleaved ``save()`` calls used to rebuild ``_entries`` from a
        stale snapshot, silently losing concurrent ``put``s (and crashing
        with ``RuntimeError: dictionary changed size during iteration``).
        """
        import threading

        path = tmp_path / "cache.json"
        cache = SearchCache(path)
        n_threads, per_thread = 8, 16
        failures = []

        def hammer(tid):
            try:
                for i in range(per_thread):
                    task = _task(b200, 8 * (1 + tid * per_thread + i))
                    cache.put(task, _stub_result(task))
                    if i % 4 == 0:
                        cache.save()  # interleaves with other threads' puts
            except Exception as exc:  # noqa: BLE001 — record, assert below
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert len(cache) == n_threads * per_thread  # no lost updates
        cache.save()
        assert len(SearchCache(path)) == n_threads * per_thread

    def test_failed_save_leaves_no_temp_file(self, b200, tmp_path, monkeypatch):
        """Regression: an aborted write leaked ``cache.json.tmp<pid>``."""
        import repro.runtime.cache as cache_mod

        path = tmp_path / "cache.json"
        cache = SearchCache(path)
        cache.put(_task(b200, 128), _stub_result(_task(b200, 128)))
        cache.save()
        good = path.read_bytes()

        def failing_dump(obj, target):
            target.write_text("partial garbage")  # simulate a mid-write crash
            raise OSError("disk full")

        monkeypatch.setattr(cache_mod, "dump_json", failing_dump)
        cache.put(_task(b200, 256), _stub_result(_task(b200, 256)))
        with pytest.raises(OSError, match="disk full"):
            cache.save()
        # The half-written temp file is cleaned up and the previous cache
        # file is untouched (the atomic replace never ran).
        assert list(tmp_path.iterdir()) == [path]
        assert path.read_bytes() == good

    def test_cross_process_save_merges_disjoint_entries(self, b200, tmp_path):
        """Two processes saving disjoint entries both survive on disk."""
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        path = tmp_path / "cache.json"
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_cross_process_writer, args=(path, n, barrier))
            for n in (128, 256)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert [p.exitcode for p in procs] == [0, 0]
        merged = SearchCache(path)
        assert len(merged) == 2
        assert merged.get(_task(b200, 128)) is not None
        assert merged.get(_task(b200, 256)) is not None

    def test_executor_uses_cache(self, b200):
        cache = SearchCache()
        tasks = [_task(b200, n) for n in (128, 256)]
        first = SweepExecutor(1, cache=cache).run(tasks)
        second = SweepExecutor(1, cache=cache).run(tasks)
        assert first == second
        assert cache.hits == 2
        assert cache.misses == 2

    def test_search_result_json_roundtrip(self, b200):
        from repro.core.search import SearchResult

        result = solve_search_task(_task(b200, 256, top_k=3))
        rebuilt = dataclass_from_jsonable(SearchResult, to_jsonable(result))
        assert rebuilt == result


class TestPruning:
    PRUNE_OFF = SearchSpace(prune_with_lower_bound=False)

    @pytest.mark.parametrize(
        "model,n_gpus,strategy,top_k",
        [
            (GPT3_1T, 512, "tp1d", 0),
            (GPT3_1T, 1024, "tp1d", 5),
            (GPT3_1T, 256, "tp2d", 0),
            (VIT_LONG_SEQ, 512, "tp2d", 3),
            (GPT3_1T, 512, "summa", 0),
        ],
    )
    def test_pruning_never_changes_the_optimum(self, b200, model, n_gpus, strategy, top_k):
        kwargs = dict(n_gpus=n_gpus, global_batch_size=4096, strategy=strategy, top_k=top_k)
        pruned = find_optimal_config(model, b200, **kwargs)
        exhaustive = find_optimal_config(model, b200, space=self.PRUNE_OFF, **kwargs)
        assert pruned.found == exhaustive.found
        if pruned.found:
            assert pruned.best.config == exhaustive.best.config
            assert pruned.best.assignment == exhaustive.best.assignment
            assert pruned.best_time == exhaustive.best_time
        assert [e.config for e in pruned.top_k] == [e.config for e in exhaustive.top_k]
        assert pruned.statistics.candidates_evaluated <= exhaustive.statistics.candidates_evaluated

    def test_pruning_skips_work_on_default_gpt3_search(self, b200):
        """Acceptance: >0 pruned parallelizations on the GPT3-1T default search."""
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=1024, global_batch_size=4096, strategy="tp1d"
        )
        assert result.statistics.pruned_configs > 0
        assert result.statistics.bounds_computed > 0
        assert result.summary()["pruned_configs"] > 0
        exhaustive = find_optimal_config(
            GPT3_1T, b200, n_gpus=1024, global_batch_size=4096, strategy="tp1d",
            space=self.PRUNE_OFF,
        )
        assert exhaustive.statistics.pruned_configs == 0
        assert (
            result.statistics.candidates_evaluated
            < exhaustive.statistics.candidates_evaluated
        )

    def test_lower_bound_is_a_true_lower_bound(self, b200):
        """The bound must hold for *every* NVS assignment of every config."""
        clear_caches()
        checked = 0
        for config in parallel_configs(GPT3_1T, 256, 4096, "tp1d", SearchSpace()):
            memory = estimate_config_memory(GPT3_1T, config, global_batch_size=4096)
            if not memory.fits(b200.gpu.hbm_capacity):
                continue
            bound = config_time_lower_bound(
                GPT3_1T, b200, config, global_batch_size=4096
            )
            for assignment in gpu_assignments(config, b200.nvs_domain_size, SearchSpace()):
                estimate = evaluate_config(
                    GPT3_1T, b200, config, assignment, global_batch_size=4096
                )
                assert bound <= estimate.total_time + 1e-12
                checked += 1
        assert checked > 0


class TestBatchEvalExecutor:
    """eval_mode="batch" through the runtime: fingerprints, shared-incumbent
    slots and parallel-vs-serial result identity."""

    def test_statistics_exclude_shared_incumbent_prunes(self):
        from repro.core.search import SearchStatistics

        a = SearchStatistics(parallel_configs=3, candidates_evaluated=10)
        b = dataclasses.replace(a, shared_incumbent_prunes=7)
        assert a == b  # diagnostics-only counter never breaks result equality
        assert (a.merged(b)).shared_incumbent_prunes == 7

    def test_incumbent_slots_created_only_for_eligible_tasks(self, b200):
        from repro.runtime.executor import _incumbent_slots_for

        slots = _incumbent_slots_for([_task(b200, 512, eval_mode="batch", strategy="all")])
        assert slots is not None
        assert len(slots) == 3  # one scope per strategy of the "all" search
        ineligible = [
            _task(b200, 512),  # scalar
            _task(b200, 512, eval_mode="batch", top_k=2),  # leaderboards don't share
            _task(b200, 512, eval_mode="batch", backend="sim"),
            _task(
                b200, 512, eval_mode="batch",
                space=SearchSpace(prune_with_lower_bound=False),
            ),
        ]
        for task in ineligible:
            assert _incumbent_slots_for([task]) is None

    def test_batch_task_selects_the_scalar_optimum(self, b200):
        scalar = solve_search_task(_task(b200, 512))
        batch = solve_search_task(_task(b200, 512, eval_mode="batch"))
        assert batch.best.config == scalar.best.config
        assert batch.best.assignment == scalar.best.assignment
        assert batch.best.breakdown == scalar.best.breakdown

    def test_parallel_batch_sweep_selects_identical_optima(self, b200):
        """Cross-worker incumbent slots only tighten pruning: the parallel
        sweep's optima (not necessarily its work counters) match serial."""
        tasks = [
            _task(b200, n, eval_mode="batch", strategy="all") for n in (512, 1024)
        ]
        serial = SweepExecutor(jobs=1).run(tasks)
        parallel = SweepExecutor(jobs=2).run(tasks)
        for s, p in zip(serial, parallel):
            assert p.best.config == s.best.config
            assert p.best.assignment == s.best.assignment
            assert p.best.breakdown == s.best.breakdown
            assert p.top_k == s.top_k
