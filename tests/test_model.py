"""Transformer architecture descriptions (paper §III-B)."""

import pytest

from repro.core.model import (
    GPT3_1T,
    GPT3_175B,
    MODEL_CATALOG,
    TransformerConfig,
    VIT_32K,
    VIT_LONG_SEQ,
    get_model,
)


class TestPaperPresets:
    def test_gpt3_1t_hyperparameters(self):
        assert (GPT3_1T.seq_len, GPT3_1T.embed_dim, GPT3_1T.num_heads, GPT3_1T.depth) == (
            2048,
            25600,
            160,
            128,
        )
        assert GPT3_1T.hidden_dim == 4 * GPT3_1T.embed_dim

    def test_vit_hyperparameters(self):
        assert (VIT_LONG_SEQ.seq_len, VIT_LONG_SEQ.embed_dim) == (64800, 12288)
        assert (VIT_LONG_SEQ.num_heads, VIT_LONG_SEQ.depth) == (64, 48)

    def test_gpt3_1t_has_a_trillion_parameters(self):
        assert GPT3_1T.total_params == pytest.approx(1e12, rel=0.05)

    def test_gpt3_175b_parameter_count(self):
        assert GPT3_175B.total_params == pytest.approx(175e9, rel=0.05)

    def test_vit_sequence_comes_from_era5_grid(self):
        # 720 x 1440 grid with patch size 4 -> (720/4) * (1440/4) = 64800.
        assert VIT_LONG_SEQ.seq_len == (720 // 4) * (1440 // 4)

    def test_mlp_to_attention_flop_ratios(self):
        # Paper: roughly 2x for GPT3-1T and roughly 0.5x for the ViT.
        assert GPT3_1T.mlp_to_attention_flop_ratio() == pytest.approx(2.0, rel=0.1)
        assert VIT_LONG_SEQ.mlp_to_attention_flop_ratio() == pytest.approx(0.5, rel=0.15)

    def test_head_dim(self):
        assert GPT3_1T.head_dim == 160
        assert VIT_LONG_SEQ.head_dim == 192

    def test_catalog_lookup(self):
        assert get_model("GPT3-1T") is GPT3_1T
        assert get_model("vit") is VIT_LONG_SEQ
        assert get_model("vit-32k") is VIT_32K
        assert set(MODEL_CATALOG) >= {"gpt3-1t", "vit", "gpt3-175b", "vit-32k"}

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_model("llama-ultra")


class TestTransformerConfig:
    def test_default_hidden_dim(self):
        cfg = TransformerConfig(name="t", seq_len=128, embed_dim=256, num_heads=8, depth=2)
        assert cfg.hidden_dim == 1024

    def test_explicit_hidden_dim(self):
        cfg = TransformerConfig(
            name="t", seq_len=128, embed_dim=256, num_heads=8, depth=2, hidden_dim=512
        )
        assert cfg.hidden_dim == 512

    def test_params_per_layer_formula(self):
        cfg = TransformerConfig(name="t", seq_len=128, embed_dim=256, num_heads=8, depth=2)
        e, f = 256, 1024
        expected = (4 * e * e + 4 * e) + (2 * e * f + f + e) + 4 * e
        assert cfg.params_per_layer == expected
        assert cfg.total_params == 2 * expected

    def test_embedding_params(self):
        cfg = TransformerConfig(
            name="t", seq_len=128, embed_dim=256, num_heads=8, depth=2, vocab_size=1000
        )
        assert cfg.embedding_params == 256000
        assert cfg.total_params == 2 * cfg.params_per_layer + 256000

    def test_flops_scale_linearly_with_batch(self):
        cfg = TransformerConfig(name="t", seq_len=128, embed_dim=256, num_heads=8, depth=2)
        assert cfg.forward_flops(batch=4) == pytest.approx(4 * cfg.forward_flops(batch=1))

    def test_heads_must_divide_embed_dim(self):
        with pytest.raises(ValueError):
            TransformerConfig(name="bad", seq_len=128, embed_dim=250, num_heads=8, depth=2)

    def test_positive_dimensions_required(self):
        with pytest.raises(ValueError):
            TransformerConfig(name="bad", seq_len=0, embed_dim=256, num_heads=8, depth=2)
        with pytest.raises(ValueError):
            TransformerConfig(name="bad", seq_len=128, embed_dim=256, num_heads=8, depth=0)

    def test_dtype_bytes_validation(self):
        with pytest.raises(ValueError):
            TransformerConfig(
                name="bad", seq_len=128, embed_dim=256, num_heads=8, depth=2, dtype_bytes=3
            )

    def test_scaled_copy(self):
        cfg = GPT3_1T.scaled(depth=64)
        assert cfg.depth == 64
        assert cfg.embed_dim == GPT3_1T.embed_dim
        assert GPT3_1T.depth == 128  # original unchanged

    def test_describe_contains_key_fields(self):
        d = GPT3_1T.describe()
        assert d["name"] == "GPT3-1T"
        assert d["params_total"] == GPT3_1T.total_params
        assert "mlp_to_attention_flops" in d

    def test_frozen(self):
        with pytest.raises(Exception):
            GPT3_1T.depth = 5  # type: ignore[misc]
