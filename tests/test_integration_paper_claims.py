"""Integration tests: the paper's headline qualitative claims end-to-end.

Each test reproduces one claim from §IV / §V of the paper using the full
public API (model presets -> system catalog -> optimal-configuration search
-> training-day estimates).  These are the "shape" checks the reproduction
is graded on: who wins, by roughly what factor, where the crossovers fall.
"""

import pytest

from repro import (
    GPT3_1T,
    VIT_LONG_SEQ,
    ModelingOptions,
    find_optimal_config,
    make_system,
    training_days,
)
from repro.core.config_space import SearchSpace


@pytest.fixture(scope="module")
def b200_nvs8():
    return make_system("B200", 8)


class TestGptClaims:
    def test_1d_tp_is_sufficient_for_gpt(self, b200_nvs8):
        """§IV(Q2): 1D TP yields good performance for GPT3-1T (compute-dominated)."""
        result = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=4096, global_batch_size=4096, strategy="tp1d"
        )
        frac = result.best.breakdown.fractions()
        assert frac["compute"] > 0.5

    def test_pp_bubbles_grow_at_scale(self, b200_nvs8):
        """§IV(Q2i): pipeline bubbles start to dominate at large GPU counts."""
        small = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=512, global_batch_size=4096, strategy="tp1d"
        )
        large = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=16384, global_batch_size=4096, strategy="tp1d"
        )
        assert (
            large.best.breakdown.fractions()["pp_bubble"]
            > small.best.breakdown.fractions()["pp_bubble"]
        )

    def test_hbm_utilisation_drops_at_scale_for_gpt(self, b200_nvs8):
        """§IV(Q2iii): HBM capacity utilisation is high only at small scale."""
        small = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=256, global_batch_size=4096, strategy="tp1d"
        )
        large = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=16384, global_batch_size=4096, strategy="tp1d"
        )
        assert large.best.memory_gb < small.best.memory_gb

    def test_gpu_generations_give_large_speedups(self):
        """§IV(Q3i): A100 -> B200 shrinks GPT3-1T training from O(30) to O(3-5) days."""
        days = {}
        for gen in ("A100", "B200"):
            system = make_system(gen, 8)
            result = find_optimal_config(
                GPT3_1T, system, n_gpus=16384, global_batch_size=4096, strategy="tp1d"
            )
            days[gen] = training_days(result.best_time, GPT3_1T, 4096)
        assert days["A100"] / days["B200"] > 4.0
        assert 2.0 < days["B200"] < 8.0
        assert 15.0 < days["A100"] < 60.0

    def test_nvs_domain_matters_mostly_at_scale_for_gpt(self):
        """§IV(Q3ii): NVS-domain benefits for GPT3-1T grow with scale."""
        def gain(n):
            t_small = find_optimal_config(
                GPT3_1T, make_system("B200", 4), n_gpus=n, global_batch_size=4096,
                strategy="tp1d",
            ).best_time
            t_large = find_optimal_config(
                GPT3_1T, make_system("B200", 64), n_gpus=n, global_batch_size=4096,
                strategy="tp1d",
            ).best_time
            return t_small / t_large

        assert gain(16384) >= gain(2048) * 0.98  # larger scale benefits at least as much
        assert gain(16384) > 1.02


class TestVitClaims:
    def test_vit_demands_2d_parallelism(self, b200_nvs8):
        """§IV(Q2iv): the 64K-sequence ViT needs 2D TP; 1D TP is not viable."""
        tp1d = find_optimal_config(
            VIT_LONG_SEQ, b200_nvs8, n_gpus=2048, global_batch_size=4096, strategy="tp1d"
        )
        tp2d = find_optimal_config(
            VIT_LONG_SEQ, b200_nvs8, n_gpus=2048, global_batch_size=4096, strategy="tp2d"
        )
        assert tp2d.found
        assert (not tp1d.found) or (tp1d.best_time > 1.5 * tp2d.best_time)

    def test_vit_tp_comm_is_the_bottleneck(self, b200_nvs8):
        """§IV(Q2iv): TP communication is the dominant non-compute cost for the ViT."""
        result = find_optimal_config(
            VIT_LONG_SEQ, b200_nvs8, n_gpus=4096, global_batch_size=4096, strategy="tp2d"
        )
        frac = result.best.breakdown.fractions()
        non_compute = {k: v for k, v in frac.items() if k not in ("compute", "memory")}
        assert max(non_compute, key=non_compute.get) == "tp_comm"

    def test_vit_depends_on_nvs_at_moderate_scale_more_than_gpt(self):
        """§IV(Q3iv): the ViT sees NVS benefits throughout, GPT mostly at scale."""
        n = 1024
        def gain(model, strategy):
            t4 = find_optimal_config(
                model, make_system("B200", 4), n_gpus=n, global_batch_size=4096,
                strategy=strategy,
            ).best_time
            t64 = find_optimal_config(
                model, make_system("B200", 64), n_gpus=n, global_batch_size=4096,
                strategy=strategy,
            ).best_time
            return t4 / t64

        assert gain(VIT_LONG_SEQ, "tp2d") > gain(GPT3_1T, "tp1d")

    def test_vit_benefits_from_gpu_generation(self):
        a100 = find_optimal_config(
            VIT_LONG_SEQ, make_system("A100", 8), n_gpus=4096, global_batch_size=4096,
            strategy="tp2d",
        )
        b200 = find_optimal_config(
            VIT_LONG_SEQ, make_system("B200", 8), n_gpus=4096, global_batch_size=4096,
            strategy="tp2d",
        )
        assert a100.best_time > 2.0 * b200.best_time


class TestAblations:
    def test_gpu_assignment_search_never_hurts(self, b200_nvs8):
        """The paper's NVS-placement search is the contribution over Calculon."""
        with_search = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=2048, global_batch_size=4096, strategy="tp1d",
            space=SearchSpace(search_gpu_assignment=True),
        )
        without_search = find_optimal_config(
            GPT3_1T, b200_nvs8, n_gpus=2048, global_batch_size=4096, strategy="tp1d",
            space=SearchSpace(search_gpu_assignment=False),
        )
        assert with_search.best_time <= without_search.best_time * 1.0001

    def test_flash_attention_is_required_for_vit_feasibility_margin(self, b200_nvs8):
        """Without the fused L/A recompute the ViT's memory pressure explodes."""
        flash = find_optimal_config(
            VIT_LONG_SEQ, b200_nvs8, n_gpus=512, global_batch_size=4096, strategy="tp2d",
            options=ModelingOptions(flash_attention=True),
        )
        no_flash = find_optimal_config(
            VIT_LONG_SEQ, b200_nvs8, n_gpus=512, global_batch_size=4096, strategy="tp2d",
            options=ModelingOptions(flash_attention=False),
        )
        assert flash.found
        # Dropping the fused kernel forces the l x l logits to be retained;
        # the search only survives by falling back to full recomputation, and
        # the resulting best configuration cannot be faster.
        if no_flash.found:
            assert no_flash.best_time >= flash.best_time * 0.999
