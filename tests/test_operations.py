"""Operation-level FLOP and byte counting (stage S1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import (
    AttentionShape,
    CommOp,
    ComputeOp,
    arithmetic_intensity,
    comm_volume_by_group,
    dropout_op,
    flash_attention_backward,
    flash_attention_forward,
    gelu_op,
    layernorm_op,
    matmul_backward_ops,
    matmul_bytes,
    matmul_flops,
    matmul_op,
    softmax_op,
    total_bytes,
    total_flops,
    vector_backward_op,
    vector_op,
)


class TestMatmulCounting:
    def test_flops_formula(self):
        # lambda_f = 2 m k n
        assert matmul_flops(4, 5, 6) == 2 * 4 * 5 * 6

    def test_flops_with_batch(self):
        assert matmul_flops(4, 5, 6, batch=3) == 3 * 2 * 4 * 5 * 6

    def test_bytes_formula_fp16(self):
        # lambda_m = 2 (mk + kn + mn) for FP16
        assert matmul_bytes(4, 5, 6) == 2 * (20 + 30 + 24)

    def test_shared_weight_bytes(self):
        shared = matmul_bytes(4, 5, 6, batch=8, shared_operand_b=True)
        unshared = matmul_bytes(4, 5, 6, batch=8, shared_operand_b=False)
        assert shared < unshared
        assert shared == 2 * (8 * 20 + 30 + 8 * 24)

    def test_matmul_op_uses_tensor_pipe(self):
        op = matmul_op("mm", 64, 64, 64)
        assert op.pipe == "tensor"
        assert op.flops == matmul_flops(64, 64, 64)

    def test_backward_is_two_matmuls_with_double_flops(self):
        fwd = matmul_op("mm", 32, 64, 128)
        bwd = matmul_backward_ops("mm", 32, 64, 128)
        assert len(bwd) == 2
        assert total_flops(bwd) == pytest.approx(2 * fwd.flops)

    @given(
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_always_positive(self, m, k, n):
        assert matmul_flops(m, k, n) > 0
        assert matmul_bytes(m, k, n) > 0


class TestVectorOps:
    def test_layernorm_is_vector_pipe(self):
        op = layernorm_op(1000)
        assert op.pipe == "vector"
        assert op.bytes_hbm == 2 * 1000 * 2

    def test_softmax_and_gelu(self):
        assert softmax_op(100).flops == 5 * 100
        assert gelu_op(100).flops == 8 * 100

    def test_dropout_includes_mask_traffic(self):
        assert dropout_op(100).bytes_hbm > gelu_op(100).bytes_hbm

    def test_backward_scales_cost(self):
        fwd = layernorm_op(1000)
        bwd = vector_backward_op(fwd)
        assert bwd.flops == pytest.approx(2 * fwd.flops)
        assert bwd.name.endswith(".bwd")

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            vector_op("transcendental", 10)


class TestComputeOpValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ComputeOp(name="bad", flops=-1, bytes_hbm=0)

    def test_unknown_pipe_rejected(self):
        with pytest.raises(ValueError):
            ComputeOp(name="bad", flops=1, bytes_hbm=1, pipe="quantum")

    def test_scaled(self):
        op = ComputeOp(name="x", flops=10, bytes_hbm=20)
        scaled = op.scaled(0.5)
        assert scaled.flops == 5 and scaled.bytes_hbm == 10

    def test_comm_negative_volume_rejected(self):
        with pytest.raises(ValueError):
            CommOp(name="bad", collective="all_gather", volume_bytes=-1, group="tp1")


class TestFlashAttention:
    def _shape(self, fused_heads=16):
        return AttentionShape(batch=2, heads=fused_heads, q_rows=512, kv_rows=512, head_dim=64)

    def test_fused_is_single_op(self):
        ops = flash_attention_forward(self._shape(), fused=True)
        assert len(ops) == 1

    def test_unfused_exposes_logits_traffic(self):
        fused = flash_attention_forward(self._shape(), fused=True)
        unfused = flash_attention_forward(self._shape(), fused=False)
        assert total_bytes(unfused) > total_bytes(fused)

    def test_fused_raises_arithmetic_intensity(self):
        fused = flash_attention_forward(self._shape(), fused=True)
        unfused = flash_attention_forward(self._shape(), fused=False)
        assert arithmetic_intensity(fused) > arithmetic_intensity(unfused)

    def test_fused_backward_recompute_costs_more_flops(self):
        fwd = flash_attention_forward(self._shape(), fused=True)
        bwd = flash_attention_backward(self._shape(), fused=True)
        assert total_flops(bwd) == pytest.approx(2.5 * total_flops(fwd))

    def test_flops_quadratic_in_sequence(self):
        short = flash_attention_forward(
            AttentionShape(batch=1, heads=8, q_rows=256, kv_rows=256, head_dim=64)
        )
        long = flash_attention_forward(
            AttentionShape(batch=1, heads=8, q_rows=512, kv_rows=512, head_dim=64)
        )
        ratio = total_flops(long) / total_flops(short)
        assert ratio == pytest.approx(4.0, rel=0.05)


class TestAggregation:
    def test_totals(self):
        ops = [ComputeOp("a", 10, 20), ComputeOp("b", 30, 40)]
        assert total_flops(ops) == 40
        assert total_bytes(ops) == 60

    def test_arithmetic_intensity_zero_bytes(self):
        assert arithmetic_intensity([ComputeOp("a", 10, 0)]) == float("inf")

    def test_comm_volume_by_group(self):
        comms = [
            CommOp("x", "all_gather", 100.0, "tp1"),
            CommOp("y", "reduce_scatter", 50.0, "tp1"),
            CommOp("z", "all_gather", 25.0, "tp2"),
        ]
        grouped = comm_volume_by_group(comms)
        assert grouped == {"tp1": 150.0, "tp2": 25.0}
