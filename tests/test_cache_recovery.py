"""Regression tests: SearchCache recovery from corrupted/truncated files.

A cache file is a convenience, never a correctness dependency: any
unreadable, truncated, binary-garbage, wrong-version or partially mangled
file must degrade to an empty (or partially usable) cache — silently on
read, and without poisoning later saves.
"""

from __future__ import annotations

import json

import pytest

from repro.core.model import TransformerConfig
from repro.core.system import make_system
from repro.runtime import SearchCache, SearchTask, SweepExecutor
from repro.runtime.cache import CACHE_FORMAT_VERSION

TINY = TransformerConfig(name="tiny", seq_len=256, embed_dim=512, num_heads=8, depth=4)
SYSTEM = make_system("B200", 8)


def _task(n_gpus=8):
    return SearchTask(model=TINY, system=SYSTEM, n_gpus=n_gpus, global_batch_size=16)


def _solved_cache(path):
    """A cache file with one genuinely solved entry at ``path``."""
    cache = SearchCache(path)
    SweepExecutor(cache=cache).run([_task()])
    return cache


@pytest.mark.parametrize(
    "content",
    [
        b"",  # empty file
        b'{"version": %d, "entries": {"ab' % CACHE_FORMAT_VERSION,  # truncated write
        b"\x80\x81\xff\x00 not json at all",  # binary garbage
        b"[1, 2, 3]",  # valid JSON, wrong shape
        b'{"version": 999, "entries": {}}',  # future format version
        b'{"version": %d, "entries": ["list"]}' % CACHE_FORMAT_VERSION,  # wrong entries type
        b'null',
    ],
    ids=["empty", "truncated", "binary", "wrong-shape", "wrong-version", "bad-entries", "null"],
)
def test_corrupted_cache_file_loads_as_empty(tmp_path, content):
    path = tmp_path / "cache.json"
    path.write_bytes(content)
    cache = SearchCache(path)
    assert len(cache) == 0
    assert cache.get(_task()) is None  # counted as a miss, no exception


def test_corrupted_cache_file_is_recovered_by_save(tmp_path):
    """A sweep over a corrupted cache recomputes, then rewrites a valid file."""
    path = tmp_path / "cache.json"
    path.write_bytes(b'{"version": %d, "entries": {"trunc' % CACHE_FORMAT_VERSION)
    cache = _solved_cache(path)
    assert cache.misses == 1 and len(cache) == 1
    # The rewritten file round-trips: a fresh cache hits.
    fresh = SearchCache(path)
    assert fresh.get(_task()) is not None
    assert fresh.hits == 1


def test_malformed_entry_values_are_filtered_on_load(tmp_path):
    """Entry values that are not dicts are dropped instead of resaved."""
    path = tmp_path / "cache.json"
    _solved_cache(path)
    data = json.loads(path.read_text())
    (good_fp,) = data["entries"]
    data["entries"]["deadbeef"] = "not a result"
    data["entries"]["cafebabe"] = 42
    path.write_text(json.dumps(data))
    cache = SearchCache(path)
    assert len(cache) == 1  # only the well-formed entry survives
    cache.save()
    reloaded = json.loads(path.read_text())
    assert set(reloaded["entries"]) == {good_fp}


def test_schema_drifted_entry_is_dropped_and_recomputed(tmp_path):
    """An entry that fails reconstruction is evicted, not fatal."""
    path = tmp_path / "cache.json"
    cache = _solved_cache(path)
    fp = cache.fingerprint(_task())
    cache._entries[fp] = {"best": {"config": "garbage"}, "statistics": []}
    assert cache.get(_task()) is None  # dropped, counted as a miss
    assert fp not in cache._entries


def test_save_over_corrupted_file_succeeds(tmp_path):
    path = tmp_path / "cache.json"
    path.write_bytes(b"\x00\x01corrupt")
    cache = SearchCache(path)
    SweepExecutor(cache=cache).run([_task()])
    data = json.loads(path.read_text())
    assert data["version"] == CACHE_FORMAT_VERSION
    assert len(data["entries"]) == 1


def test_old_format_version_is_discarded(tmp_path):
    """A v1 cache (pre-scenario-axes schema) is ignored, not misread."""
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"version": 1, "entries": {"fp": {"stale": True}}}))
    cache = SearchCache(path)
    assert len(cache) == 0
