"""Planning-as-a-service layer (``repro.serve_api``).

Covers the pure schema boundary, the app's warm-cache / in-flight-dedup /
streaming semantics (with an injected solver so concurrency is
deterministic), and the stdlib HTTP front-end end-to-end against the real
engine.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.execution import evaluate_config
from repro.core.model import GPT3_1T
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.search import SearchResult
from repro.core.system import make_system
from repro.core.workloads import get_workload
from repro.runtime.executor import SearchTask
from repro.serve_api import ApiError, PlannerApp, create_server
from repro.serve_api import schema

B200 = make_system("B200", 8)


def _task(n_gpus=128, **overrides):
    kwargs = dict(
        model=GPT3_1T,
        system=B200,
        n_gpus=n_gpus,
        global_batch_size=512,
        strategy="tp1d",
    )
    kwargs.update(overrides)
    return SearchTask(**kwargs)


def _fake_result(task):
    """A cheap, serializable, cache-rebuildable engine result."""
    return SearchResult(
        model_name=task.model.name,
        system_name=task.system.name,
        n_gpus=task.n_gpus,
        global_batch_size=task.global_batch_size,
        strategy=str(task.strategy),
        best=None,
    )


def _wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ----------------------------------------------------------------------
# Schema: JSON payloads <-> engine objects
# ----------------------------------------------------------------------
class TestSchema:
    def test_search_request_minimal(self):
        task = schema.parse_search_request({"gpus": 256})
        assert task.model.name == "GPT3-1T"
        assert task.system.name == "B200-NVS8"
        assert task.n_gpus == 256
        assert task.global_batch_size == 4096  # the workload's default
        assert task.strategy == "tp1d"

    def test_search_request_full(self):
        task = schema.parse_search_request(
            {
                "workload": "moe-1t",
                "gpu": "A100",
                "nvs": 4,
                "gpus": 512,
                "global_batch": 1024,
                "strategy": ["tp1d", "tp2d"],
                "top_k": 3,
                "zero_stage": 2,
                "expert_parallel": 4,
            }
        )
        assert task.model.is_moe
        assert task.system.name == "A100-NVS4"
        assert task.strategy == ("tp1d", "tp2d")
        assert task.top_k == 3
        assert task.options.zero_stage == 2
        assert task.space.expert_parallel == (4,)

    def test_search_request_matches_cli_scenario_space(self):
        """The API resolves schedule presets exactly like the CLI does."""
        task = schema.parse_search_request({"workload": "gpt3-1t-interleaved", "gpus": 256})
        assert task.space.schedules == ("interleaved",)
        assert task.space.virtual_stages == (2,)

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ([1, 2], "JSON object"),
            ({}, "missing required field 'gpus'"),
            ({"gpus": "many"}, "field 'gpus' must be of type int"),
            ({"gpus": 0}, "must be >= 1"),
            ({"gpus": True}, "must be an integer, got a boolean"),
            ({"gpus": 8, "workload": "nope"}, "unknown workload"),
            ({"gpus": 8, "gpu": "Z999"}, "unknown GPU generation"),
            ({"gpus": 8, "strategy": "mesh"}, "field 'strategy'"),
            ({"gpus": 8, "strategy": []}, "field 'strategy'"),
            ({"gpus": 8, "zero_stage": 7}, "must be 0..3"),
            ({"gpus": 8, "backend": "quantum"}, "field 'backend'"),
            ({"gpus": 8, "schedule": "bogus"}, "unknown schedule"),
        ],
    )
    def test_search_request_rejects(self, payload, fragment):
        with pytest.raises(ApiError, match=fragment) as excinfo:
            schema.parse_search_request(payload)
        assert excinfo.value.status == 400

    def test_serve_request_overrides_preset(self):
        task = schema.parse_serve_request(
            {"gpus": 16, "objective": "tpot", "arrival_rate": 4.0, "output_tokens": 64}
        )
        preset = get_workload("llama70b-serve").serving
        assert task.objective == "tpot"
        assert task.serving.arrival_rate == 4.0
        assert task.serving.output_tokens == 64
        assert task.serving.prompt_tokens == preset.prompt_tokens  # untouched

    def test_serve_request_rejects_bad_objective_and_spec(self):
        with pytest.raises(ApiError, match="field 'objective'"):
            schema.parse_serve_request({"objective": "latency"})
        with pytest.raises(ApiError, match="arrival_rate"):
            schema.parse_serve_request({"arrival_rate": -1.0})

    def test_sweep_request_expands_and_dedupes(self):
        tasks = schema.parse_sweep_request({"gpus": [128, 256, 128], "global_batch": 512})
        assert [t.n_gpus for t in tasks] == [128, 256]
        with pytest.raises(ApiError, match="'gpus' must be a non-empty list"):
            schema.parse_sweep_request({"gpus": 128})
        with pytest.raises(ApiError, match="entries must be integers"):
            schema.parse_sweep_request({"gpus": [128, "x"]})

    def test_evaluate_request_roundtrip(self):
        kwargs = schema.parse_evaluate_request(
            {
                "global_batch": 512,
                "config": {
                    "strategy": "tp1d",
                    "tensor_parallel_1": 8,
                    "tensor_parallel_2": 1,
                    "pipeline_parallel": 16,
                    "data_parallel": 1,
                    "microbatch_size": 1,
                },
                "assignment": {"nvs_tp1": 8},
            }
        )
        assert kwargs["config"] == ParallelConfig("tp1d", 8, 1, 16, 1, 1)
        assert kwargs["assignment"] == GpuAssignment(nvs_tp1=8)
        estimate = schema.run_evaluate(kwargs)
        direct = evaluate_config(
            GPT3_1T,
            B200,
            ParallelConfig("tp1d", 8, 1, 16, 1, 1),
            GpuAssignment(nvs_tp1=8),
            global_batch_size=512,
        )
        assert estimate.total_time == direct.total_time

    def test_evaluate_request_rejects(self):
        with pytest.raises(ApiError, match="field 'config'"):
            schema.parse_evaluate_request({})
        with pytest.raises(ApiError, match="invalid config"):
            schema.parse_evaluate_request({"config": {"strategy": "tp1d"}})
        bad = schema.parse_evaluate_request(
            {
                "config": {
                    "strategy": "tp1d",
                    "tensor_parallel_1": 7,
                    "tensor_parallel_2": 1,
                    "pipeline_parallel": 1,
                    "data_parallel": 1,
                    "microbatch_size": 1,
                }
            }
        )
        with pytest.raises(ApiError, match="does not divide"):
            schema.run_evaluate(bad)

    def test_pareto_request_defaults(self):
        task = schema.parse_pareto_request({"gpus": 128})
        assert task.objectives == ("time", "hbm_headroom", "cost", "energy")
        assert task.top_k == 0  # pinned: top_k does not apply to a frontier
        assert task.model.name == "GPT3-1T"

    def test_pareto_request_objective_subset(self):
        task = schema.parse_pareto_request(
            {"gpus": 128, "objectives": ["time", "cost"], "top_k": 5}
        )
        assert task.objectives == ("time", "cost")
        assert task.top_k == 0  # a requested top_k is ignored, not an error

    @pytest.mark.parametrize(
        "objectives, fragment",
        [
            ([], "non-empty list"),
            ("time", "non-empty list"),
            ([1, 2], "non-empty list"),
            (["time", "warp-drive"], "unknown objective"),
            (["time", "time"], "duplicate"),
        ],
    )
    def test_pareto_request_rejects(self, objectives, fragment):
        with pytest.raises(ApiError, match=fragment) as excinfo:
            schema.parse_pareto_request({"gpus": 128, "objectives": objectives})
        assert excinfo.value.status == 400

    def test_stream_flag(self):
        assert schema.get_stream_flag({"stream": True})
        assert not schema.get_stream_flag({})


# ----------------------------------------------------------------------
# App: warm cache, in-flight dedup, streaming
# ----------------------------------------------------------------------
class TestPlannerApp:
    def test_second_identical_request_hits_warm_cache(self):
        solves = []

        def solver(task):
            solves.append(task)
            return _fake_result(task)

        app = PlannerApp(solver=solver)
        _, first = app.solve_task(_task())
        _, second = app.solve_task(_task())
        assert (first, second) == ("solved", "cache")
        assert len(solves) == 1
        status = app.status()
        assert status["engine_solves"] == 1
        assert status["dedup_hits"] == 0
        assert status["cache"]["hits"] == 1

    def test_warm_hit_serves_from_memory_not_disk(self, tmp_path):
        """A repeated request is served without touching the cache file."""
        path = tmp_path / "cache.json"
        app = PlannerApp(cache_path=path, solver=lambda task: _fake_result(task))
        app.solve_task(_task())
        assert path.exists()  # the solve persisted the entry
        path.unlink()  # remove the disk copy entirely
        result, source = app.solve_task(_task())
        assert source == "cache"
        assert result.n_gpus == 128
        assert not path.exists()  # pure in-memory hit: no disk read or write

    def test_concurrent_identical_requests_one_engine_solve(self):
        """N concurrent identical searches -> 1 solve, dedup_hits == N-1."""
        n_requests = 4
        release = threading.Event()
        solves = []

        def solver(task):
            solves.append(task)
            assert release.wait(timeout=10)
            return _fake_result(task)

        app = PlannerApp(solver=solver)
        outcomes = [None] * n_requests

        def request(i):
            outcomes[i] = app.solve_task(_task())

        threads = [threading.Thread(target=request, args=(i,)) for i in range(n_requests)]
        for t in threads:
            t.start()
        # Deterministic overlap: wait until every follower has attached to
        # the owner's in-flight future, then let the one solve finish.
        assert _wait_until(lambda: app.status()["dedup_hits"] == n_requests - 1)
        assert app.status()["in_flight"] == 1
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert len(solves) == 1  # exactly one engine solve
        sources = sorted(source for _, source in outcomes)
        assert sources == ["dedup"] * (n_requests - 1) + ["solved"]
        results = {result.n_gpus for result, _ in outcomes}
        assert results == {128}
        status = app.status()
        assert status["engine_solves"] == 1
        assert status["dedup_hits"] == n_requests - 1
        assert status["in_flight"] == 0

    def test_distinct_requests_are_not_deduplicated(self):
        app = PlannerApp(solver=lambda task: _fake_result(task))
        app.solve_task(_task(128))
        app.solve_task(_task(256))
        assert app.status()["engine_solves"] == 2
        assert app.status()["dedup_hits"] == 0

    def test_batch_solves_in_batch_duplicates_once(self):
        solves = []

        def solver(task):
            solves.append(task)
            return _fake_result(task)

        app = PlannerApp(solver=solver)
        results, sources = app.solve_batch([_task(128), _task(128), _task(256)])
        assert len(solves) == 2
        assert sources == ["solved", "solved", "solved"]
        assert [r.n_gpus for r in results] == [128, 128, 256]

    def test_solver_error_propagates_to_owner_and_attacher(self):
        release = threading.Event()

        def solver(task):
            assert release.wait(timeout=10)
            raise ValueError("boom: bad scenario")

        app = PlannerApp(solver=solver)
        errors = []

        def request():
            try:
                app.solve_task(_task())
            except ApiError as exc:
                errors.append(exc.message)

        threads = [threading.Thread(target=request) for _ in range(2)]
        for t in threads:
            t.start()
        assert _wait_until(lambda: app.status()["dedup_hits"] == 1)
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == ["boom: bad scenario"] * 2
        assert app.status()["in_flight"] == 0  # failed fingerprint unregistered
        assert app.status()["errors"] == 1

    def test_stream_events_progress_before_result(self):
        app = PlannerApp(solver=lambda task: _fake_result(task))
        events = list(
            app.solve_events(
                [_task()],
                body=lambda results, sources: schema.result_body(
                    results[0], source=sources[0]
                ),
            )
        )
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        assert "progress" in kinds
        assert kinds.index("progress") < kinds.index("result")
        assert events[-1]["source"] == "solved"

    def test_stream_events_error_terminates_stream(self):
        def solver(task):
            raise ValueError("nope")

        app = PlannerApp(solver=solver)
        events = list(
            app.solve_events([_task()], body=lambda r, s: {})
        )
        assert events[-1]["event"] == "error"
        assert "nope" in events[-1]["error"]


# ----------------------------------------------------------------------
# HTTP layer, end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def live_server():
    """A real server on an ephemeral port, backed by the real engine."""
    app = PlannerApp()
    server = create_server(port=0, app=app, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", app
    server.shutdown()
    server.server_close()
    app.close()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(base, path, body):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestHttpApi:
    SEARCH = {"workload": "gpt3-1t", "gpus": 128, "global_batch": 512}

    def test_health_and_status(self, live_server):
        base, _ = live_server
        assert _get(base, "/v1/health") == (200, {"ok": True})
        status, body = _get(base, "/v1/status")
        assert status == 200
        assert body["ok"] and "cache" in body

    def test_workloads_listing(self, live_server):
        base, _ = live_server
        status, body = _get(base, "/v1/workloads")
        names = {w["workload"] for w in body["workloads"]}
        assert status == 200 and {"gpt3-1t", "llama70b-serve"} <= names

    def test_unknown_path_and_bad_body(self, live_server):
        base, _ = live_server
        status, raw = _post(base, "/v1/teleport", {})
        assert status == 404
        status, raw = _post(base, "/v1/search", {"gpus": "many"})
        assert status == 400 and b"gpus" in raw
        request = urllib.request.Request(base + "/v1/search", data=b"{not json")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_cold_then_warm_search(self, live_server):
        base, app = live_server
        baseline = app.status()["engine_solves"]
        status, raw = _post(base, "/v1/search", self.SEARCH)
        cold = json.loads(raw)
        assert status == 200 and cold["found"] and cold["source"] == "solved"
        status, raw = _post(base, "/v1/search", self.SEARCH)
        warm = json.loads(raw)
        assert status == 200 and warm["source"] == "cache"
        assert warm["summary"] == cold["summary"]  # byte-identical result
        assert app.status()["engine_solves"] == baseline + 1

    def test_streaming_search(self, live_server):
        base, _ = live_server
        status, raw = _post(base, "/v1/search", {**self.SEARCH, "stream": True})
        assert status == 200
        events = [json.loads(line) for line in raw.splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        assert kinds.index("progress") < kinds.index("result")

    PARETO = {
        "workload": "gpt3-1t",
        "gpus": 128,
        "global_batch": 512,
        "objectives": ["time", "cost", "hbm_headroom"],
        "eval_mode": "batch",
    }

    def test_pareto_cold_then_cached(self, live_server):
        base, _ = live_server
        status, raw = _post(base, "/v1/pareto", self.PARETO)
        cold = json.loads(raw)
        assert status == 200 and cold["found"] and cold["source"] == "solved"
        assert cold["objectives"] == self.PARETO["objectives"]
        assert cold["summary"]["frontier_size"] == len(cold["frontier"])
        assert all(
            set(p["metrics"]) == set(self.PARETO["objectives"])
            for p in cold["frontier"]
        )
        status, raw = _post(base, "/v1/pareto", self.PARETO)
        warm = json.loads(raw)
        assert status == 200 and warm["source"] == "cache"
        assert warm["frontier"] == cold["frontier"]  # survives serialization

    def test_pareto_streaming_frontier_events(self, live_server):
        base, _ = live_server
        status, raw = _post(base, "/v1/pareto", {**self.PARETO, "stream": True})
        assert status == 200
        events = [json.loads(line) for line in raw.splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        frontier_events = [e["point"] for e in events if e["event"] == "frontier"]
        result = events[-1]
        # The frontier is streamed one point per event, and the closing
        # result does not repeat it.
        assert "frontier" not in result
        assert len(frontier_events) == result["summary"]["frontier_size"]
        status, raw = _post(base, "/v1/pareto", self.PARETO)
        assert frontier_events == json.loads(raw)["frontier"]

    def test_pareto_rejects_unknown_objective(self, live_server):
        base, _ = live_server
        status, raw = _post(
            base, "/v1/pareto", {**self.PARETO, "objectives": ["karma"]}
        )
        assert status == 400
        body = json.loads(raw)
        assert "unknown objective" in body["error"]
        assert "'time'" in body["error"]  # the registry vocabulary is listed

    def test_evaluate_matches_engine(self, live_server):
        base, _ = live_server
        status, raw = _post(
            base,
            "/v1/evaluate",
            {
                "global_batch": 512,
                "config": {
                    "strategy": "tp1d",
                    "tensor_parallel_1": 8,
                    "tensor_parallel_2": 1,
                    "pipeline_parallel": 16,
                    "data_parallel": 1,
                    "microbatch_size": 1,
                },
                "assignment": {"nvs_tp1": 8},
            },
        )
        body = json.loads(raw)
        direct = evaluate_config(
            GPT3_1T,
            B200,
            ParallelConfig("tp1d", 8, 1, 16, 1, 1),
            GpuAssignment(nvs_tp1=8),
            global_batch_size=512,
        )
        assert status == 200
        assert body["summary"]["total_time_s"] == direct.total_time

    def test_sweep_reuses_cached_points(self, live_server):
        base, _ = live_server
        status, raw = _post(
            base, "/v1/sweep", {"workload": "gpt3-1t", "gpus": [128, 256], "global_batch": 512}
        )
        body = json.loads(raw)
        assert status == 200
        by_gpus = {p["summary"]["n_gpus"]: p["source"] for p in body["points"]}
        # 128 was solved by the earlier search tests; 256 is new.
        assert by_gpus[128] == "cache"
        assert by_gpus[256] == "solved"

    def test_serving_search_over_http(self, live_server):
        base, _ = live_server
        status, raw = _post(
            base, "/v1/serve", {"workload": "llama70b-serve", "gpus": 8, "objective": "throughput"}
        )
        body = json.loads(raw)
        assert status == 200 and body["found"]
        assert body["summary"]["objective"] == "throughput"
        assert body["summary"]["tokens_per_s_per_gpu"] > 0


class TestHttpConcurrency:
    def test_concurrent_identical_http_requests_deduplicate(self):
        """The acceptance-criteria flow, through the real HTTP stack."""
        n_requests = 3
        release = threading.Event()

        def solver(task):
            assert release.wait(timeout=30)
            return _fake_result(task)

        app = PlannerApp(solver=solver)
        server = create_server(port=0, app=app, quiet=True)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = "http://{}:{}".format(*server.server_address[:2])
        try:
            payload = {"workload": "gpt3-1t", "gpus": 128, "global_batch": 512}
            outcomes = [None] * n_requests

            def request(i):
                outcomes[i] = _post(base, "/v1/search", payload)

            threads = [
                threading.Thread(target=request, args=(i,)) for i in range(n_requests)
            ]
            for t in threads:
                t.start()
            assert _wait_until(
                lambda: app.status()["dedup_hits"] == n_requests - 1, timeout=30
            )
            release.set()
            for t in threads:
                t.join(timeout=30)
            sources = sorted(json.loads(raw)["source"] for status, raw in outcomes)
            assert sources == ["dedup"] * (n_requests - 1) + ["solved"]
            assert app.status()["engine_solves"] == 1
        finally:
            server.shutdown()
            server.server_close()
            app.close()


# ----------------------------------------------------------------------
# CLI integration: the api sub-command and the --json bugfix
# ----------------------------------------------------------------------
class TestCliIntegration:
    def test_api_subcommand_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["api", "--port", "0", "--quiet"])
        assert args.port == 0 and args.quiet and hasattr(args, "func")

    def test_search_json_creates_missing_parents(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "deep" / "nested" / "out.json"
        rc = main(
            ["search", "--model", "gpt3-1t", "--gpus", "128",
             "--global-batch", "512", "--json", str(path)]
        )
        assert rc == 0
        assert json.loads(path.read_text())["n_gpus"] == 128

    def test_search_json_unwritable_is_one_line_error(self, tmp_path, capsys):
        from repro.cli import main

        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        rc = main(
            ["search", "--model", "gpt3-1t", "--gpus", "128",
             "--global-batch", "512", "--json", str(blocker / "out.json")]
        )
        err = capsys.readouterr().err
        assert rc == 1
        assert "repro-perf: error: cannot write --json" in err
        assert "Traceback" not in err

    def test_serve_json_paths(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "made" / "serve.json"
        rc = main(["serve", "--workload", "llama70b-serve", "--json", str(path)])
        assert rc == 0
        assert json.loads(path.read_text())["objective"] == "throughput"

        blocker = tmp_path / "blocker"
        blocker.write_text("")
        rc = main(
            ["serve", "--workload", "llama70b-serve", "--json", str(blocker / "x.json")]
        )
        assert rc == 1
        assert "cannot write --json" in capsys.readouterr().err
