"""Golden-figure regression harness.

Every figure/table the benchmark suite reproduces is rendered as a plain-text
report under ``benchmarks/results/``.  This module pins a byte-exact snapshot
of each report under ``tests/goldens/`` so that refactors of the performance
model (new scenario axes, search changes, ...) provably do not drift any
reproduced paper number.

Workflow
--------
* The benchmark suite (``benchmarks/``) regenerates ``benchmarks/results/*.txt``
  on every run; a full ``pytest -x -q`` therefore compares *freshly computed*
  reports against the goldens (benchmarks collect before tests).  Running
  ``pytest tests/`` alone compares the committed reports instead, which is
  equally valid because the results directory is version-controlled.
* After an *intentional* change to a figure, refresh the snapshot with::

      PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

  and commit the updated files together with the change that caused them.
"""

from __future__ import annotations

import difflib
from pathlib import Path

import pytest

GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"
RESULTS_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "results"


def _golden_names():
    return sorted(p.name for p in GOLDENS_DIR.glob("*.txt"))


def _diff_preview(golden: str, current: str, name: str, limit: int = 40) -> str:
    lines = list(
        difflib.unified_diff(
            golden.splitlines(),
            current.splitlines(),
            fromfile=f"goldens/{name}",
            tofile=f"results/{name}",
            lineterm="",
        )
    )
    if len(lines) > limit:
        lines = lines[:limit] + [f"... ({len(lines) - limit} more diff lines)"]
    return "\n".join(lines)


@pytest.mark.parametrize("name", _golden_names())
def test_figure_matches_golden(name, update_goldens):
    """Each benchmark report is byte-identical to its pinned golden."""
    result_path = RESULTS_DIR / name
    golden_path = GOLDENS_DIR / name
    assert result_path.exists(), (
        f"benchmarks/results/{name} is missing; the figure that produced the "
        f"golden no longer runs (or was renamed without updating tests/goldens)"
    )
    current = result_path.read_text()
    if update_goldens:
        golden_path.write_text(current)
        return
    golden = golden_path.read_text()
    assert current == golden, (
        f"{name} drifted from its golden snapshot.  If the change is "
        f"intentional, refresh with `pytest tests/test_goldens.py "
        f"--update-goldens`.\n{_diff_preview(golden, current, name)}"
    )


def test_default_backend_is_analytic():
    """The sim backend can never silently change a reported figure.

    Every golden report is produced through :func:`evaluate_config`'s
    default backend; pin that default (and the registry's) to the analytic
    closed forms so switching the default — which would drift every figure
    — requires touching this test together with the goldens.
    """
    import inspect

    from repro.core.backends import DEFAULT_BACKEND
    from repro.core.execution import build_execution_plan, evaluate_config
    from repro.runtime import SearchTask

    assert DEFAULT_BACKEND == "analytic"
    for fn in (evaluate_config, build_execution_plan):
        assert inspect.signature(fn).parameters["backend"].default == "analytic"
    assert SearchTask.__dataclass_fields__["backend"].default == "analytic"


def test_every_result_has_a_golden(update_goldens):
    """New figures must be pinned too: results/ and goldens/ track the same set."""
    results = {p.name for p in RESULTS_DIR.glob("*.txt")}
    goldens = set(_golden_names())
    if update_goldens:
        for name in results - goldens:
            (GOLDENS_DIR / name).write_text((RESULTS_DIR / name).read_text())
        for name in goldens - results:
            (GOLDENS_DIR / name).unlink()
        return
    missing = sorted(results - goldens)
    stale = sorted(goldens - results)
    assert not missing and not stale, (
        f"golden set out of sync: unpinned results {missing}, "
        f"goldens without a result {stale}; refresh with --update-goldens"
    )
