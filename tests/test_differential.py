"""Tier-2 differential grid: the sim oracle pins every analytic path.

Runs the full dense/MoE/GQA x {1f1b, gpipe, interleaved(v in {2,4})} x
{tp1d, tp2d, summa} grid and asserts the simulated breakdown agrees with
the analytic :class:`~repro.core.plan.TimeBreakdown` term by term within
the documented tolerance bands (:data:`repro.analysis.differential.TOLERANCES`).

These tests are marked ``sim`` and excluded from the default (tier-1) run
— execute them with ``pytest -m sim`` (the tier-2 CI job does).
"""

from __future__ import annotations

import pytest

from repro.analysis.differential import (
    GRID_SCHEDULES,
    GRID_STRATEGIES,
    GRID_WORKLOADS,
    DifferentialCase,
    TermDelta,
    ToleranceBand,
    build_default_grid,
    format_failure_diff,
    run_case,
    run_differential_grid,
)
from repro.analysis.reporting import render_differential
from repro.cli import main as cli_main

pytestmark = pytest.mark.sim

GRID = build_default_grid()


def _case_ids():
    return [case.name for case in GRID]


class TestDifferentialGrid:
    @pytest.mark.parametrize("case", GRID, ids=_case_ids())
    def test_case_within_tolerance(self, case: DifferentialCase, b200_nvs8):
        result = run_case(case, b200_nvs8)
        assert result.ok, "\n" + format_failure_diff(result)

    def test_grid_covers_every_axis(self):
        names = {case.name for case in GRID}
        # every workload x schedule pair appears (SUMMA x MoE legitimately absent)
        for workload in GRID_WORKLOADS:
            for schedule, v in GRID_SCHEDULES:
                assert any(
                    case.workload == workload
                    and case.schedule == schedule
                    and case.config.virtual_stages == v
                    for case in GRID
                ), f"missing {workload} x {schedule}(v={v})"
        for strategy in GRID_STRATEGIES:
            assert any(case.strategy == strategy for case in GRID)
        assert any("moe" in n for n in names) and any("gqa" in n for n in names)

    def test_moe_summa_cell_is_skipped(self):
        assert not any(
            case.workload == "moe-1t" and case.strategy == "summa" for case in GRID
        ), "SUMMA has no MoE support; the grid must skip that cell"

    def test_interleaved_cells_replay_the_real_schedule(self):
        """Grid m must be a multiple of np so interleaved cells never fall
        back to the closed form (which would make the comparison vacuous)."""
        for case in GRID:
            m = case.config.num_microbatches(case.global_batch_size)
            assert m % case.config.pipeline_parallel == 0, case.name

    def test_parallel_grid_matches_serial(self, b200_nvs8):
        subset = GRID[:4]
        serial = run_differential_grid(subset, b200_nvs8)
        parallel = run_differential_grid(subset, b200_nvs8, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.case == b.case
            assert a.deltas == b.deltas


class TestHarnessMechanics:
    def test_tolerance_band(self):
        band = ToleranceBand(rel=0.1, abs=1e-6)
        assert band.allows(1.0, 1.05)
        assert not band.allows(1.0, 1.2)
        assert band.allows(0.0, 5e-7)  # absolute floor for tiny terms

    def test_failure_diff_is_human_readable(self, b200_nvs8):
        result = run_case(GRID[0], b200_nvs8)
        # Force a synthetic failure to exercise the formatting.
        result.deltas.append(
            TermDelta(term="total", analytic=1.0, simulated=2.0, within=False)
        )
        text = format_failure_diff(result)
        assert "OUT OF BAND" in text
        assert GRID[0].name in text
        for term in ("compute", "tp_comm", "pp_bubble", "total"):
            assert term in text

    def test_render_differential(self, b200_nvs8):
        results = run_differential_grid(GRID[:2], b200_nvs8)
        text = render_differential(results, b200_nvs8.name)
        assert "2/2 cases within tolerance" in text
        assert GRID[0].name in text


class TestValidateCli:
    def test_validate_sim_single_workload(self, capsys):
        rc = cli_main(["validate", "--backend", "sim", "--workload", "gpt3-1t-gqa"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "differential validation" in out
        assert "gpt3-1t-gqa/tp1d/1f1b" in out

    def test_validate_sim_unknown_workload_errors(self, capsys):
        rc = cli_main(["validate", "--backend", "sim", "--workload", "no-such-workload"])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_validate_rejects_grid_flags_without_sim_backend(self, capsys):
        """--workload without --backend sim must not masquerade as a passed
        differential run (the analytic mode would silently drop it)."""
        rc = cli_main(["validate", "--workload", "moe-1t"])
        assert rc == 2
        assert "--backend sim" in capsys.readouterr().err
