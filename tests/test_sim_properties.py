"""Property-based invariants of the schedule simulator (the sim oracle).

These pin the event-driven replay to the paper's closed forms on the
domains where they must agree *exactly*:

* the simulated 1F1B makespan on uniform stage times is the analytic
  ``(m + np - 1)(tf + tb)`` — equivalently, the bubble is
  ``(np - 1)(tf + tb)``;
* the interleaved schedule with ``v = 1`` degenerates to non-interleaved
  1F1B, event for event;
* GPipe can never idle less than 1F1B on the same grid (it is the
  memory-hungry, not the faster, schedule).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate.pipeline_sim import (
    analytic_1f1b_makespan,
    simulate_1f1b,
    simulate_schedule,
)

STAGES = st.integers(min_value=1, max_value=8)
MICROBATCHES = st.integers(min_value=1, max_value=24)
TIMES = st.floats(
    min_value=1e-4, max_value=10.0, allow_nan=False, allow_infinity=False
)


class TestOneFOneBExactness:
    @given(np_=STAGES, m=MICROBATCHES, tf=TIMES, tb=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_makespan_matches_closed_form(self, np_, m, tf, tb):
        sim = simulate_1f1b(np_, m, tf, tb)
        assert math.isclose(
            sim.makespan, analytic_1f1b_makespan(np_, m, tf, tb), rel_tol=1e-9
        )

    @given(np_=STAGES, m=MICROBATCHES, tf=TIMES, tb=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_bubble_matches_paper_formula(self, np_, m, tf, tb):
        sim = simulate_1f1b(np_, m, tf, tb)
        assert math.isclose(
            sim.overhead_time, (np_ - 1) * (tf + tb), rel_tol=1e-9, abs_tol=1e-12
        )

    @given(np_=STAGES, m=MICROBATCHES, tf=TIMES, tb=TIMES)
    @settings(max_examples=40, deadline=None)
    def test_in_flight_bound(self, np_, m, tf, tb):
        sim = simulate_1f1b(np_, m, tf, tb)
        assert sim.max_in_flight == min(np_, m)


class TestInterleavedDegeneratesToOneFOneB:
    @given(np_=STAGES, m=MICROBATCHES, tf=TIMES, tb=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_v1_is_exactly_1f1b(self, np_, m, tf, tb):
        one_f = simulate_1f1b(np_, m, tf, tb)
        inter = simulate_schedule(
            "interleaved", np_, m, tf, tb, virtual_stages=1
        )
        assert inter.makespan == one_f.makespan
        assert inter.events == one_f.events
        assert inter.idle_per_stage == one_f.idle_per_stage
        assert inter.peak_in_flight == one_f.peak_in_flight

    @given(np_=st.integers(min_value=2, max_value=6), k=st.integers(min_value=2, max_value=5),
           v=st.sampled_from([2, 4]), tf=TIMES, tb=TIMES)
    @settings(max_examples=40, deadline=None)
    def test_interleaving_never_slower_than_1f1b(self, np_, k, v, tf, tb):
        m = k * np_  # Megatron divisibility
        one_f = simulate_1f1b(np_, m, tf, tb)
        inter = simulate_schedule("interleaved", np_, m, tf, tb, virtual_stages=v)
        assert inter.makespan <= one_f.makespan * (1 + 1e-9)


class TestGPipeIdleDominates:
    @given(np_=STAGES, m=MICROBATCHES, tf=TIMES, tb=TIMES)
    @settings(max_examples=60, deadline=None)
    def test_gpipe_idle_at_least_1f1b_idle(self, np_, m, tf, tb):
        gpipe = simulate_schedule("gpipe", np_, m, tf, tb)
        one_f = simulate_schedule("1f1b", np_, m, tf, tb)
        assert gpipe.total_idle_time >= one_f.total_idle_time * (1 - 1e-9)

    @given(np_=STAGES, m=MICROBATCHES, tf=TIMES, tb=TIMES)
    @settings(max_examples=40, deadline=None)
    def test_gpipe_retention_at_least_1f1b(self, np_, m, tf, tb):
        gpipe = simulate_schedule("gpipe", np_, m, tf, tb)
        one_f = simulate_schedule("1f1b", np_, m, tf, tb)
        assert gpipe.max_in_flight >= one_f.max_in_flight
        assert gpipe.max_in_flight == m


class TestSimBubbleAgreesWithScheduleFormula:
    """The sim oracle vs the registry's closed forms (uniform stage times)."""

    @pytest.mark.parametrize("schedule,v", [("1f1b", 1), ("gpipe", 1), ("interleaved", 2), ("interleaved", 4)])
    def test_overhead_matches_bubble_time(self, schedule, v):
        from repro.core.schedules import get_schedule

        np_, m, tf, tb = 4, 16, 0.8, 1.7
        sim = simulate_schedule(schedule, np_, m, tf, tb, virtual_stages=v)
        analytic = get_schedule(schedule).bubble_time(np_, m, tf, tb, v)
        assert sim.overhead_time == pytest.approx(analytic, rel=1e-9)
