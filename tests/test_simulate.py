"""Message-level simulators (cluster topology, ring collectives, 1F1B, nccl-bench)."""

import pytest

from repro.core.collectives import GroupPlacement, collective_time
from repro.core.system import make_perlmutter, make_system
from repro.simulate.cluster import ClusterTopology
from repro.simulate.nccl_bench import median_relative_error, run_nccl_style_benchmark
from repro.simulate.pipeline_sim import (
    analytic_1f1b_makespan,
    simulate_1f1b,
    simulate_schedule,
)
from repro.simulate.ring import simulate_collective, sweep_volumes


@pytest.fixture(scope="module")
def perlmutter():
    return make_perlmutter(4)


@pytest.fixture(scope="module")
def topology(perlmutter):
    return ClusterTopology.from_system(perlmutter, 32)


class TestClusterTopology:
    def test_placement(self, topology):
        info = topology.placement(9)
        assert info.node == 2 and info.local_index == 1

    def test_same_fast_domain(self, topology):
        assert topology.same_fast_domain(0, 3)
        assert not topology.same_fast_domain(3, 4)

    def test_num_nodes(self, topology):
        assert topology.num_nodes == 8

    def test_ring_order_groups_by_node(self, topology):
        ranks = [5, 0, 4, 1]
        assert topology.ring_order(ranks) == [0, 1, 4, 5]

    def test_group_ranks_respects_packing(self, topology):
        ranks = topology.group_ranks(8, 2)
        assert len(ranks) == 8
        nodes = {topology.placement(r).node for r in ranks}
        assert len(nodes) == 4  # 2 GPUs per node across 4 nodes

    def test_group_ranks_validation(self, topology):
        with pytest.raises(ValueError):
            topology.group_ranks(6, 4)  # 4 does not divide 6
        with pytest.raises(ValueError):
            topology.group_ranks(1024, 4)  # cluster too small

    def test_out_of_range_rank(self, topology):
        with pytest.raises(ValueError):
            topology.placement(99)

    def test_link_parameters(self, topology, perlmutter):
        lat_fast, bw_fast = topology.link_parameters(0, 1, perlmutter.network)
        lat_slow, bw_slow = topology.link_parameters(0, 4, perlmutter.network)
        assert bw_fast > bw_slow
        assert lat_fast < lat_slow


class TestRingSimulation:
    def test_simulation_matches_analytic_model(self, topology, perlmutter):
        """Fig. A1: the closed-form model tracks the step-by-step simulation."""
        result = simulate_collective(
            "all_gather", 1e9, topology, perlmutter.network,
            group_size=32, gpus_per_nvs_domain=4,
        )
        assert result.relative_error < 0.15

    def test_error_small_across_volume_sweep(self, topology, perlmutter):
        results = sweep_volumes(
            "all_gather", [1e7, 1e8, 1e9, 1e10], topology, perlmutter.network,
            group_size=32, gpus_per_nvs_domain=4,
        )
        for r in results:
            assert r.relative_error < 0.25

    def test_more_gpus_per_node_is_faster(self, perlmutter):
        """Fig. A1: NVL=4 beats NVL=2 because more NICs serve the collective."""
        nvl4_sys = make_perlmutter(4)
        nvl2_sys = make_perlmutter(2)
        t4 = simulate_collective(
            "all_gather", 1e9, ClusterTopology.from_system(nvl4_sys, 32), nvl4_sys.network,
            group_size=32, gpus_per_nvs_domain=4,
        ).simulated_time
        t2 = simulate_collective(
            "all_gather", 1e9, ClusterTopology.from_system(nvl2_sys, 32), nvl2_sys.network,
            group_size=32, gpus_per_nvs_domain=2,
        ).simulated_time
        assert t4 < t2

    def test_allreduce_costs_about_twice_allgather(self, topology, perlmutter):
        ag = simulate_collective(
            "all_gather", 1e9, topology, perlmutter.network, group_size=32,
            gpus_per_nvs_domain=4,
        ).simulated_time
        ar = simulate_collective(
            "all_reduce", 1e9, topology, perlmutter.network, group_size=32,
            gpus_per_nvs_domain=4,
        ).simulated_time
        assert ar == pytest.approx(2 * ag, rel=0.1)

    def test_single_gpu_is_free(self, topology, perlmutter):
        result = simulate_collective(
            "all_gather", 1e9, topology, perlmutter.network, group_size=1
        )
        assert result.simulated_time == 0.0

    def test_p2p(self, topology, perlmutter):
        result = simulate_collective(
            "p2p", 1e8, topology, perlmutter.network, group_size=2, gpus_per_nvs_domain=2
        )
        assert result.simulated_time > 0
        assert result.steps == 1

    def test_single_domain_collective_never_touches_ib(self, perlmutter):
        b200 = make_system("B200", 8)
        topo = ClusterTopology.from_system(b200, 8)
        result = simulate_collective(
            "all_gather", 1e9, topo, b200.network, group_size=8, gpus_per_nvs_domain=8
        )
        # With the slow network absent, the step-by-step replay and the
        # closed form describe the identical n-1 fast hops: they agree to
        # floating-point noise, not merely to a few percent.
        analytic = collective_time(
            "all_gather", 1e9, GroupPlacement(8, 8), b200.network
        )
        assert result.simulated_time == pytest.approx(analytic, rel=1e-12)
        assert result.slow_hops == 0
        assert result.fast_hops == 7

    def test_multi_node_replay_reproduces_slow_hop_count(self, topology, perlmutter):
        """§III-A: a ring of n ranks with g per domain takes n/g - 1 slow hops."""
        for n, g in ((32, 4), (16, 2), (8, 4), (8, 1)):
            result = simulate_collective(
                "all_gather", 1e8, topology, perlmutter.network,
                group_size=n, gpus_per_nvs_domain=g,
            )
            assert result.slow_hops == n // g - 1, (n, g)
            assert result.fast_hops == n - n // g, (n, g)

    def test_all_to_all_replay(self, topology, perlmutter):
        """MoE dispatch/combine: pairwise exchange tracks the closed form."""
        result = simulate_collective(
            "all_to_all", 1e9, topology, perlmutter.network,
            group_size=32, gpus_per_nvs_domain=4,
        )
        assert result.steps == 31
        assert result.relative_error < 0.25

    def test_all_to_all_single_domain_is_fast(self):
        b200 = make_system("B200", 8)
        topo = ClusterTopology.from_system(b200, 16)
        single = simulate_collective(
            "all_to_all", 1e9, topo, b200.network, group_size=8, gpus_per_nvs_domain=8
        )
        spanning = simulate_collective(
            "all_to_all", 1e9, topo, b200.network, group_size=8, gpus_per_nvs_domain=4
        )
        assert single.simulated_time < spanning.simulated_time

    def test_broadcast_matches_closed_form_in_single_domain(self):
        b200 = make_system("B200", 8)
        topo = ClusterTopology.from_system(b200, 8)
        result = simulate_collective(
            "broadcast", 1e8, topo, b200.network, group_size=2, gpus_per_nvs_domain=2
        )
        analytic = collective_time("broadcast", 1e8, GroupPlacement(2, 2), b200.network)
        assert result.simulated_time == pytest.approx(analytic, rel=1e-12)


class TestPipelineSimulation:
    def test_matches_analytic_makespan(self):
        sim = simulate_1f1b(num_stages=4, num_microbatches=16, forward_time=1.0, backward_time=2.0)
        assert sim.makespan == pytest.approx(analytic_1f1b_makespan(4, 16, 1.0, 2.0))

    def test_bubble_equals_paper_formula(self):
        sim = simulate_1f1b(8, 64, 0.5, 1.0)
        assert sim.bubble_time == pytest.approx((8 - 1) * (0.5 + 1.0), rel=0.01)

    def test_in_flight_bounded_by_min_m_np(self):
        sim = simulate_1f1b(num_stages=8, num_microbatches=64, forward_time=1.0, backward_time=1.0)
        assert sim.max_in_flight == 8
        sim_small = simulate_1f1b(num_stages=8, num_microbatches=4, forward_time=1.0, backward_time=1.0)
        assert sim_small.max_in_flight == 4

    def test_single_stage_has_no_bubble(self):
        sim = simulate_1f1b(1, 8, 1.0, 2.0)
        assert sim.bubble_time == pytest.approx(0.0)
        assert sim.makespan == pytest.approx(8 * 3.0)

    def test_all_microbatches_processed(self):
        sim = simulate_1f1b(4, 8, 1.0, 1.0)
        forwards = [e for e in sim.events if e.kind == "forward"]
        backwards = [e for e in sim.events if e.kind == "backward"]
        assert len(forwards) == 4 * 8
        assert len(backwards) == 4 * 8

    def test_p2p_time_increases_makespan(self):
        without = simulate_1f1b(4, 16, 1.0, 2.0, p2p_time=0.0)
        with_p2p = simulate_1f1b(4, 16, 1.0, 2.0, p2p_time=0.1)
        assert with_p2p.makespan > without.makespan

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_1f1b(0, 4, 1.0, 1.0)
        with pytest.raises(ValueError):
            simulate_1f1b(4, 4, -1.0, 1.0)


class TestScheduleSimulation:
    """The generalized engine replaying every registered schedule."""

    def test_gpipe_retains_all_microbatches(self):
        sim = simulate_schedule("gpipe", 4, 16, 1.0, 2.0)
        assert sim.max_in_flight == 16
        assert sim.schedule == "gpipe"

    def test_gpipe_makespan_matches_1f1b_on_uniform_times(self):
        gpipe = simulate_schedule("gpipe", 4, 16, 1.0, 2.0)
        one_f = simulate_schedule("1f1b", 4, 16, 1.0, 2.0)
        assert gpipe.makespan == pytest.approx(one_f.makespan)

    def test_interleaved_bubble_shrinks_by_v(self):
        base = simulate_schedule("1f1b", 4, 16, 1.0, 2.0)
        for v in (2, 4):
            inter = simulate_schedule("interleaved", 4, 16, 1.0, 2.0, virtual_stages=v)
            assert inter.overhead_time == pytest.approx(base.overhead_time / v)

    def test_interleaved_executes_all_chunk_work(self):
        sim = simulate_schedule("interleaved", 4, 8, 1.0, 2.0, virtual_stages=2)
        forwards = [e for e in sim.events if e.kind == "forward"]
        assert len(forwards) == 4 * 8 * 2  # np * m * v chunk-forwards
        assert {e.chunk for e in sim.events} == {0, 1}

    def test_interleaved_requires_megatron_divisibility(self):
        with pytest.raises(ValueError, match="multiple of num_stages"):
            simulate_schedule("interleaved", 8, 20, 1.0, 1.0, virtual_stages=2)

    def test_virtual_stages_rejected_for_non_interleaving_schedules(self):
        with pytest.raises(ValueError, match="virtual stages"):
            simulate_schedule("gpipe", 4, 8, 1.0, 1.0, virtual_stages=2)

    def test_unknown_schedule_raises(self):
        with pytest.raises(KeyError):
            simulate_schedule("zb-h1", 4, 8, 1.0, 1.0)

    def test_overhead_time_equals_first_stage_idle_for_1f1b(self):
        sim = simulate_schedule("1f1b", 8, 32, 0.7, 1.3)
        assert sim.overhead_time == pytest.approx(sim.bubble_time)


class TestNcclBench:
    def test_reproducible_with_seed(self, perlmutter):
        a = run_nccl_style_benchmark(perlmutter, num_gpus=8, seed=42, volumes_bytes=[1e8, 1e9])
        b = run_nccl_style_benchmark(perlmutter, num_gpus=8, seed=42, volumes_bytes=[1e8, 1e9])
        assert [r.measured_time for r in a] == [r.measured_time for r in b]

    def test_prediction_tracks_measurement_at_large_volumes(self, perlmutter):
        results = run_nccl_style_benchmark(
            perlmutter, num_gpus=32, gpus_per_nvs_domain=4,
            volumes_bytes=[1e9, 4e9, 1e10], noise=0.02, seed=1,
        )
        assert median_relative_error(results) < 0.25

    def test_latency_floor_applies_to_small_messages(self, perlmutter):
        results = run_nccl_style_benchmark(
            perlmutter, num_gpus=8, volumes_bytes=[1e3], noise=0.0
        )
        assert results[0].measured_time >= 5e-5

    def test_bandwidth_metric(self, perlmutter):
        results = run_nccl_style_benchmark(
            perlmutter, num_gpus=8, volumes_bytes=[1e9], noise=0.0
        )
        assert results[0].measured_bandwidth > 0
