"""Property-based tests of the scenario axes (MoE, GQA, ZeRO).

Each new dimension must reduce *exactly* to the paper's dense model at its
default setting — that is the contract that keeps every golden figure
byte-stable — and behave monotonically where the physics demands it:

* MoE FLOPs/params reduce to the dense model at ``num_experts=1, top_k=1``;
* GQA reduces to MHA at ``kv_heads == num_heads``;
* ZeRO stage 0/1 reproduce the legacy ``zero_optimizer`` memory numbers;
* sharded memory is monotonically non-increasing in the ZeRO stage and in
  the data-parallel degree.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.execution import ModelingOptions, estimate_config_memory
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig, get_strategy

#: Small architectures keep the strategies' divisibility rules satisfiable:
#: heads/kv-heads/TP degrees all powers of two, seq divisible by 64.
EMBED = st.sampled_from([512, 1024, 2048])
HEADS = st.sampled_from([8, 16, 32])
DEPTH = st.sampled_from([2, 4, 8])
SEQ = st.sampled_from([256, 512, 1024])
EXPERTS = st.sampled_from([2, 4, 8])
TP = st.sampled_from([1, 2, 4])


def _model(seq, e, h, d, **kw):
    return TransformerConfig(
        name="prop", seq_len=seq, embed_dim=e, num_heads=h, depth=d, **kw
    )


def _config(nt, nd=1, ep=1, strategy="tp1d", n2=1, np_=1, bm=1):
    return ParallelConfig(
        strategy=strategy,
        tensor_parallel_1=nt,
        tensor_parallel_2=n2,
        pipeline_parallel=np_,
        data_parallel=nd,
        microbatch_size=bm,
        expert_parallel=ep,
    )


def _workload_signature(workload):
    """Comparable view of everything the execution model reads."""
    return (
        [(op.name, op.flops, op.bytes_hbm, op.pipe) for op in workload.forward_ops],
        [(op.name, op.flops, op.bytes_hbm, op.pipe) for op in workload.backward_ops],
        [(c.name, c.collective, c.volume_bytes, c.group) for c in workload.forward_comms],
        [(c.name, c.collective, c.volume_bytes, c.group) for c in workload.backward_comms],
        workload.activation_elements,
        workload.block_input_elements,
        workload.params_per_gpu,
        workload.expert_params_per_gpu,
        workload.grad_sync_group,
    )


class TestMoEReducesToDense:
    @given(seq=SEQ, e=EMBED, h=HEADS, d=DEPTH)
    @settings(max_examples=25, deadline=None)
    def test_model_accounting_identical_at_one_expert(self, seq, e, h, d):
        dense = _model(seq, e, h, d)
        moe1 = _model(seq, e, h, d, num_experts=1, moe_top_k=1)
        assert moe1.total_params == dense.total_params
        assert moe1.active_params == dense.total_params
        assert moe1.mlp_flops_per_layer() == dense.mlp_flops_per_layer()
        assert moe1.attention_flops_per_layer() == dense.attention_flops_per_layer()
        assert moe1.forward_flops() == dense.forward_flops()

    @given(seq=SEQ, e=EMBED, h=HEADS, d=DEPTH, nt=TP, strategy=st.sampled_from(["tp1d", "tp2d"]))
    @settings(max_examples=25, deadline=None)
    def test_workload_identical_at_one_expert(self, seq, e, h, d, nt, strategy):
        dense = _model(seq, e, h, d)
        moe1 = _model(seq, e, h, d, num_experts=1, moe_top_k=1)
        strat = get_strategy(strategy)
        cfg = _config(nt, strategy=strategy)
        assert _workload_signature(strat.layer_workload(dense, cfg)) == _workload_signature(
            strat.layer_workload(moe1, cfg)
        )

    @given(seq=SEQ, e=EMBED, h=HEADS, d=DEPTH, experts=EXPERTS, top_k=st.sampled_from([1, 2]))
    @settings(max_examples=25, deadline=None)
    def test_moe_scaling_laws(self, seq, e, h, d, experts, top_k):
        dense = _model(seq, e, h, d)
        moe = _model(seq, e, h, d, num_experts=experts, moe_top_k=top_k)
        # Parameters: E experts' MLPs plus the router, same attention.
        assert moe.mlp_params_per_layer == (
            experts * dense.mlp_params_per_layer + e * experts
        )
        assert moe.attention_params_per_layer == dense.attention_params_per_layer
        # FLOPs: top_k active experts plus the router gate.
        assert moe.mlp_flops_per_layer() == pytest.approx(
            top_k * dense.mlp_flops_per_layer() + 2.0 * seq * e * experts
        )
        # Active params never exceed total params; equality iff all experts fire.
        assert moe.active_params <= moe.total_params
        if top_k == experts:
            assert moe.active_params == moe.total_params


class TestGQAReducesToMHA:
    @given(seq=SEQ, e=EMBED, h=HEADS, d=DEPTH)
    @settings(max_examples=25, deadline=None)
    def test_model_accounting_identical_at_full_kv_heads(self, seq, e, h, d):
        mha = _model(seq, e, h, d)
        gqa_full = _model(seq, e, h, d, kv_heads=h)
        assert gqa_full.attention_params_per_layer == mha.attention_params_per_layer
        assert gqa_full.attention_flops_per_layer() == mha.attention_flops_per_layer()
        assert gqa_full.total_params == mha.total_params

    @given(
        seq=SEQ,
        e=EMBED,
        h=HEADS,
        d=DEPTH,
        nt=TP,
        strategy=st.sampled_from(["tp1d", "tp2d", "summa"]),
    )
    @settings(max_examples=30, deadline=None)
    def test_workload_identical_at_full_kv_heads(self, seq, e, h, d, nt, strategy):
        mha = _model(seq, e, h, d)
        gqa_full = _model(seq, e, h, d, kv_heads=h)
        strat = get_strategy(strategy)
        n2 = 2 if strategy in ("tp2d", "summa") else 1
        cfg = _config(nt, strategy=strategy, n2=n2)
        assert _workload_signature(strat.layer_workload(mha, cfg)) == _workload_signature(
            strat.layer_workload(gqa_full, cfg)
        )

    @given(seq=SEQ, e=EMBED, h=HEADS, d=DEPTH, kv_frac=st.sampled_from([2, 4, 8]))
    @settings(max_examples=25, deadline=None)
    def test_gqa_shrinks_params_and_kv_traffic(self, seq, e, h, d, kv_frac):
        kv = h // kv_frac
        mha = _model(seq, e, h, d)
        gqa = _model(seq, e, h, d, kv_heads=kv)
        assert gqa.attention_params_per_layer < mha.attention_params_per_layer
        assert gqa.attention_flops_per_layer() < mha.attention_flops_per_layer()
        # tp2d gathers K/V over the n2 group: the volume shrinks by kv/h.
        cfg = _config(1, strategy="tp2d", n2=2)
        mha_w = get_strategy("tp2d").layer_workload(mha, cfg)
        gqa_w = get_strategy("tp2d").layer_workload(gqa, cfg)
        mha_kv = sum(c.volume_bytes for c in mha_w.forward_comms if c.name in ("sa.ag_k", "sa.ag_v"))
        gqa_kv = sum(c.volume_bytes for c in gqa_w.forward_comms if c.name in ("sa.ag_k", "sa.ag_v"))
        assert gqa_kv == pytest.approx(mha_kv * kv / h)


class TestZeroStages:
    @given(nd=st.sampled_from([1, 2, 4, 8, 16]), nt=TP)
    @settings(max_examples=25, deadline=None)
    def test_stage_defaults_reproduce_legacy_memory(self, nd, nt):
        model = _model(512, 1024, 16, 4)
        cfg = _config(nt, nd=nd)
        batch = 4 * nd
        legacy_zero1 = estimate_config_memory(
            model, cfg, global_batch_size=batch, options=ModelingOptions()
        )
        legacy_zero0 = estimate_config_memory(
            model, cfg, global_batch_size=batch, options=ModelingOptions(zero_optimizer=False)
        )
        stage1 = estimate_config_memory(
            model, cfg, global_batch_size=batch, options=ModelingOptions(zero_stage=1)
        )
        stage0 = estimate_config_memory(
            model, cfg, global_batch_size=batch, options=ModelingOptions(zero_stage=0)
        )
        assert stage1.breakdown() == legacy_zero1.breakdown()
        assert stage0.breakdown() == legacy_zero0.breakdown()

    @given(nd=st.sampled_from([2, 4, 8, 16]), nt=TP, experts=st.sampled_from([1, 4]))
    @settings(max_examples=25, deadline=None)
    def test_memory_monotone_in_zero_stage(self, nd, nt, experts):
        model = _model(512, 1024, 16, 4, num_experts=experts, moe_top_k=1)
        ep = min(2, nd) if experts > 1 else 1
        cfg = _config(nt, nd=nd, ep=ep)
        batch = 4 * nd
        totals = [
            estimate_config_memory(
                model, cfg, global_batch_size=batch, options=ModelingOptions(zero_stage=s)
            ).total_bytes
            for s in (0, 1, 2, 3)
        ]
        assert all(totals[i] >= totals[i + 1] for i in range(3))

    @given(nt=TP, stage=st.sampled_from([0, 1, 2, 3]))
    @settings(max_examples=25, deadline=None)
    def test_memory_monotone_in_dp_degree(self, nt, stage):
        """At a fixed per-replica batch, growing nd never raises per-GPU memory."""
        model = _model(512, 1024, 16, 4)
        totals = []
        for nd in (1, 2, 4, 8, 16):
            cfg = _config(nt, nd=nd)
            totals.append(
                estimate_config_memory(
                    model,
                    cfg,
                    global_batch_size=4 * nd,  # keeps microbatch count fixed
                    options=ModelingOptions(zero_stage=stage),
                ).total_bytes
            )
        assert all(totals[i] >= totals[i + 1] - 1e-9 for i in range(len(totals) - 1))

    def test_invalid_stage_rejected(self):
        model = _model(512, 1024, 16, 4)
        cfg = _config(1, nd=2)
        with pytest.raises(ValueError, match="zero_stage"):
            estimate_config_memory(
                model, cfg, global_batch_size=4, options=ModelingOptions(zero_stage=4)
            )


class TestExpertParallelAxis:
    @given(ep=st.sampled_from([1, 2, 4]), nd=st.sampled_from([4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_expert_memory_shrinks_with_ep(self, ep, nd):
        model = _model(512, 1024, 16, 4, num_experts=4, moe_top_k=2)
        cfg = _config(1, nd=nd, ep=ep)
        strat = get_strategy("tp1d")
        workload = strat.layer_workload(model, cfg)
        # E/ep experts resident per GPU.
        assert workload.expert_params_per_gpu == pytest.approx(
            (4 / ep) * 2.0 * model.embed_dim * model.hidden_dim
        )

    def test_ep_must_divide_dp(self):
        with pytest.raises(ValueError, match="expert_parallel"):
            _config(1, nd=4, ep=3)

    def test_ep_on_dense_model_rejected(self):
        model = _model(512, 1024, 16, 4)
        cfg = _config(1, nd=4, ep=2)
        assert "expert_parallel" in get_strategy("tp1d").validate_config(model, cfg)

    def test_summa_rejects_moe(self):
        model = _model(512, 1024, 16, 4, num_experts=4, moe_top_k=2)
        cfg = _config(2, nd=2, strategy="summa", n2=2)
        reason = get_strategy("summa").validate_config(model, cfg)
        assert reason is not None and "mixture-of-experts" in reason
