"""Tier-2 exhaustive batch-vs-scalar equivalence grid (paper-scale).

The tier-1 grid (``tests/test_batch_eval.py``) pins the batch pricer on
tiny models; this tier-2 grid (``pytest -m batch_grid``, excluded from the
default run) walks **full paper-scale enumerations** — GPT3-1T and the
long-sequence ViT at real GPU counts, every schedule and strategy axis the
cost-plan IR exposes — and asserts exact (``==``) equality of every
breakdown term on every candidate.  This is the suite that makes "the
scalar path is the bit-exactness oracle" a checked invariant rather than a
comment.
"""

from dataclasses import replace

import pytest

from repro.core.batch_eval import batch_evaluate_enumeration
from repro.core.config_space import DEFAULT_SEARCH_SPACE
from repro.core.execution import DEFAULT_OPTIONS, evaluate_config
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.system import make_system

pytestmark = pytest.mark.batch_grid

B200_NVS8 = make_system("B200", 8)
H200_NVS8 = make_system("H200", 8)

FULL_SPACE = replace(
    DEFAULT_SEARCH_SPACE,
    schedules=("1f1b", "gpipe", "interleaved"),
    virtual_stages=(1, 2),
)

GRID = [
    pytest.param(GPT3_1T, B200_NVS8, 1024, 4096, "tp1d", DEFAULT_OPTIONS, id="gpt3-1t-tp1d"),
    pytest.param(GPT3_1T, B200_NVS8, 1024, 4096, "tp2d", DEFAULT_OPTIONS, id="gpt3-1t-tp2d"),
    pytest.param(GPT3_1T, B200_NVS8, 1024, 4096, "summa", DEFAULT_OPTIONS, id="gpt3-1t-summa"),
    pytest.param(
        GPT3_1T,
        H200_NVS8,
        512,
        2048,
        "tp1d",
        replace(DEFAULT_OPTIONS, zero_stage=3),
        id="gpt3-1t-h200-zero3",
    ),
    pytest.param(
        VIT_LONG_SEQ,
        B200_NVS8,
        256,
        1024,
        "tp2d",
        replace(DEFAULT_OPTIONS, activation_checkpointing=True),
        id="vit-tp2d-checkpointing",
    ),
    pytest.param(VIT_LONG_SEQ, B200_NVS8, 256, 1024, "summa", DEFAULT_OPTIONS, id="vit-summa"),
]


@pytest.mark.parametrize("model,system,n_gpus,global_batch,strategy,options", GRID)
def test_full_enumeration_batch_equals_scalar(
    model, system, n_gpus, global_batch, strategy, options
):
    rows, priced = batch_evaluate_enumeration(
        model, system, n_gpus, global_batch, strategy, space=FULL_SPACE, options=options
    )
    assert rows
    mismatches = []
    for i, row in enumerate(rows):
        estimate = evaluate_config(
            model,
            system,
            row.config,
            row.assignment,
            global_batch_size=global_batch,
            options=options,
        )
        scalar = estimate.breakdown
        fields = {
            "compute": (priced.compute[i], scalar.compute),
            "memory": (priced.memory[i], scalar.memory),
            "tp_comm": (priced.tp_comm[i], scalar.tp_comm),
            "pp_bubble": (priced.pp_bubble[i], scalar.pp_bubble),
            "pp_comm": (priced.pp_comm[i], scalar.pp_comm),
            "dp_comm": (priced.dp_comm[i], scalar.dp_comm),
            "total": (priced.total[i], estimate.total_time),
        }
        for name, (got, want) in fields.items():
            if got != want:
                mismatches.append((row.config, row.assignment, name, got, want))
    assert not mismatches, (
        f"{len(mismatches)}/{len(rows)} candidates diverge from the scalar "
        f"oracle; first: {mismatches[0]}"
    )
