"""Empirical-validation comparison (§IV) and the text-report renderers."""

import pytest

from repro.analysis.configurations import fig1_tp_dp_study
from repro.analysis.reporting import (
    render_configuration_study,
    render_heatmap,
    render_scaling_sweep,
    render_speedups,
    render_system_grid,
    render_validation,
)
from repro.analysis.speedups import SpeedupPoint
from repro.analysis.sweeps import (
    HardwareHeatmap,
    SystemScalingSeries,
    scaling_sweep,
)
from repro.analysis.validation import (
    PAPER_VALIDATION_CASES,
    prediction_orders_match,
    run_validation,
)
from repro.core.model import GPT3_1T
from repro.core.system import make_system


@pytest.fixture(scope="module")
def comparisons():
    return run_validation()


class TestValidationCases:
    def test_all_published_cases_are_encoded(self):
        names = {c.name for c in PAPER_VALIDATION_CASES}
        assert "gpt3-175b-optimal" in names
        assert "vit-32k-near-optimal" in names
        assert len(PAPER_VALIDATION_CASES) >= 8

    def test_optimal_cases_flagged(self):
        optimal = [c for c in PAPER_VALIDATION_CASES if c.is_optimal]
        assert {c.model_key for c in optimal} == {"gpt3-175b", "vit-32k"}

    def test_reported_errors_within_paper_ranges(self):
        for case in PAPER_VALIDATION_CASES:
            if case.model_key == "gpt3-175b":
                assert 0.04 <= case.reported_error <= 0.15
            else:
                assert 0.02 <= case.reported_error <= 0.26


class TestRunValidation:
    def test_predictions_are_positive_and_feasible_configs_mostly_fit(self, comparisons):
        assert all(c.predicted_time > 0 for c in comparisons)
        feasible = [c for c in comparisons if c.feasible]
        assert len(feasible) >= len(comparisons) - 1

    def test_implied_measurement_reconstruction(self, comparisons):
        for comp in comparisons:
            expected = comp.predicted_time * (1 + comp.case.reported_error)
            assert comp.implied_measured_time == pytest.approx(expected)
            # Reconstructed error is e / (1 + e) by construction.
            assert comp.reconstructed_error == pytest.approx(
                comp.case.reported_error / (1 + comp.case.reported_error), rel=0.01
            )

    def test_gpt_optimal_prediction_is_over_ten_seconds(self, comparisons):
        """A 175B model on 512 A100s with batch 1024 takes tens of seconds."""
        opt = next(c for c in comparisons if c.case.name == "gpt3-175b-optimal")
        assert 5.0 < opt.predicted_time < 60.0

    def test_prediction_orders_match_paper_trend(self, comparisons):
        assert prediction_orders_match(comparisons)

    def test_optimal_config_is_fastest_prediction_per_model(self, comparisons):
        for model_key in ("gpt3-175b", "vit-32k"):
            subset = [c for c in comparisons if c.case.model_key == model_key]
            optimal = [c for c in subset if c.case.is_optimal]
            others = [c for c in subset if not c.case.is_optimal]
            assert optimal and others
            assert min(c.predicted_time for c in optimal) <= min(
                c.predicted_time for c in others
            ) * 1.05


class TestRendering:
    def test_render_configuration_study(self):
        text = render_configuration_study(fig1_tp_dp_study(tp_values=(4, 8)))
        assert "GPT3-1T" in text and "Config" in text
        assert "A" in text and "B" in text

    def test_render_scaling_sweep(self):
        sweep = scaling_sweep(
            GPT3_1T, make_system("B200", 8), strategy="tp1d", n_gpus_list=(512,)
        )
        text = render_scaling_sweep(sweep)
        assert "512" in text and "iter(s)" in text

    def test_render_system_grid(self):
        series = [
            SystemScalingSeries(
                system_name="B200-NVS8", gpu_generation="B200", nvs_domain_size=8,
                n_gpus=[1024], training_days=[12.5], iteration_times=[9.0],
            )
        ]
        text = render_system_grid(series, "GPT3-1T")
        assert "B200-NVS8" in text and "12.50" in text

    def test_render_system_grid_empty(self):
        assert render_system_grid([], "x") == "(no series)"

    def test_render_heatmap(self):
        heatmap = HardwareHeatmap(
            model_name="GPT3-1T", strategy="tp1d", n_gpus=8192,
            x_label="hbm_capacity_gb", y_label="tensor_tflops",
            x_values=[80.0, 192.0], y_values=[312.0, 2500.0],
            training_days=[[30.0, 28.0], [5.0, float("inf")]],
        )
        text = render_heatmap(heatmap)
        assert "30.00" in text and "inf" in text

    def test_render_speedups(self):
        points = [
            SpeedupPoint("A100-NVS4", 512, "tp1d", "summa", 10.0, 9.0),
            SpeedupPoint("A100-NVS4", 1024, "tp1d", "summa", 5.0, 4.8),
        ]
        text = render_speedups(points)
        assert "A100-NVS4" in text and "1.111" in text

    def test_render_speedups_empty(self):
        assert render_speedups([]) == "(no speedup points)"

    def test_render_validation(self, comparisons):
        text = render_validation(comparisons)
        assert "gpt3-175b-optimal" in text
        assert "predicted(s)" in text
