"""Full activation checkpointing (recompute) option."""

import pytest

from repro.core.execution import ModelingOptions, evaluate_config
from repro.core.memory import estimate_memory
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.parallelism.base import GpuAssignment, ParallelConfig, get_strategy
from repro.core.search import find_optimal_config
from repro.core.system import make_system


def tp1d_config(nt=8, np_=64, nd=32, bm=1):
    return ParallelConfig(
        strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=bm,
    )


class TestMemoryEffect:
    def test_checkpointing_reduces_activation_memory(self):
        config = tp1d_config()
        workload = get_strategy("tp1d").layer_workload(GPT3_1T, config)
        full = estimate_memory(GPT3_1T, config, workload, 128, activation_checkpointing=False)
        ckpt = estimate_memory(GPT3_1T, config, workload, 128, activation_checkpointing=True)
        assert ckpt.activation_bytes < full.activation_bytes
        assert ckpt.weight_bytes == full.weight_bytes

    def test_block_input_elements_populated_for_all_strategies(self):
        for name, (n1, n2) in (("tp1d", (8, 1)), ("tp2d", (4, 4)), ("summa", (4, 4))):
            config = ParallelConfig(
                strategy=name, tensor_parallel_1=n1, tensor_parallel_2=n2,
                pipeline_parallel=1, data_parallel=1, microbatch_size=1,
            )
            workload = get_strategy(name).layer_workload(GPT3_1T, config)
            assert workload.block_input_elements > 0
            assert workload.block_input_elements < workload.activation_elements


class TestTimeEffect:
    def test_recompute_slows_the_iteration(self):
        system = make_system("B200", 8)
        config = tp1d_config()
        plain = evaluate_config(
            GPT3_1T, system, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(activation_checkpointing=False),
        )
        ckpt = evaluate_config(
            GPT3_1T, system, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(activation_checkpointing=True),
        )
        assert ckpt.total_time > plain.total_time
        # The recompute costs at most one extra forward pass per microbatch.
        assert ckpt.breakdown.compute < 1.6 * plain.breakdown.compute
        assert ckpt.memory.total_bytes < plain.memory.total_bytes


class TestSearchFallback:
    def test_vit_on_a100_feasible_only_via_checkpointing(self):
        """Paper Fig. 5b implies the ViT trains on 80 GB A100s; without
        recompute our (conservative) retention model cannot fit it."""
        system = make_system("A100", 8)
        without = find_optimal_config(
            VIT_LONG_SEQ, system, n_gpus=1024, global_batch_size=4096,
            strategy="tp2d", fallback_activation_checkpointing=False,
        )
        with_fallback = find_optimal_config(
            VIT_LONG_SEQ, system, n_gpus=1024, global_batch_size=4096,
            strategy="tp2d", fallback_activation_checkpointing=True,
        )
        assert not without.found
        assert with_fallback.found
        assert with_fallback.best.memory_gb <= 80.0

    def test_fallback_does_not_resurrect_truly_impossible_cases(self):
        system = make_system("A100", 4)
        result = find_optimal_config(
            GPT3_1T, system, n_gpus=4, global_batch_size=4096, strategy="tp1d"
        )
        assert not result.found

    def test_fallback_not_used_when_plain_config_fits(self):
        system = make_system("B200", 8)
        result = find_optimal_config(
            GPT3_1T, system, n_gpus=1024, global_batch_size=4096, strategy="tp1d"
        )
        assert result.found
        assert not result.best.config.strategy == "checkpointed"  # strategy unchanged
