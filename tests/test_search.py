"""Optimal-configuration search (stage S3)."""

import math

import pytest

from repro.core.config_space import SearchSpace
from repro.core.execution import ModelingOptions
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.parallelism.base import ParallelConfig
from repro.core.search import (
    best_assignment_for,
    evaluate_candidates,
    find_optimal_config,
)
from repro.core.system import make_system


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


class TestFindOptimalConfig:
    def test_finds_paper_optimum_at_16k_gpus(self, b200):
        """Fig. 1/4a: the optimum at 16384 B200 GPUs is around nt=8, np=64."""
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=16384, global_batch_size=4096, strategy="tp1d"
        )
        assert result.found
        best = result.best
        assert best.config.tensor_parallel_1 == 8
        assert best.config.pipeline_parallel in (32, 64, 128)
        assert 1.0 < best.total_time < 6.0

    def test_best_is_feasible_and_minimal(self, b200):
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=512, global_batch_size=4096, strategy="tp1d", top_k=5
        )
        assert result.found
        assert result.best.feasible
        assert result.best.memory.fits(b200.gpu.hbm_capacity)
        # top_k is sorted and the best is its first entry.
        times = [est.total_time for est in result.top_k]
        assert times == sorted(times)
        assert result.best.total_time == pytest.approx(times[0])

    def test_statistics_are_populated(self, b200):
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096, strategy="tp1d"
        )
        stats = result.statistics
        assert stats.parallel_configs > 0
        assert stats.candidates_evaluated > 0

    def test_no_feasible_configuration(self):
        """A single A100 cannot hold a 1T-parameter model."""
        a100 = make_system("A100", 4)
        result = find_optimal_config(
            GPT3_1T, a100, n_gpus=4, global_batch_size=4096, strategy="tp1d"
        )
        assert not result.found
        assert result.best_time == math.inf

    def test_multi_strategy_search_returns_overall_best(self, b200):
        combined = find_optimal_config(
            GPT3_1T, b200, n_gpus=512, global_batch_size=4096,
            strategy=("tp1d", "tp2d"),
        )
        tp1d_only = find_optimal_config(
            GPT3_1T, b200, n_gpus=512, global_batch_size=4096, strategy="tp1d"
        )
        tp2d_only = find_optimal_config(
            GPT3_1T, b200, n_gpus=512, global_batch_size=4096, strategy="tp2d"
        )
        assert combined.best_time == pytest.approx(
            min(tp1d_only.best_time, tp2d_only.best_time)
        )
        assert combined.strategy == "tp1d+tp2d"

    def test_empty_strategy_list_rejected(self, b200):
        with pytest.raises(ValueError):
            find_optimal_config(
                GPT3_1T, b200, n_gpus=64, global_batch_size=4096, strategy=()
            )

    def test_search_space_restriction_is_respected(self, b200):
        space = SearchSpace(max_tensor_parallel=2)
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=512, global_batch_size=4096, strategy="tp1d", space=space
        )
        assert result.best.config.tensor_parallel <= 2

    def test_summary_contains_best_config(self, b200):
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096, strategy="tp1d"
        )
        summary = result.summary()
        assert summary["found"] is True
        assert summary["n_gpus"] == 256
        assert "config" in summary


class TestVitRequires2D:
    def test_vit_tp2d_feasible_and_faster_than_tp1d(self, b200):
        """Paper Q2(iv): the long-sequence ViT needs 2D TP."""
        tp2d = find_optimal_config(
            VIT_LONG_SEQ, b200, n_gpus=1024, global_batch_size=4096, strategy="tp2d"
        )
        tp1d = find_optimal_config(
            VIT_LONG_SEQ, b200, n_gpus=1024, global_batch_size=4096, strategy="tp1d"
        )
        assert tp2d.found
        assert tp2d.best.config.tensor_parallel_2 > 1
        # 1D TP is either infeasible or much slower.
        assert (not tp1d.found) or tp1d.best_time > tp2d.best_time

    def test_vit_memory_is_highly_utilised(self, b200):
        result = find_optimal_config(
            VIT_LONG_SEQ, b200, n_gpus=1024, global_batch_size=4096, strategy="tp2d"
        )
        assert result.best.memory_gb > 0.5 * b200.gpu.hbm_capacity / 1e9


class TestBestAssignmentFor:
    def test_picks_minimum_over_assignments(self, b200):
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=64, data_parallel=32, microbatch_size=1,
        )
        best = best_assignment_for(GPT3_1T, b200, config, global_batch_size=4096)
        from repro.core.config_space import gpu_assignments

        estimates = evaluate_candidates(
            GPT3_1T, b200, config, gpu_assignments(config, 8), global_batch_size=4096
        )
        assert best.total_time == pytest.approx(min(e.total_time for e in estimates))

    def test_prefers_feasible_even_if_slower(self, b200):
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=64, data_parallel=32, microbatch_size=1,
        )
        best = best_assignment_for(GPT3_1T, b200, config, global_batch_size=4096)
        assert best.feasible


class TestNvsDomainEffect:
    def test_larger_nvs_domain_shifts_gpt_to_lower_pp_at_scale(self):
        """Paper Fig. A3a: with a 64-GPU NVS domain the optimum uses less PP."""
        small = find_optimal_config(
            GPT3_1T, make_system("B200", 8), n_gpus=16384, global_batch_size=4096,
            strategy="tp1d",
        )
        large = find_optimal_config(
            GPT3_1T, make_system("B200", 64), n_gpus=16384, global_batch_size=4096,
            strategy="tp1d",
        )
        assert large.best.config.pipeline_parallel <= small.best.config.pipeline_parallel
        assert large.best_time <= small.best_time


class TestBatchEvalMode:
    """eval_mode="batch" regressions: the vectorized branch-and-bound with
    the shared-incumbent board must select exactly what exhaustive scalar
    search selects — best config, assignment, breakdown and top-k set."""

    MODEL = GPT3_1T
    N_GPUS = 1024
    GLOBAL_BATCH = 4096

    def _solve(self, b200, **kwargs):
        return find_optimal_config(
            self.MODEL, b200, n_gpus=self.N_GPUS,
            global_batch_size=self.GLOBAL_BATCH, **kwargs
        )

    @pytest.mark.parametrize("strategy", ["tp1d", "all"])
    def test_batch_equals_scalar_best(self, b200, strategy):
        scalar = self._solve(b200, strategy=strategy, eval_mode="scalar")
        batch = self._solve(b200, strategy=strategy, eval_mode="batch")
        assert batch.best.config == scalar.best.config
        assert batch.best.assignment == scalar.best.assignment
        assert batch.best.breakdown == scalar.best.breakdown
        assert batch.best_time == scalar.best_time

    def test_pruned_batch_equals_exhaustive_batch(self, b200):
        """B&B + shared incumbent never changes the optimum (batch pricer)."""
        no_prune = SearchSpace(prune_with_lower_bound=False)
        exhaustive = self._solve(
            b200, strategy="all", space=no_prune, eval_mode="batch"
        )
        pruned = self._solve(b200, strategy="all", eval_mode="batch")
        assert pruned.best.config == exhaustive.best.config
        assert pruned.best.assignment == exhaustive.best.assignment
        assert pruned.best_time == exhaustive.best_time
        assert pruned.statistics.candidates_evaluated < (
            exhaustive.statistics.candidates_evaluated
        )

    def test_batch_topk_identical_to_scalar(self, b200):
        scalar = self._solve(b200, strategy="tp1d", top_k=5, eval_mode="scalar")
        batch = self._solve(b200, strategy="tp1d", top_k=5, eval_mode="batch")
        assert len(batch.top_k) == len(scalar.top_k) == 5
        for got, want in zip(batch.top_k, scalar.top_k):
            assert got.config == want.config
            assert got.assignment == want.assignment
            assert got.breakdown == want.breakdown

    def test_shared_incumbent_prunes_are_attributed(self, b200):
        """Cross-strategy sharing fires on an "all" search and is counted in
        the compare-excluded diagnostics, never in the result equality."""
        result = self._solve(b200, strategy="all", eval_mode="batch")
        assert result.statistics.shared_incumbent_prunes > 0
        scalar = self._solve(b200, strategy="all", eval_mode="scalar")
        assert scalar.statistics.shared_incumbent_prunes == 0

    def test_batch_requires_analytic_backend(self, b200):
        with pytest.raises(ValueError, match="eval_mode='batch'"):
            self._solve(b200, strategy="tp1d", eval_mode="batch", backend="sim")

    def test_unknown_eval_mode_is_rejected(self, b200):
        with pytest.raises(ValueError, match="eval_mode"):
            self._solve(b200, strategy="tp1d", eval_mode="vectorized")
