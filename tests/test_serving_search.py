"""Serving search: objectives, branch-and-bound invariants, presets, cache."""

from dataclasses import replace

import pytest

from repro.core.config_space import DEFAULT_SEARCH_SPACE
from repro.core.inference import (
    ServingSearchResult,
    ServingSpec,
    find_serving_config,
)
from repro.core.model import TransformerConfig
from repro.core.search import find_optimal_config
from repro.core.system import make_system
from repro.core.workloads import get_workload
from repro.runtime import SearchCache, SearchTask, SweepExecutor
from repro.utils.serialization import dataclass_from_jsonable, to_jsonable

TINY = TransformerConfig(
    name="tiny", seq_len=1024, embed_dim=2048, num_heads=16, kv_heads=4, depth=16
)
TINY_MOE = TransformerConfig(
    name="tiny-moe",
    seq_len=1024,
    embed_dim=2048,
    num_heads=16,
    kv_heads=4,
    depth=16,
    num_experts=8,
    moe_top_k=2,
)
SYSTEM = make_system("A100", 4)
SPEC = ServingSpec(arrival_rate=48.0, prompt_tokens=512, output_tokens=128)
NO_PRUNE = replace(DEFAULT_SEARCH_SPACE, prune_with_lower_bound=False)


class TestServingSearch:
    def test_finds_a_feasible_config(self):
        result = find_serving_config(TINY, SYSTEM, 16, serving=SPEC)
        assert result.found
        assert result.best.feasible
        assert result.best.config.total_gpus == 16
        assert result.best.config.strategy == "tp1d"

    @pytest.mark.parametrize("objective", ["throughput", "ttft", "tpot"])
    def test_best_is_optimal_over_reported_candidates(self, objective):
        result = find_serving_config(
            TINY, SYSTEM, 16, serving=SPEC, objective=objective, top_k=5, space=NO_PRUNE
        )
        assert result.found and result.top_k
        values = [est.objective_value(objective) for est in result.top_k]
        best = result.best.objective_value(objective)
        if objective == "throughput":
            assert best == max(values)
            assert values == sorted(values, reverse=True)
        else:
            assert best == min(values)
            assert values == sorted(values)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="objective"):
            find_serving_config(TINY, SYSTEM, 16, serving=SPEC, objective="mfu")

    def test_overloaded_traffic_finds_nothing(self):
        overload = ServingSpec(arrival_rate=1e7, prompt_tokens=512, output_tokens=128)
        result = find_serving_config(TINY, SYSTEM, 8, serving=overload)
        assert not result.found
        assert result.statistics.infeasible_memory > 0


class TestBranchAndBoundInvariant:
    """Tier-1 acceptance invariant: decode-regime branch-and-bound must
    match exhaustive search exactly on a small grid — best *and* top-k,
    for every objective, dense and MoE."""

    @pytest.mark.parametrize("model", [TINY, TINY_MOE], ids=["dense", "moe"])
    @pytest.mark.parametrize("objective", ["throughput", "ttft", "tpot"])
    @pytest.mark.parametrize("top_k", [0, 3])
    def test_pruned_equals_exhaustive(self, model, objective, top_k):
        pruned = find_serving_config(
            model, SYSTEM, 16, serving=SPEC, objective=objective, top_k=top_k
        )
        exhaustive = find_serving_config(
            model, SYSTEM, 16, serving=SPEC, objective=objective, top_k=top_k,
            space=NO_PRUNE,
        )
        assert exhaustive.statistics.pruned_configs == 0
        assert pruned.found == exhaustive.found
        if pruned.found:
            assert pruned.best.config == exhaustive.best.config
            assert pruned.best.assignment == exhaustive.best.assignment
            assert pruned.best.objective_value(objective) == exhaustive.best.objective_value(
                objective
            )
        assert [(e.config, e.assignment) for e in pruned.top_k] == [
            (e.config, e.assignment) for e in exhaustive.top_k
        ]

    def test_pruning_actually_prunes(self):
        result = find_serving_config(TINY, SYSTEM, 16, serving=SPEC, objective="throughput")
        assert result.statistics.pruned_configs > 0


class TestObjectiveThreading:
    """``find_optimal_config`` gains the serving objectives."""

    def test_serving_objective_delegates(self):
        result = find_optimal_config(
            TINY, SYSTEM, 16, 1024, objective="throughput", serving=SPEC
        )
        assert isinstance(result, ServingSearchResult)
        assert result.objective == "throughput"
        direct = find_serving_config(TINY, SYSTEM, 16, serving=SPEC)
        assert result.best.config == direct.best.config

    def test_default_objective_still_returns_training_result(self):
        from repro.core.search import SearchResult

        result = find_optimal_config(TINY, SYSTEM, 16, 64)
        assert isinstance(result, SearchResult)


class TestServingPresets:
    def test_llama70b_serve_preset_returns_valid_config(self):
        spec = get_workload("llama70b-serve")
        assert spec.serving is not None
        assert "serve" in spec.tags
        result = find_serving_config(
            spec.model, make_system("B200", 8), 8, serving=spec.serving,
            objective="throughput",
        )
        assert result.found
        assert result.best.feasible
        assert result.best.config.total_gpus == 8

    def test_moe_mixtral_serve_preset(self):
        spec = get_workload("moe-mixtral-serve")
        assert spec.serving is not None and spec.model.is_moe
        result = find_serving_config(
            spec.model, make_system("B200", 8), 8, serving=spec.serving
        )
        assert result.found


class TestServingResultSerde:
    def test_search_result_round_trips(self):
        result = find_serving_config(TINY, SYSTEM, 16, serving=SPEC, top_k=2)
        rebuilt = dataclass_from_jsonable(ServingSearchResult, to_jsonable(result))
        assert rebuilt.best.config == result.best.config
        assert rebuilt.serving == result.serving
        assert rebuilt.best.tpot == result.best.tpot
        assert len(rebuilt.top_k) == len(result.top_k)

    def test_summary_is_flat_and_jsonable(self):
        import json

        result = find_serving_config(TINY, SYSTEM, 16, serving=SPEC)
        summary = result.summary()
        json.dumps(to_jsonable(summary))
        assert summary["objective"] == "throughput"
        assert summary["found"] is True


class TestServingTasksAndCache:
    def test_serving_task_solves_and_caches(self, tmp_path):
        task = SearchTask(
            model=TINY,
            system=SYSTEM,
            n_gpus=16,
            global_batch_size=1024,
            objective="tpot",
            serving=SPEC,
        )
        cache = SearchCache(tmp_path / "cache.json")
        executor = SweepExecutor(cache=cache)
        (first,) = executor.run([task])
        assert isinstance(first, ServingSearchResult)
        (second,) = SweepExecutor(cache=SearchCache(tmp_path / "cache.json")).run([task])
        assert isinstance(second, ServingSearchResult)
        assert second.best.config == first.best.config
        assert second.best.tpot == first.best.tpot

    def test_training_and_serving_fingerprints_differ(self):
        train = SearchTask(model=TINY, system=SYSTEM, n_gpus=16, global_batch_size=1024)
        serve = SearchTask(
            model=TINY, system=SYSTEM, n_gpus=16, global_batch_size=1024,
            objective="throughput", serving=SPEC,
        )
        assert SearchCache.fingerprint(train) != SearchCache.fingerprint(serve)

    def test_different_serving_specs_miss(self):
        a = SearchTask(
            model=TINY, system=SYSTEM, n_gpus=16, global_batch_size=1024,
            objective="throughput", serving=SPEC,
        )
        b = SearchTask(
            model=TINY, system=SYSTEM, n_gpus=16, global_batch_size=1024,
            objective="throughput",
            serving=replace(SPEC, arrival_rate=SPEC.arrival_rate * 2),
        )
        assert SearchCache.fingerprint(a) != SearchCache.fingerprint(b)


class TestServingBatchEvalMode:
    """Serving eval_mode="batch" vectorizes only the assignment-dependent
    prefill communication and injects it into the scalar evaluator, so the
    whole result — estimates AND diagnostics counters — must be identical
    to the scalar path, pruned or exhaustive."""

    @pytest.mark.parametrize("objective", ["throughput", "ttft", "tpot"])
    def test_batch_identical_to_scalar_including_statistics(self, objective):
        scalar = find_serving_config(
            TINY, SYSTEM, 16, serving=SPEC, objective=objective, eval_mode="scalar"
        )
        batch = find_serving_config(
            TINY, SYSTEM, 16, serving=SPEC, objective=objective, eval_mode="batch"
        )
        assert batch == scalar  # full dataclass equality, statistics included

    @pytest.mark.parametrize("model", [TINY, TINY_MOE])
    def test_pruned_batch_equals_exhaustive_batch(self, model):
        pruned = find_serving_config(
            model, SYSTEM, 16, serving=SPEC, eval_mode="batch"
        )
        exhaustive = find_serving_config(
            model, SYSTEM, 16, serving=SPEC, space=NO_PRUNE, eval_mode="batch"
        )
        assert pruned.best == exhaustive.best

    def test_batch_topk_identical_to_scalar(self):
        scalar = find_serving_config(
            TINY, SYSTEM, 16, serving=SPEC, top_k=4, eval_mode="scalar"
        )
        batch = find_serving_config(
            TINY, SYSTEM, 16, serving=SPEC, top_k=4, eval_mode="batch"
        )
        assert batch.top_k == scalar.top_k

    def test_batch_requires_analytic_backend(self):
        with pytest.raises(ValueError, match="eval_mode='batch'"):
            find_serving_config(
                TINY, SYSTEM, 16, serving=SPEC, eval_mode="batch", backend="sim"
            )

    def test_unknown_eval_mode_is_rejected(self):
        with pytest.raises(ValueError, match="eval_mode"):
            find_serving_config(TINY, SYSTEM, 16, serving=SPEC, eval_mode="simd")
