"""Command-line interface (``repro-perf``)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for cmd in ("search", "scaling", "systems", "speedup", "validate", "collectives"):
            args = parser.parse_args([cmd] if cmd in ("validate", "collectives") else [cmd])
            assert hasattr(args, "func")


class TestSearchCommand:
    def test_basic_search(self, capsys):
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "256", "--gpu", "B200"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Best configuration" in out
        assert "iteration" in out

    def test_infeasible_search_returns_nonzero(self, capsys):
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "4", "--gpu", "A100"])
        assert rc == 1
        assert "No feasible configuration" in capsys.readouterr().out

    def test_top_k_table(self, capsys):
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "256", "--top-k", "3"])
        assert rc == 0
        assert "config" in capsys.readouterr().out

    def test_json_dump(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "256", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["n_gpus"] == 256


class TestOtherCommands:
    def test_scaling(self, capsys):
        rc = main(["scaling", "--model", "gpt3-1t", "--gpus", "256,512"])
        assert rc == 0
        assert "strong scaling" in capsys.readouterr().out

    def test_validate(self, capsys):
        rc = main(["validate"])
        assert rc == 0
        assert "empirical validation" in capsys.readouterr().out

    def test_collectives(self, capsys):
        rc = main(["collectives", "--gpus", "8", "--nvlink", "4"])
        assert rc == 0
        assert "all_gather" in capsys.readouterr().out

    def test_systems_small(self, capsys):
        rc = main([
            "systems", "--model", "gpt3-1t", "--gpus", "512",
            "--generations", "B200", "--nvs-sizes", "8",
        ])
        assert rc == 0
        assert "training days" in capsys.readouterr().out

    def test_speedup_small(self, capsys):
        rc = main([
            "speedup", "--model", "gpt3-1t", "--gpus", "512", "--variant", "tp2d",
            "--generations", "B200", "--nvs-sizes", "8",
        ])
        assert rc == 0
        assert "relative speed-up" in capsys.readouterr().out
